#!/usr/bin/env bash
# Regenerates BENCH_segment_io.json, the T13 trace-ingest perf baseline
# (text istream parsing vs zero-copy binary segment replay). Runs
# bench_segment_io with repetitions so the document carries median
# aggregates; tools/check_bench_regression.py gates the nightly CI job
# against it with
#
#   tools/check_bench_regression.py BENCH_segment_io.json candidate.json \
#     --speedup-naive BM_TextIngest/0 \
#     --speedup-fast  BM_BinaryIngest/0 --min-speedup 3.0
#
# (the required ratio is the whole point of the binary format: ingest must
# beat the line-oriented text reader by at least 3x on the 10k-op batch).
#
# Usage: tools/bench_segment_io.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05)
#   NTSG_BENCH_REPS      repetitions for the medians (default: 5)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
# shellcheck source=tools/bench_common.sh
source tools/bench_common.sh
ntsg_bench_prepare bench_segment_io
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_segment_io.json}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="$BUILD_DIR/bench/bench_segment_io"
if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_segment_io (reps=$REPS, min_time=$MIN_TIME)..." >&2
"$bin" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/segment_io.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: ((.context | del(.date, .executable))
              + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
    benches: {bench_segment_io:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/segment_io.json" > "$OUT"
echo "wrote $OUT" >&2
