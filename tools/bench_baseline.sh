#!/usr/bin/env bash
# Regenerates BENCH_baseline.json, the checked-in perf trajectory anchor.
#
# Runs the overhead-contract benches (T6 online certification, T7 fault
# hooks, T8 metrics, T9 tracing) instrumented — NTSG_BENCH_METRICS_DIR set,
# so each binary also drops a .prom snapshot — and merges the Google
# Benchmark JSON outputs into one document keyed by bench name.
#
# Usage: tools/bench_baseline.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05);
#                        raise for a lower-noise baseline on a quiet machine.
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
OUT="${1:-BENCH_baseline.json}"
BENCHES=(bench_incremental_certifier bench_fault_overhead
         bench_obs_overhead bench_trace_overhead)

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build the bench targets first" >&2
    exit 1
  fi
  echo "running $bench (min_time=$MIN_TIME)..." >&2
  NTSG_BENCH_METRICS_DIR="$workdir" "$bin" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json \
    --benchmark_out="$workdir/$bench.json" \
    --benchmark_out_format=json >/dev/null
done

# One document: shared context from the first bench (host facts), then each
# bench's benchmark rows under its own key, with the per-run bookkeeping
# fields dropped so diffs show timing movement, not row renumbering. User
# counters (events=...) are plain row fields and survive.
jq -n \
  --arg min_time "$MIN_TIME" \
  --slurpfile first "$workdir/${BENCHES[0]}.json" \
  '{schema: 1,
    min_time: ($min_time | tonumber),
    context: ($first[0].context | del(.date, .executable)),
    benches: {}}' > "$workdir/merged.json"
for bench in "${BENCHES[@]}"; do
  jq --arg name "$bench" --slurpfile doc "$workdir/$bench.json" \
    '.benches[$name] = [$doc[0].benchmarks[]
                        | del(.family_index, .per_family_instance_index,
                              .run_name, .run_type, .repetitions,
                              .repetition_index, .threads)]' \
    "$workdir/merged.json" > "$workdir/merged.next.json"
  mv "$workdir/merged.next.json" "$workdir/merged.json"
done
mv "$workdir/merged.json" "$OUT"
echo "wrote $OUT" >&2
