#!/usr/bin/env bash
# Regenerates BENCH_baseline.json, the checked-in perf trajectory anchor,
# and BENCH_sg_fastpath.json, the T10 SG-construction fast-path baseline.
#
# Phase 1 runs the overhead-contract benches (T6 online certification, T7
# fault hooks, T8 metrics, T9 tracing) instrumented — NTSG_BENCH_METRICS_DIR
# set, so each binary also drops a .prom snapshot — and merges the Google
# Benchmark JSON outputs into one document keyed by bench name. Phase 2 runs
# the BM_SgBatch{Naive,Fast,Parallel} rows of bench_sg_construction with
# repetitions so the document carries median aggregates; that file is what
# tools/check_bench_regression.py gates the nightly CI job against.
#
# Usage: tools/bench_baseline.sh [output.json] [fastpath-output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05);
#                        raise for a lower-noise baseline on a quiet machine.
#   NTSG_BENCH_REPS      repetitions for the fast-path medians (default: 5)
#   NTSG_BENCH_SKIP_BASELINE  non-empty: skip phase 1 (CI regression runs
#                        only need the fast-path document)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
# shellcheck source=tools/bench_common.sh
source tools/bench_common.sh
ntsg_bench_prepare bench_incremental_certifier bench_fault_overhead \
  bench_obs_overhead bench_trace_overhead bench_sg_construction
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_baseline.json}"
FASTPATH_OUT="${2:-BENCH_sg_fastpath.json}"
BENCHES=(bench_incremental_certifier bench_fault_overhead
         bench_obs_overhead bench_trace_overhead)

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

if [[ -n "${NTSG_BENCH_SKIP_BASELINE:-}" ]]; then
  BENCHES=()
fi

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build the bench targets first" >&2
    exit 1
  fi
  echo "running $bench (min_time=$MIN_TIME)..." >&2
  NTSG_BENCH_METRICS_DIR="$workdir" "$bin" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json \
    --benchmark_out="$workdir/$bench.json" \
    --benchmark_out_format=json >/dev/null
done

# One document: shared context from the first bench (host facts), then each
# bench's benchmark rows under its own key, with the per-run bookkeeping
# fields dropped so diffs show timing movement, not row renumbering. User
# counters (events=...) are plain row fields and survive.
if [[ ${#BENCHES[@]} -gt 0 ]]; then
  jq -n \
    --arg min_time "$MIN_TIME" \
    --slurpfile first "$workdir/${BENCHES[0]}.json" \
    '{schema: 1,
      min_time: ($min_time | tonumber),
      context: (($first[0].context | del(.date, .executable))
                + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
      benches: {}}' > "$workdir/merged.json"
  for bench in "${BENCHES[@]}"; do
    jq --arg name "$bench" --slurpfile doc "$workdir/$bench.json" \
      '.benches[$name] = [$doc[0].benchmarks[]
                          | del(.family_index, .per_family_instance_index,
                                .run_name, .run_type, .repetitions,
                                .repetition_index, .threads)]' \
      "$workdir/merged.json" > "$workdir/merged.next.json"
    mv "$workdir/merged.next.json" "$workdir/merged.json"
  done
  mv "$workdir/merged.json" "$OUT"
  echo "wrote $OUT" >&2
fi

# Phase 2: the SG fast-path document. Repetitions give the aggregate rows
# (median and friends) the regression gate consumes; only those are kept.
fastbin="$BUILD_DIR/bench/bench_sg_construction"
if [[ ! -x "$fastbin" ]]; then
  echo "missing $fastbin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_sg_construction SgBatch rows (reps=$REPS)..." >&2
"$fastbin" \
  --benchmark_filter='BM_SgBatch' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/sg_fastpath.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: ((.context | del(.date, .executable))
              + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
    benches: {bench_sg_construction:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/sg_fastpath.json" > "$FASTPATH_OUT"
echo "wrote $FASTPATH_OUT" >&2
