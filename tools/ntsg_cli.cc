// ntsg — command-line workbench for the nested-transaction library.
//
//   ntsg run   [options]          run one simulation, audit it, optionally
//                                 save the behavior
//   ntsg audit <trace-file>       audit a previously saved behavior
//   ntsg certify <trace-file>     certify a saved behavior (Theorem 8/19);
//                                 --online streams it through the
//                                 incremental certifier and reports the
//                                 first rejected action, --shards N runs
//                                 the concurrent ingest pipeline
//   ntsg sweep [options]          run many seeds, print aggregate stats
//   ntsg chaos [options]          run a seeded workload under a seeded fault
//                                 plan (worker crashes, delivery delay /
//                                 reorder / duplication, controller aborts)
//                                 and check the faulted verdict and graph
//                                 fingerprint against the fault-free run
//   ntsg stats [options]          run one simulation plus the online and
//                                 concurrent certifiers with metrics
//                                 enabled, and dump the metric snapshot
//                                 (stdout, or --metrics-out FILE)
//   ntsg explain <trace-file>     certify a saved behavior and, on rejection,
//                                 print the witness cycle with each edge
//                                 labeled conflict/precedes and the inducing
//                                 action pair (see sg/explain.h)
//   ntsg trace [options]          run one simulation through the online
//                                 certifier with causal tracing enabled and
//                                 write the event stream to --trace-out FILE
//                                 (required; *.json selects Chrome
//                                 trace_event format, else NDJSON)
//   ntsg convert <in> <out>       re-encode a saved behavior between the text
//                                 trace format and the binary segment format
//                                 (input format is sniffed; output defaults
//                                 to the opposite, or --format forces one);
//                                 the output is re-read and verified against
//                                 the input before reporting success
//   ntsg load  [options]          open-loop load harness: generate an
//                                 application workload (--workload bank |
//                                 tpcc | commute), schedule its actions at
//                                 --rate actions per virtual second
//                                 (--arrival poisson | fixed), and drive the
//                                 chosen certifier (--certifier batch |
//                                 incremental | sharded | all; "all" demands
//                                 verdict agreement). Reports admission-
//                                 latency quantiles (p50/p95/p99/p999);
//                                 --timeline-out FILE streams a per-epoch
//                                 NDJSON timeline (--epochs windows;
//                                 deterministic core fields only, unless
//                                 --timeline-wallclock adds quantiles, queue
//                                 depths, and a metrics snapshot); --sweep
//                                 steps the offered rate until the latency
//                                 knees and reports saturation throughput
//   ntsg isolate <trace-file>     check a saved behavior against the whole
//                                 isolation spectrum (read committed, read
//                                 atomic, snapshot isolation, serializable)
//                                 and print the verdict vector; --online also
//                                 streams it through the incremental checker
//                                 and demands agreement. With --mine (no
//                                 operand) searches workload/seed space for
//                                 executions a weaker level accepts but
//                                 SG(beta) rejects; --runs N sets the search
//                                 budget, --out DIR archives each hit's
//                                 trace and rendered verdict vector
//
// Exit codes (distinct so scripts can branch on the failure kind):
//   0  success / verdicts agree
//   1  a correctness check rejected the execution (certification failure)
//   2  usage error (bad command, flag, or flag value)
//   3  certifier disagreement or chaos clean-vs-faulted mismatch
//   4  trace file unreadable or corrupt
//
// Common options (defaults in brackets):
//   --backend NAME    moss | moss_dirty_read | moss_no_read_lock |
//                     moss_ignore_readers | undo | undo_no_commute | sgt |
//                     general_locking | mvto                       [moss]
//   --objects N       number of shared objects                     [4]
//   --type NAME       read_write | counter | set | queue |
//                     bank_account                                 [read_write]
//   --initial V       initial value of each object                 [0]
//   --toplevel N      top-level transactions                       [8]
//   --depth D         nesting depth of generated programs          [2]
//   --fanout F        children per composite                       [3]
//   --read-prob P     observer-operation probability               [0.5]
//   --zipf S          object-popularity skew exponent              [0]
//   --retries K       per-child retry budget                       [2]
//   --seed S          RNG seed (sweep: first seed)                 [1]
//   --seeds N         sweep only: number of seeds                  [20]
//   --abort-prob P    spontaneous abort probability per step       [0]
//   --innermost       fine-grained stall aborts (default: top-level)
//   --online          certify only: stream through IncrementalCertifier
//   --gc[=N]          certify only: commit-watermark GC every N actions
//                     (bare --gc uses N=1024). Applies to the batch path
//                     (which then streams with bounded memory), --online,
//                     and --shards; prints families/nodes retired and ops
//                     pruned. Metrics land in the ntsg_gc_* families.
//   --batch[=N]       certify --online / stats / load: epoch-batched
//                     admission — stage up to N actions' edges and commit
//                     them with one topological recompute (bare --batch
//                     uses N=256; 0/1 = per-event). Verdicts, witness
//                     cycles, and explain
//                     output are byte-identical to per-event admission; a
//                     rejected batch is replayed per-edge to recover the
//                     exact first-rejecting action. Batches never span a GC
//                     barrier. Metrics land in the ntsg_batch_* families.
//   --shards N        certify/stats: parallelize the batch SG build across N
//                     workers and also run the concurrent pipeline;
//                     chaos: pipeline width                    [0 / chaos: 4]
//   --fault-seed S    chaos only: fault-plan seed                       [1]
//   --save FILE       run / chaos: save the behavior (format per --format)
//   --format NAME     text | binary: trace file format for --save and
//                     convert; readers sniff the format, but an explicit
//                     --format forces that reader            [text / sniffed]
//   --codec NAME      raw | rle: per-segment codec for binary writes   [raw]
//   --wal DIR         certify/chaos with --shards: write-ahead-log every
//                     routed action into a segment directory (TraceStore)
//                     and report the recovery replay
//   --dot FILE        run only: dump the serialization graph (Graphviz)
//   --metrics-out F   enable metrics and write a snapshot to F after the
//                     command (Prometheus text; *.json selects JSON)
//   --trace-out F     enable causal tracing and write the event stream to F
//                     after the command (*.json Chrome trace, else NDJSON)
//   --flight-recorder N  enable tracing with per-thread rings of N events;
//                     on a nonzero exit or an injected crash, dump the last
//                     N events per thread to stderr
//   --quiet           suppress the per-event trace dump
//
// Load-harness options (ntsg load; --objects is the workload scale,
// --toplevel / --retries / --seed shape the generated transactions):
//   --workload NAME   bank | tpcc | commute                        [bank]
//   --rate R          offered rate, actions per virtual second     [50000]
//   --arrival NAME    poisson | fixed inter-arrival times          [poisson]
//   --epochs N        timeline epochs over the schedule span       [10]
//   --certifier NAME  batch | incremental | sharded | all          [incremental]
//   --timeline-out F  stream the per-epoch NDJSON timeline to F
//                     (with --certifier all: F.<mode> per mode)
//   --timeline-wallclock  add latency quantiles, queue depth, and a metrics
//                     snapshot to each timeline record (wall-clock fields —
//                     byte-determinism holds only without them)
//   --no-pace         admit back-to-back instead of pacing arrivals to the
//                     wall clock (virtual-time bookkeeping is unchanged)
//   --batch[=N]       epoch-batched admission in the incremental / sharded
//                     sinks (see common options above)
//   --sweep           saturation sweep: double the rate until p99 knees
//   --sweep-steps N   sweep rate steps                             [6]
//   --knee-us X       sweep p99 knee threshold in microseconds     [5000]

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "checker/witness.h"
#include "common/strict_parse.h"
#include "load/load_gen.h"
#include "load/workloads.h"
#include "fault/fault_plan.h"
#include "iso/checker.h"
#include "iso/incremental_iso.h"
#include "iso/miner.h"
#include "mvto/timestamp_authority.h"
#include "obs/families.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sg/certifier.h"
#include "sg/explain.h"
#include "sg/fast_graph.h"
#include "sg/graph.h"
#include "sg/incremental_certifier.h"
#include "sim/concurrent_ingest.h"
#include "sim/driver.h"
#include "sim/trace_stats.h"
#include "tx/segment/segment_reader.h"
#include "tx/segment/trace_store.h"
#include "tx/trace_checks.h"
#include "tx/trace_io.h"

namespace ntsg {
namespace {

// Exit codes, kept distinct so scripts can branch on the failure kind.
constexpr int kExitOk = 0;
constexpr int kExitCertificationFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitMismatch = 3;
constexpr int kExitTraceCorrupt = 4;

enum class TraceFormat { kText, kBinary };

struct CliOptions {
  std::string command;
  std::string trace_file;  // audit / certify / convert-input operand.
  std::string out_file;    // convert output operand.
  bool online = false;
  size_t shards = 0;
  size_t gc_interval = 0;
  size_t batch = 0;  // --batch[=N]: epoch-batched admission (0/1 = per-event)
  Backend backend = Backend::kMoss;
  size_t objects = 4;
  ObjectType object_type = ObjectType::kReadWrite;
  int64_t initial = 0;
  size_t toplevel = 8;
  int depth = 2;
  int fanout = 3;
  double read_prob = 0.5;
  double zipf = 0.0;
  int retries = 2;
  uint64_t seed = 1;
  uint64_t fault_seed = 1;
  size_t seeds = 20;
  double abort_prob = 0.0;
  bool innermost = false;
  std::string save_file;
  std::string dot_file;
  std::string metrics_out;
  std::string trace_out;
  size_t flight_recorder = 0;
  bool quiet = false;
  bool mine = false;        // isolate only: anomaly-miner mode
  size_t runs = 64;         // isolate --mine: search budget
  std::string out_dir;      // isolate --mine: hit archive directory
  TraceFormat format = TraceFormat::kText;
  bool format_set = false;  // explicit --format (forces reader + writer)
  seg::Codec codec = seg::Codec::kRaw;
  std::string wal_dir;      // certify/chaos --shards: segment WAL directory

  // load command.
  load::Workload workload = load::Workload::kBank;
  double rate = 50'000.0;
  bool poisson = true;
  size_t epochs = 10;
  load::CertMode cert_mode = load::CertMode::kIncremental;
  bool cert_all = false;      // --certifier all: run every mode, demand
                              // verdict agreement
  bool sweep_rates = false;   // --sweep: saturation sweep mode
  size_t sweep_steps = 6;
  double knee_us = 5'000.0;
  std::string timeline_out;
  bool timeline_wallclock = false;
  bool no_pace = false;
};

// Set by commands that know the SystemType so trace exporters and the
// flight-recorder dump print "T0.1.2" instead of raw numbers. A snapshot of
// the names (not a pointer to the type, which is command-local).
obs::TraceNameFn g_trace_names;

// Set by chaos when the fault plan actually crashed a worker; with
// --flight-recorder the dump then fires even though the run matched.
bool g_injected_crash = false;

void SetTraceNames(const SystemType& type) {
  if (!obs::TraceEnabled()) return;
  std::vector<std::string> names;
  names.reserve(type.num_names());
  for (TxName t = 0; t < type.num_names(); ++t) {
    names.push_back(type.NameOf(t));
  }
  g_trace_names = [names = std::move(names)](uint32_t t) {
    return t < names.size() ? names[t] : std::to_string(t);
  };
}

// Probe an output path before any work runs: open for append (creates the
// file, keeps existing bytes) so a bad path is a usage error up front, not a
// surprise after a long command.
bool ValidateWritable(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    std::cerr << "cannot open " << path << " for writing\n";
    return false;
  }
  return true;
}

// Same fail-fast contract for an output *directory*: create it if missing,
// then prove a file can be written inside before any mining runs.
bool ValidateWritableDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string probe_path = dir + "/.ntsg_probe";
  {
    std::ofstream probe(probe_path, std::ios::trunc);
    if (!probe) {
      std::cerr << "cannot write into directory " << dir << "\n";
      return false;
    }
  }
  std::filesystem::remove(probe_path, ec);
  return true;
}

bool ParseBackend(const std::string& name, Backend* out) {
  for (Backend b :
       {Backend::kMoss, Backend::kDirtyReadMoss, Backend::kNoReadLockMoss,
        Backend::kIgnoreReadersMoss, Backend::kUndo, Backend::kNoCommuteUndo,
        Backend::kSgt, Backend::kGeneralLocking, Backend::kMvto}) {
    if (name == BackendName(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool ParseType(const std::string& name, ObjectType* out) {
  for (ObjectType t : {ObjectType::kReadWrite, ObjectType::kCounter,
                       ObjectType::kSet, ObjectType::kQueue,
                       ObjectType::kBankAccount}) {
    if (name == ObjectTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

int Usage() {
  std::cerr << "usage: ntsg "
               "run|audit|certify|sweep|chaos|stats|explain|trace|isolate|"
               "convert|load"
               " [options]  (see tools/ntsg_cli.cc header for the full "
               "list)\n";
  return kExitUsage;
}

// Strict flag-value parsing: "abc" and "12xyz" are usage errors, not silent
// zeros; negative or overflowed counts fail instead of wrapping.
bool ParseCountFlag(const char* flag, const std::string& v, size_t* out) {
  uint64_t n;
  if (!StrictParseUint64(v, &n)) {
    std::cerr << flag << " requires a non-negative integer, got '" << v
              << "'\n";
    return false;
  }
  *out = static_cast<size_t>(n);
  return true;
}

bool ParseU64Flag(const char* flag, const std::string& v, uint64_t* out) {
  if (!StrictParseUint64(v, out)) {
    std::cerr << flag << " requires a non-negative integer, got '" << v
              << "'\n";
    return false;
  }
  return true;
}

bool ParseNonNegIntFlag(const char* flag, const std::string& v, int* out) {
  if (!StrictParseInt(v, out) || *out < 0) {
    std::cerr << flag << " requires a non-negative integer, got '" << v
              << "'\n";
    return false;
  }
  return true;
}

bool ParseDoubleFlag(const char* flag, const std::string& v, double* out) {
  if (!StrictParseDouble(v, out)) {
    std::cerr << flag << " requires a number, got '" << v << "'\n";
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* opt) {
  if (argc < 2) return false;
  opt->command = argv[1];
  int i = 2;
  if (opt->command == "audit" || opt->command == "certify" ||
      opt->command == "explain") {
    if (argc < 3) return false;
    opt->trace_file = argv[2];
    i = 3;
  }
  if (opt->command == "convert") {
    if (argc < 4) return false;
    opt->trace_file = argv[2];
    opt->out_file = argv[3];
    i = 4;
  }
  // isolate's operand is optional: --mine needs no input trace.
  if (opt->command == "isolate" && argc >= 3 && argv[2][0] != '-') {
    opt->trace_file = argv[2];
    i = 3;
  }
  auto need = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << flag << " requires an argument\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--backend") {
      if (!(v = need("--backend")) || !ParseBackend(v, &opt->backend)) {
        return false;
      }
    } else if (a == "--objects") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--objects", v, &opt->objects)) return false;
    } else if (a == "--type") {
      if (!(v = need(a.c_str())) || !ParseType(v, &opt->object_type)) {
        return false;
      }
    } else if (a == "--initial") {
      if (!(v = need(a.c_str()))) return false;
      if (!StrictParseInt64(v, &opt->initial)) {
        std::cerr << "--initial requires an integer, got '" << v << "'\n";
        return false;
      }
    } else if (a == "--toplevel") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--toplevel", v, &opt->toplevel)) return false;
    } else if (a == "--depth") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseNonNegIntFlag("--depth", v, &opt->depth)) return false;
    } else if (a == "--fanout") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseNonNegIntFlag("--fanout", v, &opt->fanout)) return false;
    } else if (a == "--read-prob") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseDoubleFlag("--read-prob", v, &opt->read_prob)) return false;
    } else if (a == "--zipf") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseDoubleFlag("--zipf", v, &opt->zipf)) return false;
    } else if (a == "--retries") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseNonNegIntFlag("--retries", v, &opt->retries)) return false;
    } else if (a == "--seed") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseU64Flag("--seed", v, &opt->seed)) return false;
    } else if (a == "--fault-seed") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseU64Flag("--fault-seed", v, &opt->fault_seed)) return false;
    } else if (a == "--seeds") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--seeds", v, &opt->seeds)) return false;
    } else if (a == "--abort-prob") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseDoubleFlag("--abort-prob", v, &opt->abort_prob)) return false;
    } else if (a == "--innermost") {
      opt->innermost = true;
    } else if (a == "--online") {
      opt->online = true;
    } else if (a == "--gc") {
      opt->gc_interval = 1024;
    } else if (a.rfind("--gc=", 0) == 0) {
      if (!ParseCountFlag("--gc", a.substr(std::strlen("--gc=")),
                          &opt->gc_interval) ||
          opt->gc_interval == 0) {
        std::cerr << "--gc requires a positive interval\n";
        return false;
      }
    } else if (a == "--batch") {
      opt->batch = 256;
    } else if (a.rfind("--batch=", 0) == 0) {
      if (!ParseCountFlag("--batch", a.substr(std::strlen("--batch=")),
                          &opt->batch) ||
          opt->batch == 0) {
        std::cerr << "--batch requires a positive size\n";
        return false;
      }
    } else if (a == "--shards") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--shards", v, &opt->shards)) return false;
    } else if (a == "--save") {
      if (!(v = need(a.c_str()))) return false;
      opt->save_file = v;
    } else if (a == "--dot") {
      if (!(v = need(a.c_str()))) return false;
      opt->dot_file = v;
    } else if (a == "--metrics-out") {
      if (!(v = need(a.c_str()))) return false;
      opt->metrics_out = v;
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      opt->metrics_out = a.substr(std::strlen("--metrics-out="));
      if (opt->metrics_out.empty()) {
        std::cerr << "--metrics-out requires an argument\n";
        return false;
      }
    } else if (a == "--trace-out") {
      if (!(v = need(a.c_str()))) return false;
      opt->trace_out = v;
    } else if (a.rfind("--trace-out=", 0) == 0) {
      opt->trace_out = a.substr(std::strlen("--trace-out="));
      if (opt->trace_out.empty()) {
        std::cerr << "--trace-out requires an argument\n";
        return false;
      }
    } else if (a == "--flight-recorder") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--flight-recorder", v, &opt->flight_recorder)) {
        return false;
      }
    } else if (a.rfind("--flight-recorder=", 0) == 0) {
      if (!ParseCountFlag("--flight-recorder",
                          a.substr(std::strlen("--flight-recorder=")),
                          &opt->flight_recorder) ||
          opt->flight_recorder == 0) {
        std::cerr << "--flight-recorder requires a positive count\n";
        return false;
      }
    } else if (a == "--quiet") {
      opt->quiet = true;
    } else if (a == "--mine") {
      opt->mine = true;
    } else if (a == "--runs") {
      if (!(v = need(a.c_str()))) return false;
      if (!ParseCountFlag("--runs", v, &opt->runs) || opt->runs == 0) {
        std::cerr << "--runs requires a positive count\n";
        return false;
      }
    } else if (a == "--out") {
      if (!(v = need(a.c_str()))) return false;
      opt->out_dir = v;
    } else if (a == "--format" || a.rfind("--format=", 0) == 0) {
      std::string name = a == "--format"
                             ? ((v = need("--format")) ? v : "")
                             : a.substr(std::strlen("--format="));
      if (name == "text") {
        opt->format = TraceFormat::kText;
      } else if (name == "binary") {
        opt->format = TraceFormat::kBinary;
      } else {
        std::cerr << "--format must be text or binary\n";
        return false;
      }
      opt->format_set = true;
    } else if (a == "--codec" || a.rfind("--codec=", 0) == 0) {
      std::string name = a == "--codec" ? ((v = need("--codec")) ? v : "")
                                        : a.substr(std::strlen("--codec="));
      if (name == "raw") {
        opt->codec = seg::Codec::kRaw;
      } else if (name == "rle") {
        opt->codec = seg::Codec::kRle;
      } else {
        std::cerr << "--codec must be raw or rle\n";
        return false;
      }
    } else if (a == "--wal") {
      if (!(v = need(a.c_str()))) return false;
      opt->wal_dir = v;
    } else if (a == "--workload" || a.rfind("--workload=", 0) == 0) {
      std::string name = a == "--workload"
                             ? ((v = need("--workload")) ? v : "")
                             : a.substr(std::strlen("--workload="));
      if (!load::ParseWorkload(name, &opt->workload)) {
        std::cerr << "--workload must be bank, tpcc, or commute\n";
        return false;
      }
    } else if (a == "--rate" || a.rfind("--rate=", 0) == 0) {
      std::string val = a == "--rate" ? ((v = need("--rate")) ? v : "")
                                      : a.substr(std::strlen("--rate="));
      if (!ParseDoubleFlag("--rate", val, &opt->rate) || opt->rate <= 0) {
        std::cerr << "--rate requires a positive rate\n";
        return false;
      }
    } else if (a == "--arrival" || a.rfind("--arrival=", 0) == 0) {
      std::string name = a == "--arrival" ? ((v = need("--arrival")) ? v : "")
                                          : a.substr(std::strlen("--arrival="));
      if (name == "poisson") {
        opt->poisson = true;
      } else if (name == "fixed") {
        opt->poisson = false;
      } else {
        std::cerr << "--arrival must be poisson or fixed\n";
        return false;
      }
    } else if (a == "--epochs" || a.rfind("--epochs=", 0) == 0) {
      std::string val = a == "--epochs" ? ((v = need("--epochs")) ? v : "")
                                        : a.substr(std::strlen("--epochs="));
      if (!ParseCountFlag("--epochs", val, &opt->epochs) ||
          opt->epochs == 0) {
        std::cerr << "--epochs requires a positive count\n";
        return false;
      }
    } else if (a == "--certifier" || a.rfind("--certifier=", 0) == 0) {
      std::string name = a == "--certifier"
                             ? ((v = need("--certifier")) ? v : "")
                             : a.substr(std::strlen("--certifier="));
      if (name == "all") {
        opt->cert_all = true;
      } else if (!load::ParseCertMode(name, &opt->cert_mode)) {
        std::cerr << "--certifier must be batch, incremental, sharded, or "
                     "all\n";
        return false;
      }
    } else if (a == "--sweep") {
      opt->sweep_rates = true;
    } else if (a == "--sweep-steps" || a.rfind("--sweep-steps=", 0) == 0) {
      std::string val = a == "--sweep-steps"
                            ? ((v = need("--sweep-steps")) ? v : "")
                            : a.substr(std::strlen("--sweep-steps="));
      if (!ParseCountFlag("--sweep-steps", val, &opt->sweep_steps) ||
          opt->sweep_steps == 0) {
        std::cerr << "--sweep-steps requires a positive count\n";
        return false;
      }
    } else if (a == "--knee-us" || a.rfind("--knee-us=", 0) == 0) {
      std::string val = a == "--knee-us" ? ((v = need("--knee-us")) ? v : "")
                                         : a.substr(std::strlen("--knee-us="));
      if (!ParseDoubleFlag("--knee-us", val, &opt->knee_us) ||
          opt->knee_us <= 0) {
        std::cerr << "--knee-us requires a positive threshold\n";
        return false;
      }
    } else if (a == "--timeline-out" || a.rfind("--timeline-out=", 0) == 0) {
      std::string val = a == "--timeline-out"
                            ? ((v = need("--timeline-out")) ? v : "")
                            : a.substr(std::strlen("--timeline-out="));
      if (val.empty()) {
        std::cerr << "--timeline-out requires an argument\n";
        return false;
      }
      opt->timeline_out = val;
    } else if (a == "--timeline-wallclock") {
      opt->timeline_wallclock = true;
    } else if (a == "--no-pace") {
      opt->no_pace = true;
    } else {
      std::cerr << "unknown option " << a << "\n";
      return false;
    }
  }
  return opt->command == "run" || opt->command == "audit" ||
         opt->command == "certify" || opt->command == "sweep" ||
         opt->command == "chaos" || opt->command == "stats" ||
         opt->command == "explain" || opt->command == "trace" ||
         opt->command == "isolate" || opt->command == "convert" ||
         opt->command == "load";
}

// Readers sniff the on-disk format; an explicit --format instead forces that
// reader (so a mislabeled file is a corruption error, not a silent fallback).
Status ReadTraceAnyFormat(const CliOptions& opt, const std::string& path,
                          SystemType* type, Trace* beta,
                          SiblingOrders* orders) {
  if (!opt.format_set) return seg::ReadTraceFileAuto(path, type, beta, orders);
  return opt.format == TraceFormat::kBinary
             ? seg::ReadBinaryTraceFile(path, type, beta, orders)
             : ReadTraceFile(path, type, beta, orders);
}

Status WriteTraceAnyFormat(const CliOptions& opt, const std::string& path,
                           const SystemType& type, const Trace& beta,
                           const SiblingOrders& orders) {
  return opt.format == TraceFormat::kBinary
             ? seg::WriteBinaryTraceFile(path, type, beta, orders, opt.codec)
             : WriteTraceFile(path, type, beta, orders);
}

struct RunOutput {
  std::unique_ptr<SystemType> type;
  SimResult sim;
  std::map<TxName, std::vector<TxName>> mvto_orders;
};

RunOutput RunOnce(const CliOptions& opt, uint64_t seed,
                  const FaultPlan* sim_plan = nullptr) {
  RunOutput out;
  out.type = std::make_unique<SystemType>();
  for (size_t i = 0; i < opt.objects; ++i) {
    out.type->AddObject(opt.object_type, "X" + std::to_string(i),
                        opt.initial);
  }
  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  ProgramGenParams gen;
  gen.depth = opt.depth;
  gen.fanout = opt.fanout;
  gen.read_prob = opt.read_prob;
  gen.zipf_s = opt.zipf;
  std::vector<std::unique_ptr<ProgramNode>> tops;
  for (size_t i = 0; i < opt.toplevel; ++i) {
    tops.push_back(GenerateProgram(*out.type, gen, rng));
  }
  Simulation sim(out.type.get(), MakePar(std::move(tops), opt.retries));
  SimConfig config;
  config.backend = opt.backend;
  config.seed = seed;
  config.spontaneous_abort_prob = opt.abort_prob;
  config.stall_policy = opt.innermost ? StallPolicy::kAbortInnermost
                                      : StallPolicy::kAbortTopLevel;
  config.fault_plan = sim_plan;
  out.sim = sim.Run(config);
  if (sim.authority() != nullptr) {
    out.mvto_orders = sim.authority()->CreationOrders();
  }
  return out;
}

ConflictMode ModeFor(const SystemType& type) {
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    if (type.object_type(x) != ObjectType::kReadWrite) {
      return ConflictMode::kCommutativity;
    }
  }
  return ConflictMode::kReadWrite;
}

int Audit(const CliOptions& opt, const SystemType& type, const Trace& beta,
          const std::map<TxName, std::vector<TxName>>& mvto_orders) {
  ConflictMode mode = ModeFor(type);
  Status simple = CheckSimpleBehavior(type, beta);
  std::cout << "simple-behavior:  " << simple.ToString() << "\n";

  FastSgReport fast = FastSgAcyclicity(type, SerialPart(beta), mode);
  std::cout << "fast acyclicity:  " << (fast.acyclic ? "acyclic" : "CYCLIC")
            << " (" << fast.conflict_edge_count << " conflict + "
            << fast.timeline_edge_count << " timeline edges)\n";

  CertifierReport report = CertifySeriallyCorrect(type, beta, mode);
  std::cout << "Theorem 8/19:     " << report.status.ToString() << "\n";

  WitnessResult witness =
      mvto_orders.empty()
          ? FastCheckSeriallyCorrectForT0(type, beta, mode)
          : BuildAndCheckWitness(type, beta, mvto_orders);
  std::cout << "exact witness:    " << witness.status.ToString()
            << (mvto_orders.empty() ? "" : " (timestamp order)") << "\n";

  if (!opt.dot_file.empty()) {
    SerializationGraph sg =
        SerializationGraph::Build(type, SerialPart(beta), mode);
    std::ofstream dot(opt.dot_file);
    dot << sg.ToDot(type);
    std::cout << "wrote " << opt.dot_file << "\n";
  }
  return witness.status.ok() ? kExitOk : kExitCertificationFailed;
}

int CmdRun(const CliOptions& opt) {
  RunOutput out = RunOnce(opt, opt.seed);
  SetTraceNames(*out.type);
  const SimStats& s = out.sim.stats;
  std::cout << "backend=" << BackendName(opt.backend) << " seed=" << opt.seed
            << " events=" << out.sim.trace.size() << " steps=" << s.steps
            << "\ncommitted=" << s.toplevel_committed
            << " aborted=" << s.toplevel_aborted
            << " stall_aborts=" << s.stall_aborts_injected
            << " completed=" << (s.completed ? "yes" : "NO") << "\n";
  if (!opt.quiet) std::cout << TraceToString(*out.type, out.sim.trace);
  std::cout << ComputeTraceStats(*out.type, out.sim.trace).ToString(*out.type);
  if (!opt.save_file.empty()) {
    // MVTO runs persist their timestamp order so offline audits can target
    // the scheduler's own serialization order.
    Status st = WriteTraceAnyFormat(opt, opt.save_file, *out.type,
                                    out.sim.trace, out.mvto_orders);
    std::cout << "save: " << st.ToString() << "\n";
  }
  return Audit(opt, *out.type, out.sim.trace, out.mvto_orders);
}

int CmdAudit(const CliOptions& opt) {
  SystemType type;
  Trace beta;
  SiblingOrders orders;
  Status st = ReadTraceAnyFormat(opt, opt.trace_file, &type, &beta, &orders);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitTraceCorrupt;
  }
  std::cout << "loaded " << opt.trace_file << " (" << beta.size()
            << " events" << (orders.empty() ? "" : ", with sibling orders")
            << ")\n";
  return Audit(opt, type, beta, orders);
}

int CmdCertify(const CliOptions& opt) {
  SystemType type;
  Trace beta;
  SiblingOrders orders;
  Status st = ReadTraceAnyFormat(opt, opt.trace_file, &type, &beta, &orders);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitTraceCorrupt;
  }
  ConflictMode mode = ModeFor(type);
  SetTraceNames(type);
  std::cout << "loaded " << opt.trace_file << " (" << beta.size()
            << " events)\n";

  CertifierReport batch = CertifySeriallyCorrect(
      type, beta, mode,
      CertifyOptions{opt.shards > 0 ? opt.shards : 1, opt.gc_interval});
  std::cout << "batch:       " << batch.status.ToString() << "\n";

  bool agree = true;
  if (opt.online) {
    GcOptions gc;
    gc.interval = opt.gc_interval;
    IncrementalCertifier cert(type, mode, gc);
    if (opt.batch > 1) {
      cert.IngestTraceBatched(beta, opt.batch);
    } else {
      cert.IngestTrace(beta);
    }
    IncrementalVerdict v = cert.verdict();
    std::cout << "incremental: "
              << (v.ok() ? "ok"
                         : (!v.appropriate ? "INAPPROPRIATE RETURN VALUES"
                                           : "SG CYCLE"))
              << " (" << cert.conflict_edge_count() << " conflict + "
              << cert.precedes_edge_count() << " precedes edges)\n";
    if (cert.first_rejection_pos().has_value()) {
      std::cout << "first rejected at action "
                << *cert.first_rejection_pos() << " of " << beta.size()
                << "\n";
    }
    if (gc.enabled()) {
      const GcStats& g = cert.gc_stats();
      std::cout << "gc:          " << g.retired_families << " families / "
                << g.retired_nodes << " nodes retired, " << g.pruned_ops
                << " ops pruned in " << g.runs << " passes; "
                << cert.live_node_count() << " live nodes remain\n";
    }
    if (opt.batch > 1) {
      std::cout << "batching:    " << opt.batch << " actions per batch";
      if (obs::MetricsEnabled()) {
        const obs::BatchMetrics& bm = obs::GetBatchMetrics();
        std::cout << "; " << bm.batches_committed->value() << " committed, "
                  << bm.batches_bisected->value() << " replayed per-edge ("
                  << bm.edges_committed->value() << " of "
                  << bm.edges_staged->value() << " staged edges fresh)";
      }
      std::cout << "\n";
    }
    agree = agree && v.ok() == batch.status.ok();
  }
  if (opt.shards > 0) {
    ConcurrentIngestConfig config;
    config.num_shards = opt.shards;
    config.seed = opt.seed;
    config.gc_interval = opt.gc_interval;
    config.batch_max = opt.batch;
    config.wal_dir = opt.wal_dir;
    ConcurrentIngestReport report =
        ConcurrentIngestPipeline::Run(type, beta, mode, config);
    std::cout << "concurrent:  " << (report.ok() ? "ok" : "REJECTED") << " ("
              << opt.shards << " shards, " << report.ops_routed
              << " ops routed)\n";
    if (opt.gc_interval > 0) {
      std::cout << "gc:          " << report.gc.retired_families
                << " families retired, " << report.gc.pruned_ops
                << " ops pruned in " << report.gc.runs << " passes\n";
    }
    if (!opt.wal_dir.empty()) {
      std::cout << "wal:         " << report.wal_appended
                << " actions logged, " << report.wal_segments_sealed
                << " segments sealed, " << report.wal_segments_dropped
                << " dropped by gc (" << report.wal_status.ToString() << ")\n";
      agree = agree && report.wal_status.ok();
    }
    agree = agree && report.ok() == batch.status.ok();
  }
  if (!agree) {
    std::cout << "DISAGREEMENT between certifiers\n";
    return kExitMismatch;
  }
  return batch.status.ok() ? kExitOk : kExitCertificationFailed;
}

// Runs the workload twice over the same seed — once fault-free, once under a
// seeded fault plan both in the driver (controller aborts, spurious
// rejections) and in the ingest pipeline (crashes, delivery faults) — and
// demands the certifier's verdict and graph fingerprint be identical for the
// pipeline layer, and the driver layer's behavior still certify.
int CmdChaos(const CliOptions& opt) {
  size_t shards = opt.shards > 0 ? opt.shards : 4;

  // Driver-layer plan: deterministic controller aborts (plus spurious
  // admission rejections when the SGT backend is active).
  FaultPlanParams driver_params;
  driver_params.crashes = 0;
  driver_params.restart_fails = 0;
  driver_params.delays = 0;
  driver_params.duplicates = 0;
  driver_params.reorders = 0;
  driver_params.snapshots = 0;
  driver_params.injected_aborts = 3;
  driver_params.spurious_rejects = opt.backend == Backend::kSgt ? 3 : 0;
  // Early horizon so the scheduled aborts land while work is still live.
  FaultPlan driver_plan =
      FaultPlan::Generate(opt.fault_seed, /*horizon=*/1'000, 1, driver_params);

  RunOutput out = RunOnce(opt, opt.seed, &driver_plan);
  SetTraceNames(*out.type);
  const SimStats& s = out.sim.stats;
  std::cout << "backend=" << BackendName(opt.backend) << " seed=" << opt.seed
            << " fault-seed=" << opt.fault_seed
            << " events=" << out.sim.trace.size()
            << " completed=" << (s.completed ? "yes" : "NO")
            << "\ndriver faults: plan_aborts=" << s.plan_aborts_injected
            << " spurious_rejects=" << s.spurious_rejects_injected << "\n";

  ConflictMode mode = ModeFor(*out.type);
  CertifierReport batch = CertifySeriallyCorrect(*out.type, out.sim.trace, mode);
  std::cout << "faulted behavior certifies: " << batch.status.ToString()
            << "\n";

  if (!opt.save_file.empty()) {
    Status save_st = WriteTraceAnyFormat(opt, opt.save_file, *out.type,
                                         out.sim.trace, out.mvto_orders);
    std::cout << "save: " << save_st.ToString() << "\n";
  }

  // Pipeline-layer plan: crashes, restart failures, delivery delay /
  // reorder / duplication, snapshots — over the trace as delivered.
  FaultPlan pipe_plan = FaultPlan::Generate(
      opt.fault_seed, out.sim.trace.size(), shards, FaultPlanParams{});
  if (!opt.quiet) std::cout << "fault plan:\n" << pipe_plan.ToString();

  ConcurrentIngestConfig base_config;
  base_config.num_shards = shards;
  base_config.seed = opt.seed;
  ConcurrentIngestReport clean =
      ConcurrentIngestPipeline::Run(*out.type, out.sim.trace, mode,
                                    base_config);

  ConcurrentIngestConfig chaos_config = base_config;
  chaos_config.fault_plan = &pipe_plan;
  // The WAL rides the *chaotic* run: appends happen router-side, so worker
  // crashes and delivery faults must not cost logged actions.
  chaos_config.wal_dir = opt.wal_dir;
  ConcurrentIngestReport chaotic = ConcurrentIngestPipeline::Run(
      *out.type, out.sim.trace, mode, chaos_config);

  if (chaotic.faults.crashes > 0) g_injected_crash = true;
  std::cout << "fault log: " << chaotic.faults.ToString() << "\n";
  if (!opt.wal_dir.empty()) {
    std::cout << "wal: " << chaotic.wal_appended << " actions logged, "
              << chaotic.wal_segments_sealed << " segments sealed ("
              << chaotic.wal_status.ToString() << ")\n";
    if (!chaotic.wal_status.ok()) return kExitMismatch;
  }
  std::cout << "clean:   " << (clean.ok() ? "ok" : "REJECTED")
            << " fingerprint=" << std::hex << clean.graph_fingerprint
            << std::dec << "\nchaotic: " << (chaotic.ok() ? "ok" : "REJECTED")
            << " fingerprint=" << std::hex << chaotic.graph_fingerprint
            << std::dec << "\n";

  bool match = clean.ok() == chaotic.ok() &&
               clean.graph_fingerprint == chaotic.graph_fingerprint &&
               clean.conflict_edge_count == chaotic.conflict_edge_count &&
               clean.precedes_edge_count == chaotic.precedes_edge_count;
  std::cout << (match ? "MATCH: faults did not move the verdict or the graph"
                      : "MISMATCH between clean and chaotic runs")
            << "\n";
  return match ? kExitOk : kExitMismatch;
}

int CmdSweep(const CliOptions& opt) {
  double committed = 0, aborted = 0, stall = 0, steps = 0, verified = 0;
  size_t runs = 0;
  for (uint64_t seed = opt.seed; seed < opt.seed + opt.seeds; ++seed) {
    RunOutput out = RunOnce(opt, seed);
    if (!out.sim.stats.completed) continue;
    ++runs;
    committed += static_cast<double>(out.sim.stats.toplevel_committed);
    aborted += static_cast<double>(out.sim.stats.toplevel_aborted);
    stall += static_cast<double>(out.sim.stats.stall_aborts_injected);
    steps += static_cast<double>(out.sim.stats.steps);
    WitnessResult witness =
        out.mvto_orders.empty()
            ? FastCheckSeriallyCorrectForT0(*out.type, out.sim.trace)
            : BuildAndCheckWitness(*out.type, out.sim.trace, out.mvto_orders);
    if (witness.status.ok()) verified += 1;
  }
  if (runs == 0) {
    std::cerr << "no runs completed\n";
    return kExitCertificationFailed;
  }
  std::cout << "backend=" << BackendName(opt.backend) << " runs=" << runs
            << "\nmean committed=" << committed / runs
            << " aborted=" << aborted / runs
            << " stall_aborts=" << stall / runs << " steps=" << steps / runs
            << "\nwitness-verified " << verified << "/" << runs << "\n";
  return verified == static_cast<double>(runs) || IsBrokenBackend(opt.backend)
             ? kExitOk
             : kExitCertificationFailed;
}

// Runs one simulated workload through every certification layer (batch,
// online, concurrent) with metrics enabled, then dumps the snapshot —
// stdout by default, --metrics-out FILE otherwise. Exists so a scrape of
// every metric family is one command away.
int CmdStats(const CliOptions& opt) {
  RunOutput out = RunOnce(opt, opt.seed);
  ConflictMode mode = ModeFor(*out.type);

  CertifierReport batch =
      CertifySeriallyCorrect(*out.type, out.sim.trace, mode,
                             CertifyOptions{opt.shards > 0 ? opt.shards : 1});
  IncrementalCertifier cert(*out.type, mode);
  if (opt.batch > 1) {
    cert.IngestTraceBatched(out.sim.trace, opt.batch);
  } else {
    cert.IngestTrace(out.sim.trace);
  }
  ConcurrentIngestConfig config;
  config.num_shards = opt.shards > 0 ? opt.shards : 4;
  config.seed = opt.seed;
  config.batch_max = opt.batch;
  ConcurrentIngestReport pipe =
      ConcurrentIngestPipeline::Run(*out.type, out.sim.trace, mode, config);

  std::cout << "backend=" << BackendName(opt.backend) << " seed=" << opt.seed
            << " events=" << out.sim.trace.size()
            << " batch=" << (batch.status.ok() ? "ok" : "rejected")
            << " online=" << (cert.verdict().ok() ? "ok" : "rejected")
            << " concurrent=" << (pipe.ok() ? "ok" : "rejected") << "\n";

  if (opt.metrics_out.empty()) {
    std::cout << obs::MetricsRegistry::Default().QuantileText()
              << obs::MetricsRegistry::Default().PrometheusText();
    return kExitOk;
  }
  Status st = obs::MetricsRegistry::Default().WriteSnapshot(opt.metrics_out);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitUsage;
  }
  std::cout << "wrote " << opt.metrics_out << "\n";
  return kExitOk;
}

// Open-loop load harness: generates one application workload, schedules its
// actions at the offered rate, and drives the chosen certifier mode(s),
// reporting admission-latency quantiles, the per-epoch timeline, and (with
// --sweep) the saturation throughput. With --certifier all, every generated
// workload must certify with the same verdict across batch / incremental /
// sharded — disagreement exits 3 like certify's cross-checks.
int CmdLoad(const CliOptions& opt) {
  if (opt.objects < 2) {
    std::cerr << "load requires --objects >= 2 (the workload scale)\n";
    return kExitUsage;
  }
  load::WorkloadParams wp;
  wp.workload = opt.workload;
  wp.scale = opt.objects;
  wp.toplevel = opt.toplevel;
  wp.retries = opt.retries;
  wp.seed = opt.seed;
  load::WorkloadInstance wl = load::BuildWorkload(wp);
  std::cout << "workload=" << load::WorkloadName(wp.workload)
            << " seed=" << opt.seed << " events=" << wl.trace.size()
            << " committed=" << wl.stats.toplevel_committed
            << " aborted=" << wl.stats.toplevel_aborted << "\n";

  std::vector<load::CertMode> modes;
  if (opt.cert_all) {
    modes = {load::CertMode::kBatch, load::CertMode::kIncremental,
             load::CertMode::kSharded};
  } else {
    modes = {opt.cert_mode};
  }

  auto base_options = [&](load::CertMode mode) {
    load::LoadOptions lo;
    lo.rate = opt.rate;
    lo.poisson = opt.poisson;
    lo.arrival_seed = opt.seed;  // one schedule shared by every mode
    lo.epochs = opt.epochs;
    lo.mode = mode;
    lo.shards = opt.shards > 0 ? opt.shards : 4;
    lo.gc_interval = opt.gc_interval;
    lo.batch = opt.batch;
    lo.pace = !opt.no_pace;
    return lo;
  };

  if (opt.sweep_rates) {
    bool all_certified = true;
    for (load::CertMode mode : modes) {
      load::SweepOptions so;
      so.base = base_options(mode);
      so.max_steps = opt.sweep_steps;
      so.knee_p99_us = opt.knee_us;
      load::SweepReport sweep;
      Status st = load::RunSaturationSweep(wl, so, &sweep);
      if (!st.ok()) {
        std::cerr << st.ToString() << "\n";
        return kExitUsage;
      }
      std::cout << "sweep " << load::CertModeName(mode) << " (gc="
                << opt.gc_interval << "):\n";
      for (const load::SweepStep& step : sweep.steps) {
        std::cout << "  offered=" << step.offered_rate
                  << " achieved=" << step.achieved_rate
                  << " p50=" << step.p50_us << "us p99=" << step.p99_us
                  << "us" << (step.kneed ? "  <- knee" : "") << "\n";
      }
      std::cout << "  saturation=" << sweep.saturation_rate
                << " actions/s, certified="
                << (sweep.certified ? "yes" : "NO") << "\n";
      all_certified = all_certified && sweep.certified;
    }
    return all_certified ? kExitOk : kExitCertificationFailed;
  }

  bool all_certified = true;
  bool agree = true;
  bool first = true;
  bool first_verdict = false;
  for (load::CertMode mode : modes) {
    load::LoadOptions lo = base_options(mode);
    if (!opt.timeline_out.empty()) {
      // One timeline file per mode under --certifier all, so no mode
      // overwrites another's epochs.
      lo.timeline_path =
          modes.size() == 1
              ? opt.timeline_out
              : opt.timeline_out + "." + load::CertModeName(mode);
      lo.timeline_wallclock = opt.timeline_wallclock;
    }
    load::LoadReport report;
    Status st = load::RunLoad(wl, lo, &report);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return kExitUsage;
    }
    if (!report.timeline_status.ok()) {
      std::cerr << report.timeline_status.ToString() << "\n";
      return kExitUsage;
    }
    std::cout << load::CertModeName(mode) << ": "
              << (report.certified ? "ok" : "REJECTED") << " actions="
              << report.actions << " ops=" << report.ops
              << " vtime=" << report.vtime_end_us << "us achieved="
              << report.achieved_rate << "/s late=" << report.late_arrivals
              << "\n  p50=" << report.p50_us << "us p95=" << report.p95_us
              << "us p99=" << report.p99_us << "us p999=" << report.p999_us
              << "us\n";
    if (opt.gc_interval > 0 && mode != load::CertMode::kBatch) {
      std::cout << "  gc: " << report.gc.retired_families
                << " families retired in " << report.gc.runs
                << " passes, watermark=" << report.gc.last_watermark << "\n";
    }
    if (!lo.timeline_path.empty()) {
      std::cout << "  timeline: " << lo.timeline_path << " ("
                << report.epochs_emitted << " epochs)\n";
    }
    all_certified = all_certified && report.certified;
    if (first) {
      first = false;
      first_verdict = report.certified;
    } else if (report.certified != first_verdict) {
      agree = false;
    }
  }
  if (!agree) {
    std::cout << "DISAGREEMENT between certifier modes\n";
    return kExitMismatch;
  }
  return all_certified ? kExitOk : kExitCertificationFailed;
}

// Certifies a saved behavior and explains the verdict: on rejection, the
// witness cycle is printed with each edge labeled conflict/precedes and the
// inducing action pair, then re-verified against the constructed SG(beta).
int CmdExplain(const CliOptions& opt) {
  SystemType type;
  Trace beta;
  SiblingOrders orders;
  Status st = ReadTraceAnyFormat(opt, opt.trace_file, &type, &beta, &orders);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitTraceCorrupt;
  }
  ConflictMode mode = ModeFor(type);
  std::cout << "loaded " << opt.trace_file << " (" << beta.size()
            << " events)\n";
  CertificationExplanation ex = ExplainCertification(type, beta, mode);
  std::cout << ex.ToString(type);
  return ex.certified() ? kExitOk : kExitCertificationFailed;
}

// Records a run: one simulated workload, streamed through the online
// certifier with tracing on, so the trace holds the full causal story —
// driver steps, activations, edge insertions, the verdict. The file itself
// is written by main's epilogue, shared with --trace-out on other commands.
int CmdTrace(const CliOptions& opt) {
  RunOutput out = RunOnce(opt, opt.seed);
  SetTraceNames(*out.type);
  ConflictMode mode = ModeFor(*out.type);
  IncrementalCertifier cert(*out.type, mode);
  cert.IngestTrace(out.sim.trace);
  IncrementalVerdict v = cert.verdict();
  std::cout << "backend=" << BackendName(opt.backend) << " seed=" << opt.seed
            << " events=" << out.sim.trace.size()
            << " verdict=" << (v.ok() ? "ok" : "rejected")
            << " trace_events=" << obs::TraceRecorder::Default().total_events()
            << "\n";
  return kExitOk;
}

// Checks one saved behavior against the whole isolation spectrum and prints
// the verdict vector; with --online the same trace is streamed through the
// incremental checker and the per-level verdicts must agree. With --mine,
// searches workload/seed space for executions a weaker level accepts but
// SG(beta) rejects, re-verifies every witness, and (with --out) archives
// each hit's replayable trace plus its rendered verdict vector.
int CmdIsolate(const CliOptions& opt) {
  if (opt.mine) {
    MinerOptions mopt;
    mopt.seed = opt.seed;
    mopt.runs = opt.runs;
    mopt.num_threads = opt.shards > 0 ? opt.shards : 1;
    MinerReport report = MineAnomalies(mopt);
    std::cout << "mined " << report.runs << " runs: " << report.hits.size()
              << " hit(s), " << report.gap_hits()
              << " accepted by a weaker level, "
              << report.anomaly_counts.size()
              << " distinct anomaly class(es)\n";
    for (const auto& [anomaly, count] : report.anomaly_counts) {
      std::cout << "  " << anomaly << ": " << count << "\n";
    }
    bool all_verified = true;
    size_t archived = 0;
    for (const MinedHit& hit : report.hits) {
      if (!opt.quiet) {
        std::cout << "hit run=" << hit.run_index << " source=" << hit.source
                  << " first_failing=" << IsoLevelName(hit.first_failing)
                  << " anomaly=" << AnomalyKindName(hit.anomaly)
                  << " witness_verified=" << (hit.witness_verified ? "yes"
                                                                   : "NO")
                  << "\n";
      }
      all_verified = all_verified && hit.witness_verified;
      if (!opt.out_dir.empty()) {
        std::ostringstream stem;
        stem << opt.out_dir << "/hit_" << hit.run_index << "_"
             << AnomalyKindName(hit.anomaly);
        std::ofstream trace_out(stem.str() + ".trace");
        trace_out << hit.trace_text;
        std::ofstream render_out(stem.str() + ".verdict.txt");
        render_out << "source: " << hit.source << "\n" << hit.render_text;
        if (trace_out && render_out) ++archived;
      }
    }
    if (!opt.out_dir.empty()) {
      std::cout << "archived " << archived << " hit(s) under " << opt.out_dir
                << "\n";
    }
    if (!all_verified) {
      std::cout << "MISMATCH: a mined witness failed re-verification\n";
      return kExitMismatch;
    }
    return kExitOk;
  }

  SystemType type;
  Trace beta;
  SiblingOrders orders;
  Status st = ReadTraceAnyFormat(opt, opt.trace_file, &type, &beta, &orders);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitTraceCorrupt;
  }
  ConflictMode mode = ModeFor(type);
  SetTraceNames(type);
  std::cout << "loaded " << opt.trace_file << " (" << beta.size()
            << " events)\n";
  IsoCheckOptions check;
  check.num_threads = opt.shards > 0 ? opt.shards : 1;
  IsoVerdictVector vv = CheckIsolationLevels(type, beta, mode, check);
  std::cout << vv.ToString(type);
  if (opt.online) {
    IncrementalIsoChecker inc(type, mode);
    inc.IngestTrace(beta);
    IsoVerdictVector online = inc.Verdict(check);
    bool agree = true;
    for (size_t i = 0; i < kNumIsoLevels; ++i) {
      agree = agree && online.levels[i].ok == vv.levels[i].ok;
    }
    std::cout << "incremental: " << (agree ? "agrees" : "DISAGREES")
              << " (" << inc.actions_ingested() << " actions ingested)\n";
    if (!agree) return kExitMismatch;
  }
  return vv.AllOk() ? kExitOk : kExitCertificationFailed;
}

// Re-encodes a saved behavior between the text and binary formats. The input
// format is sniffed; the output format defaults to the opposite of the input
// unless --format forces one. After writing, the output is re-read and its
// canonical text rendering compared against the input's — a conversion that
// would change the behavior (and hence any verdict) exits 3.
int CmdConvert(const CliOptions& opt) {
  SystemType type;
  Trace beta;
  SiblingOrders orders;
  Result<bool> is_binary = seg::SniffBinaryTraceFile(opt.trace_file);
  if (!is_binary.ok()) {
    std::cerr << is_binary.status().ToString() << "\n";
    return kExitTraceCorrupt;
  }
  Status st = *is_binary
                  ? seg::ReadBinaryTraceFile(opt.trace_file, &type, &beta,
                                             &orders)
                  : ReadTraceFile(opt.trace_file, &type, &beta, &orders);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return kExitTraceCorrupt;
  }

  TraceFormat out_format =
      opt.format_set ? opt.format
                     : (*is_binary ? TraceFormat::kText : TraceFormat::kBinary);
  Status wst = out_format == TraceFormat::kBinary
                   ? seg::WriteBinaryTraceFile(opt.out_file, type, beta,
                                               orders, opt.codec)
                   : WriteTraceFile(opt.out_file, type, beta, orders);
  if (!wst.ok()) {
    std::cerr << wst.ToString() << "\n";
    return kExitUsage;
  }

  SystemType type2;
  Trace beta2;
  SiblingOrders orders2;
  Status rst = seg::ReadTraceFileAuto(opt.out_file, &type2, &beta2, &orders2);
  if (!rst.ok() ||
      SerializeSystemAndTrace(type, beta, orders) !=
          SerializeSystemAndTrace(type2, beta2, orders2)) {
    std::cerr << "round-trip verification failed: "
              << (rst.ok() ? "re-read behavior differs" : rst.ToString())
              << "\n";
    return kExitMismatch;
  }

  std::cout << "converted " << opt.trace_file << " ("
            << (*is_binary ? "binary" : "text") << ") -> " << opt.out_file
            << " (" << (out_format == TraceFormat::kBinary ? "binary" : "text")
            << ", " << beta.size() << " events, "
            << std::filesystem::file_size(opt.out_file)
            << " bytes, verified)\n";
  return kExitOk;
}

int Dispatch(const CliOptions& opt) {
  if (opt.command == "run") return CmdRun(opt);
  if (opt.command == "convert") return CmdConvert(opt);
  if (opt.command == "audit") return CmdAudit(opt);
  if (opt.command == "certify") return CmdCertify(opt);
  if (opt.command == "chaos") return CmdChaos(opt);
  if (opt.command == "stats") return CmdStats(opt);
  if (opt.command == "explain") return CmdExplain(opt);
  if (opt.command == "trace") return CmdTrace(opt);
  if (opt.command == "isolate") return CmdIsolate(opt);
  if (opt.command == "load") return CmdLoad(opt);
  return CmdSweep(opt);
}

}  // namespace
}  // namespace ntsg

int main(int argc, char** argv) {
  ntsg::CliOptions opt;
  if (!ntsg::ParseArgs(argc, argv, &opt)) return ntsg::Usage();
  if (opt.command == "trace" && opt.trace_out.empty()) {
    std::cerr << "trace requires --trace-out FILE\n";
    return ntsg::kExitUsage;
  }
  if (opt.command == "isolate") {
    if (!opt.mine && opt.trace_file.empty()) {
      std::cerr << "isolate requires a trace file (or --mine)\n";
      return ntsg::kExitUsage;
    }
    // The hit archive fails fast like --metrics-out: a bad --out is a usage
    // error before any mining runs, not a surprise after the search.
    if (!opt.out_dir.empty() && !ntsg::ValidateWritableDir(opt.out_dir)) {
      return ntsg::kExitUsage;
    }
  }
  // Output paths fail fast: a bad --metrics-out / --trace-out is a usage
  // error caught before any work runs, not a surprise afterwards.
  if (!opt.metrics_out.empty() && !ntsg::ValidateWritable(opt.metrics_out)) {
    return ntsg::kExitUsage;
  }
  if (!opt.trace_out.empty() && !ntsg::ValidateWritable(opt.trace_out)) {
    return ntsg::kExitUsage;
  }
  // The timeline's real emitter(s) may write per-mode suffixed paths; the
  // base-path probe still catches a bad directory before any load runs.
  if (!opt.timeline_out.empty() && !ntsg::ValidateWritable(opt.timeline_out)) {
    return ntsg::kExitUsage;
  }
  if (!opt.metrics_out.empty() || opt.command == "stats") {
    // Enable before any work so every instrument in the command records,
    // and register eagerly so the snapshot covers every family (certifier,
    // ingest, fault recovery) even when a layer saw no traffic.
    ntsg::obs::SetMetricsEnabled(true);
    ntsg::obs::RegisterAllMetricFamilies();
  }
  if (!opt.trace_out.empty() || opt.flight_recorder > 0) {
    ntsg::obs::SetTraceEnabled(true);
    if (opt.flight_recorder > 0) {
      ntsg::obs::TraceRecorder::Default().SetRingCapacity(
          opt.flight_recorder);
    }
  }
  int code = ntsg::Dispatch(opt);
  if (!opt.metrics_out.empty() && opt.command != "stats") {
    ntsg::Status st =
        ntsg::obs::MetricsRegistry::Default().WriteSnapshot(opt.metrics_out);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      if (code == ntsg::kExitOk) code = ntsg::kExitUsage;
    }
  }
  if (!opt.trace_out.empty()) {
    ntsg::Status st = ntsg::obs::TraceRecorder::Default().WriteTrace(
        opt.trace_out, ntsg::g_trace_names);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      if (code == ntsg::kExitOk) code = ntsg::kExitUsage;
    } else {
      std::cout << "wrote " << opt.trace_out << " ("
                << ntsg::obs::TraceRecorder::Default().total_events()
                << " events)\n";
    }
  }
  if (opt.flight_recorder > 0 &&
      (code != ntsg::kExitOk || ntsg::g_injected_crash)) {
    std::cerr << "-- flight recorder: last " << opt.flight_recorder
              << " event(s) per thread --\n"
              << ntsg::obs::TraceRecorder::Default().FlightRecorderText(
                     opt.flight_recorder, ntsg::g_trace_names);
  }
  return code;
}
