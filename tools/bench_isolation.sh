#!/usr/bin/env bash
# Regenerates BENCH_isolation.json, the T12 isolation-spectrum perf
# baseline. Runs bench_isolation with repetitions so the document carries
# median aggregates; tools/check_bench_regression.py gates the nightly CI
# job against it with
#
#   tools/check_bench_regression.py BENCH_isolation.json candidate.json \
#     --speedup-naive BM_IsoVectorPerLevel/64 \
#     --speedup-fast  BM_IsoVectorShared/64 --min-speedup 2.0
#
# (the required ratio is the saving from sharing one labeled graph across
# all four levels instead of rebuilding the relations per level).
#
# Usage: tools/bench_isolation.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05)
#   NTSG_BENCH_REPS      repetitions for the medians (default: 5)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
# shellcheck source=tools/bench_common.sh
source tools/bench_common.sh
ntsg_bench_prepare bench_isolation
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_isolation.json}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="$BUILD_DIR/bench/bench_isolation"
if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_isolation (reps=$REPS, min_time=$MIN_TIME)..." >&2
"$bin" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/isolation.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: ((.context | del(.date, .executable))
              + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
    benches: {bench_isolation:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/isolation.json" > "$OUT"
echo "wrote $OUT" >&2
