#!/usr/bin/env python3
"""Perf-regression gate for the SG fast path (EXPERIMENTS.md T10).

Compares a candidate BENCH_sg_fastpath.json (produced by
tools/bench_baseline.sh on the machine under test) against the checked-in
baseline document and fails when

  * any benchmark's median latency regressed by more than --max-regression
    (default 15%) relative to the baseline median, or
  * the naive/fast median ratio on the skewed workload (BM_SgBatchNaive/110
    vs BM_SgBatchFast/110) fell below --min-speedup (default 3.0) in the
    candidate run, or
  * either document was produced from a Debug build of the repo
    (context.repo_build_type, stamped by the bench_*.sh regenerators):
    -O0 medians are meaningless as a perf anchor, so the gate refuses
    rather than comparing them. A debug-built Google Benchmark *library*
    (context.library_build_type) only warns — it biases the harness's
    timer overhead, not the measured code, and is fixed by whatever the
    system package shipped.

Both documents must carry aggregate rows (bench_baseline.sh runs the
fast-path benches with repetitions). Medians are compared after normalizing
time units. Usage:

  tools/check_bench_regression.py BASELINE CANDIDATE [options]
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_medians(doc):
    """Returns {benchmark name -> median real_time in ns} for one document."""
    medians = {}
    for rows in doc.get("benches", {}).values():
        for row in rows:
            if row.get("aggregate_name") != "median":
                continue
            name = row["name"]
            if name.endswith("_median"):
                name = name[: -len("_median")]
            medians[name] = row["real_time"] * _UNIT_NS[row["time_unit"]]
    return medians


def check_build_type(path, doc):
    """Refuses Debug-repo snapshots; warns on a debug timing library.

    Returns an error string for refusal, None when acceptable.
    """
    context = doc.get("context", {})
    repo = context.get("repo_build_type")
    if repo is not None and repo.lower() == "debug":
        return (f"{path}: snapshot was produced from a Debug repo build "
                "(context.repo_build_type) — regenerate with "
                "tools/bench_*.sh, which configure Release")
    if repo is None:
        print(f"warning: {path} carries no repo_build_type stamp (predates "
              "the bench_common.sh guard); cannot verify it was an "
              "optimized build", file=sys.stderr)
    if context.get("library_build_type") == "debug":
        print(f"warning: {path} was timed against a debug-built Google "
              "Benchmark library (context.library_build_type); harness "
              "overhead is inflated — read deltas, not absolutes",
              file=sys.stderr)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed fractional median slowdown (0.15 = 15%%)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required naive/fast median ratio, skewed load")
    parser.add_argument("--speedup-naive", default="BM_SgBatchNaive/110")
    parser.add_argument("--speedup-fast", default="BM_SgBatchFast/110")
    args = parser.parse_args()

    baseline_doc = load_doc(args.baseline)
    candidate_doc = load_doc(args.candidate)
    for path, doc in ((args.baseline, baseline_doc),
                      (args.candidate, candidate_doc)):
        refusal = check_build_type(path, doc)
        if refusal is not None:
            print(f"error: {refusal}", file=sys.stderr)
            return 2

    baseline = load_medians(baseline_doc)
    candidate = load_medians(candidate_doc)
    if not baseline:
        print(f"error: no median rows in {args.baseline}", file=sys.stderr)
        return 2
    if not candidate:
        print(f"error: no median rows in {args.candidate}", file=sys.stderr)
        return 2

    failures = []
    for name, base_ns in sorted(baseline.items()):
        cand_ns = candidate.get(name)
        if cand_ns is None:
            failures.append(f"{name}: present in baseline, missing from "
                            "candidate")
            continue
        ratio = cand_ns / base_ns
        verdict = "OK"
        if ratio > 1.0 + args.max_regression:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: median {cand_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms ({(ratio - 1.0) * 100:+.1f}%, "
                f"allowed +{args.max_regression * 100:.0f}%)")
        print(f"{verdict:>9}  {name}: {cand_ns / 1e6:.3f} ms "
              f"(baseline {base_ns / 1e6:.3f} ms, {(ratio - 1.0) * 100:+.1f}%)")

    naive = candidate.get(args.speedup_naive)
    fast = candidate.get(args.speedup_fast)
    if naive is None or fast is None:
        failures.append(f"speedup rows missing: {args.speedup_naive} and/or "
                        f"{args.speedup_fast}")
    else:
        speedup = naive / fast
        print(f"{'OK' if speedup >= args.min_speedup else 'TOO SLOW':>9}  "
              f"skewed naive/fast speedup: {speedup:.2f}x "
              f"(required >= {args.min_speedup:.1f}x)")
        if speedup < args.min_speedup:
            failures.append(
                f"skewed-workload speedup {speedup:.2f}x is below the "
                f"required {args.min_speedup:.1f}x")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall fast-path perf checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
