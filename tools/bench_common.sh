# Shared build-tree preparation for the tools/bench_*.sh regenerators.
# Source this after cd'ing to the repo root, then call
#
#   ntsg_bench_prepare <bench-target>...
#
# It guarantees the benchmarks run from an optimized build: if the build
# tree is unconfigured or configured Debug, it reconfigures Release and
# rebuilds the requested targets. Timings from a -O0 library build are
# meaningless as baselines — BENCH_*.json snapshots produced before this
# guard existed recorded "library_build_type": "debug" and quietly anchored
# the regression gate to debug numbers.
#
# Exports NTSG_REPO_BUILD_TYPE (the repo's CMAKE_BUILD_TYPE) so the jq
# merge step can stamp it into the snapshot context as repo_build_type;
# tools/check_bench_regression.py refuses documents stamped Debug. Note
# this is distinct from Google Benchmark's own library_build_type field,
# which reports how the *benchmark harness library* was compiled (fixed by
# the system package, debug in some containers) — the checker only warns on
# that one, since it biases the timer overhead, not the measured code.

ntsg_bench_prepare() {
  BUILD_DIR="${BUILD_DIR:-build}"
  local cache="$BUILD_DIR/CMakeCache.txt"
  local build_type=""
  if [[ -f "$cache" ]]; then
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache")"
  fi
  case "$build_type" in
    Release|RelWithDebInfo|MinSizeRel) ;;
    *)
      echo "bench: build tree '$BUILD_DIR' is" \
           "'${build_type:-unconfigured}'; reconfiguring Release" >&2
      cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
      build_type=Release
      ;;
  esac
  if [[ $# -gt 0 ]]; then
    echo "bench: building $* ($build_type)..." >&2
    cmake --build "$BUILD_DIR" -j --target "$@" >/dev/null
  fi
  export NTSG_REPO_BUILD_TYPE="$build_type"
}
