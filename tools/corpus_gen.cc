// corpus_gen — regenerates the golden trace corpus under tests/corpus/.
//
//   corpus_gen <output-dir> [golden-dir] [--binary-dir=DIR]
//
// With --binary-dir=DIR every entry is also written as a binary segment
// twin (<name>.ntsgs); each twin is read back, re-certified, and its
// verdict, edge counts, and graph fingerprint must be byte-identical to the
// text entry's before the generator reports success.
//
// Each corpus entry is a seeded simulator run saved in the ntsg-trace
// format, together with a MANIFEST.tsv line recording the expected
// certification outcome and the canonical serialization-graph fingerprint:
//
//   <file> <mode> <ok|rejected> <conflict-edges> <precedes-edges> <fp-hex>
//
// The hand-built anomaly templates (iso/anomaly_traces.h) are emitted
// alongside as iso_<template>.trace, pinned by ISO_MANIFEST.tsv:
//
//   <file> <mode> <rc> <ra> <si> <ser> <anomaly>     (pass|fail per level)
//
// and, when [golden-dir] is given, each template's rendered verdict vector
// is written there as iso_<template>.verdict.txt for byte-exact comparison.
//
// The corpus pins today's verdicts as goldens: corpus_test replays every
// entry through the batch, incremental, and sharded certifiers and fails on
// any drift. Regenerate (and review the diff!) only when an intentional
// semantic change moves a golden.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "iso/anomaly_traces.h"
#include "iso/checker.h"
#include "sg/certifier.h"
#include "sg/incremental_certifier.h"
#include "sim/driver.h"
#include "tx/segment/segment_reader.h"
#include "tx/trace_io.h"

namespace ntsg {
namespace {

struct CorpusSpec {
  const char* name;
  Backend backend;
  ObjectType object_type;
  uint64_t seed;
  size_t toplevel;
  int depth;
};

// ~20 entries spanning the implemented backends, both conflict modes, deep
// and shallow nesting, and the deliberately broken variants (whose REJECTED
// verdicts are exactly what regression tests must keep rejecting).
const CorpusSpec kSpecs[] = {
    {"moss_small_1", Backend::kMoss, ObjectType::kReadWrite, 1, 4, 2},
    {"moss_small_2", Backend::kMoss, ObjectType::kReadWrite, 2, 4, 2},
    {"moss_wide", Backend::kMoss, ObjectType::kReadWrite, 3, 10, 1},
    {"moss_deep", Backend::kMoss, ObjectType::kReadWrite, 4, 4, 3},
    {"moss_large", Backend::kMoss, ObjectType::kReadWrite, 5, 12, 2},
    {"undo_counter_1", Backend::kUndo, ObjectType::kCounter, 6, 6, 2},
    {"undo_counter_2", Backend::kUndo, ObjectType::kCounter, 7, 6, 2},
    {"undo_set", Backend::kUndo, ObjectType::kSet, 8, 6, 2},
    {"undo_queue", Backend::kUndo, ObjectType::kQueue, 9, 5, 2},
    {"undo_bank", Backend::kUndo, ObjectType::kBankAccount, 10, 6, 2},
    {"mvto_1", Backend::kMvto, ObjectType::kReadWrite, 11, 6, 2},
    {"mvto_2", Backend::kMvto, ObjectType::kReadWrite, 12, 8, 2},
    {"mvto_deep", Backend::kMvto, ObjectType::kReadWrite, 13, 4, 3},
    {"sgt_counter", Backend::kSgt, ObjectType::kCounter, 14, 6, 2},
    {"sgt_rw", Backend::kSgt, ObjectType::kReadWrite, 15, 6, 2},
    {"locking_counter", Backend::kGeneralLocking, ObjectType::kCounter, 16, 6,
     2},
    {"broken_dirty_read_1", Backend::kDirtyReadMoss, ObjectType::kReadWrite,
     17, 8, 2},
    {"broken_dirty_read_2", Backend::kDirtyReadMoss, ObjectType::kReadWrite,
     18, 8, 2},
    {"broken_no_read_lock", Backend::kNoReadLockMoss, ObjectType::kReadWrite,
     19, 8, 2},
    {"broken_no_commute", Backend::kNoCommuteUndo, ObjectType::kCounter, 20,
     8, 2},
    // Seeds hunted so the rejection is specifically a serialization-graph
    // cycle (not just inappropriate return values): these anchor the
    // `ntsg explain` golden tests, which need witness cycles to print.
    {"broken_cycle_counter", Backend::kNoCommuteUndo, ObjectType::kCounter,
     23, 8, 2},
    {"broken_cycle_rw", Backend::kDirtyReadMoss, ObjectType::kReadWrite, 34,
     8, 2},
};

// Writes <name>.ntsgs into binary_dir and proves the twin is faithful: the
// binary file is read back and its decoded system + trace must re-serialize
// to exactly the same text as the original. Byte-equal serializations imply
// identical certification verdicts and fingerprints across formats.
// Alternates the codec per entry so the corpus pins both raw and RLE paths.
int WriteBinaryTwin(const std::string& binary_dir, const std::string& name,
                    const SystemType& type, const Trace& trace,
                    size_t entry_index) {
  seg::Codec codec =
      entry_index % 2 == 0 ? seg::Codec::kRaw : seg::Codec::kRle;
  std::string path = binary_dir + "/" + name + ".ntsgs";
  Status st = seg::WriteBinaryTraceFile(path, type, trace, {}, codec);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }
  SystemType type2;
  Trace trace2;
  SiblingOrders orders2;
  st = seg::ReadBinaryTraceFile(path, &type2, &trace2, &orders2);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: re-read failed: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  if (SerializeSystemAndTrace(type, trace) !=
      SerializeSystemAndTrace(type2, trace2, orders2)) {
    std::fprintf(stderr, "%s: binary twin diverges from text entry\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

int Generate(const std::string& out_dir, const std::string& binary_dir) {
  std::ofstream manifest(out_dir + "/MANIFEST.tsv");
  if (!manifest) {
    std::fprintf(stderr, "cannot write %s/MANIFEST.tsv\n", out_dir.c_str());
    return 1;
  }
  size_t entry_index = 0;
  for (const CorpusSpec& spec : kSpecs) {
    QuickRunParams params;
    params.config.backend = spec.backend;
    params.config.seed = spec.seed;
    params.num_objects = 5;
    params.object_type = spec.object_type;
    params.num_toplevel = spec.toplevel;
    params.gen.depth = spec.depth;
    params.gen.fanout = 3;
    params.gen.read_prob = 0.5;
    QuickRunResult run = QuickRun(params);
    if (!run.sim.stats.completed) {
      std::fprintf(stderr, "%s: run did not complete\n", spec.name);
      return 1;
    }

    ConflictMode mode = spec.object_type == ObjectType::kReadWrite
                            ? ConflictMode::kReadWrite
                            : ConflictMode::kCommutativity;
    CertifierReport batch =
        CertifySeriallyCorrect(*run.type, run.sim.trace, mode);
    IncrementalCertifier cert(*run.type, mode);
    cert.IngestTrace(run.sim.trace);
    if (batch.status.ok() != cert.verdict().ok()) {
      std::fprintf(stderr, "%s: batch and incremental disagree\n", spec.name);
      return 1;
    }

    std::string file = std::string(spec.name) + ".trace";
    Status st = WriteTraceFile(out_dir + "/" + file, *run.type,
                               run.sim.trace);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name, st.ToString().c_str());
      return 1;
    }
    if (!binary_dir.empty()) {
      int rc = WriteBinaryTwin(binary_dir, spec.name, *run.type,
                               run.sim.trace, entry_index++);
      if (rc != 0) return rc;
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(cert.graph_fingerprint()));
    manifest << file << "\t"
             << (mode == ConflictMode::kReadWrite ? "read_write"
                                                  : "commutativity")
             << "\t" << (batch.status.ok() ? "ok" : "rejected") << "\t"
             << cert.conflict_edge_count() << "\t"
             << cert.precedes_edge_count() << "\t" << fp << "\n";
    std::printf("%-22s %s  events=%zu  conflict=%zu precedes=%zu fp=%s\n",
                spec.name, batch.status.ok() ? "ok      " : "rejected",
                run.sim.trace.size(), cert.conflict_edge_count(),
                cert.precedes_edge_count(), fp);
  }
  return 0;
}

// Emits every hand-built anomaly template (salt 0) with its expected
// per-level verdict vector, sanity-checking before pinning: the vector must
// be monotone and every failing level's witness must survive the
// independent re-verification.
int GenerateIso(const std::string& out_dir, const std::string& golden_dir,
                const std::string& binary_dir) {
  std::ofstream manifest(out_dir + "/ISO_MANIFEST.tsv");
  if (!manifest) {
    std::fprintf(stderr, "cannot write %s/ISO_MANIFEST.tsv\n",
                 out_dir.c_str());
    return 1;
  }
  for (size_t i = 0; i < kNumAnomalyTemplates; ++i) {
    AnomalyTemplate t = static_cast<AnomalyTemplate>(i);
    const char* name = AnomalyTemplateName(t);
    BuiltTrace built = BuildAnomalyTrace(t);
    IsoVerdictVector vv = CheckIsolationLevels(*built.type, built.trace,
                                               ConflictMode::kReadWrite);
    if (!vv.Monotone()) {
      std::fprintf(stderr, "iso_%s: verdict vector is not monotone\n", name);
      return 1;
    }
    for (const IsoLevelVerdict& lv : vv.levels) {
      if (!lv.ok && !lv.violation.witness_verified) {
        std::fprintf(stderr, "iso_%s: %s witness failed re-verification\n",
                     name, IsoLevelName(lv.level));
        return 1;
      }
    }

    std::string file = std::string("iso_") + name + ".trace";
    Status st = WriteTraceFile(out_dir + "/" + file, *built.type,
                               built.trace);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), st.ToString().c_str());
      return 1;
    }
    if (!binary_dir.empty()) {
      int rc = WriteBinaryTwin(binary_dir, std::string("iso_") + name,
                               *built.type, built.trace, i);
      if (rc != 0) return rc;
    }
    manifest << file << "\tread_write";
    for (const IsoLevelVerdict& lv : vv.levels) {
      manifest << "\t" << (lv.ok ? "pass" : "fail");
    }
    size_t first = vv.FirstFailing();
    manifest << "\t"
             << (vv.AllOk() ? "none"
                            : AnomalyKindName(vv.levels[first].violation.anomaly))
             << "\n";

    if (!golden_dir.empty()) {
      std::string golden = golden_dir + "/" + "iso_" + name + ".verdict.txt";
      std::ofstream out(golden);
      out << vv.ToString(*built.type);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", golden.c_str());
        return 1;
      }
    }
    std::printf("%-26s %s\n", file.c_str(),
                vv.AllOk()
                    ? "all pass"
                    : AnomalyKindName(vv.levels[first].violation.anomaly));
  }
  return 0;
}

}  // namespace
}  // namespace ntsg

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string binary_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--binary-dir=", 0) == 0) {
      binary_dir = arg.substr(std::string("--binary-dir=").size());
      if (binary_dir.empty()) {
        std::fprintf(stderr, "--binary-dir requires a directory\n");
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty() || positional.size() > 2) {
    std::fprintf(stderr,
                 "usage: corpus_gen <output-dir> [golden-dir] "
                 "[--binary-dir=DIR]\n");
    return 2;
  }
  int rc = ntsg::Generate(positional[0], binary_dir);
  if (rc != 0) return rc;
  return ntsg::GenerateIso(positional[0],
                           positional.size() == 2 ? positional[1] : "",
                           binary_dir);
}
