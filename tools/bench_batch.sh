#!/usr/bin/env bash
# Regenerates BENCH_batch.json, the T15 batched-admission perf baseline:
# the admission-layer rows (BM_Admit*: per-edge Pearce-Kelly vs one
# AddEdgesBatch recompute per batch, under ordered and shuffled edge
# arrival) and the end-to-end certifier/pipeline rows (BM_Ingest*,
# BM_PipelineBatch). tools/check_bench_regression.py gates the nightly CI
# job against it with
#
#   tools/check_bench_regression.py BENCH_batch.json candidate.json \
#     --speedup-naive BM_AdmitPerEdgeShuffled \
#     --speedup-fast  BM_AdmitBatchedShuffled/256 --min-speedup 2.0
#
# (out-of-order arrival is where one-recompute-per-batch wins; on ordered
# arrival and on the end-to-end Zipf trace the rows tie by design — see the
# header comment in bench/bench_batch_admission.cc — and the gate's
# --max-regression bound is what guards those.)
#
# Usage: tools/bench_batch.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05)
#   NTSG_BENCH_REPS      repetitions for the medians (default: 5)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
# shellcheck source=tools/bench_common.sh
source tools/bench_common.sh
ntsg_bench_prepare bench_batch_admission
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_batch.json}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="$BUILD_DIR/bench/bench_batch_admission"
if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_batch_admission (reps=$REPS, min_time=$MIN_TIME)..." >&2
"$bin" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/batch.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: ((.context | del(.date, .executable))
              + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
    benches: {bench_batch_admission:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/batch.json" > "$OUT"
echo "wrote $OUT" >&2
