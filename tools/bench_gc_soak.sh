#!/usr/bin/env bash
# Regenerates BENCH_gc_soak.json, the T11 commit-watermark GC baseline.
#
# Runs the BM_CertifyStream{NoGc,Gc} rows of bench_gc_memory with
# repetitions so the document carries median aggregates; the nightly CI job
# gates a fresh run against the checked-in file with
#
#   tools/check_bench_regression.py BENCH_gc_soak.json candidate.json \
#     --speedup-naive BM_CertifyStreamNoGc/20000 \
#     --speedup-fast  BM_CertifyStreamGc/20000 \
#     --min-speedup 0.9
#
# i.e. collection may cost at most ~10% against the no-GC stream at the
# gated size (in practice the no-GC path is far slower — its live state
# grows superlinearly — so the floor only trips if GC itself regresses).
#
# Usage: tools/bench_gc_soak.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05)
#   NTSG_BENCH_REPS      repetitions for the medians (default: 5)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
# shellcheck source=tools/bench_common.sh
source tools/bench_common.sh
ntsg_bench_prepare bench_gc_memory
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_gc_soak.json}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="$BUILD_DIR/bench/bench_gc_memory"
if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_gc_memory rows (reps=$REPS)..." >&2
"$bin" \
  --benchmark_filter='BM_CertifyStream' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/gc_soak.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: ((.context | del(.date, .executable))
              + {repo_build_type: env.NTSG_REPO_BUILD_TYPE}),
    benches: {bench_gc_memory:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/gc_soak.json" > "$OUT"
echo "wrote $OUT" >&2
