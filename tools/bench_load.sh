#!/usr/bin/env bash
# Regenerates BENCH_load.json, the T14 load-harness perf baseline: per-
# workload admission-latency quantiles (p50/p95/p99 user counters on the
# BM_Load* entries), saturation throughput per workload (BM_Saturation*),
# and the timeline-overhead pair. tools/check_bench_regression.py gates the
# nightly CI job against it with
#
#   tools/check_bench_regression.py BENCH_load.json candidate.json \
#     --speedup-naive BM_LoadTimelineOn/0 \
#     --speedup-fast  BM_LoadTimelineOff/0 --min-speedup 0.8
#
# (the ratio holds timeline streaming within 1/0.8 = 1.25x of a run with
# the timeline off — "within noise" as the acceptance bar words it).
#
# Usage: tools/bench_load.sh [output.json]
#   BUILD_DIR            build tree holding bench/ binaries (default: build)
#   NTSG_BENCH_MIN_TIME  --benchmark_min_time per bench (default: 0.05)
#   NTSG_BENCH_REPS      repetitions for the medians (default: 5)
#
# Numbers are machine- and build-type-specific: regenerate on the reference
# machine when reseeding the baseline, and read deltas, not absolutes.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${NTSG_BENCH_MIN_TIME:-0.05}"
REPS="${NTSG_BENCH_REPS:-5}"
OUT="${1:-BENCH_load.json}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="$BUILD_DIR/bench/bench_load_harness"
if [[ ! -x "$bin" ]]; then
  echo "missing $bin — build the bench targets first" >&2
  exit 1
fi
echo "running bench_load_harness (reps=$REPS, min_time=$MIN_TIME)..." >&2
"$bin" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$workdir/load.json" \
  --benchmark_out_format=json >/dev/null
jq --arg reps "$REPS" \
  '{schema: 1,
    repetitions: ($reps | tonumber),
    context: (.context | del(.date, .executable)),
    benches: {bench_load_harness:
      [.benchmarks[] | del(.family_index, .per_family_instance_index,
                           .run_name, .repetitions, .repetition_index,
                           .threads)]}}' \
  "$workdir/load.json" > "$OUT"
echo "wrote $OUT" >&2
