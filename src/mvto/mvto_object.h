#ifndef NTSG_MVTO_MVTO_OBJECT_H_
#define NTSG_MVTO_MVTO_OBJECT_H_

#include <set>
#include <vector>

#include "generic/generic_object.h"
#include "mvto/timestamp_authority.h"

namespace ntsg {

/// Multiversion timestamp-ordering object for read/write registers — the
/// kind of algorithm the paper's conclusion says its correctness definition
/// covers *directly*, where the classical theory needs redefinition. An
/// extension validated empirically by the exact witness checker.
///
/// Serialization target: the timestamp sibling order of the shared
/// TimestampAuthority (creation-request order per parent). Semantics:
///
///   * a write stores a new *version* tagged with its access; versions of
///     different writers coexist (no write/write blocking);
///   * a read with timestamp ts returns the latest version below ts whose
///     writer is locally visible (committed up to the lca — no dirty
///     reads), and *waits* while a responded-but-not-yet-visible write sits
///     between that candidate and ts (its fate decides what the read must
///     see);
///   * a write is *too late* — permanently blocked, so the driver's stall
///     resolution aborts its transaction, and the retry incarnation gets a
///     fresh, later timestamp — if some recorded read above its timestamp
///     already read an older version;
///   * INFORM_ABORT discards versions and reads of the aborted subtree;
///     INFORM_COMMIT feeds the local visibility set.
///
/// Because reads deliberately return *old* values, behaviors of this object
/// are serially correct while failing the paper's sufficient condition: the
/// response-order conflict relation can be cyclic and reads are not
/// "current". The tests exhibit exactly that: the Theorem 8 certifier
/// rejects, the witness built on the timestamp order validates.
class MvtoObject : public GenericObject {
 public:
  MvtoObject(const SystemType& type, ObjectId x,
             TimestampAuthority* authority);

  std::string name() const override {
    return "MV_" + type_.object_name(x_);
  }

  std::vector<Action> EnabledOutputs() const override;

  size_t version_count() const { return versions_.size() + 1; }

 protected:
  void OnCreate(TxName) override {}
  void OnInformCommit(TxName t) override;
  void OnInformAbort(TxName t) override;
  void OnRequestCommit(TxName access, const Value& v) override;

 private:
  struct Version {
    TxName writer;  // Write access that produced it.
    int64_t value;
  };
  struct ReadRecord {
    TxName reader;          // Read access.
    TxName version_writer;  // kInvalidTx when the initial value was read.
  };

  /// Timestamp order between two recorded accesses (-1: a before b).
  int Ts(TxName a, TxName b) const { return authority_->Compare(a, b); }

  bool IsLocallyVisible(TxName t_prime, TxName t) const;

  /// The version a read should observe now, if it may proceed: the latest
  /// locally visible version below the reader. Returns false when the read
  /// must wait (a responded non-visible write sits in between).
  bool ReadCandidate(TxName reader, const Version** out) const;

  /// True when `writer` would arrive too late: some recorded read above it
  /// observed a version below it.
  bool WriteTooLate(TxName writer) const;

  TimestampAuthority* authority_;
  std::set<TxName> committed_;
  std::vector<Version> versions_;  // Excludes the initial value.
  std::vector<ReadRecord> reads_;
};

}  // namespace ntsg

#endif  // NTSG_MVTO_MVTO_OBJECT_H_
