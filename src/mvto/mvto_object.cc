#include "mvto/mvto_object.h"

#include "common/logging.h"

namespace ntsg {

MvtoObject::MvtoObject(const SystemType& type, ObjectId x,
                       TimestampAuthority* authority)
    : GenericObject(type, x), authority_(authority) {
  NTSG_CHECK(type.object_type(x) == ObjectType::kReadWrite)
      << "MVTO object requires a read/write register";
  NTSG_CHECK(authority != nullptr);
}

bool MvtoObject::IsLocallyVisible(TxName t_prime, TxName t) const {
  TxName lca = type_.Lca(t_prime, t);
  for (TxName u = t_prime; u != lca; u = type_.parent(u)) {
    if (!committed_.count(u)) return false;
  }
  return true;
}

bool MvtoObject::ReadCandidate(TxName reader, const Version** out) const {
  const Version* candidate = nullptr;  // nullptr = the initial value.
  for (const Version& v : versions_) {
    if (Ts(v.writer, reader) > 0) continue;          // Above the reader.
    if (!IsLocallyVisible(v.writer, reader)) continue;
    if (candidate == nullptr || Ts(candidate->writer, v.writer) < 0) {
      candidate = &v;
    }
  }
  // Wait while a responded-but-not-visible write sits between the candidate
  // and the reader: its commit/abort decides what the read must observe.
  for (const Version& v : versions_) {
    if (Ts(v.writer, reader) > 0) continue;
    if (IsLocallyVisible(v.writer, reader)) continue;
    if (candidate == nullptr || Ts(candidate->writer, v.writer) < 0) {
      return false;
    }
  }
  *out = candidate;
  return true;
}

bool MvtoObject::WriteTooLate(TxName writer) const {
  for (const ReadRecord& r : reads_) {
    if (Ts(writer, r.reader) > 0) continue;  // Read below the writer.
    // The read is above the writer; it is too late iff the read observed a
    // version strictly below the writer.
    if (r.version_writer == kInvalidTx || Ts(r.version_writer, writer) < 0) {
      return true;
    }
  }
  return false;
}

std::vector<Action> MvtoObject::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : pending()) {
    const AccessSpec& acc = type_.access(t);
    if (acc.op == OpCode::kRead) {
      const Version* v = nullptr;
      if (ReadCandidate(t, &v)) {
        int64_t value = v == nullptr ? type_.object_initial(x_) : v->value;
        out.push_back(Action::RequestCommit(t, Value::Int(value)));
      }
    } else {
      if (!WriteTooLate(t)) {
        out.push_back(Action::RequestCommit(t, Value::Ok()));
      }
    }
  }
  return out;
}

void MvtoObject::OnRequestCommit(TxName access, const Value& v) {
  const AccessSpec& acc = type_.access(access);
  if (acc.op == OpCode::kRead) {
    const Version* candidate = nullptr;
    NTSG_CHECK(ReadCandidate(access, &candidate))
        << name() << ": read scheduled while blocked";
    int64_t value =
        candidate == nullptr ? type_.object_initial(x_) : candidate->value;
    NTSG_CHECK(Value::Int(value) == v)
        << name() << ": scheduled read diverges from candidate version";
    reads_.push_back(ReadRecord{
        access, candidate == nullptr ? kInvalidTx : candidate->writer});
  } else {
    NTSG_CHECK(!WriteTooLate(access));
    versions_.push_back(Version{access, acc.arg});
  }
}

void MvtoObject::OnInformCommit(TxName t) { committed_.insert(t); }

void MvtoObject::OnInformAbort(TxName t) {
  for (auto it = versions_.begin(); it != versions_.end();) {
    if (type_.IsAncestor(t, it->writer)) {
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = reads_.begin(); it != reads_.end();) {
    if (type_.IsAncestor(t, it->reader)) {
      it = reads_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ntsg
