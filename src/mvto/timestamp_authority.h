#ifndef NTSG_MVTO_TIMESTAMP_AUTHORITY_H_
#define NTSG_MVTO_TIMESTAMP_AUTHORITY_H_

#include <map>
#include <vector>

#include "tx/system_type.h"

namespace ntsg {

/// Assigns every transaction a per-parent sequence number at
/// REQUEST_CREATE time, defining the *timestamp sibling order* the
/// multiversion scheduler serializes against: siblings are ordered by
/// creation request, and two arbitrary transactions compare by the
/// sequence numbers of their ancestors under the least common ancestor —
/// exactly the R_trans extension of a sibling order (Section 2.3.2).
///
/// Retried incarnations are fresh names and get fresh (later) numbers.
class TimestampAuthority {
 public:
  explicit TimestampAuthority(const SystemType& type) : type_(type) {}

  /// Records the creation request of `t`; idempotent.
  void OnRequestCreate(TxName t);

  bool HasTimestamp(TxName t) const { return seq_.count(t) != 0; }

  /// Sequence number of `t` among its siblings; t must be recorded.
  uint64_t SequenceOf(TxName t) const { return seq_.at(t); }

  /// Timestamp order on arbitrary distinct transactions, neither an
  /// ancestor of the other: -1 if a's chain precedes b's, +1 otherwise.
  /// Both chains' children-under-lca must be recorded.
  int Compare(TxName a, TxName b) const;

  /// Per-parent creation orders — a total sibling order suitable for
  /// BuildAndCheckWitness.
  std::map<TxName, std::vector<TxName>> CreationOrders() const;

 private:
  const SystemType& type_;
  std::map<TxName, uint64_t> seq_;
  std::map<TxName, uint64_t> next_seq_;  // Per parent.
};

}  // namespace ntsg

#endif  // NTSG_MVTO_TIMESTAMP_AUTHORITY_H_
