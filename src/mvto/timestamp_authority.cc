#include "mvto/timestamp_authority.h"

#include <algorithm>

#include "common/logging.h"

namespace ntsg {

void TimestampAuthority::OnRequestCreate(TxName t) {
  if (seq_.count(t)) return;
  TxName p = type_.parent(t);
  seq_[t] = next_seq_[p]++;
}

int TimestampAuthority::Compare(TxName a, TxName b) const {
  NTSG_CHECK_NE(a, b);
  TxName lca = type_.Lca(a, b);
  NTSG_CHECK(lca != a && lca != b)
      << "timestamp order undefined for ancestor/descendant pairs";
  TxName ca = type_.ChildToward(lca, a);
  TxName cb = type_.ChildToward(lca, b);
  uint64_t sa = seq_.at(ca), sb = seq_.at(cb);
  NTSG_CHECK_NE(sa, sb);
  return sa < sb ? -1 : 1;
}

std::map<TxName, std::vector<TxName>> TimestampAuthority::CreationOrders()
    const {
  std::map<TxName, std::vector<std::pair<uint64_t, TxName>>> grouped;
  for (const auto& [t, s] : seq_) {
    grouped[type_.parent(t)].push_back({s, t});
  }
  std::map<TxName, std::vector<TxName>> orders;
  for (auto& [p, children] : grouped) {
    std::sort(children.begin(), children.end());
    for (const auto& seq_and_child : children) {
      orders[p].push_back(seq_and_child.second);
    }
  }
  return orders;
}

}  // namespace ntsg
