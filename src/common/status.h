#ifndef NTSG_COMMON_STATUS_H_
#define NTSG_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace ntsg {

/// Error handling in the RocksDB style: library entry points that can fail
/// return a `Status` (or a `Result<T>`), never throw.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kCorruption,        // A trace/behavior violates well-formedness.
    kVerificationFailed,  // A correctness check rejected an execution.
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(Code::kVerificationFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error union, analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define NTSG_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::ntsg::Status ntsg_status_tmp_ = (expr);       \
    if (!ntsg_status_tmp_.ok()) return ntsg_status_tmp_; \
  } while (0)

}  // namespace ntsg

#endif  // NTSG_COMMON_STATUS_H_
