#ifndef NTSG_COMMON_STRICT_PARSE_H_
#define NTSG_COMMON_STRICT_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

namespace ntsg {

/// Strict numeric token parsing. The `strtoll(s, nullptr, 10)` idiom this
/// replaces silently turns "abc" into 0 and "12xyz" into 12; these helpers
/// only succeed when the *entire* token is a single in-range base-10 number:
/// no leading whitespace, no trailing junk, no embedded NUL, no wrapping of
/// negatives into unsigned, and ERANGE is a failure rather than a clamp.

inline bool StrictParseInt64(const std::string& s, int64_t* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

inline bool StrictParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])) ||
      s[0] == '-') {  // strtoull wraps negatives instead of failing
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

inline bool StrictParseUint32(const std::string& s, uint32_t* out) {
  uint64_t v;
  if (!StrictParseUint64(s, &v) ||
      v > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

inline bool StrictParseInt(const std::string& s, int* out) {
  int64_t v;
  if (!StrictParseInt64(s, &v) || v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

inline bool StrictParseDouble(const std::string& s, double* out) {
  if (s.empty() || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  // "nan" and "inf" are valid strtod tokens but nonsense as flag values,
  // and NaN defeats range checks like `v <= 0` downstream.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace ntsg

#endif  // NTSG_COMMON_STRICT_PARSE_H_
