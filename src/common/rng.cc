#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ntsg {

namespace {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  NTSG_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  NTSG_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // Full range.
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  NTSG_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace ntsg
