#ifndef NTSG_COMMON_LOGGING_H_
#define NTSG_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ntsg {

/// Severity levels for the minimal logger. `kFatal` aborts the process after
/// emitting the message; it is reserved for violated internal invariants
/// (never for data-dependent failures, which use Status).
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are discarded. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style message collector used by the NTSG_LOG macro. The message is
/// emitted (and, for kFatal, the process aborted) in the destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets the ternary in NTSG_LOG bind an ostream expression into a void one;
/// `&` binds more loosely than `<<`, so the whole streamed chain is consumed.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define NTSG_LOG(level)                                                    \
  (::ntsg::LogLevel::k##level < ::ntsg::GetLogLevel() &&                   \
   ::ntsg::LogLevel::k##level != ::ntsg::LogLevel::kFatal)                 \
      ? (void)0                                                            \
      : ::ntsg::internal_logging::LogMessageVoidify() &                    \
            ::ntsg::internal_logging::LogMessage(                          \
                ::ntsg::LogLevel::k##level, __FILE__, __LINE__)            \
                .stream()

/// CHECK-style assertion: always on (also in release builds); aborts with a
/// message when the condition is false. Use for internal invariants only.
#define NTSG_CHECK(cond)                                                     \
  while (!(cond))                                                            \
  ::ntsg::internal_logging::LogMessage(::ntsg::LogLevel::kFatal, __FILE__,   \
                                       __LINE__)                             \
      .stream()                                                              \
      << "Check failed: " #cond " "

#define NTSG_CHECK_EQ(a, b) NTSG_CHECK((a) == (b))
#define NTSG_CHECK_NE(a, b) NTSG_CHECK((a) != (b))
#define NTSG_CHECK_LT(a, b) NTSG_CHECK((a) < (b))
#define NTSG_CHECK_LE(a, b) NTSG_CHECK((a) <= (b))
#define NTSG_CHECK_GT(a, b) NTSG_CHECK((a) > (b))
#define NTSG_CHECK_GE(a, b) NTSG_CHECK((a) >= (b))

}  // namespace ntsg

#endif  // NTSG_COMMON_LOGGING_H_
