#ifndef NTSG_COMMON_RNG_H_
#define NTSG_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ntsg {

/// Deterministic pseudo-random number generator (xoshiro256**) seeded via
/// SplitMix64. Every randomized component in the library takes an explicit
/// seed so that simulations, workloads, and schedulers are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Derives an independent child generator; used to give each component of
  /// a simulation its own stream so that adding draws in one component does
  /// not perturb another.
  Rng Fork();

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over {0, ..., n-1}: rank r is drawn with probability
/// proportional to 1/(r+1)^s. s = 0 is uniform. Used to model skewed object
/// popularity in workloads. Precomputes the CDF, so construction is O(n) and
/// each sample is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ntsg

#endif  // NTSG_COMMON_RNG_H_
