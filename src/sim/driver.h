#ifndef NTSG_SIM_DRIVER_H_
#define NTSG_SIM_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "ioa/composition.h"
#include "sim/program.h"
#include "sim/scripted.h"
#include "tx/trace.h"

namespace ntsg {

/// Which generic object automaton implements each object.
enum class Backend : uint8_t {
  kMoss,               // M1_X (Section 5.2). Read/write objects only.
  kDirtyReadMoss,      // Broken: reads ignore write locks.
  kNoReadLockMoss,     // Broken: reads take no read lock.
  kIgnoreReadersMoss,  // Broken: writes ignore read locks.
  kUndo,               // U_X (Section 6.2). Any data type.
  kNoCommuteUndo,      // Broken: skips the commutativity precondition.
  kSgt,                // Online SGT scheduler (extension). Any data type.
  kGeneralLocking,     // Read/update locking M_X (footnote 8). Any data type.
  kMvto,               // Multiversion timestamp ordering (extension).
                       // Read/write objects only.
};

const char* BackendName(Backend backend);

/// True for the deliberately faulty variants.
bool IsBrokenBackend(Backend backend);

/// Which transaction the driver aborts to clear a stall (deadlock): the
/// whole top-level ancestor of a blocked access (classic, coarse), or the
/// blocked access's nearest live enclosing transaction (fine-grained — the
/// partial rollback that nesting is for).
enum class StallPolicy : uint8_t {
  kAbortTopLevel,
  kAbortInnermost,
};

struct SimConfig {
  uint64_t seed = 1;
  Backend backend = Backend::kMoss;
  StallPolicy stall_policy = StallPolicy::kAbortTopLevel;
  /// Hard step bound (safety net; normal runs quiesce well below it).
  size_t max_steps = 2'000'000;
  /// Probability per executed step of scheduling a spontaneous abort of a
  /// random live transaction (failure injection).
  double spontaneous_abort_prob = 0.0;
  /// Bound on deadlock/stall-resolution aborts before giving up.
  size_t max_stall_aborts = 100'000;
  /// kUndo only: fold fully-committed log prefixes into a base state
  /// (ablation A3; semantics identical either way).
  bool undo_log_compaction = true;
  /// Deterministic fault schedule (null = off). The driver interprets
  /// kInjectAbort events (tick = simulation step; the controller aborts a
  /// live transaction picked by the event's param), and hands kSpuriousReject
  /// events to the SGT coordinator when that backend is active. Unlike
  /// spontaneous_abort_prob, the same plan replays the same aborts.
  const FaultPlan* fault_plan = nullptr;
};

struct SimStats {
  size_t steps = 0;
  size_t access_responses = 0;
  size_t commits = 0;
  size_t aborts = 0;
  size_t toplevel_committed = 0;
  size_t toplevel_aborted = 0;
  size_t stall_aborts_injected = 0;
  size_t random_aborts_injected = 0;
  /// Aborts delivered from SimConfig::fault_plan (kInjectAbort events).
  size_t plan_aborts_injected = 0;
  /// Admission checks the SGT coordinator failed on purpose
  /// (kSpuriousReject events).
  size_t spurious_rejects_injected = 0;
  /// True when the run quiesced with no live work left (as opposed to
  /// hitting max_steps or the stall-abort budget).
  bool completed = false;
};

struct SimResult {
  Trace trace;
  SimStats stats;
};

/// Builds and runs one generic (or SGT) nested-transaction system over the
/// given workload: a root program whose children become the top-level
/// transactions. Owns the composition, the program tree, and the registry.
class Simulation {
 public:
  /// `type` must outlive the simulation and contain the objects the
  /// programs reference; names are minted into it as the run unfolds.
  /// `root` must be a composite node (typically MakePar of the top-level
  /// transaction programs, with child_retries as desired).
  Simulation(SystemType* type, std::unique_ptr<ProgramNode> root);

  /// Out-of-line: members hold forward-declared types.
  ~Simulation();

  SimResult Run(const SimConfig& config);

 private:
  /// Picks a stall victim per the configured policy; kInvalidTx if no live
  /// pending access exists.
  TxName PickStallVictim(Rng& rng, StallPolicy policy) const;

  /// Component indices participating in `a`, derived from the generic
  /// system's fixed signature structure (controller + per-object automata +
  /// per-transaction scripts); lets the hot loop use ExecuteRouted instead
  /// of scanning every automaton.
  void RouteAction(const Action& a, std::vector<size_t>* participants) const;

  SystemType* type_;
  std::unique_ptr<ProgramNode> root_;
  ProgramRegistry registry_;
  Composition composition_;
  class GenericController* controller_ = nullptr;
  std::vector<class GenericObject*> objects_;
  /// Component index of the ScriptedTransaction for each non-access name
  /// (kInvalidIndex when none yet).
  std::vector<size_t> scripted_index_;
  std::unique_ptr<class SgtCoordinator> coordinator_;
  std::unique_ptr<class TimestampAuthority> authority_;

 public:
  /// Timestamp authority of a kMvto run (null otherwise); exposes the
  /// serialization order the multiversion backend targets, e.g. to hand to
  /// BuildAndCheckWitness.
  const class TimestampAuthority* authority() const { return authority_.get(); }
};

/// Convenience: builds the system type's objects, generates `num_toplevel`
/// random programs, runs the simulation, and returns the result. Used by
/// benches and property tests.
struct QuickRunParams {
  size_t num_objects = 4;
  ObjectType object_type = ObjectType::kReadWrite;
  int64_t initial_value = 0;
  size_t num_toplevel = 8;
  int toplevel_retries = 2;
  ProgramGenParams gen;
  SimConfig config;
};

struct QuickRunResult {
  std::unique_ptr<SystemType> type;
  SimResult sim;
};

QuickRunResult QuickRun(const QuickRunParams& params);

}  // namespace ntsg

#endif  // NTSG_SIM_DRIVER_H_
