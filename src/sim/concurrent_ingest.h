#ifndef NTSG_SIM_CONCURRENT_INGEST_H_
#define NTSG_SIM_CONCURRENT_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sg/incremental_certifier.h"
#include "tx/trace.h"

namespace ntsg {

struct ConcurrentIngestConfig {
  /// Worker threads; every object is pinned to one shard, so all of an
  /// object's operations are processed by a single thread (lock-free
  /// per-object state).
  size_t num_shards = 4;
  /// Mutex stripes guarding the shared serialization graph. Sibling edges
  /// stay inside one parent's component, and a parent maps to one stripe,
  /// so concurrent insertions into different stripes never touch the same
  /// component.
  size_t num_stripes = 16;
  /// Permutes the object -> shard assignment. The final verdict is
  /// independent of the seed and of thread scheduling (edge sets and
  /// per-object legality are order-independent); the seed varies the
  /// interleavings a stress run explores.
  uint64_t seed = 1;
  /// Bound on queued operations per shard (producer backpressure).
  size_t queue_capacity = 4096;
};

struct ConcurrentIngestReport {
  bool appropriate = true;
  bool acyclic = true;
  size_t conflict_edge_count = 0;
  size_t precedes_edge_count = 0;
  size_t actions_ingested = 0;
  size_t ops_routed = 0;

  bool ok() const { return appropriate && acyclic; }
};

/// Concurrent front end for the online certifier: a sequential router
/// (the Ingest caller) performs the inherently ordered work — commit/abort
/// bookkeeping, visibility activation, precedes scoping — and fans the
/// expensive per-object work (conflict discovery, serial-spec replay) out to
/// sharded worker threads over bounded queues. Discovered sibling edges are
/// inserted into per-stripe Pearce–Kelly graphs under a striped mutex
/// scheme.
///
/// The verdict over a full behavior equals CertifySeriallyCorrect's two
/// conditions on it, deterministically: per-object operation order is fixed
/// by the router (one shard per object, FIFO queues), and acyclicity of the
/// final edge set does not depend on insertion interleaving.
class ConcurrentIngestPipeline {
 public:
  ConcurrentIngestPipeline(const SystemType& type, ConflictMode mode,
                           const ConcurrentIngestConfig& config);

  /// Joins workers if Finish was never called.
  ~ConcurrentIngestPipeline();

  /// Feeds the next action, in trace order. Must not be called after
  /// Finish.
  void Ingest(const Action& a);

  /// Drains the queues, joins the workers, and aggregates the verdict.
  ConcurrentIngestReport Finish();

  /// Convenience: pipe `beta` through a fresh pipeline.
  static ConcurrentIngestReport Run(const SystemType& type, const Trace& beta,
                                    ConflictMode mode,
                                    const ConcurrentIngestConfig& config);

 private:
  struct WorkItem {
    uint64_t pos;
    TxName tx;
    Value value;
  };

  /// Bounded MPSC queue feeding one shard worker.
  struct ShardQueue {
    std::mutex mu;
    std::condition_variable can_push;
    std::condition_variable can_pop;
    std::deque<WorkItem> items;
    bool closed = false;
  };

  /// One stripe of the shared graph: components whose parent hashes here.
  struct Stripe {
    std::mutex mu;
    IncrementalTopoGraph graph;
    std::set<SiblingEdge> conflict_edges;
    std::set<SiblingEdge> precedes_edges;
  };

  struct Shard {
    std::unique_ptr<ShardQueue> queue;
    std::thread worker;
    /// Owned by the worker thread (and read after join in Finish).
    std::unordered_map<ObjectId, std::unique_ptr<ObjectIngestState>> objects;
    size_t ops_processed = 0;
  };

  size_t ShardOf(ObjectId x) const;
  size_t StripeOf(TxName parent) const;
  void Push(size_t shard, WorkItem item);
  void WorkerLoop(size_t shard_index);
  /// Inserts a sibling edge into its stripe; kind selects the dedup set.
  void InsertEdge(const SiblingEdge& e, bool is_conflict);
  void ScopeEvent(TxName parent, bool is_report, TxName child);
  void ActivateScope(TxName parent);

  const SystemType& type_;
  const ConflictMode mode_;
  const ConcurrentIngestConfig config_;

  // Router state (touched only by the Ingest caller).
  VisibilityTracker tracker_;
  struct ParentScope {
    bool registered = false;
    bool visible = false;
    std::vector<TxName> reported;
    std::vector<std::pair<bool, TxName>> buffer;
  };
  std::unordered_map<TxName, ParentScope> scopes_;
  uint64_t pos_ = 0;
  size_t ops_routed_ = 0;
  bool finished_ = false;

  // Shared state.
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<bool> acyclic_{true};
};

}  // namespace ntsg

#endif  // NTSG_SIM_CONCURRENT_INGEST_H_
