#ifndef NTSG_SIM_CONCURRENT_INGEST_H_
#define NTSG_SIM_CONCURRENT_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sg/gc_watermark.h"
#include "sg/incremental_certifier.h"
#include "tx/segment/trace_store.h"
#include "tx/trace.h"

namespace ntsg {

struct ConcurrentIngestConfig {
  /// Worker threads; every object is pinned to one shard, so all of an
  /// object's operations are processed by a single thread (lock-free
  /// per-object state).
  size_t num_shards = 4;
  /// Mutex stripes guarding the shared serialization graph. Sibling edges
  /// stay inside one parent's component, and a parent maps to one stripe,
  /// so concurrent insertions into different stripes never touch the same
  /// component.
  size_t num_stripes = 16;
  /// Permutes the object -> shard assignment. The final verdict is
  /// independent of the seed and of thread scheduling (edge sets and
  /// per-object legality are order-independent); the seed varies the
  /// interleavings a stress run explores.
  uint64_t seed = 1;
  /// Bound on queued operations per shard (producer backpressure).
  size_t queue_capacity = 4096;
  /// >1 enables batched admission in the workers: a worker drains up to
  /// this many *consecutive* kOp items per queue pass and commits their
  /// discovered edges per stripe with one batched reorder
  /// (IncrementalTopoGraph::AddEdgesBatch) instead of one Pearce–Kelly pass
  /// per edge, replaying per-edge when a batch would close a cycle. Control
  /// items (crash, snapshot, GC sync/prune) always break a run, so a batch
  /// never spans a GC barrier or a fault boundary. 0 or 1 = per-event. The
  /// final verdict and fingerprint are batching-independent (edge sets are
  /// monotone and acyclicity of the final set is order-independent).
  size_t batch_max = 0;

  /// Fault injection. Null disables every hook at the cost of one branch
  /// per site (measured <2% end to end by bench_fault_overhead). Non-null
  /// enables the chaos machinery: worker crash/recovery, delivery
  /// delay/reorder/duplication, worker snapshots — all scheduled by the
  /// plan, all required to leave the verdict and the graph fingerprint
  /// byte-identical to the fault-free run.
  const FaultPlan* fault_plan = nullptr;
  /// Bound on restart attempts for a crashed worker before giving up.
  size_t max_restart_attempts = 8;
  /// Base of the exponential backoff between failed restart attempts, in
  /// microseconds (attempt k sleeps base << k).
  uint64_t restart_backoff_us = 1;

  /// Nonzero enables commit-watermark GC: every `gc_interval` actions the
  /// router retires sealed top-level families under the same watermark +
  /// predecessor-closure rule as IncrementalCertifier::RunGc (DESIGN.md
  /// §10), after a sync barrier that quiesces the shard queues. The
  /// fault-free retirement schedule — and therefore the live-scope
  /// fingerprint — is identical to a solo certifier's at the same interval;
  /// under faults, delivery holdbacks lower the watermark, never raise it.
  size_t gc_interval = 0;

  /// Non-empty enables the segment write-ahead log: the router appends every
  /// ingested action to a TraceStore under this directory *before* routing
  /// it, so a crash of the whole pipeline loses at most the unsealed tail
  /// (and even that is scanned best-effort on reopen). Appends are
  /// router-side only — worker crashes and delivery faults never cost
  /// logged actions. When GC is also on, sealed segments whose families
  /// have all been retired are unlinked at each retirement pass.
  std::string wal_dir;
  /// Actions per WAL segment before the router seals it and rolls.
  uint64_t wal_segment_actions = 4096;

  /// Optional admission-latency hook: non-null makes the router record each
  /// Ingest call's duration (microseconds) into this caller-owned histogram
  /// — router-side service time including the WAL append, fault polling,
  /// visibility work, and any backpressure wait on a full shard queue.
  /// Recording uses Histogram::ObserveAlways (the measurement is the
  /// caller's product, e.g. the load harness's admission quantiles, not
  /// background telemetry) and, like every instrument, never feeds back
  /// into the verdict.
  obs::Histogram* admission_latency = nullptr;
};

struct ConcurrentIngestReport {
  bool appropriate = true;
  bool acyclic = true;
  size_t conflict_edge_count = 0;
  size_t precedes_edge_count = 0;
  size_t actions_ingested = 0;
  size_t ops_routed = 0;
  /// Canonical fingerprint of the final conflict ∪ precedes edge sets (see
  /// sg/fingerprint.h); equal to IncrementalCertifier::graph_fingerprint()
  /// on the same behavior, faults or no faults.
  uint64_t graph_fingerprint = 0;
  /// Faults actually delivered (all zero when fault_plan is null).
  FaultStats faults;
  /// Watermark-GC activity (all zero when gc_interval is 0).
  GcStats gc;
  /// Families retired by GC over the run, sorted. Feeds
  /// IncrementalCertifier::FingerprintLiveScope when a test compares this
  /// pipeline's pruned fingerprint against an unpruned reference.
  std::vector<TxName> retired_roots;
  /// Write-ahead-log activity (all zero / Ok when wal_dir is empty). A
  /// non-Ok wal_status means the log on disk is not trustworthy even though
  /// the in-memory verdict is.
  uint64_t wal_appended = 0;
  uint64_t wal_segments_sealed = 0;
  uint64_t wal_segments_dropped = 0;
  Status wal_status;

  bool ok() const { return appropriate && acyclic; }
};

/// Concurrent front end for the online certifier: a sequential router
/// (the Ingest caller) performs the inherently ordered work — commit/abort
/// bookkeeping, visibility activation, precedes scoping — and fans the
/// expensive per-object work (conflict discovery, serial-spec replay) out to
/// sharded worker threads over bounded queues. Discovered sibling edges are
/// inserted into per-stripe Pearce–Kelly graphs under a striped mutex
/// scheme.
///
/// The verdict over a full behavior equals CertifySeriallyCorrect's two
/// conditions on it, deterministically: per-object operation sequences are
/// keyed by trace position (so late, reordered, or duplicated deliveries
/// land in the same order), and acyclicity of the final edge set does not
/// depend on insertion interleaving.
///
/// Fault tolerance (active only with a FaultPlan): each shard retains a
/// delivery log since its last snapshot. A crashed worker loses its
/// volatile per-object state; the router restarts it with bounded
/// exponential-backoff retry, and recovery restores the snapshot and
/// replays the log — re-emitted edges are absorbed by the per-stripe dedup
/// sets, so recovery is idempotent and costs O(log suffix), not a full
/// re-ingest.
class ConcurrentIngestPipeline {
 public:
  ConcurrentIngestPipeline(const SystemType& type, ConflictMode mode,
                           const ConcurrentIngestConfig& config);

  /// Joins workers if Finish was never called.
  ~ConcurrentIngestPipeline();

  /// Feeds the next action, in trace order. Must not be called after
  /// Finish.
  void Ingest(const Action& a);

  /// Drains the queues, joins the workers (recovering any crashed shard),
  /// and aggregates the verdict.
  ConcurrentIngestReport Finish();

  /// Convenience: pipe `beta` through a fresh pipeline.
  static ConcurrentIngestReport Run(const SystemType& type, const Trace& beta,
                                    ConflictMode mode,
                                    const ConcurrentIngestConfig& config);

  /// Watermark-GC progress so far. Router-owned counters: read between
  /// Ingest calls on the ingesting thread (the load harness's per-epoch
  /// timeline), not concurrently with one.
  const GcStats& gc_stats() const { return gc_stats_; }

  /// Work items currently queued across all shards, sampled under each
  /// queue's mutex in turn (a momentary reading, not a consistent cut).
  /// Observability only — never part of the verdict.
  size_t TotalQueueDepth();

 private:
  struct WorkItem {
    enum class Kind : uint8_t {
      kOp,        // a visible operation to insert
      kCrash,     // fault: drop volatile state and exit the worker
      kSnapshot,  // fault hook: checkpoint state, truncate the log
      kGcSync,    // GC barrier: ack the epoch in `pos`, nothing else
      kGcPrune,   // GC: adopt `gc_roots` and prune per-object state
    };
    Kind kind = Kind::kOp;
    uint64_t pos = 0;
    TxName tx = kInvalidTx;
    Value value;
    /// kGcPrune payload: the cumulative retired-root set, shared across the
    /// shards (read-only once published).
    std::shared_ptr<const std::unordered_set<TxName>> gc_roots = nullptr;
    /// Steady-clock stamp (us) taken at push when metrics are enabled; 0
    /// otherwise. Feeds the delivery-lag histogram only — never the verdict.
    uint64_t enqueue_us = 0;
  };

  /// Bounded MPSC queue feeding one shard worker.
  struct ShardQueue {
    std::mutex mu;
    std::condition_variable can_push;
    std::condition_variable can_pop;
    std::deque<WorkItem> items;
    bool closed = false;
    /// Set by the worker as it dies from an injected crash; cleared by the
    /// router once recovery succeeds.
    bool crashed = false;
    /// Highest kGcSync epoch the worker has drained past. The queue is
    /// durable across crashes, so an unacked sync item survives for the
    /// successor worker — the router's barrier wait only has to restart
    /// crashed shards, never re-push.
    uint64_t gc_acks = 0;
    std::condition_variable gc_ack;
  };

  /// One stripe of the shared graph: components whose parent hashes here.
  /// The flat dedup sets record insertion order; Finish's aggregation
  /// canonicalizes (FingerprintSerializationGraph sorts internally).
  struct Stripe {
    std::mutex mu;
    IncrementalTopoGraph graph;
    SiblingEdgeSet conflict_edges;
    SiblingEdgeSet precedes_edges;
  };

  /// An operation delivery the router is holding back (delay/reorder
  /// fault); released after `remaining` further deliveries to the shard.
  struct HeldItem {
    WorkItem item;
    uint64_t remaining;
  };

  struct Shard {
    std::unique_ptr<ShardQueue> queue;
    std::thread worker;
    /// Volatile worker state: owned by the worker thread; the router
    /// touches it only after joining (crash recovery, Finish).
    std::unordered_map<ObjectId, std::unique_ptr<ObjectIngestState>> objects;
    size_t ops_processed = 0;
    /// Durable recovery state (maintained only under a fault plan):
    /// checkpoint of `objects` plus the operations delivered since.
    std::unordered_map<ObjectId, std::unique_ptr<ObjectIngestState>> snapshot;
    std::vector<WorkItem> log;
    /// Worker-owned view of the retired-root set (installed by kGcPrune
    /// items, so it advances in delivery order); null before the first
    /// prune. Guards ApplyOp against chaos-duplicated deliveries of a
    /// family that has since been retired.
    std::shared_ptr<const std::unordered_set<TxName>> retired;
    /// The retired set as of the last snapshot; restored before log replay
    /// so recovery sees the same prune points the lost incarnation did.
    std::shared_ptr<const std::unordered_set<TxName>> snapshot_retired;
    /// The newest retired set ever installed on this shard — never rewound
    /// by recovery. Log replay must re-apply a since-retired family's ops
    /// to the object state (their effects belong in the replay checkpoint)
    /// but must NOT re-emit their sibling edges: those were erased from the
    /// stripes at retirement and the dedup-absorption argument no longer
    /// holds for them.
    std::shared_ptr<const std::unordered_set<TxName>> latest_retired;
    /// Router-side delivery-fault state.
    std::vector<HeldItem> held;
    uint64_t hold_next = 0;  // pending kDelay/kReorder: hold the next op
    std::optional<WorkItem> last_pushed;  // duplication source
    /// ntsg_ingest_queue_depth{shard="i"}; resolved at construction.
    obs::Gauge* queue_depth = nullptr;
  };

  size_t ShardOf(ObjectId x) const;
  size_t StripeOf(TxName parent) const;
  /// Routes one operation to its shard, applying any pending delivery
  /// faults (holdback, release of due held items, duplication source).
  void Deliver(size_t shard, WorkItem item);
  /// Blocking bounded push; restarts the shard's worker first if it
  /// crashed.
  void Push(size_t shard, WorkItem item);
  void WorkerLoop(size_t shard_index);
  /// Applies one op to the shard's volatile state and emits its conflict
  /// edges. Shared by the worker loop, recovery replay, and Finish drain.
  /// With `staged` non-null the discovered (retired-filtered) edges are
  /// appended there instead of inserted — the batched worker path.
  void ApplyOp(Shard& shard, const WorkItem& item, bool record_log,
               std::vector<SiblingEdge>* staged = nullptr);
  /// Batched worker path: applies `first` then `rest`, staging every
  /// discovered edge, then commits the staged edges per stripe with one
  /// AddEdgesBatch each (per-edge replay on a rejected stripe batch).
  void ApplyOpRun(Shard& shard, const WorkItem& first,
                  const std::vector<WorkItem>& rest);
  /// Commits a run's staged edges, grouped by stripe, one batch per stripe.
  void CommitEdgeBatch(const std::vector<SiblingEdge>& staged);
  /// Clones `objects` into `snapshot` and truncates the log. Non-static only
  /// so the trace event can name the shard.
  void TakeSnapshot(Shard& shard);
  /// Restores the snapshot and replays the retained log (idempotent edge
  /// re-emission); the cost of rejoining is the log suffix, not the trace.
  void Recover(Shard& shard);
  /// Joins a crashed worker and spawns its replacement, with bounded
  /// exponential-backoff retry against injected restart failures.
  void RestartShard(size_t shard_index);
  /// Fires router-site fault events scheduled at or before `tick`.
  void PollFaults(uint64_t tick);
  /// Inserts a sibling edge into its stripe; kind selects the dedup set.
  void InsertEdge(const SiblingEdge& e, bool is_conflict);
  void ActivateOp(uint64_t pos, TxName tx, const Value& v);
  void ScopeEvent(TxName parent, bool is_report, TxName child);
  void ActivateScope(TxName parent);
  /// One watermark-GC pass (mirrors IncrementalCertifier::RunGc): compute
  /// the watermark and blocked set from router state plus fault holdbacks,
  /// quiesce the shards, close the sealed candidates under graph
  /// predecessors, and retire.
  void RunGc();
  /// Pushes a kGcSync epoch to every shard and waits for all acks,
  /// restarting any shard that crashes mid-barrier. On return every
  /// operation routed before the barrier has been applied.
  void GcBarrier();
  void RetireFamilies(const std::vector<TxName>& roots);
  /// Installs the retired set on the shard and prunes its object states.
  /// Runs on the worker thread (delivery order) and during log replay.
  void ApplyGcPrune(Shard& shard, const WorkItem& item, bool record_log);
  /// True iff the edge lies in the retired scope of `retired` (T0-level
  /// edges: an endpoint is a retired root; deeper edges: the parent's
  /// family is retired) — the same projection FingerprintLiveScope uses.
  bool RetiredScopeEdge(const std::unordered_set<TxName>& retired,
                        const SiblingEdge& e) const;

  const SystemType& type_;
  const ConflictMode mode_;
  const ConcurrentIngestConfig config_;

  // Router state (touched only by the Ingest caller).
  VisibilityTracker tracker_;
  struct ParentScope {
    bool registered = false;
    bool visible = false;
    std::vector<TxName> reported;
    std::vector<std::pair<bool, TxName>> buffer;
  };
  struct PendingOp {
    TxName tx;
    Value value;
  };
  std::unordered_map<TxName, ParentScope> scopes_;
  std::unordered_map<uint64_t, PendingOp> pending_ops_;
  uint64_t pos_ = 0;
  size_t ops_routed_ = 0;
  bool finished_ = false;
  /// Chaos state: null when config_.fault_plan is null — every hook is a
  /// single branch in that case.
  std::unique_ptr<FaultInjector> faults_;
  std::vector<FaultEvent> fired_scratch_;
  /// Watermark-GC state (router-owned; workers only see kGcPrune payloads).
  GcFamilyBook book_;
  GcStats gc_stats_;
  uint64_t gc_epoch_ = 0;
  /// Latched once a rejection (cycle or illegal object) is observed at a GC
  /// barrier; the collector stands down for good, mirroring the solo
  /// certifier's first-rejection rule.
  bool gc_rejected_ = false;
  /// Ops folded into replay checkpoints, summed across worker threads.
  std::atomic<uint64_t> gc_pruned_ops_{0};
  /// Segment write-ahead log (router-owned; null when wal_dir is empty).
  /// The first append/seal/drop failure latches wal_status_ and disables
  /// further writes — the certification verdict is never blocked on disk.
  std::unique_ptr<seg::TraceStore> wal_;
  Status wal_status_;
  uint64_t wal_appended_ = 0;
  uint64_t wal_segments_dropped_ = 0;

  // Shared state.
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<bool> acyclic_{true};
};

}  // namespace ntsg

#endif  // NTSG_SIM_CONCURRENT_INGEST_H_
