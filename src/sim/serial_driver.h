#ifndef NTSG_SIM_SERIAL_DRIVER_H_
#define NTSG_SIM_SERIAL_DRIVER_H_

#include <memory>

#include "sim/driver.h"
#include "sim/program.h"

namespace ntsg {

/// Runs the *serial system* itself (Section 2.2) over a workload: the serial
/// scheduler, one serial object automaton per object, and the same scripted
/// transaction automata the generic driver uses. No concurrency control is
/// involved because no concurrency exists — siblings run one at a time.
///
/// Two uses:
///   * an executable ground truth: every behavior is serially correct for
///     T0 by definition (γ = β), which the checkers must confirm;
///   * the zero-concurrency baseline for the scheduler benchmarks.
class SerialSimulation {
 public:
  /// `root` must be a composite; its children become top-level transactions.
  SerialSimulation(SystemType* type, std::unique_ptr<ProgramNode> root);
  ~SerialSimulation();

  struct Config {
    uint64_t seed = 1;
    size_t max_steps = 2'000'000;
    /// Let the serial scheduler nondeterministically abort requested (but
    /// not yet created) transactions.
    bool allow_aborts = false;
  };

  SimResult Run(const Config& config);

 private:
  SystemType* type_;
  std::unique_ptr<ProgramNode> root_;
  ProgramRegistry registry_;
  Composition composition_;
};

}  // namespace ntsg

#endif  // NTSG_SIM_SERIAL_DRIVER_H_
