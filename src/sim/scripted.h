#ifndef NTSG_SIM_SCRIPTED_H_
#define NTSG_SIM_SCRIPTED_H_

#include <map>
#include <set>

#include "ioa/automaton.h"
#include "sim/program.h"
#include "tx/trace.h"
#include "tx/value.h"

namespace ntsg {

/// Maps dynamically minted transaction names to the program node each will
/// execute. The driver consults it when a REQUEST_CREATE appears, to attach
/// a ScriptedTransaction automaton for composite children.
class ProgramRegistry {
 public:
  void Register(TxName t, const ProgramNode* node) { programs_[t] = node; }

  /// nullptr when `t` has no registered program (e.g. accesses).
  const ProgramNode* Lookup(TxName t) const {
    auto it = programs_.find(t);
    return it == programs_.end() ? nullptr : it->second;
  }

 private:
  std::map<TxName, const ProgramNode*> programs_;
};

/// Transaction automaton A_T executing a composite ProgramNode (Section
/// 2.2.1). Preserves transaction well-formedness by construction:
///   * requests children only after its own CREATE (the root T0 is awake
///     from the start and never requests commit);
///   * mints a fresh sibling name per retry attempt, so names stay unique;
///   * requests commit only when every issued child has been reported and
///     every program slot is resolved; the commit value is the number of
///     slots whose (final) attempt committed.
///
/// Child names are minted against the mutable SystemType when the script
/// first needs them (on CREATE for parallel nodes, on the predecessor's
/// resolution for sequential nodes, on an abort report for retries).
class ScriptedTransaction final : public Automaton {
 public:
  ScriptedTransaction(SystemType* type, ProgramRegistry* registry, TxName tx,
                      const ProgramNode* program, bool is_root);

  std::string name() const override;

  bool IsInput(const Action& a) const override;
  bool IsOutput(const Action& a) const override;
  void Apply(const Action& a) override;
  std::vector<Action> EnabledOutputs() const override;

  TxName tx() const { return tx_; }
  bool commit_requested() const { return commit_requested_; }

 private:
  struct Slot {
    const ProgramNode* node;
    int attempts_left;
    TxName current = kInvalidTx;  // Minted instance awaiting resolution.
    bool requested = false;       // REQUEST_CREATE(current) emitted.
    bool resolved = false;        // Final attempt reported (or abandoned).
    bool committed = false;       // Some attempt committed.
  };

  /// Mints the instance name for slot `i` and registers its program.
  void MintSlot(size_t i);
  /// For sequential nodes: mints the next unresolved slot, if any.
  void MintNextSequential();
  int FindSlotOf(TxName child) const;

  SystemType* type_;
  ProgramRegistry* registry_;
  const TxName tx_;
  const ProgramNode* program_;
  const bool is_root_;

  bool active_;
  bool commit_requested_ = false;
  std::vector<Slot> slots_;
  std::map<TxName, size_t> instance_slot_;  // Every minted instance.
  std::set<TxName> ready_requests_;  // Minted instances awaiting issue.
  size_t unresolved_ = 0;            // Slots not yet resolved.
  size_t outstanding_ = 0;  // Instances requested but not reported.
  int64_t committed_slots_ = 0;
};

}  // namespace ntsg

#endif  // NTSG_SIM_SCRIPTED_H_
