#include "sim/serial_driver.h"

#include "common/logging.h"
#include "serial/serial_object.h"
#include "serial/serial_scheduler.h"
#include "sim/scripted.h"

namespace ntsg {

SerialSimulation::SerialSimulation(SystemType* type,
                                   std::unique_ptr<ProgramNode> root)
    : type_(type), root_(std::move(root)) {
  NTSG_CHECK(root_->kind == ProgramNode::Kind::kComposite);
}

SerialSimulation::~SerialSimulation() = default;

SimResult SerialSimulation::Run(const Config& config) {
  Rng rng(config.seed);
  composition_.Add(
      std::make_unique<SerialScheduler>(*type_, config.allow_aborts));
  for (ObjectId x = 0; x < type_->num_objects(); ++x) {
    composition_.Add(std::make_unique<SerialObjectAutomaton>(*type_, x));
  }
  composition_.Add(std::make_unique<ScriptedTransaction>(
      type_, &registry_, kT0, root_.get(), /*is_root=*/true));

  SimStats stats;
  while (stats.steps < config.max_steps) {
    Action a;
    if (!composition_.SampleEnabled(rng, &a)) {
      stats.completed = true;
      break;
    }
    Status s = composition_.Execute(a);
    NTSG_CHECK(s.ok()) << s.ToString();
    ++stats.steps;
    if (a.kind == ActionKind::kRequestCreate && !type_->IsAccess(a.tx)) {
      const ProgramNode* program = registry_.Lookup(a.tx);
      NTSG_CHECK(program != nullptr);
      composition_.Add(std::make_unique<ScriptedTransaction>(
          type_, &registry_, a.tx, program, /*is_root=*/false));
    }
  }

  SimResult result;
  result.trace = composition_.TakeBehavior();
  for (const Action& a : result.trace) {
    switch (a.kind) {
      case ActionKind::kRequestCommit:
        if (type_->IsAccess(a.tx)) ++stats.access_responses;
        break;
      case ActionKind::kCommit:
        ++stats.commits;
        if (type_->parent(a.tx) == kT0) ++stats.toplevel_committed;
        break;
      case ActionKind::kAbort:
        ++stats.aborts;
        if (type_->parent(a.tx) == kT0) ++stats.toplevel_aborted;
        break;
      default:
        break;
    }
  }
  result.stats = stats;
  return result;
}

}  // namespace ntsg
