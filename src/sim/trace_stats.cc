#include "sim/trace_stats.h"

#include <sstream>

#include "tx/access.h"

namespace ntsg {

TraceStats ComputeTraceStats(const SystemType& type, const Trace& trace) {
  TraceStats stats;
  stats.events = trace.size();

  std::map<TxName, size_t> create_pos;
  size_t latency_total = 0;

  for (size_t i = 0; i < trace.size(); ++i) {
    const Action& a = trace[i];
    stats.per_kind[a.kind]++;
    stats.actions_by_depth[type.depth(a.tx)]++;
    switch (a.kind) {
      case ActionKind::kCreate:
        create_pos[a.tx] = i;
        break;
      case ActionKind::kCommit: {
        stats.committed_by_depth[type.depth(a.tx)]++;
        auto it = create_pos.find(a.tx);
        if (it != create_pos.end()) {
          size_t latency = i - it->second;
          latency_total += latency;
          if (latency > stats.max_commit_latency) {
            stats.max_commit_latency = latency;
          }
          ++stats.committed_count;
        }
        break;
      }
      case ActionKind::kAbort:
        stats.aborted_by_depth[type.depth(a.tx)]++;
        break;
      case ActionKind::kRequestCommit:
        if (type.IsAccess(a.tx)) {
          ++stats.access_responses;
          const AccessSpec& acc = type.access(a.tx);
          auto& traffic = stats.per_object[acc.object];
          auto& class_mix = stats.object_class_mix[type.object_type(acc.object)];
          if (IsModifyingOp(acc.op)) {
            ++traffic.updates;
            ++class_mix.updates;
          } else {
            ++traffic.observers;
            ++class_mix.observers;
          }
        }
        break;
      default:
        break;
    }
  }
  if (stats.committed_count > 0) {
    stats.mean_commit_latency =
        static_cast<double>(latency_total) /
        static_cast<double>(stats.committed_count);
  }
  return stats;
}

std::string TraceStats::ToString(const SystemType& type) const {
  std::ostringstream out;
  out << "events: " << events << "\n";
  out << "committed by depth:";
  for (const auto& [d, n] : committed_by_depth) {
    out << "  d" << d << "=" << n;
  }
  out << "\naborted by depth:  ";
  for (const auto& [d, n] : aborted_by_depth) {
    out << "  d" << d << "=" << n;
  }
  out << "\nactions by depth: ";
  for (const auto& [d, n] : actions_by_depth) {
    out << "  d" << d << "=" << n;
  }
  out << "\nobject class mix:";
  for (const auto& [t, traffic] : object_class_mix) {
    out << "  " << ObjectTypeName(t) << "=" << traffic.updates << "u/"
        << traffic.observers << "o";
  }
  out << "\nobject traffic:\n";
  for (const auto& [x, t] : per_object) {
    out << "  " << type.object_name(x) << ": " << t.updates << " updates, "
        << t.observers << " observers\n";
  }
  out << "access responses: " << access_responses << "\n";
  out << "commit latency (trace positions): mean " << mean_commit_latency
      << ", max " << max_commit_latency << " over " << committed_count
      << " commits\n";
  return out.str();
}

}  // namespace ntsg
