#include "sim/trace_stats.h"

#include <sstream>

namespace ntsg {

TraceStats ComputeTraceStats(const SystemType& type, const Trace& trace) {
  TraceStats stats;
  stats.events = trace.size();

  std::map<TxName, size_t> create_pos;
  size_t latency_total = 0;

  for (size_t i = 0; i < trace.size(); ++i) {
    const Action& a = trace[i];
    stats.per_kind[a.kind]++;
    switch (a.kind) {
      case ActionKind::kCreate:
        create_pos[a.tx] = i;
        break;
      case ActionKind::kCommit: {
        stats.committed_by_depth[type.depth(a.tx)]++;
        auto it = create_pos.find(a.tx);
        if (it != create_pos.end()) {
          size_t latency = i - it->second;
          latency_total += latency;
          if (latency > stats.max_commit_latency) {
            stats.max_commit_latency = latency;
          }
          ++stats.committed_count;
        }
        break;
      }
      case ActionKind::kAbort:
        stats.aborted_by_depth[type.depth(a.tx)]++;
        break;
      case ActionKind::kRequestCommit:
        if (type.IsAccess(a.tx)) {
          ++stats.access_responses;
          const AccessSpec& acc = type.access(a.tx);
          auto& traffic = stats.per_object[acc.object];
          if (IsModifyingOp(acc.op)) {
            ++traffic.updates;
          } else {
            ++traffic.observers;
          }
        }
        break;
      default:
        break;
    }
  }
  if (stats.committed_count > 0) {
    stats.mean_commit_latency =
        static_cast<double>(latency_total) /
        static_cast<double>(stats.committed_count);
  }
  return stats;
}

std::string TraceStats::ToString(const SystemType& type) const {
  std::ostringstream out;
  out << "events: " << events << "\n";
  out << "committed by depth:";
  for (const auto& [d, n] : committed_by_depth) {
    out << "  d" << d << "=" << n;
  }
  out << "\naborted by depth:  ";
  for (const auto& [d, n] : aborted_by_depth) {
    out << "  d" << d << "=" << n;
  }
  out << "\nobject traffic:\n";
  for (const auto& [x, t] : per_object) {
    out << "  " << type.object_name(x) << ": " << t.updates << " updates, "
        << t.observers << " observers\n";
  }
  out << "access responses: " << access_responses << "\n";
  out << "commit latency (trace positions): mean " << mean_commit_latency
      << ", max " << max_commit_latency << " over " << committed_count
      << " commits\n";
  return out.str();
}

}  // namespace ntsg
