#include "sim/scripted.h"

#include "common/logging.h"

namespace ntsg {

ScriptedTransaction::ScriptedTransaction(SystemType* type,
                                         ProgramRegistry* registry, TxName tx,
                                         const ProgramNode* program,
                                         bool is_root)
    : type_(type),
      registry_(registry),
      tx_(tx),
      program_(program),
      is_root_(is_root),
      active_(is_root) {
  NTSG_CHECK(program->kind == ProgramNode::Kind::kComposite);
  slots_.reserve(program->children.size());
  for (const auto& child : program->children) {
    slots_.push_back(Slot{child.get(), program->child_retries, kInvalidTx,
                          false, false, false});
  }
  unresolved_ = slots_.size();
  if (is_root_) {
    // T0 is modelled as awake from the start; mint immediately.
    if (program_->sequential) {
      MintNextSequential();
    } else {
      for (size_t i = 0; i < slots_.size(); ++i) MintSlot(i);
    }
  }
}

std::string ScriptedTransaction::name() const {
  return "A_" + type_->NameOf(tx_);
}

bool ScriptedTransaction::IsInput(const Action& a) const {
  if (a.kind == ActionKind::kCreate) return a.tx == tx_;
  if (a.kind == ActionKind::kReportCommit ||
      a.kind == ActionKind::kReportAbort) {
    return instance_slot_.count(a.tx) != 0;
  }
  return false;
}

bool ScriptedTransaction::IsOutput(const Action& a) const {
  if (a.kind == ActionKind::kRequestCreate) {
    return instance_slot_.count(a.tx) != 0;
  }
  if (a.kind == ActionKind::kRequestCommit) return a.tx == tx_;
  return false;
}

void ScriptedTransaction::MintSlot(size_t i) {
  Slot& slot = slots_[i];
  NTSG_CHECK(!slot.resolved);
  NTSG_CHECK_EQ(slot.current, kInvalidTx);
  TxName child;
  if (slot.node->kind == ProgramNode::Kind::kAccess) {
    child = type_->NewAccess(tx_, slot.node->access);
  } else {
    child = type_->NewChild(tx_);
    registry_->Register(child, slot.node);
  }
  slot.current = child;
  slot.requested = false;
  instance_slot_[child] = i;
  ready_requests_.insert(child);
}

void ScriptedTransaction::MintNextSequential() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].resolved) {
      if (slots_[i].current == kInvalidTx) MintSlot(i);
      return;
    }
  }
}

int ScriptedTransaction::FindSlotOf(TxName child) const {
  auto it = instance_slot_.find(child);
  return it == instance_slot_.end() ? -1 : static_cast<int>(it->second);
}

void ScriptedTransaction::Apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kCreate: {
      NTSG_CHECK_EQ(a.tx, tx_);
      NTSG_CHECK(!active_);
      active_ = true;
      if (program_->sequential) {
        MintNextSequential();
      } else {
        for (size_t i = 0; i < slots_.size(); ++i) MintSlot(i);
      }
      break;
    }
    case ActionKind::kRequestCreate: {
      int i = FindSlotOf(a.tx);
      NTSG_CHECK_GE(i, 0);
      Slot& slot = slots_[static_cast<size_t>(i)];
      NTSG_CHECK_EQ(slot.current, a.tx);
      NTSG_CHECK(!slot.requested);
      slot.requested = true;
      ready_requests_.erase(a.tx);
      ++outstanding_;
      break;
    }
    case ActionKind::kReportCommit: {
      int i = FindSlotOf(a.tx);
      NTSG_CHECK_GE(i, 0);
      Slot& slot = slots_[static_cast<size_t>(i)];
      NTSG_CHECK_EQ(slot.current, a.tx);
      --outstanding_;
      slot.current = kInvalidTx;
      slot.resolved = true;
      slot.committed = true;
      ++committed_slots_;
      --unresolved_;
      if (program_->sequential) MintNextSequential();
      break;
    }
    case ActionKind::kReportAbort: {
      int i = FindSlotOf(a.tx);
      NTSG_CHECK_GE(i, 0);
      Slot& slot = slots_[static_cast<size_t>(i)];
      NTSG_CHECK_EQ(slot.current, a.tx);
      --outstanding_;
      slot.current = kInvalidTx;
      if (slot.attempts_left > 0) {
        --slot.attempts_left;
        MintSlot(static_cast<size_t>(i));  // Fresh sibling name for retry.
      } else {
        slot.resolved = true;  // Abandoned.
        --unresolved_;
        if (program_->sequential) MintNextSequential();
      }
      break;
    }
    case ActionKind::kRequestCommit:
      NTSG_CHECK_EQ(a.tx, tx_);
      commit_requested_ = true;
      break;
    default:
      NTSG_CHECK(false) << "unexpected action at " << name();
  }
}

std::vector<Action> ScriptedTransaction::EnabledOutputs() const {
  std::vector<Action> out;
  if (!active_ || commit_requested_) return out;
  // Incremental: only minted-but-unissued instances, not a slot scan.
  out.reserve(ready_requests_.size() + 1);
  for (TxName child : ready_requests_) {
    out.push_back(Action::RequestCreate(child));
  }
  if (!is_root_ && unresolved_ == 0 && outstanding_ == 0) {
    out.push_back(Action::RequestCommit(tx_, Value::Int(committed_slots_)));
  }
  return out;
}

}  // namespace ntsg
