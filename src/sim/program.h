#ifndef NTSG_SIM_PROGRAM_H_
#define NTSG_SIM_PROGRAM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tx/access.h"
#include "tx/system_type.h"

namespace ntsg {

/// Static description of what a transaction does — the "code written by
/// application programmers" that a transaction automaton models (Section
/// 2.2.1). A program node is either a single access or a composite that
/// requests child subtransactions, serially or in parallel, with optional
/// retry-on-abort.
///
/// Programs are deliberately value-independent (which children to create
/// does not depend on returned values); this keeps transaction behavior
/// checkable while exercising every structural feature the paper's model
/// has: nesting, sibling concurrency, aborts and retries.
struct ProgramNode {
  enum class Kind { kAccess, kComposite };

  Kind kind = Kind::kComposite;

  /// kAccess: the operation performed.
  AccessSpec access;

  /// kComposite: child programs, issued in order when `sequential`, all at
  /// once otherwise.
  std::vector<std::unique_ptr<ProgramNode>> children;
  bool sequential = false;

  /// Extra attempts granted to each child of this node after an abort
  /// report (0 = no retry).
  int child_retries = 0;
};

/// Builders for hand-written programs.
std::unique_ptr<ProgramNode> MakeAccess(ObjectId object, OpCode op,
                                        int64_t arg);
std::unique_ptr<ProgramNode> MakeSeq(
    std::vector<std::unique_ptr<ProgramNode>> children, int child_retries = 0);
std::unique_ptr<ProgramNode> MakePar(
    std::vector<std::unique_ptr<ProgramNode>> children, int child_retries = 0);

/// Parameters for random program generation.
struct ProgramGenParams {
  /// Nesting depth of composites; depth 1 means children are accesses.
  int depth = 2;
  /// Children per composite (exact).
  int fanout = 3;
  /// Probability that a composite issues children sequentially.
  double sequential_prob = 0.3;
  /// Probability that a non-bottom child is an access rather than a nested
  /// composite (accesses also fill the bottom level).
  double early_access_prob = 0.4;
  /// Retries granted to children.
  int child_retries = 0;
  /// Object popularity skew (Zipf exponent; 0 = uniform).
  double zipf_s = 0.0;
  /// Probability of a read-only operation at an access (for types with an
  /// observer/update distinction).
  double read_prob = 0.5;
  /// Range of operation arguments.
  int64_t max_arg = 100;
};

/// Generates a random program over the objects of `type` (which must have at
/// least one object). Operation codes are chosen to fit each object's type.
std::unique_ptr<ProgramNode> GenerateProgram(const SystemType& type,
                                             const ProgramGenParams& params,
                                             Rng& rng);

/// Counts access leaves (first-attempt instances) in the program.
size_t CountAccesses(const ProgramNode& node);

}  // namespace ntsg

#endif  // NTSG_SIM_PROGRAM_H_
