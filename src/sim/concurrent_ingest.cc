#include "sim/concurrent_ingest.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sg/fingerprint.h"

namespace ntsg {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// splitmix64: cheap, well-mixed hash for the seeded object -> shard map.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Tracker tags: bit 63 marks a parent-scope activation; anything else is the
// trace position of a pending operation. Same convention as the
// IncrementalCertifier, so the two routers stay line-for-line comparable.
constexpr uint64_t kScopeTagBit = 1ull << 63;

// Times one Ingest call into the caller's admission histogram (null = off).
// Covers every exit path of the router, including early returns for retired
// families; bypasses the global metrics switch by design (see the config
// field's contract).
class AdmissionTimer {
 public:
  explicit AdmissionTimer(obs::Histogram* h) : h_(h) {
    if (h_ != nullptr) start_us_ = NowUs();
  }
  ~AdmissionTimer() {
    if (h_ != nullptr) h_->ObserveAlways(NowUs() - start_us_);
  }

 private:
  obs::Histogram* h_;
  uint64_t start_us_ = 0;
};

}  // namespace

ConcurrentIngestPipeline::ConcurrentIngestPipeline(
    const SystemType& type, ConflictMode mode,
    const ConcurrentIngestConfig& config)
    : type_(type), mode_(mode), config_(config), tracker_(type) {
  NTSG_CHECK(config_.num_shards > 0);
  NTSG_CHECK(config_.num_stripes > 0);
  NTSG_CHECK(config_.queue_capacity > 0);
  if (!config_.wal_dir.empty()) {
    seg::TraceStore::Options wal_opts;
    wal_opts.actions_per_segment = config_.wal_segment_actions;
    wal_status_ =
        seg::TraceStore::Create(config_.wal_dir, &type_, {}, wal_opts, &wal_);
  }
  if (config_.fault_plan != nullptr) {
    faults_.reset(new FaultInjector(
        *config_.fault_plan,
        {FaultKind::kCrashWorker, FaultKind::kRestartFail,
         FaultKind::kDelayDelivery, FaultKind::kDuplicateDelivery,
         FaultKind::kReorderDelivery, FaultKind::kSnapshotWorker}));
  }
  stripes_.reserve(config_.num_stripes);
  for (size_t i = 0; i < config_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  shards_.resize(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i].queue = std::make_unique<ShardQueue>();
    shards_[i].queue_depth = obs::IngestQueueDepthGauge(i);
  }
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i].worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

ConcurrentIngestPipeline::~ConcurrentIngestPipeline() {
  if (!finished_) Finish();
}

size_t ConcurrentIngestPipeline::ShardOf(ObjectId x) const {
  return Mix64(static_cast<uint64_t>(x) ^ config_.seed) % config_.num_shards;
}

size_t ConcurrentIngestPipeline::StripeOf(TxName parent) const {
  return static_cast<size_t>(parent) % config_.num_stripes;
}

void ConcurrentIngestPipeline::Push(size_t shard, WorkItem item) {
  Shard& sh = shards_[shard];
  ShardQueue& q = *sh.queue;
  if (obs::MetricsEnabled()) item.enqueue_us = NowUs();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(q.mu);
      if (q.items.size() >= config_.queue_capacity && !q.crashed) {
        obs::GetIngestMetrics().backpressure_waits->Inc();
      }
      q.can_push.wait(lock, [&] {
        return q.items.size() < config_.queue_capacity || q.crashed;
      });
      if (!q.crashed) {
        q.items.push_back(std::move(item));
        sh.queue_depth->Set(static_cast<int64_t>(q.items.size()));
        q.can_pop.notify_one();
        return;
      }
    }
    // The worker died under us (possibly while we were blocked on a full
    // queue). Bring it back, then deliver.
    RestartShard(shard);
  }
}

void ConcurrentIngestPipeline::Deliver(size_t shard, WorkItem item) {
  Shard& sh = shards_[shard];
  if (faults_ != nullptr && sh.hold_next > 0) {
    sh.held.push_back(HeldItem{std::move(item), sh.hold_next});
    sh.hold_next = 0;
    return;
  }
  if (faults_ == nullptr) {
    Push(shard, std::move(item));
    return;
  }
  sh.last_pushed = item;
  Push(shard, std::move(item));
  // Each delivery ages the held-back items; release the ones that are due.
  for (auto it = sh.held.begin(); it != sh.held.end();) {
    if (--it->remaining == 0) {
      sh.last_pushed = it->item;
      Push(shard, std::move(it->item));
      it = sh.held.erase(it);
    } else {
      ++it;
    }
  }
}

void ConcurrentIngestPipeline::ApplyOp(Shard& shard, const WorkItem& item,
                                       bool record_log,
                                       std::vector<SiblingEdge>* staged) {
  if (record_log && faults_ != nullptr) shard.log.push_back(item);
  // A chaos-duplicated delivery can land after its family was retired (the
  // first delivery was applied pre-barrier; the duplicate sits behind the
  // prune item). Applying it would resurrect reclaimed object state, so it
  // is dropped — logged first, so replay re-drops it at the same point.
  if (shard.retired != nullptr &&
      shard.retired->count(GcFamilyBook::RootOf(type_, item.tx)) != 0) {
    return;
  }
  const size_t shard_index = static_cast<size_t>(&shard - shards_.data());
  obs::GetIngestMetrics().ops_processed->Inc(shard_index);
  obs::TraceEmit(obs::TraceEventKind::kOpApplied, item.tx, item.tx,
                 static_cast<uint32_t>(shard_index), 0, item.pos);
  // Replayed items (record_log == false) carry their original enqueue stamp;
  // only first deliveries feed the lag histogram.
  if (record_log && item.enqueue_us != 0) {
    uint64_t now = NowUs();
    obs::GetIngestMetrics().delivery_lag_us->Observe(
        now > item.enqueue_us ? now - item.enqueue_us : 0);
  }
  ObjectId x = type_.ObjectOf(item.tx);
  std::unique_ptr<ObjectIngestState>& state = shard.objects[x];
  if (state == nullptr) {
    state = std::make_unique<ObjectIngestState>(type_, x, mode_);
  }
  // The object's frontier maps conflicts straight to sibling edges (lca /
  // child-toward resolved internally); the per-stripe sets dedup re-emission
  // across recovery replays.
  std::vector<SiblingEdge> edges;
  state->InsertVisibleOp(item.pos, item.tx, item.value, &edges);
  ++shard.ops_processed;

  for (const SiblingEdge& e : edges) {
    // Replay-only: a family retired since the snapshot re-applies its ops
    // (the logged prune re-folds them into the checkpoint) but its edges
    // were erased from the stripes at retirement and must stay erased.
    if (shard.latest_retired != nullptr &&
        RetiredScopeEdge(*shard.latest_retired, e)) {
      continue;
    }
    if (staged != nullptr) {
      staged->push_back(e);
    } else {
      InsertEdge(e, /*is_conflict=*/true);
    }
  }
}

void ConcurrentIngestPipeline::ApplyOpRun(Shard& shard, const WorkItem& first,
                                          const std::vector<WorkItem>& rest) {
  std::vector<SiblingEdge> staged;
  ApplyOp(shard, first, /*record_log=*/true, &staged);
  for (const WorkItem& item : rest) {
    ApplyOp(shard, item, /*record_log=*/true, &staged);
  }
  obs::GetBatchMetrics().actions_batched->Inc(1 + rest.size());
  obs::GetBatchMetrics().batch_size->Observe(
      static_cast<double>(1 + rest.size()));
  if (!staged.empty()) CommitEdgeBatch(staged);
}

void ConcurrentIngestPipeline::CommitEdgeBatch(
    const std::vector<SiblingEdge>& staged) {
  obs::GetBatchMetrics().edges_staged->Inc(staged.size());
  // Group by stripe, preserving discovery order within each group; a run's
  // edges usually concentrate on a few stripes, so scan the small stripe
  // space rather than building a hash map per run.
  std::vector<std::vector<const SiblingEdge*>> by_stripe(stripes_.size());
  for (const SiblingEdge& e : staged) {
    by_stripe[StripeOf(e.parent)].push_back(&e);
  }
  for (size_t s = 0; s < by_stripe.size(); ++s) {
    if (by_stripe[s].empty()) continue;
    Stripe& stripe = *stripes_[s];
    std::unique_lock<std::mutex> lock(stripe.mu, std::defer_lock);
    {
      obs::SpanTimer span(obs::GetIngestMetrics().stripe_lock_wait_us);
      lock.lock();
    }
    obs::SpanTimer commit_span(obs::GetBatchMetrics().commit_us);
    // The per-stripe dedup set filters both live duplicates and recovery
    // re-emissions, exactly as the per-event InsertEdge does.
    std::vector<IncrementalTopoGraph::BatchEdge> fresh;
    std::vector<const SiblingEdge*> fresh_src;
    fresh.reserve(by_stripe[s].size());
    for (const SiblingEdge* e : by_stripe[s]) {
      if (!stripe.conflict_edges.Insert(*e)) continue;
      fresh.push_back(IncrementalTopoGraph::BatchEdge{e->from, e->to});
      fresh_src.push_back(e);
    }
    if (fresh.empty()) continue;
    IncrementalTopoGraph::BatchAddResult r = stripe.graph.AddEdgesBatch(fresh);
    if (r.ok) {
      obs::GetBatchMetrics().batches_committed->Inc();
      obs::GetBatchMetrics().edges_committed->Inc(r.fresh_edges);
      obs::TraceEmit(obs::TraceEventKind::kBatchCommit, kT0,
                     static_cast<uint32_t>(fresh.size()),
                     static_cast<uint32_t>(r.fresh_edges), 0, r.region_nodes);
      if (obs::TraceEnabled()) {
        for (const SiblingEdge* e : fresh_src) {
          obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, e->parent,
                         e->from, e->to, obs::kTraceFlagConflict);
        }
      }
    } else {
      // Some edge in this stripe batch closes a cycle. The failed commit
      // left the stripe graph untouched; per-edge replay reproduces exactly
      // what sequential InsertEdge calls would have done — inserts up to the
      // rejection, the rejection event, and the acyclic_ flip.
      obs::GetBatchMetrics().batches_bisected->Inc();
      obs::TraceEmit(obs::TraceEventKind::kBatchBisect, kT0,
                     static_cast<uint32_t>(fresh.size()), 0, 0, fresh.size());
      for (const SiblingEdge* e : fresh_src) {
        if (stripe.graph.AddEdge(e->from, e->to)) {
          obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, e->parent,
                         e->from, e->to, obs::kTraceFlagConflict);
        } else {
          obs::TraceEmit(
              obs::TraceEventKind::kEdgeRejected, e->parent, e->from, e->to,
              static_cast<uint8_t>(obs::kTraceFlagConflict |
                                   obs::kTraceFlagCycle));
          acyclic_.store(false, std::memory_order_relaxed);
        }
      }
    }
  }
}

bool ConcurrentIngestPipeline::RetiredScopeEdge(
    const std::unordered_set<TxName>& retired, const SiblingEdge& e) const {
  if (e.parent == kT0) {
    return retired.count(e.from) != 0 || retired.count(e.to) != 0;
  }
  return retired.count(GcFamilyBook::RootOf(type_, e.parent)) != 0;
}

void ConcurrentIngestPipeline::WorkerLoop(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  ShardQueue& q = *shard.queue;
  std::vector<WorkItem> run;  // batched-mode kOp run after the first item
  for (;;) {
    WorkItem item;
    run.clear();
    {
      std::unique_lock<std::mutex> lock(q.mu);
      q.can_pop.wait(lock, [&] { return !q.items.empty() || q.closed; });
      if (q.items.empty()) return;  // closed and drained
      item = std::move(q.items.front());
      q.items.pop_front();
      if (config_.batch_max > 1 && item.kind == WorkItem::Kind::kOp) {
        // Drain the run of consecutive operations behind it, stopping at
        // the first control item (crash/snapshot/GC): a batch never crosses
        // a fault or GC boundary, and the control item keeps its slot at
        // the queue head for the next pass.
        while (run.size() + 1 < config_.batch_max && !q.items.empty() &&
               q.items.front().kind == WorkItem::Kind::kOp) {
          run.push_back(std::move(q.items.front()));
          q.items.pop_front();
        }
      }
      shard.queue_depth->Set(static_cast<int64_t>(q.items.size()));
      // A drained run can free many slots; wake all blocked pushers (in
      // practice one router thread, so this is one wakeup either way).
      q.can_push.notify_all();
    }

    switch (item.kind) {
      case WorkItem::Kind::kOp:
        if (run.empty()) {
          ApplyOp(shard, item, /*record_log=*/true);
        } else {
          ApplyOpRun(shard, item, run);
        }
        break;
      case WorkItem::Kind::kSnapshot:
        TakeSnapshot(shard);
        break;
      case WorkItem::Kind::kGcSync:
        {
          std::lock_guard<std::mutex> lock(q.mu);
          if (item.pos > q.gc_acks) q.gc_acks = item.pos;
        }
        q.gc_ack.notify_all();
        break;
      case WorkItem::Kind::kGcPrune:
        ApplyGcPrune(shard, item, /*record_log=*/true);
        break;
      case WorkItem::Kind::kCrash: {
        // Lose all volatile state and die. The queue itself is durable —
        // undelivered items survive for the successor; the delivery log
        // covers what this incarnation had already consumed.
        obs::TraceEmit(obs::TraceEventKind::kWorkerCrash, kT0,
                       static_cast<uint32_t>(shard_index), 0,
                       obs::kTraceFlagAbort, shard.log.size());
        shard.objects.clear();
        {
          std::lock_guard<std::mutex> lock(q.mu);
          q.crashed = true;
        }
        // A producer may be blocked on a full queue, and the router may be
        // parked at a GC barrier; both must observe the crash and run
        // recovery rather than wait forever.
        q.can_push.notify_all();
        q.gc_ack.notify_all();
        return;
      }
    }
  }
}

void ConcurrentIngestPipeline::ApplyGcPrune(Shard& shard, const WorkItem& item,
                                            bool record_log) {
  if (record_log && faults_ != nullptr) shard.log.push_back(item);
  shard.retired = item.gc_roots;
  // Retired sets grow monotonically along the prune chain, so the largest
  // one seen is the newest — replay installs older sets into `retired`
  // without disturbing the high-water view.
  if (shard.latest_retired == nullptr ||
      item.gc_roots->size() > shard.latest_retired->size()) {
    shard.latest_retired = item.gc_roots;
  }
  uint64_t pruned = 0;
  for (auto& [x, state] : shard.objects) {
    pruned += state->Retire(*item.gc_roots);
  }
  if (pruned > 0) {
    gc_pruned_ops_.fetch_add(pruned, std::memory_order_relaxed);
    obs::GetGcMetrics().ops_pruned->Inc(pruned);
  }
}

void ConcurrentIngestPipeline::TakeSnapshot(Shard& shard) {
  obs::SpanTimer span(obs::GetIngestMetrics().snapshot_us);
  obs::TraceEmit(obs::TraceEventKind::kSnapshot, kT0,
                 static_cast<uint32_t>(&shard - shards_.data()), 0, 0,
                 shard.log.size());
  shard.snapshot.clear();
  for (const auto& [x, state] : shard.objects) {
    shard.snapshot[x] = std::make_unique<ObjectIngestState>(*state);
  }
  shard.snapshot_retired = shard.retired;
  shard.log.clear();
}

void ConcurrentIngestPipeline::Recover(Shard& shard) {
  obs::SpanTimer span(obs::GetIngestMetrics().replay_us);
  obs::TraceEmit(obs::TraceEventKind::kReplay, kT0,
                 static_cast<uint32_t>(&shard - shards_.data()), 0, 0,
                 shard.log.size());
  shard.objects.clear();
  for (const auto& [x, state] : shard.snapshot) {
    shard.objects[x] = std::make_unique<ObjectIngestState>(*state);
  }
  // The retired set rewinds to its snapshot value so replayed ops see the
  // same prune points the lost incarnation did; logged kGcPrune items then
  // advance it again in order.
  shard.retired = shard.snapshot_retired;
  faults_->stats().items_replayed += shard.log.size();
  // Replay re-discovers conflict pairs whose edges are already in the
  // stripes; the dedup sets absorb them, which is exactly why recovery is
  // idempotent. (GC complicates this one step: edges of a family retired
  // *before* the snapshot cannot re-emit, because the restored object state
  // was already pruned of that family's ops.)
  for (const WorkItem& item : shard.log) {
    if (item.kind == WorkItem::Kind::kGcPrune) {
      ApplyGcPrune(shard, item, /*record_log=*/false);
    } else {
      ApplyOp(shard, item, /*record_log=*/false);
    }
  }
}

void ConcurrentIngestPipeline::RestartShard(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.worker.joinable()) shard.worker.join();
  FaultStats& stats = faults_->stats();
  for (size_t attempt = 0;; ++attempt) {
    NTSG_CHECK(attempt < config_.max_restart_attempts)
        << "shard " << shard_index << " failed to restart after "
        << config_.max_restart_attempts << " attempts";
    ++stats.restart_attempts;
    if (!faults_->TakeRestartFail(shard_index)) break;
    ++stats.restart_failures;
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.restart_backoff_us << attempt));
  }
  Recover(shard);
  {
    std::lock_guard<std::mutex> lock(shard.queue->mu);
    shard.queue->crashed = false;
  }
  shard.worker = std::thread([this, shard_index] { WorkerLoop(shard_index); });
  ++stats.restarts;
  obs::GetIngestMetrics().worker_restarts->Inc();
  obs::TraceEmit(obs::TraceEventKind::kWorkerRestart, kT0,
                 static_cast<uint32_t>(shard_index), 0, 0,
                 stats.restart_attempts);
}

void ConcurrentIngestPipeline::PollFaults(uint64_t tick) {
  fired_scratch_.clear();
  if (!faults_->Poll(tick, &fired_scratch_)) return;
  FaultStats& stats = faults_->stats();
  for (const FaultEvent& e : fired_scratch_) {
    size_t target = static_cast<size_t>(e.target) % config_.num_shards;
    Shard& sh = shards_[target];
    switch (e.kind) {
      case FaultKind::kCrashWorker:
        ++stats.crashes;
        Push(target, WorkItem{WorkItem::Kind::kCrash, 0, kInvalidTx, Value{}});
        break;
      case FaultKind::kSnapshotWorker:
        ++stats.snapshots;
        Push(target,
             WorkItem{WorkItem::Kind::kSnapshot, 0, kInvalidTx, Value{}});
        break;
      case FaultKind::kDelayDelivery:
        ++stats.delays;
        sh.hold_next = std::max<uint64_t>(1, e.param);
        break;
      case FaultKind::kReorderDelivery:
        ++stats.reorders;
        sh.hold_next = 1;  // swap with the delivery after it
        break;
      case FaultKind::kDuplicateDelivery:
        if (sh.last_pushed.has_value()) {
          ++stats.duplicates;
          Push(target, *sh.last_pushed);
        }
        break;
      default:
        break;  // not a pipeline fault; the injector filter excludes these
    }
  }
}

void ConcurrentIngestPipeline::Ingest(const Action& a) {
  NTSG_CHECK(!finished_) << "Ingest after Finish";
  AdmissionTimer admit_timer(config_.admission_latency);
  // Log before routing: an action the pipeline saw is an action the WAL
  // holds (modulo the unsealed tail). Disk failure latches wal_status_ and
  // stands the log down — it never blocks the verdict.
  if (wal_ != nullptr && wal_status_.ok()) {
    wal_status_ = wal_->Append(a);
    if (wal_status_.ok()) ++wal_appended_;
  }
  obs::GetIngestMetrics().actions_ingested->Inc();
  if (faults_ != nullptr) PollFaults(pos_);
  uint64_t pos = pos_++;
  if (config_.gc_interval > 0 && a.tx != kT0) {
    TxName root = GcFamilyBook::RootOf(type_, a.tx);
    if (book_.IsRetired(root)) {
      // Same straggler rule as the solo certifier: INFORM_*/CREATE
      // deliveries and orphan activity under an aborted root are
      // verdict-inert and dropped silently; anything else naming a retired
      // family is a malformed stream and counts as a late event. Either
      // way the position stays consumed, keeping the numbering aligned
      // with an unpruned run.
      if (a.kind == ActionKind::kCreate ||
          a.kind == ActionKind::kInformCommit ||
          a.kind == ActionKind::kInformAbort || book_.RetiredAborted(root)) {
        return;
      }
      ++gc_stats_.late_events;
      obs::GetGcMetrics().late_events->Inc();
      obs::TraceEmit(obs::TraceEventKind::kGcLateEvent, kT0, a.tx,
                     static_cast<uint32_t>(a.kind), 0, pos);
      return;
    }
    book_.NoteRoot(root);
    // Resolution keys off the T0-level report, mirroring the solo rule.
    if ((a.kind == ActionKind::kReportCommit ||
         a.kind == ActionKind::kReportAbort) &&
        type_.depth(a.tx) == 1) {
      book_.NoteResolved(a.tx, a.kind == ActionKind::kReportAbort);
    }
  }
  if (obs::TraceEnabled()) {
    TxName span = HighTransactionOf(type_, a);
    if (span == kInvalidTx) span = kT0;
    obs::TraceEmit(obs::TraceEventKind::kActionIngested, span, a.tx,
                   static_cast<uint32_t>(a.kind), 0, pos);
  }
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_.IsAccess(a.tx)) {
        switch (tracker_.Watch(a.tx, pos)) {
          case VisibilityTracker::WatchResult::kVisible:
            ActivateOp(pos, a.tx, a.value);
            break;
          case VisibilityTracker::WatchResult::kParked:
            pending_ops_.emplace(pos, PendingOp{a.tx, a.value});
            break;
          case VisibilityTracker::WatchResult::kDead:
            break;  // can never become visible to T0
        }
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit: {
      std::vector<VisibilityTracker::Item> fired, dropped;
      tracker_.OnCommit(a.tx, &fired, &dropped);
      for (const auto& item : fired) {
        if ((item.tag & kScopeTagBit) != 0) {
          ActivateScope(static_cast<TxName>(item.tag & ~kScopeTagBit));
        } else {
          auto it = pending_ops_.find(item.tag);
          NTSG_CHECK(it != pending_ops_.end());
          ActivateOp(item.tag, it->second.tx, it->second.value);
          pending_ops_.erase(it);
        }
      }
      for (const auto& item : dropped) {
        if ((item.tag & kScopeTagBit) == 0) pending_ops_.erase(item.tag);
      }
      break;
    }
    case ActionKind::kAbort: {
      std::vector<VisibilityTracker::Item> dropped;
      tracker_.OnAbort(a.tx, &dropped);
      for (const auto& item : dropped) {
        if ((item.tag & kScopeTagBit) == 0) pending_ops_.erase(item.tag);
      }
      break;
    }
    default:
      break;  // CREATE and INFORM_* never affect the verdict.
  }
  if (config_.gc_interval > 0 && pos_ % config_.gc_interval == 0) RunGc();
}

void ConcurrentIngestPipeline::ActivateOp(uint64_t pos, TxName tx,
                                          const Value& v) {
  ++ops_routed_;
  obs::GetIngestMetrics().ops_routed->Inc();
  if (config_.gc_interval > 0) {
    book_.NoteOp(GcFamilyBook::RootOf(type_, tx), pos);
  }
  size_t shard = ShardOf(type_.ObjectOf(tx));
  obs::TraceEmit(obs::TraceEventKind::kOpRouted, tx, tx,
                 static_cast<uint32_t>(shard), 0, pos);
  Deliver(shard, WorkItem{WorkItem::Kind::kOp, pos, tx, v});
}

void ConcurrentIngestPipeline::InsertEdge(const SiblingEdge& e,
                                          bool is_conflict) {
  Stripe& stripe = *stripes_[StripeOf(e.parent)];
  std::unique_lock<std::mutex> lock(stripe.mu, std::defer_lock);
  {
    // Span covers only the wait for the stripe mutex, not the insert.
    obs::SpanTimer span(obs::GetIngestMetrics().stripe_lock_wait_us);
    lock.lock();
  }
  SiblingEdgeSet& dedup =
      is_conflict ? stripe.conflict_edges : stripe.precedes_edges;
  if (!dedup.Insert(e)) return;
  const uint8_t relation =
      is_conflict ? obs::kTraceFlagConflict : obs::kTraceFlagPrecedes;
  if (stripe.graph.AddEdge(e.from, e.to)) {
    obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, e.parent, e.from, e.to,
                   relation);
  } else {
    obs::TraceEmit(obs::TraceEventKind::kEdgeRejected, e.parent, e.from, e.to,
                   static_cast<uint8_t>(relation | obs::kTraceFlagCycle));
    acyclic_.store(false, std::memory_order_relaxed);
  }
}

void ConcurrentIngestPipeline::ScopeEvent(TxName parent, bool is_report,
                                          TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    if (tracker_.Watch(parent, kScopeTagBit | parent) ==
        VisibilityTracker::WatchResult::kVisible) {
      scope.visible = true;
    }
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) {
      if (earlier == child) continue;
      InsertEdge(SiblingEdge{parent, earlier, child}, /*is_conflict=*/false);
    }
  }
}

void ConcurrentIngestPipeline::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  for (const auto& [is_report, child] : scope.buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        if (earlier == child) continue;
        InsertEdge(SiblingEdge{parent, earlier, child}, /*is_conflict=*/false);
      }
    }
  }
  scope.buffer.clear();
}

void ConcurrentIngestPipeline::GcBarrier() {
  const uint64_t epoch = ++gc_epoch_;
  WorkItem sync;
  sync.kind = WorkItem::Kind::kGcSync;
  sync.pos = epoch;
  for (size_t i = 0; i < shards_.size(); ++i) Push(i, sync);
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardQueue& q = *shards_[i].queue;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(q.mu);
        q.gc_ack.wait(lock, [&] { return q.gc_acks >= epoch || q.crashed; });
        if (q.gc_acks >= epoch) break;
      }
      // The worker died before acking. The queue is durable, so the sync
      // item is still in it (or the crash item preceding it consumed the
      // incarnation first); the restarted worker drains through and acks.
      RestartShard(i);
    }
  }
}

void ConcurrentIngestPipeline::RunGc() {
  // Mirrors IncrementalCertifier::RunGc. A rejected verdict is final and
  // Finish's aggregation must see the graph that produced it.
  if (config_.gc_interval == 0 || gc_rejected_ ||
      !acyclic_.load(std::memory_order_relaxed)) {
    return;
  }
  obs::SpanTimer span(obs::GetGcMetrics().run_us);
  ++gc_stats_.runs;
  obs::GetGcMetrics().runs->Inc();

  uint64_t watermark = pos_;
  std::unordered_set<TxName> blocked;
  for (const auto& [pos, op] : pending_ops_) {
    if (tracker_.NeverVisible(op.tx)) continue;
    blocked.insert(GcFamilyBook::RootOf(type_, op.tx));
    watermark = std::min(watermark, pos);
  }
  for (const auto& [parent, scope] : scopes_) {
    if (parent == kT0 || scope.visible) continue;
    if (tracker_.NeverVisible(parent)) continue;
    blocked.insert(GcFamilyBook::RootOf(type_, parent));
  }
  // Pipeline-only constraint: an operation held back by a delivery fault is
  // activated but not yet applied — its position caps the watermark and its
  // family cannot seal. Fault-free this loop is empty, which is what keeps
  // the retirement schedule identical to a solo certifier's.
  for (const Shard& sh : shards_) {
    for (const HeldItem& h : sh.held) {
      blocked.insert(GcFamilyBook::RootOf(type_, h.item.tx));
      watermark = std::min(watermark, h.item.pos);
    }
  }

  gc_stats_.last_watermark = watermark;

  std::vector<TxName> sealed =
      book_.SealedCandidates(static_cast<size_t>(watermark), blocked);
  if (sealed.empty()) {
    obs::GetGcMetrics().live_families->Set(
        static_cast<int64_t>(book_.live_families()));
    return;  // nothing can retire; skip the (expensive) barrier
  }

  // Quiesce: after the barrier every routed operation has been applied, so
  // stripe 0 holds exactly the T0-level edges a solo certifier would have
  // at this position, and no worker emits edges until the prune is pushed.
  GcBarrier();

  // Cycles surface asynchronously (a worker flips acyclic_ mid-pass), so
  // the entry check alone lags a solo certifier. The barrier makes this
  // check exact: every op below the current position has been applied, so
  // graph state now equals a solo run's at the same prefix. A cycle is
  // final and its witness edges must survive, so the collector latches off
  // instead of retiring. (Value-inappropriateness does not stop collection
  // — see IncrementalCertifier::RunGc.)
  if (!acyclic_.load(std::memory_order_relaxed)) {
    gc_rejected_ = true;
    return;
  }

  // Predecessor closure over the T0 component (all of it lives in stripe 0:
  // StripeOf(kT0) == 0). Same fixpoint as the solo certifier.
  std::unordered_set<TxName> cand(sealed.begin(), sealed.end());
  {
    std::lock_guard<std::mutex> lock(stripes_[0]->mu);
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto it = cand.begin(); it != cand.end();) {
        bool keep = true;
        for (TxName p : stripes_[0]->graph.InNeighbors(*it)) {
          if (cand.count(p) == 0) {
            keep = false;
            break;
          }
        }
        if (keep) {
          ++it;
        } else {
          it = cand.erase(it);
          changed = true;
        }
      }
    }
  }

  std::vector<TxName> roots(cand.begin(), cand.end());
  std::sort(roots.begin(), roots.end());
  obs::TraceEmit(obs::TraceEventKind::kGcRun, kT0,
                 static_cast<uint32_t>(roots.size()), 0, 0, watermark);
  if (!roots.empty()) RetireFamilies(roots);
  size_t live_nodes = 0;
  for (const auto& stripe : stripes_) live_nodes += stripe->graph.node_count();
  obs::GetGcMetrics().live_nodes->Set(static_cast<int64_t>(live_nodes));
  obs::GetGcMetrics().live_families->Set(
      static_cast<int64_t>(book_.live_families()));
}

void ConcurrentIngestPipeline::RetireFamilies(const std::vector<TxName>& roots) {
  const std::unordered_set<TxName> rset(roots.begin(), roots.end());

  // The workers are idle between the barrier and the prune push, but the
  // locking discipline stays per-stripe anyway — it is the invariant the
  // rest of the pipeline is audited against.
  for (TxName root : roots) {
    size_t removed = 0;
    for (TxName t : type_.SubtreeOf(root)) {
      Stripe& stripe = *stripes_[StripeOf(type_.parent(t))];
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        size_t before = stripe.graph.node_count();
        stripe.graph.RemoveNode(t);
        removed += before - stripe.graph.node_count();
      }
      tracker_.Retire(t);
      scopes_.erase(t);
    }
    gc_stats_.retired_nodes += removed;
    obs::GetGcMetrics().nodes_retired->Inc(removed);
    ++gc_stats_.retired_families;
    obs::GetGcMetrics().families_retired->Inc();
    obs::TraceEmit(obs::TraceEventKind::kGcRetire, root, root, 0, 0, removed);
    book_.MarkRetired(root);
  }

  // Parked operations under a retired family are necessarily dead (live
  // ones would have blocked the seal).
  for (auto it = pending_ops_.begin(); it != pending_ops_.end();) {
    if (rset.count(GcFamilyBook::RootOf(type_, it->second.tx)) != 0) {
      it = pending_ops_.erase(it);
    } else {
      ++it;
    }
  }

  // Drop retired children from the T0 scope, order-preservingly, so future
  // top-level REQUEST_CREATEs stop emitting precedes edges to them.
  auto t0_scope = scopes_.find(kT0);
  if (t0_scope != scopes_.end()) {
    ParentScope& scope = t0_scope->second;
    scope.reported.erase(
        std::remove_if(scope.reported.begin(), scope.reported.end(),
                       [&](TxName t) { return rset.count(t) != 0; }),
        scope.reported.end());
    scope.buffer.erase(
        std::remove_if(scope.buffer.begin(), scope.buffer.end(),
                       [&](const std::pair<bool, TxName>& ev) {
                         return rset.count(ev.second) != 0;
                       }),
        scope.buffer.end());
  }

  // Reclaim the memoized edges of the retired scope and re-anchor each
  // stripe's Pearce-Kelly key space at its live population.
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->conflict_edges.EraseIf(
        [&](const SiblingEdge& e) { return RetiredScopeEdge(rset, e); });
    stripe->precedes_edges.EraseIf(
        [&](const SiblingEdge& e) { return RetiredScopeEdge(rset, e); });
    stripe->graph.CompactOrders();
  }

  // Retired families make whole sealed WAL segments droppable: a segment
  // every one of whose actions belongs to a retired family can never be
  // needed by recovery again.
  if (wal_ != nullptr && wal_status_.ok()) {
    size_t dropped = 0;
    wal_status_ = wal_->DropRetiredSegments(
        [this](TxName root) { return book_.IsRetired(root); }, &dropped);
    wal_segments_dropped_ += dropped;
  }

  // Fan the cumulative retired set out so each shard prunes its object
  // states before it applies anything the router routes after this pass.
  auto cumulative =
      std::make_shared<const std::unordered_set<TxName>>(book_.retired_roots());
  WorkItem prune;
  prune.kind = WorkItem::Kind::kGcPrune;
  prune.gc_roots = cumulative;
  for (size_t i = 0; i < shards_.size(); ++i) Push(i, prune);
}

size_t ConcurrentIngestPipeline::TotalQueueDepth() {
  size_t depth = 0;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.queue->mu);
    depth += sh.queue->items.size();
  }
  return depth;
}

ConcurrentIngestReport ConcurrentIngestPipeline::Finish() {
  NTSG_CHECK(!finished_) << "Finish called twice";
  finished_ = true;

  // Release every delivery still held back by a delay/reorder fault — the
  // trace is over, so "later" is now.
  if (faults_ != nullptr) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = shards_[i];
      std::vector<HeldItem> held = std::move(shard.held);
      shard.held.clear();
      for (HeldItem& h : held) Push(i, std::move(h.item));
    }
  }

  for (Shard& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard.queue->mu);
      shard.queue->closed = true;
    }
    shard.queue->can_pop.notify_all();
  }
  for (Shard& shard : shards_) {
    if (shard.worker.joinable()) shard.worker.join();
  }

  // A shard whose worker died after the close sees no restart from Push;
  // finish its work here on the router thread: recover, then drain whatever
  // the dead worker left in the queue (which may itself contain further
  // crash/snapshot control items).
  for (Shard& shard : shards_) {
    if (shard.queue == nullptr || !shard.queue->crashed) continue;
    Recover(shard);
    std::deque<WorkItem> leftover = std::move(shard.queue->items);
    shard.queue->items.clear();
    shard.queue->crashed = false;
    for (const WorkItem& item : leftover) {
      switch (item.kind) {
        case WorkItem::Kind::kOp:
          ApplyOp(shard, item, /*record_log=*/true);
          break;
        case WorkItem::Kind::kSnapshot:
          TakeSnapshot(shard);
          break;
        case WorkItem::Kind::kGcSync:
          break;  // no waiter left; the barrier never outlives Ingest
        case WorkItem::Kind::kGcPrune:
          ApplyGcPrune(shard, item, /*record_log=*/true);
          break;
        case WorkItem::Kind::kCrash:
          Recover(shard);
          break;
      }
    }
  }

  ConcurrentIngestReport report;
  report.acyclic = acyclic_.load(std::memory_order_relaxed);
  report.actions_ingested = pos_;
  report.ops_routed = ops_routed_;
  for (const Shard& shard : shards_) {
    for (const auto& [x, state] : shard.objects) {
      if (!state->legal()) report.appropriate = false;
    }
  }
  std::vector<SiblingEdge> conflict_edges;
  std::vector<SiblingEdge> precedes_edges;
  for (const auto& stripe : stripes_) {
    report.conflict_edge_count += stripe->conflict_edges.size();
    report.precedes_edge_count += stripe->precedes_edges.size();
    // The raw arenas may carry dead sentinels (parent == kInvalidTx) from
    // GC erasures that have not hit a compaction point; skip them.
    stripe->conflict_edges.ForEach(
        [&](const SiblingEdge& e) { conflict_edges.push_back(e); });
    stripe->precedes_edges.ForEach(
        [&](const SiblingEdge& e) { precedes_edges.push_back(e); });
  }
  report.graph_fingerprint = FingerprintSerializationGraph(
      std::move(conflict_edges), std::move(precedes_edges));
  if (faults_ != nullptr) {
    report.faults = faults_->stats();
    PublishFaultStats(report.faults);
  }
  if (config_.gc_interval > 0) {
    gc_stats_.pruned_ops = gc_pruned_ops_.load(std::memory_order_relaxed);
    report.gc = gc_stats_;
    report.retired_roots = book_.SortedRetiredRoots();
  }
  if (wal_ != nullptr) {
    // Seal the tail so the directory ends at a durable boundary; everything
    // before this line already survives as a scannable unsealed tail.
    if (wal_status_.ok()) wal_status_ = wal_->SealActive();
    report.wal_appended = wal_appended_;
    report.wal_segments_sealed = wal_->num_sealed_segments();
    report.wal_segments_dropped = wal_segments_dropped_;
    report.wal_status = wal_status_;
  }
  for (Shard& shard : shards_) shard.queue_depth->Set(0);
  return report;
}

ConcurrentIngestReport ConcurrentIngestPipeline::Run(
    const SystemType& type, const Trace& beta, ConflictMode mode,
    const ConcurrentIngestConfig& config) {
  ConcurrentIngestPipeline pipeline(type, mode, config);
  for (const Action& a : beta) pipeline.Ingest(a);
  return pipeline.Finish();
}

}  // namespace ntsg
