#include "sim/concurrent_ingest.h"

#include <utility>

#include "common/logging.h"

namespace ntsg {

namespace {

// splitmix64: cheap, well-mixed hash for the seeded object -> shard map.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ConcurrentIngestPipeline::ConcurrentIngestPipeline(
    const SystemType& type, ConflictMode mode,
    const ConcurrentIngestConfig& config)
    : type_(type), mode_(mode), config_(config), tracker_(type) {
  NTSG_CHECK(config_.num_shards > 0);
  NTSG_CHECK(config_.num_stripes > 0);
  NTSG_CHECK(config_.queue_capacity > 0);
  stripes_.reserve(config_.num_stripes);
  for (size_t i = 0; i < config_.num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  shards_.resize(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i].queue = std::make_unique<ShardQueue>();
  }
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i].worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

ConcurrentIngestPipeline::~ConcurrentIngestPipeline() {
  if (!finished_) Finish();
}

size_t ConcurrentIngestPipeline::ShardOf(ObjectId x) const {
  return Mix64(static_cast<uint64_t>(x) ^ config_.seed) % config_.num_shards;
}

size_t ConcurrentIngestPipeline::StripeOf(TxName parent) const {
  return static_cast<size_t>(parent) % config_.num_stripes;
}

void ConcurrentIngestPipeline::Push(size_t shard, WorkItem item) {
  ShardQueue& q = *shards_[shard].queue;
  std::unique_lock<std::mutex> lock(q.mu);
  q.can_push.wait(lock,
                  [&] { return q.items.size() < config_.queue_capacity; });
  q.items.push_back(std::move(item));
  q.can_pop.notify_one();
}

void ConcurrentIngestPipeline::WorkerLoop(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  ShardQueue& q = *shard.queue;
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(q.mu);
      q.can_pop.wait(lock, [&] { return !q.items.empty() || q.closed; });
      if (q.items.empty()) return;  // closed and drained
      item = std::move(q.items.front());
      q.items.pop_front();
      q.can_push.notify_one();
    }

    ObjectId x = type_.ObjectOf(item.tx);
    std::unique_ptr<ObjectIngestState>& state = shard.objects[x];
    if (state == nullptr) {
      state = std::make_unique<ObjectIngestState>(type_, x);
    }
    std::vector<std::pair<TxName, TxName>> pairs;
    state->InsertVisibleOp(item.pos, item.tx, item.value, mode_, &pairs);
    ++shard.ops_processed;

    for (const auto& [earlier, later] : pairs) {
      TxName lca = type_.Lca(earlier, later);
      TxName from = type_.ChildToward(lca, earlier);
      TxName to = type_.ChildToward(lca, later);
      if (from == to) continue;
      InsertEdge(SiblingEdge{lca, from, to}, /*is_conflict=*/true);
    }
  }
}

void ConcurrentIngestPipeline::InsertEdge(const SiblingEdge& e,
                                          bool is_conflict) {
  Stripe& stripe = *stripes_[StripeOf(e.parent)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::set<SiblingEdge>& dedup =
      is_conflict ? stripe.conflict_edges : stripe.precedes_edges;
  if (!dedup.insert(e).second) return;
  if (!stripe.graph.AddEdge(e.from, e.to)) {
    acyclic_.store(false, std::memory_order_relaxed);
  }
}

void ConcurrentIngestPipeline::Ingest(const Action& a) {
  NTSG_CHECK(!finished_) << "Ingest after Finish";
  uint64_t pos = pos_++;
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_.IsAccess(a.tx)) {
        TxName tx = a.tx;
        Value v = a.value;
        tracker_.Watch(tx, [this, pos, tx, v] {
          ++ops_routed_;
          Push(ShardOf(type_.ObjectOf(tx)), WorkItem{pos, tx, v});
        });
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit:
      tracker_.OnCommit(a.tx);
      break;
    case ActionKind::kAbort:
      tracker_.OnAbort(a.tx);
      break;
    default:
      break;  // CREATE and INFORM_* never affect the verdict.
  }
}

void ConcurrentIngestPipeline::ScopeEvent(TxName parent, bool is_report,
                                          TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    tracker_.Watch(parent, [this, parent] { ActivateScope(parent); });
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) {
      if (earlier == child) continue;
      InsertEdge(SiblingEdge{parent, earlier, child}, /*is_conflict=*/false);
    }
  }
}

void ConcurrentIngestPipeline::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  for (const auto& [is_report, child] : scope.buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        if (earlier == child) continue;
        InsertEdge(SiblingEdge{parent, earlier, child}, /*is_conflict=*/false);
      }
    }
  }
  scope.buffer.clear();
}

ConcurrentIngestReport ConcurrentIngestPipeline::Finish() {
  NTSG_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  for (Shard& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard.queue->mu);
      shard.queue->closed = true;
    }
    shard.queue->can_pop.notify_all();
  }
  for (Shard& shard : shards_) shard.worker.join();

  ConcurrentIngestReport report;
  report.acyclic = acyclic_.load(std::memory_order_relaxed);
  report.actions_ingested = pos_;
  report.ops_routed = ops_routed_;
  for (const Shard& shard : shards_) {
    for (const auto& [x, state] : shard.objects) {
      if (!state->legal()) report.appropriate = false;
    }
  }
  for (const auto& stripe : stripes_) {
    report.conflict_edge_count += stripe->conflict_edges.size();
    report.precedes_edge_count += stripe->precedes_edges.size();
  }
  return report;
}

ConcurrentIngestReport ConcurrentIngestPipeline::Run(
    const SystemType& type, const Trace& beta, ConflictMode mode,
    const ConcurrentIngestConfig& config) {
  ConcurrentIngestPipeline pipeline(type, mode, config);
  for (const Action& a : beta) pipeline.Ingest(a);
  return pipeline.Finish();
}

}  // namespace ntsg
