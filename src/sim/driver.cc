#include "sim/driver.h"

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "generic/controller.h"
#include "obs/families.h"
#include "obs/trace.h"
#include "generic/generic_object.h"
#include "moss/broken.h"
#include "moss/moss_object.h"
#include "moss/read_update_object.h"
#include "mvto/mvto_object.h"
#include "mvto/timestamp_authority.h"
#include "sgt/coordinator.h"
#include "sgt/sgt_object.h"
#include "undo/broken.h"
#include "undo/undo_object.h"

namespace ntsg {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kMoss:
      return "moss";
    case Backend::kDirtyReadMoss:
      return "moss_dirty_read";
    case Backend::kNoReadLockMoss:
      return "moss_no_read_lock";
    case Backend::kIgnoreReadersMoss:
      return "moss_ignore_readers";
    case Backend::kUndo:
      return "undo";
    case Backend::kNoCommuteUndo:
      return "undo_no_commute";
    case Backend::kSgt:
      return "sgt";
    case Backend::kGeneralLocking:
      return "general_locking";
    case Backend::kMvto:
      return "mvto";
  }
  return "?";
}

bool IsBrokenBackend(Backend backend) {
  switch (backend) {
    case Backend::kDirtyReadMoss:
    case Backend::kNoReadLockMoss:
    case Backend::kIgnoreReadersMoss:
    case Backend::kNoCommuteUndo:
      return true;
    default:
      return false;
  }
}

Simulation::Simulation(SystemType* type, std::unique_ptr<ProgramNode> root)
    : type_(type), root_(std::move(root)) {
  NTSG_CHECK(root_->kind == ProgramNode::Kind::kComposite);
}

Simulation::~Simulation() = default;

namespace {

std::unique_ptr<GenericObject> MakeBackendObject(
    const SimConfig& config, const SystemType& type, ObjectId x,
    SgtCoordinator* coordinator, TimestampAuthority* authority) {
  Backend backend = config.backend;
  switch (backend) {
    case Backend::kMoss:
      return std::make_unique<MossObject>(type, x);
    case Backend::kDirtyReadMoss:
      return std::make_unique<DirtyReadMossObject>(type, x);
    case Backend::kNoReadLockMoss:
      return std::make_unique<NoReadLockMossObject>(type, x);
    case Backend::kIgnoreReadersMoss:
      return std::make_unique<IgnoreReadersMossObject>(type, x);
    case Backend::kUndo:
      return std::make_unique<UndoObject>(type, x,
                                          config.undo_log_compaction);
    case Backend::kNoCommuteUndo:
      return std::make_unique<NoCommuteCheckUndoObject>(type, x);
    case Backend::kSgt:
      return std::make_unique<SgtObject>(type, x, coordinator);
    case Backend::kGeneralLocking:
      return std::make_unique<ReadUpdateObject>(type, x);
    case Backend::kMvto:
      return std::make_unique<MvtoObject>(type, x, authority);
  }
  NTSG_CHECK(false);
  return nullptr;
}

}  // namespace

namespace {
constexpr size_t kNoComponent = static_cast<size_t>(-1);
}  // namespace

void Simulation::RouteAction(const Action& a,
                             std::vector<size_t>* participants) const {
  participants->clear();
  // Component layout: 0 = controller, 1..num_objects = objects, then
  // scripted transactions in attachment order (tracked in scripted_index_).
  participants->push_back(0);  // The controller participates in everything.
  auto add_script = [&](TxName t) {
    if (t < scripted_index_.size() && scripted_index_[t] != kNoComponent) {
      participants->push_back(scripted_index_[t]);
    }
  };
  switch (a.kind) {
    case ActionKind::kCreate:
    case ActionKind::kRequestCommit:
      if (type_->IsAccess(a.tx)) {
        participants->push_back(1 + type_->ObjectOf(a.tx));
      } else {
        add_script(a.tx);
      }
      break;
    case ActionKind::kRequestCreate:
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      add_script(type_->parent(a.tx));
      break;
    case ActionKind::kCommit:
    case ActionKind::kAbort:
      break;  // Controller only.
    case ActionKind::kInformCommit:
    case ActionKind::kInformAbort:
      participants->push_back(1 + a.at_object);
      break;
  }
}

TxName Simulation::PickStallVictim(Rng& rng, StallPolicy policy) const {
  // Uniform choice of a live pending access without materializing the
  // candidate list (stall resolution fires often under contention and the
  // pending population can be large): count, draw once, select — the same
  // single RNG draw as a materialized pick, so traces are unchanged.
  size_t candidates = 0;
  for (const GenericObject* obj : objects_) {
    for (TxName t : obj->pending_set()) {
      if (!controller_->IsCompleted(t)) ++candidates;
    }
  }
  if (candidates == 0) return kInvalidTx;
  size_t k = rng.NextBelow(candidates);
  TxName access = kInvalidTx;
  for (const GenericObject* obj : objects_) {
    for (TxName t : obj->pending_set()) {
      if (controller_->IsCompleted(t)) continue;
      if (k == 0) {
        access = t;
        break;
      }
      --k;
    }
    if (access != kInvalidTx) break;
  }
  if (policy == StallPolicy::kAbortInnermost) {
    // Finest-grained release: the blocked access's nearest live enclosing
    // transaction. Repeated stalls walk further up as ancestors complete.
    for (TxName u = type_->parent(access); u != kT0; u = type_->parent(u)) {
      if (!controller_->IsCompleted(u)) return u;
    }
    return access;  // Degenerate: access directly under T0.
  }
  // Coarsest release: the highest incomplete ancestor strictly below T0 —
  // abort the whole top-level transaction.
  TxName victim = access;
  for (TxName u = access; u != kT0; u = type_->parent(u)) {
    if (!controller_->IsCompleted(u)) victim = u;
  }
  return victim;
}

SimResult Simulation::Run(const SimConfig& config) {
  Rng rng(config.seed);
  if (config.backend == Backend::kSgt) {
    coordinator_ = std::make_unique<SgtCoordinator>(*type_);
  }
  std::unique_ptr<FaultInjector> abort_faults;
  std::unique_ptr<FaultInjector> admission_faults;
  if (config.fault_plan != nullptr) {
    abort_faults.reset(
        new FaultInjector(*config.fault_plan, {FaultKind::kInjectAbort}));
    if (coordinator_ != nullptr) {
      admission_faults.reset(
          new FaultInjector(*config.fault_plan, {FaultKind::kSpuriousReject}));
      coordinator_->SetFaultInjector(admission_faults.get());
    }
  }
  if (config.backend == Backend::kMvto) {
    authority_ = std::make_unique<TimestampAuthority>(*type_);
  }

  controller_ = composition_.Add(std::make_unique<GenericController>(*type_));
  objects_.clear();
  for (ObjectId x = 0; x < type_->num_objects(); ++x) {
    objects_.push_back(composition_.Add(MakeBackendObject(
        config, *type_, x, coordinator_.get(), authority_.get())));
  }
  composition_.Add(std::make_unique<ScriptedTransaction>(
      type_, &registry_, kT0, root_.get(), /*is_root=*/true));
  scripted_index_.assign(type_->num_names(), kNoComponent);
  scripted_index_[kT0] = composition_.size() - 1;

  SimStats stats;
  std::vector<size_t> participants;
  while (stats.steps < config.max_steps) {
    Action a;
    if (!composition_.SampleEnabled(rng, &a)) {
      // Quiescent: either done, or blocked accesses need an abort.
      TxName victim = PickStallVictim(rng, config.stall_policy);
      if (victim == kInvalidTx) {
        stats.completed = true;
        break;
      }
      if (stats.stall_aborts_injected >= config.max_stall_aborts) break;
      obs::GetDriverMetrics().stall_events->Inc();
      obs::GetDriverMetrics().aborts_stall->Inc();
      obs::TraceEmit(obs::TraceEventKind::kStallAbort, type_->parent(victim),
                     victim, 0, obs::kTraceFlagAbort, stats.steps);
      controller_->RequestAbort(victim);
      composition_.Invalidate(0);  // Only the controller's state changed.
      ++stats.stall_aborts_injected;
      continue;
    }

    RouteAction(a, &participants);
    Status s = composition_.ExecuteRouted(a, participants);
    NTSG_CHECK(s.ok()) << s.ToString();
    if (obs::TraceEnabled()) {
      TxName span = HighTransactionOf(*type_, a);
      if (span == kInvalidTx) span = kT0;
      obs::TraceEmit(obs::TraceEventKind::kActionExecuted, span, a.tx,
                     static_cast<uint32_t>(a.kind), 0, stats.steps);
    }
    ++stats.steps;
    obs::GetDriverMetrics().steps->Inc();

    // SGT objects share the coordinator graph: any action that mutates it
    // (a response adds edges, an abort removes them) invalidates every
    // other object's cached precondition check. Only the object components
    // consult the coordinator.
    if (config.backend == Backend::kSgt &&
        ((a.kind == ActionKind::kRequestCommit && type_->IsAccess(a.tx)) ||
         a.kind == ActionKind::kInformAbort)) {
      for (size_t i = 0; i < objects_.size(); ++i) {
        composition_.Invalidate(1 + i);
      }
    }

    // Timestamps are assigned at creation-request time.
    if (authority_ != nullptr && a.kind == ActionKind::kRequestCreate) {
      authority_->OnRequestCreate(a.tx);
    }

    // Attach automata for freshly requested composite children.
    if (a.kind == ActionKind::kRequestCreate && !type_->IsAccess(a.tx)) {
      const ProgramNode* program = registry_.Lookup(a.tx);
      NTSG_CHECK(program != nullptr)
          << "no program registered for " << type_->NameOf(a.tx);
      composition_.Add(std::make_unique<ScriptedTransaction>(
          type_, &registry_, a.tx, program, /*is_root=*/false));
      if (scripted_index_.size() < type_->num_names()) {
        scripted_index_.resize(type_->num_names(), kNoComponent);
      }
      scripted_index_[a.tx] = composition_.size() - 1;
    }

    if (config.spontaneous_abort_prob > 0 &&
        rng.NextBool(config.spontaneous_abort_prob)) {
      std::vector<TxName> live = controller_->LiveCreated();
      if (!live.empty()) {
        TxName victim = live[rng.NextBelow(live.size())];
        obs::TraceEmit(obs::TraceEventKind::kInjectedAbort,
                       type_->parent(victim), victim, 0, obs::kTraceFlagAbort,
                       stats.steps);
        controller_->RequestAbort(victim);
        composition_.Invalidate(0);  // Only the controller's state changed.
        ++stats.random_aborts_injected;
        obs::GetDriverMetrics().aborts_random->Inc();
      }
    }

    // Plan-scheduled controller aborts: the paper's controller may abort any
    // non-completed transaction at any moment, so these are legal moves —
    // just ones a chaos seed replays exactly.
    if (abort_faults != nullptr) {
      std::vector<FaultEvent> fired;
      if (abort_faults->Poll(stats.steps, &fired)) {
        for (const FaultEvent& e : fired) {
          std::vector<TxName> live = controller_->LiveCreated();
          if (live.empty()) continue;
          TxName victim = live[e.param % live.size()];
          obs::TraceEmit(obs::TraceEventKind::kInjectedAbort,
                         type_->parent(victim), victim, 0,
                         obs::kTraceFlagAbort, stats.steps);
          controller_->RequestAbort(victim);
          composition_.Invalidate(0);
          ++abort_faults->stats().injected_aborts;
          ++stats.plan_aborts_injected;
          obs::GetDriverMetrics().aborts_plan->Inc();
        }
      }
    }
  }

  if (coordinator_ != nullptr && admission_faults != nullptr) {
    stats.spurious_rejects_injected =
        admission_faults->stats().spurious_rejects;
    obs::GetDriverMetrics().aborts_spurious->Inc(
        stats.spurious_rejects_injected);
    coordinator_->SetFaultInjector(nullptr);  // outlives this local injector
  }
  if (abort_faults != nullptr) PublishFaultStats(abort_faults->stats());
  if (admission_faults != nullptr) {
    PublishFaultStats(admission_faults->stats());
  }

  SimResult result;
  result.trace = composition_.TakeBehavior();
  for (const Action& a : result.trace) {
    switch (a.kind) {
      case ActionKind::kRequestCommit:
        if (type_->IsAccess(a.tx)) ++stats.access_responses;
        break;
      case ActionKind::kCommit:
        ++stats.commits;
        if (type_->parent(a.tx) == kT0) ++stats.toplevel_committed;
        break;
      case ActionKind::kAbort:
        ++stats.aborts;
        if (type_->parent(a.tx) == kT0) ++stats.toplevel_aborted;
        break;
      default:
        break;
    }
  }
  result.stats = stats;
  return result;
}

QuickRunResult QuickRun(const QuickRunParams& params) {
  QuickRunResult out;
  out.type = std::make_unique<SystemType>();
  for (size_t i = 0; i < params.num_objects; ++i) {
    out.type->AddObject(params.object_type, "X" + std::to_string(i),
                        params.initial_value);
  }
  Rng rng(params.config.seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<std::unique_ptr<ProgramNode>> tops;
  for (size_t i = 0; i < params.num_toplevel; ++i) {
    tops.push_back(GenerateProgram(*out.type, params.gen, rng));
  }
  auto root = MakePar(std::move(tops), params.toplevel_retries);
  Simulation sim(out.type.get(), std::move(root));
  out.sim = sim.Run(params.config);
  return out;
}

}  // namespace ntsg
