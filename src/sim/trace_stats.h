#ifndef NTSG_SIM_TRACE_STATS_H_
#define NTSG_SIM_TRACE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tx/trace.h"

namespace ntsg {

/// Post-hoc statistics over a behavior, for reporting and workload tuning.
/// All figures are derived purely from the trace (any event source works).
struct TraceStats {
  size_t events = 0;
  std::map<ActionKind, size_t> per_kind;

  // Transaction outcomes by depth (depth 1 = top-level).
  std::map<uint32_t, size_t> committed_by_depth;
  std::map<uint32_t, size_t> aborted_by_depth;

  // Every action counted at the nesting depth of its subject transaction
  // (T0 events land at depth 0). The shape a workload generator actually
  // produced, as opposed to the outcome counts above which only see
  // COMMIT/ABORT.
  std::map<uint32_t, size_t> actions_by_depth;

  // Access traffic per object, split by modifying vs observer operations.
  struct ObjectTraffic {
    size_t updates = 0;
    size_t observers = 0;
  };
  std::map<ObjectId, ObjectTraffic> per_object;

  // The same traffic aggregated by object class (read/write register,
  // counter, set, ...) — the commutativity mix that decides how much SG(β)
  // benefits from type-specific conflict predicates (paper Section 6).
  std::map<ObjectType, ObjectTraffic> object_class_mix;

  // "Latency" of committed transactions, in trace positions from CREATE to
  // COMMIT — a proxy for how long work stayed live.
  size_t committed_count = 0;
  double mean_commit_latency = 0;
  size_t max_commit_latency = 0;

  // Retries: sibling access instances with identical access specs under the
  // same parent (heuristic, exact for generated workloads where retries are
  // the only duplicated specs).
  size_t access_responses = 0;

  std::string ToString(const SystemType& type) const;
};

TraceStats ComputeTraceStats(const SystemType& type, const Trace& trace);

}  // namespace ntsg

#endif  // NTSG_SIM_TRACE_STATS_H_
