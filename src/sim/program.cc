#include "sim/program.h"

#include "common/logging.h"
#include "tx/system_type.h"

namespace ntsg {

std::unique_ptr<ProgramNode> MakeAccess(ObjectId object, OpCode op,
                                        int64_t arg) {
  auto node = std::make_unique<ProgramNode>();
  node->kind = ProgramNode::Kind::kAccess;
  node->access = AccessSpec{object, op, arg};
  return node;
}

std::unique_ptr<ProgramNode> MakeSeq(
    std::vector<std::unique_ptr<ProgramNode>> children, int child_retries) {
  auto node = std::make_unique<ProgramNode>();
  node->kind = ProgramNode::Kind::kComposite;
  node->children = std::move(children);
  node->sequential = true;
  node->child_retries = child_retries;
  return node;
}

std::unique_ptr<ProgramNode> MakePar(
    std::vector<std::unique_ptr<ProgramNode>> children, int child_retries) {
  auto node = std::make_unique<ProgramNode>();
  node->kind = ProgramNode::Kind::kComposite;
  node->children = std::move(children);
  node->sequential = false;
  node->child_retries = child_retries;
  return node;
}

namespace {

/// Picks an operation suited to the object's type.
AccessSpec RandomAccess(const SystemType& type, const ProgramGenParams& params,
                        const ZipfSampler& zipf, Rng& rng) {
  ObjectId x = static_cast<ObjectId>(zipf.Sample(rng));
  int64_t arg = rng.NextInRange(0, params.max_arg);
  bool read = rng.NextBool(params.read_prob);
  OpCode op = OpCode::kRead;
  switch (type.object_type(x)) {
    case ObjectType::kReadWrite:
      op = read ? OpCode::kRead : OpCode::kWrite;
      break;
    case ObjectType::kCounter:
      op = read ? OpCode::kCounterRead
                : (rng.NextBool(0.5) ? OpCode::kIncrement : OpCode::kDecrement);
      break;
    case ObjectType::kSet:
      op = read ? (rng.NextBool(0.7) ? OpCode::kContains : OpCode::kSetSize)
                : (rng.NextBool(0.7) ? OpCode::kAdd : OpCode::kRemove);
      // Keep the element universe small so operations actually collide.
      arg = rng.NextInRange(0, 9);
      break;
    case ObjectType::kQueue:
      op = read ? OpCode::kQueueSize
                : (rng.NextBool(0.5) ? OpCode::kEnqueue : OpCode::kDequeue);
      break;
    case ObjectType::kBankAccount:
      op = read ? OpCode::kBalance
                : (rng.NextBool(0.5) ? OpCode::kDeposit : OpCode::kWithdraw);
      break;
  }
  return AccessSpec{x, op, arg};
}

std::unique_ptr<ProgramNode> Generate(const SystemType& type,
                                      const ProgramGenParams& params,
                                      const ZipfSampler& zipf, Rng& rng,
                                      int depth) {
  if (depth <= 0) {
    AccessSpec spec = RandomAccess(type, params, zipf, rng);
    return MakeAccess(spec.object, spec.op, spec.arg);
  }
  auto node = std::make_unique<ProgramNode>();
  node->kind = ProgramNode::Kind::kComposite;
  node->sequential = rng.NextBool(params.sequential_prob);
  node->child_retries = params.child_retries;
  for (int i = 0; i < params.fanout; ++i) {
    bool early = depth > 1 && rng.NextBool(params.early_access_prob);
    node->children.push_back(
        Generate(type, params, zipf, rng, early ? 0 : depth - 1));
  }
  return node;
}

}  // namespace

std::unique_ptr<ProgramNode> GenerateProgram(const SystemType& type,
                                             const ProgramGenParams& params,
                                             Rng& rng) {
  NTSG_CHECK_GT(type.num_objects(), 0u);
  NTSG_CHECK_GE(params.depth, 1);
  ZipfSampler zipf(type.num_objects(), params.zipf_s);
  return Generate(type, params, zipf, rng, params.depth);
}

size_t CountAccesses(const ProgramNode& node) {
  if (node.kind == ProgramNode::Kind::kAccess) return 1;
  size_t n = 0;
  for (const auto& c : node.children) n += CountAccesses(*c);
  return n;
}

}  // namespace ntsg
