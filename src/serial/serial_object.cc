#include "serial/serial_object.h"

#include "common/logging.h"

namespace ntsg {

void SerialObjectAutomaton::Apply(const Action& a) {
  if (a.kind == ActionKind::kCreate) {
    NTSG_CHECK(!active_.has_value())
        << name() << ": CREATE while an invocation is pending";
    active_ = a.tx;
    return;
  }
  NTSG_CHECK(a.kind == ActionKind::kRequestCommit);
  NTSG_CHECK(active_.has_value() && *active_ == a.tx);
  const AccessSpec& acc = type_.access(a.tx);
  Value v = spec_->Apply(acc.op, acc.arg);
  NTSG_CHECK(v == a.value) << name() << ": scheduled response "
                           << a.value.ToString() << " but spec yields "
                           << v.ToString();
  active_.reset();
}

std::vector<Action> SerialObjectAutomaton::EnabledOutputs() const {
  std::vector<Action> out;
  if (active_.has_value()) {
    const AccessSpec& acc = type_.access(*active_);
    // Peek the deterministic return value without disturbing state.
    std::unique_ptr<SerialSpec> probe = spec_->Clone();
    out.push_back(Action::RequestCommit(*active_, probe->Apply(acc.op, acc.arg)));
  }
  return out;
}

}  // namespace ntsg
