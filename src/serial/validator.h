#ifndef NTSG_SERIAL_VALIDATOR_H_
#define NTSG_SERIAL_VALIDATOR_H_

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Hook by which the caller vouches that γ|T is a possible behavior of the
/// transaction automaton A_T. The serial system's correctness definition
/// quantifies over the *same* transaction automata as the concurrent system;
/// the simulation layer implements this oracle for its scripted programs.
class TransactionOracle {
 public:
  virtual ~TransactionOracle() = default;

  /// `projection` is γ|T for the non-access transaction `t` (T0 included).
  virtual Status ValidateProjection(const SystemType& type, TxName t,
                                    const Trace& projection) const = 0;
};

/// Decides whether γ is a finite behavior of the serial system (Section
/// 2.2.4): every scheduler output satisfies the serial scheduler's
/// preconditions at its position, every object response equals the serial
/// spec's return value, projections are well-formed, and (if an oracle is
/// given) each non-access projection is a possible behavior of A_T.
///
/// Returns OK iff γ qualifies; the error identifies the first violation.
Status ValidateSerialBehavior(const SystemType& type, const Trace& gamma,
                              const TransactionOracle* oracle = nullptr);

}  // namespace ntsg

#endif  // NTSG_SERIAL_VALIDATOR_H_
