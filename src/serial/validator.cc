#include "serial/validator.h"

#include <map>
#include <memory>
#include <set>

#include "spec/serial_spec.h"
#include "tx/trace_checks.h"

namespace ntsg {

namespace {

struct SchedulerState {
  std::set<TxName> create_requested;
  std::set<TxName> created;
  std::map<TxName, Value> commit_requested;
  std::set<TxName> committed;
  std::set<TxName> aborted;
  std::set<TxName> reported;
  std::map<TxName, int> live_children;

  bool IsCompleted(TxName t) const {
    return committed.count(t) || aborted.count(t);
  }
  int LiveChildren(TxName p) const {
    auto it = live_children.find(p);
    return it == live_children.end() ? 0 : it->second;
  }
};

}  // namespace

Status ValidateSerialBehavior(const SystemType& type, const Trace& gamma,
                              const TransactionOracle* oracle) {
  SchedulerState st;
  // One serial spec per object, advanced at each access response.
  std::vector<std::unique_ptr<SerialSpec>> specs;
  std::vector<std::optional<TxName>> active(type.num_objects());
  specs.reserve(type.num_objects());
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    specs.push_back(MakeSpec(type.object_type(x), type.object_initial(x)));
  }

  std::set<TxName> mentioned;  // Non-access transactions with events.

  for (size_t i = 0; i < gamma.size(); ++i) {
    const Action& a = gamma[i];
    auto fail = [&](const std::string& why) {
      return Status::VerificationFailed("serial validator at event " +
                                        std::to_string(i) + " (" +
                                        a.ToString(type) + "): " + why);
    };
    if (!a.IsSerial()) return fail("INFORM actions are not serial actions");

    TxName tr = TransactionOf(type, a);
    if (tr != kInvalidTx && !type.IsAccess(tr)) mentioned.insert(tr);

    switch (a.kind) {
      case ActionKind::kRequestCreate:
        if (a.tx == kT0) return fail("REQUEST_CREATE(T0)");
        st.create_requested.insert(a.tx);
        break;
      case ActionKind::kCreate: {
        if (a.tx == kT0) return fail("CREATE(T0)");
        if (!st.create_requested.count(a.tx)) return fail("not requested");
        if (st.created.count(a.tx)) return fail("already created");
        if (st.aborted.count(a.tx)) return fail("already aborted");
        if (st.LiveChildren(type.parent(a.tx)) != 0) {
          return fail("a sibling is live (siblings must run serially)");
        }
        st.created.insert(a.tx);
        st.live_children[type.parent(a.tx)]++;
        if (type.IsAccess(a.tx)) {
          ObjectId x = type.ObjectOf(a.tx);
          if (active[x].has_value()) {
            return fail("object has a pending invocation");
          }
          active[x] = a.tx;
        }
        break;
      }
      case ActionKind::kRequestCommit: {
        if (st.commit_requested.count(a.tx)) {
          return fail("duplicate REQUEST_COMMIT");
        }
        if (type.IsAccess(a.tx)) {
          ObjectId x = type.ObjectOf(a.tx);
          if (!active[x].has_value() || *active[x] != a.tx) {
            return fail("access responds without pending invocation");
          }
          const AccessSpec& acc = type.access(a.tx);
          Value v = specs[x]->Apply(acc.op, acc.arg);
          if (!(v == a.value)) {
            return fail("serial spec yields " + v.ToString() +
                        ", behavior records " + a.value.ToString());
          }
          active[x].reset();
        }
        st.commit_requested.emplace(a.tx, a.value);
        break;
      }
      case ActionKind::kCommit:
        if (a.tx == kT0) return fail("COMMIT(T0)");
        if (!st.commit_requested.count(a.tx)) {
          return fail("COMMIT without REQUEST_COMMIT");
        }
        if (st.IsCompleted(a.tx)) return fail("second completion");
        st.committed.insert(a.tx);
        st.live_children[type.parent(a.tx)]--;
        break;
      case ActionKind::kAbort:
        if (a.tx == kT0) return fail("ABORT(T0)");
        if (!st.create_requested.count(a.tx)) {
          return fail("ABORT without REQUEST_CREATE");
        }
        if (st.created.count(a.tx)) {
          return fail("serial scheduler aborts only non-created transactions");
        }
        if (st.IsCompleted(a.tx)) return fail("second completion");
        st.aborted.insert(a.tx);
        break;
      case ActionKind::kReportCommit:
        if (!st.committed.count(a.tx)) return fail("report before COMMIT");
        if (!(st.commit_requested.at(a.tx) == a.value)) {
          return fail("reported value differs from requested value");
        }
        if (!st.reported.insert(a.tx).second) return fail("duplicate report");
        break;
      case ActionKind::kReportAbort:
        if (!st.aborted.count(a.tx)) return fail("report before ABORT");
        if (!st.reported.insert(a.tx).second) return fail("duplicate report");
        break;
      default:
        return fail("unexpected action kind");
    }
  }

  // Per-transaction well-formedness, plus the caller's transaction oracle.
  mentioned.insert(kT0);
  for (TxName t : mentioned) {
    Trace proj = ProjectTransaction(type, gamma, t);
    Status s = CheckTransactionWellFormed(type, proj, t);
    if (!s.ok()) {
      return Status::VerificationFailed("projection of " + type.NameOf(t) +
                                        " ill-formed: " + s.message());
    }
    if (oracle != nullptr) {
      NTSG_RETURN_IF_ERROR(oracle->ValidateProjection(type, t, proj));
    }
  }
  return Status::Ok();
}

}  // namespace ntsg
