#ifndef NTSG_SERIAL_SERIAL_SCHEDULER_H_
#define NTSG_SERIAL_SERIAL_SCHEDULER_H_

#include <map>
#include <set>

#include "ioa/automaton.h"
#include "tx/trace.h"

namespace ntsg {

/// The serial scheduler automaton (Section 2.2.3). Runs sibling transactions
/// serially — a transaction may be created only when no sibling is live —
/// and aborts only transactions that were requested but never created. This
/// automaton (composed with transaction automata and serial objects) *defines*
/// correct behavior; it is a specification device, not a practical scheduler.
///
/// Inputs:  REQUEST_CREATE(T), REQUEST_COMMIT(T, v).
/// Outputs: CREATE(T), COMMIT(T), ABORT(T), REPORT_COMMIT(T, v),
///          REPORT_ABORT(T).
class SerialScheduler final : public Automaton {
 public:
  /// `allow_aborts` removes ABORT from the enabled set; useful for driving
  /// failure-free serial executions.
  explicit SerialScheduler(const SystemType& type, bool allow_aborts = true)
      : type_(type), allow_aborts_(allow_aborts) {}

  std::string name() const override { return "SerialScheduler"; }

  bool IsInput(const Action& a) const override {
    return a.kind == ActionKind::kRequestCreate ||
           a.kind == ActionKind::kRequestCommit;
  }

  bool IsOutput(const Action& a) const override {
    switch (a.kind) {
      case ActionKind::kCreate:
      case ActionKind::kCommit:
      case ActionKind::kAbort:
      case ActionKind::kReportCommit:
      case ActionKind::kReportAbort:
        return true;
      default:
        return false;
    }
  }

  void Apply(const Action& a) override;

  std::vector<Action> EnabledOutputs() const override;

  bool IsCreated(TxName t) const { return created_.count(t) != 0; }
  bool IsCompleted(TxName t) const {
    return committed_.count(t) != 0 || aborted_.count(t) != 0;
  }

 private:
  /// Number of live (created, not completed) children of `parent`.
  int LiveChildren(TxName parent) const;

  const SystemType& type_;
  bool allow_aborts_;

  std::set<TxName> create_requested_;
  std::set<TxName> created_;
  std::map<TxName, Value> commit_requested_;
  std::set<TxName> committed_;
  std::set<TxName> aborted_;
  std::set<TxName> reported_;
  std::map<TxName, int> live_children_;
};

}  // namespace ntsg

#endif  // NTSG_SERIAL_SERIAL_SCHEDULER_H_
