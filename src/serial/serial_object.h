#ifndef NTSG_SERIAL_SERIAL_OBJECT_H_
#define NTSG_SERIAL_SERIAL_OBJECT_H_

#include <memory>
#include <optional>

#include "ioa/automaton.h"
#include "spec/serial_spec.h"
#include "tx/trace.h"

namespace ntsg {

/// The serial object automaton S_X (Section 2.2.2, generalized to arbitrary
/// data types as in Section 6): CREATE(T) invokes an operation;
/// REQUEST_COMMIT(T, v) responds with the unique serial return value. One
/// invocation is active at a time (serial object well-formedness is assumed
/// of the environment — the serial scheduler provides it).
class SerialObjectAutomaton final : public Automaton {
 public:
  SerialObjectAutomaton(const SystemType& type, ObjectId x)
      : type_(type),
        x_(x),
        spec_(MakeSpec(type.object_type(x), type.object_initial(x))) {}

  std::string name() const override {
    return "S_" + type_.object_name(x_);
  }

  bool IsInput(const Action& a) const override {
    return a.kind == ActionKind::kCreate && type_.ObjectOf(a.tx) == x_;
  }

  bool IsOutput(const Action& a) const override {
    return a.kind == ActionKind::kRequestCommit && type_.ObjectOf(a.tx) == x_;
  }

  void Apply(const Action& a) override;

  std::vector<Action> EnabledOutputs() const override;

  const SerialSpec& spec() const { return *spec_; }

 private:
  const SystemType& type_;
  ObjectId x_;
  std::optional<TxName> active_;
  std::unique_ptr<SerialSpec> spec_;
};

}  // namespace ntsg

#endif  // NTSG_SERIAL_SERIAL_OBJECT_H_
