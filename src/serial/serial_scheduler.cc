#include "serial/serial_scheduler.h"

#include "common/logging.h"

namespace ntsg {

void SerialScheduler::Apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kRequestCreate:
      create_requested_.insert(a.tx);
      break;
    case ActionKind::kRequestCommit:
      commit_requested_.emplace(a.tx, a.value);
      break;
    case ActionKind::kCreate:
      created_.insert(a.tx);
      live_children_[type_.parent(a.tx)]++;
      break;
    case ActionKind::kCommit:
      committed_.insert(a.tx);
      live_children_[type_.parent(a.tx)]--;
      break;
    case ActionKind::kAbort:
      aborted_.insert(a.tx);
      // Aborted transactions were never created, so liveness is unaffected.
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      reported_.insert(a.tx);
      break;
    default:
      NTSG_CHECK(false) << "unexpected action at serial scheduler";
  }
}

int SerialScheduler::LiveChildren(TxName parent) const {
  auto it = live_children_.find(parent);
  return it == live_children_.end() ? 0 : it->second;
}

std::vector<Action> SerialScheduler::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : create_requested_) {
    bool completed = IsCompleted(t);
    if (!created_.count(t) && !completed) {
      // CREATE(T): no live sibling may exist.
      if (LiveChildren(type_.parent(t)) == 0) {
        out.push_back(Action::Create(t));
      }
      // ABORT(T): only never-created transactions can be aborted serially.
      if (allow_aborts_) out.push_back(Action::Abort(t));
    }
  }
  for (const auto& [t, v] : commit_requested_) {
    if (!IsCompleted(t)) out.push_back(Action::Commit(t));
  }
  for (TxName t : committed_) {
    if (!reported_.count(t) && t != kT0) {
      out.push_back(Action::ReportCommit(t, commit_requested_.at(t)));
    }
  }
  for (TxName t : aborted_) {
    if (!reported_.count(t)) out.push_back(Action::ReportAbort(t));
  }
  return out;
}

}  // namespace ntsg
