#include "checker/oracle.h"

namespace ntsg {

ProjectionEqualityOracle::ProjectionEqualityOracle(const SystemType& type,
                                                   const Trace& beta) {
  for (const Action& a : beta) {
    if (!a.IsSerial()) continue;
    TxName t = TransactionOf(type, a);
    if (t == kInvalidTx || type.IsAccess(t)) continue;
    projections_[t].push_back(a);
  }
}

Status ProjectionEqualityOracle::ValidateProjection(
    const SystemType& type, TxName t, const Trace& projection) const {
  auto it = projections_.find(t);
  const Trace empty;
  const Trace& expected = it == projections_.end() ? empty : it->second;
  if (projection.size() != expected.size()) {
    return Status::VerificationFailed(
        "projection of " + type.NameOf(t) + " has " +
        std::to_string(projection.size()) + " events, behavior had " +
        std::to_string(expected.size()));
  }
  for (size_t i = 0; i < projection.size(); ++i) {
    if (!(projection[i] == expected[i])) {
      return Status::VerificationFailed(
          "projection of " + type.NameOf(t) + " diverges at event " +
          std::to_string(i) + ": " + projection[i].ToString(type) + " vs " +
          expected[i].ToString(type));
    }
  }
  return Status::Ok();
}

}  // namespace ntsg
