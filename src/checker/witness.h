#ifndef NTSG_CHECKER_WITNESS_H_
#define NTSG_CHECKER_WITNESS_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "sg/conflicts.h"
#include "tx/trace.h"

namespace ntsg {

/// Result of an exact serial-correctness check.
struct WitnessResult {
  /// OK iff a serial behavior γ with γ|T0 = β|T0 was constructed and
  /// validated.
  Status status;
  /// The witness γ (valid only when status is OK).
  Trace witness;
};

/// Constructs a candidate serial witness γ for the behavior β, sequencing
/// sibling subtrees by `orders` (a per-parent order of children; children
/// missing from an order sort after those present, by name). The
/// construction follows the proof of Theorem 8:
///   * exactly the events of β|T (for every transaction T committed and
///     visible to T0, plus T0 itself) appear, in their β order, so every
///     projection of γ equals the corresponding projection of β;
///   * the full serial run of each committed child (CREATE ... COMMIT) is
///     spliced in just before the first report that requires it, running
///     accumulated siblings in `orders` order;
///   * aborted children are ABORTed without ever being created (the only
///     abort the serial scheduler allows).
///
/// The result is then *validated from scratch*: it must pass the serial
/// system validator (scheduler preconditions + serial-spec replay at every
/// object + projection equality against β), and γ|T0 must equal β|T0. So a
/// returned OK is an airtight certificate of serial correctness for T0,
/// independent of the theory used to pick `orders`.
WitnessResult BuildAndCheckWitness(
    const SystemType& type, const Trace& beta,
    const std::map<TxName, std::vector<TxName>>& orders);

/// End-to-end exact check: derives sibling orders from a topological sort of
/// SG(serial(β)) under `mode` and calls BuildAndCheckWitness. Returns a
/// failure (rather than attempting other orders) when the graph is cyclic;
/// see ExhaustiveSerialCheck for a complete search on small instances.
WitnessResult CheckSeriallyCorrectForT0(
    const SystemType& type, const Trace& beta,
    ConflictMode mode = ConflictMode::kCommutativity);

/// As CheckSeriallyCorrectForT0, but derives the sibling orders from the
/// timeline-encoded graph (FastTopologicalOrders) instead of materializing
/// the Θ(n²) precedes relation — the same verdict at near-linear cost.
WitnessResult FastCheckSeriallyCorrectForT0(
    const SystemType& type, const Trace& beta,
    ConflictMode mode = ConflictMode::kCommutativity);

}  // namespace ntsg

#endif  // NTSG_CHECKER_WITNESS_H_
