#include "checker/brute_force.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace ntsg {

WitnessResult ExhaustiveSerialCheck(const SystemType& type, const Trace& beta,
                                    size_t max_combinations) {
  Trace serial = SerialPart(beta);
  TraceIndex index(type, serial);

  // Group committed, T0-visible transactions by parent; only they are run
  // by a witness, so only their relative order matters.
  std::map<TxName, std::vector<TxName>> groups;
  std::set<TxName> seen;
  for (const Action& a : serial) {
    TxName t = kInvalidTx;
    if (a.kind == ActionKind::kCommit) t = a.tx;
    if (t == kInvalidTx || !seen.insert(t).second) continue;
    if (!index.IsVisible(t, kT0)) continue;
    groups[type.parent(t)].push_back(t);
  }

  // Estimate the combination count; bail out if too large.
  size_t combos = 1;
  for (auto& entry : groups) {
    std::vector<TxName>& children = entry.second;
    std::sort(children.begin(), children.end());
    size_t f = 1;
    for (size_t i = 2; i <= children.size(); ++i) {
      f *= i;
      if (f > max_combinations) break;
    }
    if (combos > max_combinations / std::max<size_t>(f, 1)) {
      combos = max_combinations + 1;
      break;
    }
    combos *= f;
  }
  if (combos > max_combinations) {
    WitnessResult r;
    r.status = Status::FailedPrecondition(
        "too many sibling permutations for exhaustive check");
    return r;
  }

  // Depth-first product of per-parent permutations.
  std::vector<TxName> parents;
  for (const auto& entry : groups) parents.push_back(entry.first);
  std::map<TxName, std::vector<TxName>> assignment = groups;

  WitnessResult last;
  last.status = Status::VerificationFailed("no sibling order admits a witness");

  // Iterative odometer over permutations: repeatedly try, then advance the
  // first parent whose permutation can step; reset earlier ones.
  for (auto& entry : assignment) {
    std::sort(entry.second.begin(), entry.second.end());
  }
  for (;;) {
    WitnessResult r = BuildAndCheckWitness(type, serial, assignment);
    if (r.status.ok()) return r;
    last = std::move(r);
    // Advance odometer.
    size_t i = 0;
    for (; i < parents.size(); ++i) {
      std::vector<TxName>& perm = assignment[parents[i]];
      if (std::next_permutation(perm.begin(), perm.end())) break;
      // perm wrapped to sorted order; carry to the next parent.
    }
    if (i == parents.size()) break;  // All permutations exhausted.
  }
  return last;
}

}  // namespace ntsg
