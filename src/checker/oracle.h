#ifndef NTSG_CHECKER_ORACLE_H_
#define NTSG_CHECKER_ORACLE_H_

#include <map>

#include "serial/validator.h"
#include "tx/trace.h"

namespace ntsg {

/// Transaction oracle that accepts γ|T exactly when it equals β|T for the
/// concurrent behavior β being checked. Sound because β|T is, by definition,
/// a behavior of the very transaction automaton A_T that produced it — so
/// any γ whose projections coincide with β's satisfies the "γ|T ∈
/// finbehs(A_T)" obligation without needing to re-execute A_T.
///
/// The witness builder constructs γ so that every run transaction replays
/// its β-projection verbatim, which makes this exact-equality oracle both
/// sound and complete for our checkers.
class ProjectionEqualityOracle final : public TransactionOracle {
 public:
  ProjectionEqualityOracle(const SystemType& type, const Trace& beta);

  Status ValidateProjection(const SystemType& type, TxName t,
                            const Trace& projection) const override;

 private:
  std::map<TxName, Trace> projections_;
};

}  // namespace ntsg

#endif  // NTSG_CHECKER_ORACLE_H_
