#ifndef NTSG_CHECKER_BRUTE_FORCE_H_
#define NTSG_CHECKER_BRUTE_FORCE_H_

#include "checker/witness.h"

namespace ntsg {

/// Exhaustive serial-correctness check for small instances: enumerates
/// per-parent permutations of the committed visible children and accepts if
/// any combination yields a validated witness. This is the ground truth the
/// SG-derived order is tested against — the serialization-graph condition is
/// sufficient but not necessary, and this check is exact up to the witness
/// shape (runs spliced into β's report order).
///
/// `max_combinations` bounds the search; exceeding it returns
/// FailedPrecondition rather than a verdict.
WitnessResult ExhaustiveSerialCheck(const SystemType& type, const Trace& beta,
                                    size_t max_combinations = 100000);

}  // namespace ntsg

#endif  // NTSG_CHECKER_BRUTE_FORCE_H_
