#include "checker/witness.h"

#include <algorithm>
#include <set>

#include "checker/oracle.h"
#include "common/logging.h"
#include "serial/validator.h"
#include "sg/fast_graph.h"
#include "sg/graph.h"

namespace ntsg {

namespace {

/// Shared context for the recursive construction.
class WitnessBuilder {
 public:
  WitnessBuilder(const SystemType& type, const Trace& beta,
                 const std::map<TxName, std::vector<TxName>>& orders)
      : type_(type), index_(type, beta) {
    for (const auto& [parent, children] : orders) {
      for (size_t i = 0; i < children.size(); ++i) {
        position_[{parent, children[i]}] = i;
      }
    }
    for (const Action& a : beta) {
      if (!a.IsSerial()) continue;
      TxName t = TransactionOf(type, a);
      if (t != kInvalidTx && !type.IsAccess(t)) projection_[t].push_back(a);
      if (a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx)) {
        access_value_.emplace(a.tx, a.value);
      }
    }
  }

  /// Emits the whole witness into `out`; T0's events drive the top level.
  Status Build(Trace& out) {
    return EmitLevel(kT0, out);
  }

 private:
  /// Sorting key of child `c` under parent `p`: children named in `orders`
  /// first (by position), the rest after, by name.
  std::pair<size_t, TxName> Key(TxName p, TxName c) const {
    auto it = position_.find({p, c});
    if (it != position_.end()) return {it->second, c};
    return {SIZE_MAX, c};
  }

  bool Less(TxName p, TxName a, TxName b) const {
    return Key(p, a) < Key(p, b);
  }

  const Trace& ProjectionOf(TxName t) const {
    static const Trace empty;
    auto it = projection_.find(t);
    return it == projection_.end() ? empty : it->second;
  }

  /// Runs child `c` of `p`: the full serial execution CREATE .. COMMIT.
  Status RunChild(TxName c, Trace& out) {
    if (type_.IsAccess(c)) {
      auto it = access_value_.find(c);
      if (it == access_value_.end()) {
        return Status::VerificationFailed(
            "committed access without response: " + type_.NameOf(c));
      }
      out.push_back(Action::Create(c));
      out.push_back(Action::RequestCommit(c, it->second));
      out.push_back(Action::Commit(c));
      return Status::Ok();
    }
    out.push_back(Action::Create(c));
    NTSG_RETURN_IF_ERROR(EmitLevel(c, out));
    out.push_back(Action::Commit(c));
    return Status::Ok();
  }

  /// Replays β|t's local events in order, splicing in child runs before the
  /// reports that need them. For t == T0, CREATE/REQUEST_COMMIT framing is
  /// absent; for other t the caller emits CREATE/COMMIT around this.
  Status EmitLevel(TxName t, Trace& out) {
    // Committed children requested but not yet run, kept sorted by order.
    auto cmp = [this, t](TxName a, TxName b) { return Less(t, a, b); };
    std::set<TxName, decltype(cmp)> pending(cmp);
    std::set<TxName> ran;

    for (const Action& a : ProjectionOf(t)) {
      switch (a.kind) {
        case ActionKind::kCreate:
          break;  // CREATE(t) is emitted by the caller (RunChild).
        case ActionKind::kRequestCreate:
          out.push_back(a);
          if (index_.IsCommitted(a.tx)) pending.insert(a.tx);
          break;
        case ActionKind::kReportCommit: {
          // Run every accumulated sibling ordered at or before a.tx.
          while (!pending.empty() &&
                 (!Less(t, a.tx, *pending.begin()) ||
                  *pending.begin() == a.tx)) {
            TxName v = *pending.begin();
            pending.erase(pending.begin());
            NTSG_RETURN_IF_ERROR(RunChild(v, out));
            ran.insert(v);
            if (v == a.tx) break;
          }
          if (!ran.count(a.tx)) {
            return Status::VerificationFailed(
                "witness: report for " + type_.NameOf(a.tx) +
                " before its run could be placed");
          }
          out.push_back(a);
          break;
        }
        case ActionKind::kReportAbort:
          out.push_back(Action::Abort(a.tx));
          out.push_back(a);
          break;
        case ActionKind::kRequestCommit:
          out.push_back(a);
          break;
        default:
          return Status::Corruption("unexpected event in beta|T: " +
                                    a.ToString(type_));
      }
    }
    // Committed-but-unreported children (possible only at T0's level) stay
    // unrun unless a reported sibling pulled them in; that is sound — γ is
    // just one serial behavior agreeing with β at T0.
    return Status::Ok();
  }

  const SystemType& type_;
  TraceIndex index_;
  std::map<std::pair<TxName, TxName>, size_t> position_;
  std::map<TxName, Trace> projection_;
  std::map<TxName, Value> access_value_;
};

}  // namespace

WitnessResult BuildAndCheckWitness(
    const SystemType& type, const Trace& beta,
    const std::map<TxName, std::vector<TxName>>& orders) {
  WitnessResult result;
  Trace serial = SerialPart(beta);

  WitnessBuilder builder(type, serial, orders);
  Trace gamma;
  Status built = builder.Build(gamma);
  if (!built.ok()) {
    result.status = built;
    return result;
  }

  // γ must be a genuine serial behavior...
  ProjectionEqualityOracle oracle(type, serial);
  Status valid = ValidateSerialBehavior(type, gamma, &oracle);
  if (!valid.ok()) {
    result.status = valid;
    return result;
  }
  // ... agreeing with β at T0 (the oracle already compared every projection,
  // including T0; this re-check keeps the guarantee independent).
  Trace gamma_t0 = ProjectTransaction(type, gamma, kT0);
  Trace beta_t0 = ProjectTransaction(type, serial, kT0);
  if (!(gamma_t0 == beta_t0)) {
    result.status = Status::VerificationFailed(
        "witness projection at T0 does not match behavior");
    return result;
  }
  result.status = Status::Ok();
  result.witness = std::move(gamma);
  return result;
}

WitnessResult FastCheckSeriallyCorrectForT0(const SystemType& type,
                                            const Trace& beta,
                                            ConflictMode mode) {
  Trace serial = SerialPart(beta);
  std::optional<std::map<TxName, std::vector<TxName>>> orders =
      FastTopologicalOrders(type, serial, mode);
  if (!orders.has_value()) {
    WitnessResult result;
    result.status = Status::VerificationFailed(
        "serialization graph cyclic, no witness order derivable");
    return result;
  }
  return BuildAndCheckWitness(type, serial, *orders);
}

WitnessResult CheckSeriallyCorrectForT0(const SystemType& type,
                                        const Trace& beta, ConflictMode mode) {
  Trace serial = SerialPart(beta);
  SerializationGraph sg = SerializationGraph::Build(type, serial, mode);
  if (auto cycle = sg.FindCycle()) {
    WitnessResult result;
    std::string names;
    for (TxName t : *cycle) {
      if (!names.empty()) names += " -> ";
      names += type.NameOf(t);
    }
    result.status = Status::VerificationFailed(
        "serialization graph cyclic, no witness order derivable: " + names);
    return result;
  }
  return BuildAndCheckWitness(type, serial, sg.TopologicalOrders());
}

}  // namespace ntsg
