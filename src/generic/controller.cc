#include "generic/controller.h"

#include "common/logging.h"

namespace ntsg {

void GenericController::Apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kRequestCreate:
      create_requested_.insert(a.tx);
      if (!created_.count(a.tx) && !IsCompleted(a.tx)) {
        enabled_.insert(Action::Create(a.tx));
      }
      break;

    case ActionKind::kRequestCommit:
      commit_requested_.emplace(a.tx, a.value);
      if (!IsCompleted(a.tx)) enabled_.insert(Action::Commit(a.tx));
      if (type_.IsAccess(a.tx)) {
        // Record the touched object along the whole ancestor chain so that
        // completions are announced exactly where they matter. If an
        // ancestor already completed (orphan activity), enable the INFORM
        // right away.
        ObjectId x = type_.ObjectOf(a.tx);
        for (TxName u = a.tx;; u = type_.parent(u)) {
          touched_[u].insert(x);
          if (u != kT0 && !informed_.count({x, u})) {
            if (committed_.count(u)) enabled_.insert(Action::InformCommit(x, u));
            if (aborted_.count(u)) enabled_.insert(Action::InformAbort(x, u));
          }
          if (u == kT0) break;
        }
      }
      break;

    case ActionKind::kCreate:
      created_.insert(a.tx);
      enabled_.erase(Action::Create(a.tx));
      break;

    case ActionKind::kCommit: {
      committed_.insert(a.tx);
      if (a.tx >= completed_flags_.size()) {
        completed_flags_.resize(a.tx + 1, 0);
      }
      completed_flags_[a.tx] = 1;
      enabled_.erase(Action::Commit(a.tx));
      enabled_.erase(Action::Abort(a.tx));
      enabled_.insert(Action::ReportCommit(a.tx, commit_requested_.at(a.tx)));
      auto it = touched_.find(a.tx);
      if (it != touched_.end()) {
        for (ObjectId x : it->second) {
          if (!informed_.count({x, a.tx})) {
            enabled_.insert(Action::InformCommit(x, a.tx));
          }
        }
      }
      break;
    }

    case ActionKind::kAbort: {
      aborted_.insert(a.tx);
      if (a.tx >= completed_flags_.size()) {
        completed_flags_.resize(a.tx + 1, 0);
      }
      completed_flags_[a.tx] = 1;
      pending_aborts_.erase(a.tx);
      enabled_.erase(Action::Abort(a.tx));
      enabled_.erase(Action::Create(a.tx));
      auto cit = commit_requested_.find(a.tx);
      if (cit != commit_requested_.end()) {
        enabled_.erase(Action::Commit(a.tx));
      }
      enabled_.insert(Action::ReportAbort(a.tx));
      auto it = touched_.find(a.tx);
      if (it != touched_.end()) {
        for (ObjectId x : it->second) {
          if (!informed_.count({x, a.tx})) {
            enabled_.insert(Action::InformAbort(x, a.tx));
          }
        }
      }
      break;
    }

    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      reported_.insert(a.tx);
      enabled_.erase(a);
      break;

    case ActionKind::kInformCommit:
    case ActionKind::kInformAbort:
      informed_.insert({a.at_object, a.tx});
      enabled_.erase(a);
      break;
  }
}

void GenericController::RequestAbort(TxName t) {
  if (create_requested_.count(t) && !IsCompleted(t)) {
    pending_aborts_.insert(t);
    enabled_.insert(Action::Abort(t));
  }
}

std::vector<Action> GenericController::EnabledOutputs() const {
  return std::vector<Action>(enabled_.begin(), enabled_.end());
}

std::vector<TxName> GenericController::LiveCreated() const {
  std::vector<TxName> out;
  for (TxName t : created_) {
    if (!IsCompleted(t)) out.push_back(t);
  }
  return out;
}

}  // namespace ntsg
