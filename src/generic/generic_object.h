#ifndef NTSG_GENERIC_GENERIC_OBJECT_H_
#define NTSG_GENERIC_GENERIC_OBJECT_H_

#include <set>
#include <string>

#include "ioa/automaton.h"
#include "tx/trace.h"

namespace ntsg {

/// Base class for generic object automata G_X (Section 5.1): the component
/// that carries out concurrency control and recovery for one object. It
/// receives CREATE for accesses to X and INFORM_COMMIT/INFORM_ABORT for
/// arbitrary transactions, and emits REQUEST_COMMIT responses.
///
/// Subclasses implement the algorithm (Moss locking, undo logging, SGT, or a
/// deliberately broken variant) by overriding the hooks below.
class GenericObject : public Automaton {
 public:
  GenericObject(const SystemType& type, ObjectId x) : type_(type), x_(x) {}

  bool IsInput(const Action& a) const override {
    if (a.kind == ActionKind::kCreate) return type_.ObjectOf(a.tx) == x_;
    return (a.kind == ActionKind::kInformCommit ||
            a.kind == ActionKind::kInformAbort) &&
           a.at_object == x_;
  }

  bool IsOutput(const Action& a) const override {
    return a.kind == ActionKind::kRequestCommit && type_.ObjectOf(a.tx) == x_;
  }

  void Apply(const Action& a) override;

  ObjectId object_id() const { return x_; }

  /// Accesses created but not yet responded to — what a driver sees as
  /// "pending" at this object (used for stall/deadlock detection).
  std::vector<TxName> PendingAccesses() const;

  /// Same set, by reference (no copy) for hot driver paths.
  const std::set<TxName>& pending_set() const { return pending_; }

 protected:
  /// Algorithm hooks; the base class updates created/commit-requested
  /// bookkeeping before calling them.
  virtual void OnCreate(TxName access) = 0;
  virtual void OnInformCommit(TxName t) = 0;
  virtual void OnInformAbort(TxName t) = 0;
  virtual void OnRequestCommit(TxName access, const Value& v) = 0;

  bool IsCreated(TxName t) const { return created_.count(t) != 0; }
  bool IsCommitRequested(TxName t) const {
    return commit_requested_.count(t) != 0;
  }

  const std::set<TxName>& created() const { return created_; }
  const std::set<TxName>& commit_requested() const {
    return commit_requested_;
  }

  /// Accesses created but not yet responded to (= created minus
  /// commit-requested), maintained incrementally.
  const std::set<TxName>& pending() const { return pending_; }

  const SystemType& type_;
  const ObjectId x_;

 private:
  std::set<TxName> created_;
  std::set<TxName> commit_requested_;
  std::set<TxName> pending_;
};

}  // namespace ntsg

#endif  // NTSG_GENERIC_GENERIC_OBJECT_H_
