#include "generic/generic_object.h"

#include "common/logging.h"

namespace ntsg {

void GenericObject::Apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kCreate:
      NTSG_CHECK(type_.ObjectOf(a.tx) == x_);
      created_.insert(a.tx);
      pending_.insert(a.tx);
      OnCreate(a.tx);
      break;
    case ActionKind::kInformCommit:
      OnInformCommit(a.tx);
      break;
    case ActionKind::kInformAbort:
      OnInformAbort(a.tx);
      break;
    case ActionKind::kRequestCommit:
      NTSG_CHECK(type_.ObjectOf(a.tx) == x_);
      commit_requested_.insert(a.tx);
      pending_.erase(a.tx);
      OnRequestCommit(a.tx, a.value);
      break;
    default:
      NTSG_CHECK(false) << "unexpected action at generic object";
  }
}

std::vector<TxName> GenericObject::PendingAccesses() const {
  return std::vector<TxName>(pending_.begin(), pending_.end());
}

}  // namespace ntsg
