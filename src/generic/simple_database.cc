#include "generic/simple_database.h"

#include "common/logging.h"

namespace ntsg {

void SimpleDatabase::Apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kRequestCreate:
      create_requested_.insert(a.tx);
      break;
    case ActionKind::kRequestCommit:
      commit_requested_.emplace(a.tx, a.value);
      if (type_.IsAccess(a.tx)) {
        responded_.insert(a.tx);
        if (type_.access(a.tx).op == OpCode::kWrite) {
          write_events_.push_back(a);
        }
      }
      break;
    case ActionKind::kCreate:
      created_.insert(a.tx);
      break;
    case ActionKind::kCommit:
      committed_.insert(a.tx);
      break;
    case ActionKind::kAbort:
      aborted_.insert(a.tx);
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      reported_.insert(a.tx);
      break;
    default:
      NTSG_CHECK(false) << "unexpected action at simple database";
  }
}

std::vector<Action> SimpleDatabase::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : create_requested_) {
    if (!created_.count(t)) out.push_back(Action::Create(t));
    // Aborting is always formally enabled; offer it only sometimes so that
    // a useful fraction of chains commits all the way to T0 (otherwise the
    // visible part of most random runs is empty and every verdict is
    // vacuous).
    if (!IsCompleted(t) && rng_.NextBool(0.1)) {
      out.push_back(Action::Abort(t));
    }
  }
  for (const auto& [t, v] : commit_requested_) {
    if (!IsCompleted(t)) out.push_back(Action::Commit(t));
  }
  for (TxName t : committed_) {
    if (!reported_.count(t) && t != kT0) {
      out.push_back(Action::ReportCommit(t, commit_requested_.at(t)));
    }
  }
  for (TxName t : aborted_) {
    if (!reported_.count(t)) out.push_back(Action::ReportAbort(t));
  }

  // Sampled access responses.
  auto clean_final = [this](ObjectId x) {
    // Latest write to x whose writer is not currently an orphan.
    for (auto it = write_events_.rbegin(); it != write_events_.rend(); ++it) {
      if (type_.ObjectOf(it->tx) != x) continue;
      bool orphan = false;
      for (TxName u = it->tx;; u = type_.parent(u)) {
        if (aborted_.count(u)) {
          orphan = true;
          break;
        }
        if (u == kT0) break;
      }
      if (!orphan) return type_.access(it->tx).arg;
    }
    return type_.object_initial(x);
  };

  for (TxName t : created_) {
    if (!type_.IsAccess(t) || responded_.count(t)) continue;
    const AccessSpec& acc = type_.access(t);
    if (acc.op == OpCode::kWrite) {
      out.push_back(Action::RequestCommit(t, Value::Ok()));
      // Occasionally offer a nonsensical (but well-formed) response, drawn
      // far outside any workload's argument domain so it is unmistakably
      // inappropriate whenever it becomes visible.
      if (rng_.NextBool(0.15)) {
        out.push_back(
            Action::RequestCommit(t, Value::Int(rng_.NextInRange(900, 999))));
      }
    } else {
      out.push_back(Action::RequestCommit(
          t, Value::Int(clean_final(acc.object))));
      if (rng_.NextBool(0.3)) {
        out.push_back(
            Action::RequestCommit(t, Value::Int(rng_.NextInRange(900, 999))));
      }
    }
  }
  return out;
}

}  // namespace ntsg
