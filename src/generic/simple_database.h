#ifndef NTSG_GENERIC_SIMPLE_DATABASE_H_
#define NTSG_GENERIC_SIMPLE_DATABASE_H_

#include <map>
#include <set>

#include "common/rng.h"
#include "ioa/automaton.h"
#include "tx/trace.h"

namespace ntsg {

/// The simple database automaton (Section 2.3.1): the most nondeterministic
/// transaction-processing component the theory quantifies over. It enforces
/// only the structural sanity constraints — no CREATE/COMMIT/ABORT without
/// the matching request, at most one creation and one completion per
/// transaction, reports only for actual completions, at most one response
/// per access — and otherwise allows *anything*: concurrent siblings,
/// orphans running on, arbitrary access return values.
///
/// Its role here is adversarial: compositions with the simple database
/// generate chaotic-but-well-formed behaviors on which the Serializability
/// Theorem machinery is property-tested (certifier accepts ⇒ a serial
/// witness must exist), and on which the checkers must never crash or
/// falsely accept.
///
/// Nondeterministic access responses are sampled: each pending access offers
/// a handful of candidate return values — OK, constants, and the object's
/// current clean-final-value (so that a useful fraction of random runs has
/// appropriate values and exercises the accepting path).
class SimpleDatabase final : public Automaton {
 public:
  SimpleDatabase(const SystemType& type, uint64_t value_seed)
      : type_(type), rng_(value_seed) {}

  std::string name() const override { return "SimpleDatabase"; }

  bool IsInput(const Action& a) const override {
    return a.kind == ActionKind::kRequestCreate ||
           (a.kind == ActionKind::kRequestCommit && !type_.IsAccess(a.tx));
  }

  bool IsOutput(const Action& a) const override {
    switch (a.kind) {
      case ActionKind::kCreate:
      case ActionKind::kCommit:
      case ActionKind::kAbort:
      case ActionKind::kReportCommit:
      case ActionKind::kReportAbort:
        return true;
      case ActionKind::kRequestCommit:
        return type_.IsAccess(a.tx);  // Responses to accesses.
      default:
        return false;
    }
  }

  void Apply(const Action& a) override;

  std::vector<Action> EnabledOutputs() const override;

 private:
  bool IsCompleted(TxName t) const {
    return committed_.count(t) || aborted_.count(t);
  }

  const SystemType& type_;
  mutable Rng rng_;  // Candidate-value sampling only.

  std::set<TxName> create_requested_;
  std::set<TxName> created_;
  std::map<TxName, Value> commit_requested_;
  std::set<TxName> committed_;
  std::set<TxName> aborted_;
  std::set<TxName> reported_;
  std::set<TxName> responded_;  // Accesses already answered.
  /// Running clean-final-value per object (tracks non-orphan writes so far,
  /// recomputed lazily on abort).
  std::map<ObjectId, int64_t> current_value_;
  Trace write_events_;  // REQUEST_COMMITs of write accesses, in order.
};

}  // namespace ntsg

#endif  // NTSG_GENERIC_SIMPLE_DATABASE_H_
