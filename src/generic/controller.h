#ifndef NTSG_GENERIC_CONTROLLER_H_
#define NTSG_GENERIC_CONTROLLER_H_

#include <map>
#include <set>

#include "ioa/automaton.h"
#include "tx/trace.h"

namespace ntsg {

/// The generic controller (Section 5.1). Unlike the serial scheduler it
/// permits sibling concurrency, creates transactions freely once requested,
/// and informs objects of completions; coping with concurrency and failure
/// is delegated to the generic objects.
///
/// Implementation notes (each restricts nondeterminism, which is sound —
/// our behaviors are a subset of the formal automaton's):
///   * spontaneous ABORTs are not enumerated; the driver schedules an abort
///     explicitly via `RequestAbort` (modelling timeout/deadlock-resolution
///     decisions). The formal controller may abort any incomplete requested
///     transaction at any time, so every such abort is legal.
///   * INFORM_COMMIT/INFORM_ABORT are emitted at most once per (object,
///     transaction), and only to objects some descendant access actually
///     touched.
///   * a transaction the driver aborted is not subsequently created (the
///     formal controller permits create-after-abort; skipping it again
///     selects a subset of behaviors).
class GenericController final : public Automaton {
 public:
  explicit GenericController(const SystemType& type) : type_(type) {}

  std::string name() const override { return "GenericController"; }

  bool IsInput(const Action& a) const override {
    return a.kind == ActionKind::kRequestCreate ||
           a.kind == ActionKind::kRequestCommit;
  }

  bool IsOutput(const Action& a) const override {
    switch (a.kind) {
      case ActionKind::kCreate:
      case ActionKind::kCommit:
      case ActionKind::kAbort:
      case ActionKind::kReportCommit:
      case ActionKind::kReportAbort:
      case ActionKind::kInformCommit:
      case ActionKind::kInformAbort:
        return true;
      default:
        return false;
    }
  }

  void Apply(const Action& a) override;

  /// O(|enabled|) copy of an incrementally maintained set, so long runs do
  /// not pay a full state scan per step.
  std::vector<Action> EnabledOutputs() const override;

  /// Asks the controller to abort `t` (it must have been requested and not
  /// completed, otherwise the request is ignored). The ABORT action itself
  /// is emitted by the scheduler like any other enabled output.
  void RequestAbort(TxName t);

  bool IsCreated(TxName t) const { return created_.count(t) != 0; }
  bool IsCommitted(TxName t) const { return committed_.count(t) != 0; }
  bool IsAborted(TxName t) const { return aborted_.count(t) != 0; }

  /// O(1): dense flags, hot on driver stall scans.
  bool IsCompleted(TxName t) const {
    return t < completed_flags_.size() && completed_flags_[t] != 0;
  }
  bool IsCommitRequested(TxName t) const {
    return commit_requested_.count(t) != 0;
  }

  /// Transactions that are live (created, incomplete) and not yet responded
  /// to (for accesses) — used by drivers to detect stalls.
  std::vector<TxName> LiveCreated() const;

 private:
  const SystemType& type_;

  std::set<TxName> create_requested_;
  std::set<TxName> created_;
  std::map<TxName, Value> commit_requested_;
  std::set<TxName> committed_;
  std::set<TxName> aborted_;
  std::set<TxName> reported_;
  std::set<TxName> pending_aborts_;
  /// Objects touched by descendant accesses of each transaction.
  std::map<TxName, std::set<ObjectId>> touched_;
  /// (object, tx) pairs already informed.
  std::set<std::pair<ObjectId, TxName>> informed_;
  /// Currently enabled outputs, maintained incrementally by Apply.
  std::set<Action> enabled_;
  /// Dense completion flags indexed by transaction name.
  std::vector<uint8_t> completed_flags_;
};

}  // namespace ntsg

#endif  // NTSG_GENERIC_CONTROLLER_H_
