#ifndef NTSG_UNDO_BROKEN_H_
#define NTSG_UNDO_BROKEN_H_

#include "undo/undo_object.h"

namespace ntsg {

/// Faulty undo-logging object that skips the backward-commutativity
/// precondition entirely: any access responds as soon as its return value is
/// consistent with the local log. Interleavings that the real U_X would
/// block slip through and surface as serialization-graph cycles or
/// inappropriate return values; used to validate the detectors.
class NoCommuteCheckUndoObject final : public UndoObject {
 public:
  using UndoObject::UndoObject;

  std::string name() const override {
    return "U_nocommute_" + type_.object_name(x_);
  }

 protected:
  bool MustCommuteWith(TxName, const Operation&) const override {
    return false;
  }
};

}  // namespace ntsg

#endif  // NTSG_UNDO_BROKEN_H_
