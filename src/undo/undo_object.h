#ifndef NTSG_UNDO_UNDO_OBJECT_H_
#define NTSG_UNDO_UNDO_OBJECT_H_

#include <memory>
#include <set>
#include <vector>

#include "generic/generic_object.h"
#include "spec/commutativity.h"
#include "spec/serial_spec.h"

namespace ntsg {

/// The undo-logging object U_X (Section 6.2) — a generalization to nested
/// transactions of Weihl's commutativity-based algorithm. Works for objects
/// of *arbitrary* data type.
///
/// State: the set of transactions known committed, and a log of operations
/// (in execution order) from which the operations of aborted transactions'
/// descendants have been expunged.
///
/// An access (T, v) may respond iff
///   * v is the serial return value after the current log (so that
///     perform(log · (T, v)) is a behavior of S_X), and
///   * (T, v) commutes backward with every logged operation (T', v') that is
///     not yet "locally visible" to T — i.e. some ancestor of T' up to
///     lca(T, T') has not been INFORM_COMMITted here.
///
/// INFORM_ABORT(T) removes all operations by descendants of T from the log —
/// the "undo".
class UndoObject : public GenericObject {
 public:
  /// `enable_compaction` folds fully-committed log prefixes into a base
  /// state (ablation A3); semantics are unchanged either way.
  UndoObject(const SystemType& type, ObjectId x,
             bool enable_compaction = true);

  std::string name() const override { return "U_" + type_.object_name(x_); }

  std::vector<Action> EnabledOutputs() const override;

  const std::vector<Operation>& log() const { return log_; }
  bool IsLocallyCommitted(TxName t) const { return committed_.count(t) != 0; }

  /// T' is locally visible to T here iff every ancestor of T' strictly below
  /// lca(T, T') is in the local committed set. (Unlike lock-visibility the
  /// INFORM order does not matter — Section 6.3.)
  bool IsLocallyVisible(TxName t_prime, TxName t) const;

 protected:
  void OnCreate(TxName) override {}
  void OnInformCommit(TxName t) override;
  void OnInformAbort(TxName t) override;
  void OnRequestCommit(TxName access, const Value& v) override;

  /// Hook for broken variants: whether the commutativity precondition is
  /// enforced for `access` against log entry `entry`.
  virtual bool MustCommuteWith(TxName access, const Operation& entry) const;

  /// Replays base state plus the log into a fresh spec; used after log
  /// surgery (aborts).
  void RebuildState();

  /// Log compaction: an entry whose whole ancestor chain has committed can
  /// never be undone (completed transactions never abort) and is locally
  /// visible to every future access, so the maximal such *prefix* of the log
  /// folds into `base_`. Keeps the scanned log proportional to the active
  /// window rather than the whole history. Called after INFORM_COMMIT.
  void CompactLog();

  /// True iff every ancestor of `t` below T0 has committed here.
  bool IsFullyCommitted(TxName t) const;

  const bool enable_compaction_;

  OpRecord RecordOf(const Operation& op) const;

  std::set<TxName> committed_;
  std::vector<Operation> log_;
  /// State summarizing the compacted (immutable) log prefix.
  std::unique_ptr<SerialSpec> base_;
  /// Spec state equal to replaying base_ then log_.
  std::unique_ptr<SerialSpec> state_;
};

}  // namespace ntsg

#endif  // NTSG_UNDO_UNDO_OBJECT_H_
