#include "undo/invariants.h"

#include <set>

#include "common/logging.h"
#include "spec/commutativity.h"
#include "spec/replay.h"

namespace ntsg {

namespace {

class UndoAuditor {
 public:
  UndoAuditor(const SystemType& type, ObjectId x) : type_(type), x_(x) {}

  Status Step(const Action& a) {
    switch (a.kind) {
      case ActionKind::kCreate:
        break;
      case ActionKind::kInformCommit:
        committed_.insert(a.tx);
        break;
      case ActionKind::kInformAbort:
        aborted_.insert(a.tx);
        // Lemma 20's "removed if an ancestor abort occurs after": expunge.
        for (auto it = log_.begin(); it != log_.end();) {
          if (type_.IsAncestor(a.tx, it->tx)) {
            it = log_.erase(it);
          } else {
            ++it;
          }
        }
        break;
      case ActionKind::kRequestCommit: {
        NTSG_RETURN_IF_ERROR(CheckLemma22(a));
        log_.push_back(Operation{a.tx, a.value});
        // Lemma 20 consequence: the reconstructed log replays legally.
        Status replay = ReplayOperations(type_, x_, log_);
        if (!replay.ok()) {
          return Status::VerificationFailed(
              "Lemma 20 violated: reconstructed log is not a behavior of "
              "S_X after " + a.ToString(type_) + ": " + replay.message());
        }
        break;
      }
      default:
        return Status::Corruption("unexpected action in object projection: " +
                                  a.ToString(type_));
    }
    return Status::Ok();
  }

  /// Lemma 21(2) at end of projection: removing descendants of all
  /// transactions without a local commit leaves a behavior.
  Status CheckLemma21Final() const {
    std::vector<Operation> kept;
    for (const Operation& op : log_) {
      bool fully_committed = true;
      for (TxName u = op.tx; u != kT0; u = type_.parent(u)) {
        if (!committed_.count(u)) {
          fully_committed = false;
          break;
        }
      }
      if (fully_committed) kept.push_back(op);
    }
    Status replay = ReplayOperations(type_, x_, kept);
    if (!replay.ok()) {
      return Status::VerificationFailed(
          "Lemma 21(2) violated: committed sub-log is not a behavior: " +
          replay.message());
    }
    return Status::Ok();
  }

 private:
  bool IsLocalOrphan(TxName t) const {
    for (TxName u = t;; u = type_.parent(u)) {
      if (aborted_.count(u)) return true;
      if (u == kT0) return false;
    }
  }

  bool IsLocallyVisible(TxName t_prime, TxName t) const {
    TxName lca = type_.Lca(t_prime, t);
    for (TxName u = t_prime; u != lca; u = type_.parent(u)) {
      if (!committed_.count(u)) return false;
    }
    return true;
  }

  Status CheckLemma22(const Action& response) const {
    const AccessSpec& mine = type_.access(response.tx);
    OpRecord my_rec{mine.op, mine.arg, response.value};
    ObjectType otype = type_.object_type(x_);
    for (const Operation& prior : responses_seen_) {
      const AccessSpec& theirs = type_.access(prior.tx);
      OpRecord their_rec{theirs.op, theirs.arg, prior.value};
      if (CommutesBackward(otype, my_rec, their_rec)) continue;
      if (IsLocalOrphan(prior.tx)) continue;
      if (IsLocallyVisible(prior.tx, response.tx)) continue;
      return Status::VerificationFailed(
          "Lemma 22 violated: prior conflicting operation by " +
          type_.NameOf(prior.tx) + " is neither a local orphan nor locally "
          "visible to " + type_.NameOf(response.tx));
    }
    return Status::Ok();
  }

 public:
  void RecordResponse(const Action& a) {
    responses_seen_.push_back(Operation{a.tx, a.value});
  }

 private:
  const SystemType& type_;
  ObjectId x_;
  std::set<TxName> committed_;
  std::set<TxName> aborted_;
  std::vector<Operation> log_;
  std::vector<Operation> responses_seen_;
};

}  // namespace

UndoAuditReport AuditUndoProjection(const SystemType& type, ObjectId x,
                                    const Trace& projection) {
  UndoAuditor auditor(type, x);
  UndoAuditReport report;
  for (const Action& a : projection) {
    Status s = auditor.Step(a);
    ++report.events;
    if (a.kind == ActionKind::kRequestCommit) {
      ++report.responses;
      auditor.RecordResponse(a);
    }
    if (!s.ok()) {
      report.status = s;
      return report;
    }
  }
  report.status = auditor.CheckLemma21Final();
  return report;
}

UndoAuditReport AuditUndoBehavior(const SystemType& type, const Trace& beta) {
  UndoAuditReport total;
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    UndoAuditReport r =
        AuditUndoProjection(type, x, ProjectGenericObject(type, beta, x));
    total.events += r.events;
    total.responses += r.responses;
    if (!r.status.ok()) {
      total.status = r.status;
      return total;
    }
  }
  total.status = Status::Ok();
  return total;
}

}  // namespace ntsg
