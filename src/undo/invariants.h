#ifndef NTSG_UNDO_INVARIANTS_H_
#define NTSG_UNDO_INVARIANTS_H_

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Executable forms of the paper's Section 6.3 lemmas about U_X, audited
/// over a generic-object projection:
///
///   * Lemma 20 — at every point, the operation log equals the responded
///     operations minus those with an INFORM_ABORT for an ancestor after
///     their response; the audit reconstructs it and requires perform(log)
///     to be a behavior of S_X;
///   * Lemma 22 — when an access responds, every earlier conflicting
///     (non-backward-commuting) operation's transaction is a local orphan
///     or locally visible to it;
///   * Lemma 21(2) — removing the descendants of any set of transactions
///     not locally committed from the log leaves a behavior of S_X; audited
///     at the end of the projection with T = all transactions lacking a
///     local commit.
struct UndoAuditReport {
  Status status;
  size_t events = 0;
  size_t responses = 0;
};

UndoAuditReport AuditUndoProjection(const SystemType& type, ObjectId x,
                                    const Trace& projection);

/// Audits every object's projection of a full behavior.
UndoAuditReport AuditUndoBehavior(const SystemType& type, const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_UNDO_INVARIANTS_H_
