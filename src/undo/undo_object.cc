#include "undo/undo_object.h"

#include "common/logging.h"

namespace ntsg {

UndoObject::UndoObject(const SystemType& type, ObjectId x,
                       bool enable_compaction)
    : GenericObject(type, x),
      enable_compaction_(enable_compaction),
      base_(MakeSpec(type.object_type(x), type.object_initial(x))),
      state_(MakeSpec(type.object_type(x), type.object_initial(x))) {}

bool UndoObject::IsFullyCommitted(TxName t) const {
  for (TxName u = t; u != kT0; u = type_.parent(u)) {
    if (!committed_.count(u)) return false;
  }
  return true;
}

void UndoObject::CompactLog() {
  if (!enable_compaction_) return;
  size_t keep = 0;
  while (keep < log_.size() && IsFullyCommitted(log_[keep].tx)) {
    const AccessSpec& acc = type_.access(log_[keep].tx);
    base_->Apply(acc.op, acc.arg);
    ++keep;
  }
  if (keep > 0) log_.erase(log_.begin(), log_.begin() + keep);
}

bool UndoObject::IsLocallyVisible(TxName t_prime, TxName t) const {
  TxName lca = type_.Lca(t_prime, t);
  for (TxName u = t_prime; u != lca; u = type_.parent(u)) {
    if (!committed_.count(u)) return false;
  }
  return true;
}

void UndoObject::OnInformCommit(TxName t) {
  committed_.insert(t);
  CompactLog();
}

void UndoObject::OnInformAbort(TxName t) {
  size_t before = log_.size();
  std::vector<Operation> kept;
  kept.reserve(log_.size());
  for (const Operation& op : log_) {
    if (!type_.IsAncestor(t, op.tx)) kept.push_back(op);
  }
  log_ = std::move(kept);
  if (log_.size() != before) RebuildState();
}

OpRecord UndoObject::RecordOf(const Operation& op) const {
  const AccessSpec& acc = type_.access(op.tx);
  return OpRecord{acc.op, acc.arg, op.value};
}

bool UndoObject::MustCommuteWith(TxName access, const Operation& entry) const {
  return !IsLocallyVisible(entry.tx, access);
}

void UndoObject::RebuildState() {
  state_ = base_->Clone();
  for (const Operation& op : log_) {
    const AccessSpec& acc = type_.access(op.tx);
    state_->Apply(acc.op, acc.arg);
  }
}

std::vector<Action> UndoObject::EnabledOutputs() const {
  std::vector<Action> out;
  ObjectType otype = type_.object_type(x_);
  for (TxName t : pending()) {
    const AccessSpec& acc = type_.access(t);
    // The unique value making perform(log · (T, v)) a behavior of S_X.
    std::unique_ptr<SerialSpec> probe = state_->Clone();
    Value v = probe->Apply(acc.op, acc.arg);
    OpRecord mine{acc.op, acc.arg, v};
    bool ok = true;
    for (const Operation& entry : log_) {
      if (!MustCommuteWith(t, entry)) continue;
      if (!CommutesBackward(otype, mine, RecordOf(entry))) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(Action::RequestCommit(t, v));
  }
  return out;
}

void UndoObject::OnRequestCommit(TxName access, const Value& v) {
  const AccessSpec& acc = type_.access(access);
  Value expect = state_->Apply(acc.op, acc.arg);
  NTSG_CHECK(expect == v) << name() << ": scheduled response " << v.ToString()
                          << " diverges from log replay "
                          << expect.ToString();
  log_.push_back(Operation{access, v});
}

}  // namespace ntsg
