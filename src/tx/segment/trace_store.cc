#include "tx/segment/trace_store.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "tx/segment/segment_reader.h"

namespace ntsg::seg {

namespace {

constexpr char kSegSuffix[] = ".ntsgs";

/// seg-<8 digits>.ntsgs -> index; false for any other name.
bool ParseSegmentName(const char* name, uint64_t* index) {
  if (std::strncmp(name, "seg-", 4) != 0) return false;
  uint64_t v = 0;
  int digits = 0;
  const char* p = name + 4;
  while (*p >= '0' && *p <= '9') {
    v = v * 10 + static_cast<uint64_t>(*p - '0');
    ++p;
    ++digits;
  }
  if (digits != 8 || std::strcmp(p, kSegSuffix) != 0) return false;
  *index = v;
  return true;
}

Status ListSegments(const std::string& dir, std::map<uint64_t, std::string>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  while (struct dirent* e = ::readdir(d)) {
    uint64_t index;
    if (ParseSegmentName(e->d_name, &index)) {
      (*out)[index] = dir + "/" + e->d_name;
    }
  }
  ::closedir(d);
  return Status::Ok();
}

}  // namespace

std::string TraceStore::SegmentPath(const std::string& dir, uint64_t idx) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu%s",
                static_cast<unsigned long long>(idx), kSegSuffix);
  return dir + "/" + name;
}

Status TraceStore::Create(const std::string& dir, const SystemType* type,
                          const SiblingOrders& orders, const Options& opts,
                          std::unique_ptr<TraceStore>* out) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
  }
  std::map<uint64_t, std::string> existing;
  NTSG_RETURN_IF_ERROR(ListSegments(dir, &existing));
  for (const auto& [index, path] : existing) {
    if (::unlink(path.c_str()) != 0) {
      return Status::Internal("unlink " + path + ": " + std::strerror(errno));
    }
  }

  auto store = std::unique_ptr<TraceStore>(new TraceStore(dir, type, opts));
  NTSG_RETURN_IF_ERROR(WriteSystemSegment(SegmentPath(dir, 0), *type, orders,
                                          opts.codec, &store->fingerprint_));
  *out = std::move(store);
  return Status::Ok();
}

Status TraceStore::Open(const std::string& dir, SystemType* type,
                        SiblingOrders* orders, Trace* recovered,
                        const Options& opts,
                        std::unique_ptr<TraceStore>* out) {
  std::map<uint64_t, std::string> files;
  NTSG_RETURN_IF_ERROR(ListSegments(dir, &files));
  if (files.empty() || files.begin()->first != 0) {
    return Status::Corruption("trace store " + dir +
                              " has no system segment (seg-00000000)");
  }

  auto store = std::unique_ptr<TraceStore>(new TraceStore(dir, type, opts));
  std::string scratch;

  // System segment first.
  {
    MappedFile mapped;
    NTSG_RETURN_IF_ERROR(MappedFile::Open(files.begin()->second, &mapped));
    SegmentCursor cursor(mapped.data(), mapped.size());
    SegmentView view;
    NTSG_RETURN_IF_ERROR(cursor.Next(&view));
    if (view.header.kind != SegmentKind::kSystem || !view.header.sealed()) {
      return Status::Corruption("seg-00000000 is not a sealed system segment");
    }
    const uint8_t* payload = view.payload;
    size_t len = view.payload_len;
    if (view.header.codec == Codec::kRle) {
      NTSG_RETURN_IF_ERROR(RleDecompress(
          std::string_view(reinterpret_cast<const char*>(view.payload),
                           view.payload_len),
          &scratch));
      payload = reinterpret_cast<const uint8_t*>(scratch.data());
      len = scratch.size();
    }
    store->fingerprint_ = Fingerprint64(payload, len);
    if (view.header.type_fingerprint != store->fingerprint_) {
      return Status::Corruption("system segment fingerprint mismatch");
    }
    NTSG_RETURN_IF_ERROR(DecodeSystemPayload(payload, len, type, orders));
  }

  // Action segments in index order; only the last may be an unsealed tail.
  uint64_t last_index = 0;
  for (auto it = std::next(files.begin()); it != files.end(); ++it) {
    const auto& [index, path] = *it;
    bool is_last = std::next(it) == files.end();
    last_index = index;

    MappedFile mapped;
    NTSG_RETURN_IF_ERROR(MappedFile::Open(path, &mapped));
    SegmentCursor cursor(mapped.data(), mapped.size());
    SegmentView view;
    NTSG_RETURN_IF_ERROR(cursor.Next(&view));
    if (view.header.kind != SegmentKind::kActions) {
      return Status::Corruption(path + ": duplicate system segment");
    }
    if (view.header.type_fingerprint != store->fingerprint_) {
      return Status::Corruption(path + ": segment from a different system");
    }

    if (view.header.sealed()) {
      if (!cursor.done()) {
        return Status::Corruption(path + ": trailing bytes after segment");
      }
      NTSG_RETURN_IF_ERROR(
          DecodeActionsInto(view, *type, recovered, &scratch));
      store->sealed_[view.header.first_pos] =
          SealedInfo{index, view.header.first_pos};
      store->next_pos_ = view.header.first_pos + view.header.action_count;
      continue;
    }

    // Unsealed write-ahead tail.
    if (!is_last) {
      return Status::Corruption(path + ": unsealed segment before the tail");
    }
    if (view.header.codec != Codec::kRaw) {
      // A compressed segment has no durable payload until seal; nothing to
      // recover. Drop the placeholder and let the next append recreate it.
      if (::unlink(path.c_str()) != 0) {
        return Status::Internal("unlink " + path + ": " +
                                std::strerror(errno));
      }
      store->next_index_ = index;
      break;
    }
    const uint8_t* p = cursor.tail();
    const uint8_t* end = p + cursor.tail_len();
    uint64_t valid = 0;
    uint64_t count = 0;
    Action a;
    while (p != end && DecodeActionRecord(&p, end, *type, &a).ok()) {
      recovered->push_back(a);
      ++count;
      valid = static_cast<uint64_t>(p - cursor.tail());
    }
    store->next_pos_ = view.header.first_pos + count;
    SegmentWriter::Options wopts;
    wopts.type_fingerprint = store->fingerprint_;
    wopts.first_pos = view.header.first_pos;
    wopts.codec = Codec::kRaw;
    NTSG_RETURN_IF_ERROR(
        SegmentWriter::Resume(path, wopts, valid, count, &store->active_));
    store->active_index_ = index;
    store->active_first_pos_ = view.header.first_pos;
  }
  if (store->next_index_ <= last_index) store->next_index_ = last_index + 1;

  *out = std::move(store);
  return Status::Ok();
}

Status TraceStore::Append(const Action& a) {
  if (active_ == nullptr) {
    SegmentWriter::Options wopts;
    wopts.type_fingerprint = fingerprint_;
    wopts.first_pos = next_pos_;
    wopts.codec = opts_.codec;
    uint64_t index = next_index_++;
    NTSG_RETURN_IF_ERROR(
        SegmentWriter::Create(SegmentPath(dir_, index), wopts, &active_));
    active_index_ = index;
    active_first_pos_ = next_pos_;
  }
  NTSG_RETURN_IF_ERROR(active_->Append(a));
  ++next_pos_;
  NTSG_RETURN_IF_ERROR(active_->Flush());
  if (active_->action_count() >= opts_.actions_per_segment) {
    return SealActive();
  }
  return Status::Ok();
}

Status TraceStore::SealActive() {
  if (active_ == nullptr) return Status::Ok();
  NTSG_RETURN_IF_ERROR(active_->Seal());
  sealed_[active_first_pos_] = SealedInfo{active_index_, active_first_pos_};
  active_.reset();
  return Status::Ok();
}

Status TraceStore::ReadAll(Trace* out) const {
  std::string scratch;
  for (const auto& [first_pos, info] : sealed_) {
    MappedFile mapped;
    NTSG_RETURN_IF_ERROR(MappedFile::Open(SegmentPath(dir_, info.index), &mapped));
    SegmentCursor cursor(mapped.data(), mapped.size());
    SegmentView view;
    NTSG_RETURN_IF_ERROR(cursor.Next(&view));
    if (!view.header.sealed() ||
        view.header.type_fingerprint != fingerprint_) {
      return Status::Corruption(SegmentPath(dir_, info.index) +
                                ": sealed segment changed on disk");
    }
    NTSG_RETURN_IF_ERROR(DecodeActionsInto(view, *type_, out, &scratch));
  }
  return Status::Ok();
}

Status TraceStore::DropRetiredSegments(
    const std::function<bool(TxName)>& retired, size_t* dropped) {
  size_t n = 0;
  std::string scratch;
  for (auto it = sealed_.begin(); it != sealed_.end();) {
    std::string path = SegmentPath(dir_, it->second.index);
    Trace actions;
    {
      MappedFile mapped;
      NTSG_RETURN_IF_ERROR(MappedFile::Open(path, &mapped));
      SegmentCursor cursor(mapped.data(), mapped.size());
      SegmentView view;
      NTSG_RETURN_IF_ERROR(cursor.Next(&view));
      NTSG_RETURN_IF_ERROR(
          DecodeActionsInto(view, *type_, &actions, &scratch));
    }
    bool droppable = true;
    for (const Action& a : actions) {
      // Actions naming T0 itself pin the segment; everything else belongs
      // to the depth-1 family of its transaction.
      if (a.tx == kT0 || type_->depth(a.tx) == 0 ||
          !retired(type_->AncestorAtDepth(a.tx, 1))) {
        droppable = false;
        break;
      }
    }
    if (!droppable) {
      ++it;
      continue;
    }
    if (::unlink(path.c_str()) != 0) {
      return Status::Internal("unlink " + path + ": " + std::strerror(errno));
    }
    it = sealed_.erase(it);
    ++n;
  }
  if (dropped != nullptr) *dropped = n;
  return Status::Ok();
}

}  // namespace ntsg::seg
