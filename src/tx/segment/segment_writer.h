#ifndef NTSG_TX_SEGMENT_SEGMENT_WRITER_H_
#define NTSG_TX_SEGMENT_SEGMENT_WRITER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tx/segment/format.h"

namespace ntsg::seg {

/// Builds one complete sealed segment (header + payload, codec applied) in
/// memory, appending it to `*out`. The payload CRC covers the bytes as
/// stored; the action count / first_pos are the caller's bookkeeping.
void AppendSealedSegment(std::string* out, SegmentKind kind,
                         uint64_t type_fingerprint, uint64_t action_count,
                         uint64_t first_pos, Codec codec,
                         std::string_view raw_payload,
                         uint32_t extra_flags = 0);

/// Streaming writer for one on-disk action segment. Created with an
/// *unsealed* placeholder header (zero counts, sealed bit clear); appends
/// buffer in memory and drain to the fd on Flush / segment roll; Seal()
/// flushes, rewrites the final header in place, and fsyncs, which is the
/// durability point — an unsealed file is a crash tail that recovery scans
/// best-effort (TraceStore::Open).
///
/// Only Codec::kRaw supports streaming: a compressed payload cannot be
/// emitted until it is complete, so Codec::kRle buffers everything and hits
/// the disk at Seal(). Write-ahead-log use therefore wants kRaw.
///
/// The destructor closes the fd without sealing (deliberately — tests and
/// crash recovery rely on unsealed tails being left behind).
class SegmentWriter {
 public:
  struct Options {
    uint64_t type_fingerprint = 0;
    uint64_t first_pos = 0;
    Codec codec = Codec::kRaw;
  };

  /// Creates (truncating) `path` and writes the unsealed placeholder header.
  static Status Create(const std::string& path, const Options& opts,
                       std::unique_ptr<SegmentWriter>* out);

  /// Reopens an unsealed tail segment for continued appending after crash
  /// recovery: truncates the file to `valid_payload` bytes past the header
  /// (the prefix that decoded cleanly) and resumes the CRC from there.
  /// Only meaningful for Codec::kRaw tails.
  static Status Resume(const std::string& path, const Options& opts,
                       uint64_t valid_payload, uint64_t action_count,
                       std::unique_ptr<SegmentWriter>* out);

  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Encodes one action record into the pending buffer.
  Status Append(const Action& a);

  /// Drains the pending buffer to the fd (no-op for kRle, which must hold
  /// the whole payload until Seal).
  Status Flush();

  /// Flush + rewrite the final header (counts, CRCs, sealed flag) + fsync.
  /// The writer is unusable for further appends afterwards.
  Status Seal();

  uint64_t action_count() const { return action_count_; }
  uint64_t payload_bytes() const { return written_ + pending_.size(); }
  bool sealed() const { return sealed_; }
  const std::string& path() const { return path_; }

 private:
  SegmentWriter(std::string path, int fd, const Options& opts)
      : path_(std::move(path)), fd_(fd), opts_(opts) {}

  Status WritePending();

  std::string path_;
  int fd_;
  Options opts_;
  std::string pending_;       // encoded records not yet on the fd
  uint64_t written_ = 0;      // payload bytes already on the fd
  uint64_t action_count_ = 0;
  uint32_t crc_ = 0;          // running CRC over bytes already on the fd
  bool sealed_ = false;
};

/// Writes `path` as one complete sealed system segment (fsync'd). The
/// fingerprint of the *raw* (pre-codec) system payload — the value action
/// segments must embed — is returned through `fingerprint_out`.
Status WriteSystemSegment(const std::string& path, const SystemType& type,
                          const SiblingOrders& orders, Codec codec,
                          uint64_t* fingerprint_out);

}  // namespace ntsg::seg

#endif  // NTSG_TX_SEGMENT_SEGMENT_WRITER_H_
