#ifndef NTSG_TX_SEGMENT_FORMAT_H_
#define NTSG_TX_SEGMENT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tx/trace.h"
#include "tx/trace_io.h"

namespace ntsg::seg {

/// The compact binary trace format (DESIGN.md §12). A binary trace is a
/// sequence of *segments*; each segment is a fixed 64-byte little-endian
/// header followed by a payload. The first segment encodes the SystemType
/// (plus any sibling orders); every following segment packs a run of
/// actions as varints. Headers and payloads are independently protected by
/// CRC32C, and every action segment carries the fingerprint of the system
/// payload it belongs to, so segments from different systems cannot be
/// stitched together silently.
///
/// Header layout (all fields little-endian):
///
///   offset  size  field
///   0       8     magic "NTSGSEG1"
///   8       4     format version (currently 1)
///   12      4     segment kind (0 = system, 1 = actions)
///   16      8     system-type fingerprint (FNV-1a 64 of the system payload)
///   24      8     action count (0 for system segments)
///   32      8     payload byte length, as stored (post-codec)
///   40      8     first action position (global index; 0 for system)
///   48      4     codec (0 = raw varints, 1 = RLE over the raw bytes)
///   52      4     flags (bit 0: sealed; bit 1: last segment of an image)
///   56      4     CRC32C of the stored payload bytes
///   60      4     CRC32C of header bytes [0, 60)
///
/// A segment is *sealed* once its final header (counts, CRCs, sealed flag)
/// has been rewritten and fsync'd; until then the header on disk carries
/// zero counts and a clear sealed bit, which is how crash recovery tells a
/// write-ahead tail from a complete segment.
inline constexpr char kMagic[8] = {'N', 'T', 'S', 'G', 'S', 'E', 'G', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderSize = 64;

enum class SegmentKind : uint32_t {
  kSystem = 0,   // payload = EncodeSystemPayload
  kActions = 1,  // payload = a run of action records
};

enum class Codec : uint32_t {
  kRaw = 0,  // varint-packed records, stored as encoded
  kRle = 1,  // byte-level run-length encoding over the raw bytes
};

inline constexpr uint32_t kFlagSealed = 1u;
/// Marks the final segment of a self-contained trace image (a .ntsgs file).
/// Without it, chopping a whole trailing segment off a file would still
/// decode — as a silently shorter trace. Directory stores (TraceStore) never
/// set it: their segment count is open-ended by design.
inline constexpr uint32_t kFlagLast = 2u;

struct SegmentHeader {
  uint32_t version = kFormatVersion;
  SegmentKind kind = SegmentKind::kActions;
  uint64_t type_fingerprint = 0;
  uint64_t action_count = 0;
  uint64_t payload_len = 0;
  uint64_t first_pos = 0;
  Codec codec = Codec::kRaw;
  uint32_t flags = 0;
  uint32_t payload_crc = 0;

  bool sealed() const { return (flags & kFlagSealed) != 0; }
  bool last() const { return (flags & kFlagLast) != 0; }
};

/// Serializes `h` into exactly kHeaderSize bytes (computing the header CRC).
void EncodeHeader(const SegmentHeader& h, uint8_t out[kHeaderSize]);

/// Validates magic, version, and the header CRC; fills `out` on success.
/// `n` is the number of bytes available at `p` (short reads are Corruption).
Status DecodeHeader(const uint8_t* p, size_t n, SegmentHeader* out);

// --- Primitive codecs ------------------------------------------------------

/// LEB128 varint append / bounded decode. Decode fails (returns false) on
/// truncation or a value wider than 64 bits.
void PutVarint(std::string* out, uint64_t v);
bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* out);

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// CRC32C (Castagnoli), table-driven. `seed` chains incremental updates:
/// Crc32c(b, n2, Crc32c(a, n1)) == Crc32c(a+b).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// 64-bit FNV-1a, used as the system-type fingerprint embedded in every
/// action segment header.
uint64_t Fingerprint64(const void* data, size_t n);

/// Byte-level run-length codec — the built-in `Codec::kRle`. Control byte
/// 0x00-0x7F announces a literal run of (c + 1) bytes; 0x80-0xFF announces
/// (c - 0x80 + 2) repeats of the next byte. Deliberately simple: the codec
/// field exists so a real compressor can slot in without a format bump.
std::string RleCompress(std::string_view raw);
Status RleDecompress(std::string_view compressed, std::string* out);

// --- Record codecs ---------------------------------------------------------

/// Appends one action record: kind byte, varint tx, then (for kinds that
/// carry one) a value tag + zigzag payload and/or a varint object id.
void AppendActionRecord(std::string* out, const Action& a);

/// Decodes one record, advancing *p; validates the kind byte and that tx /
/// object ids are dense in `type` (the same checks the text parser makes).
Status DecodeActionRecord(const uint8_t** p, const uint8_t* end,
                          const SystemType& type, Action* out);

/// System payload: object table, name arena (parents + access specs), and
/// sibling orders, all varint-packed. Decode targets a fresh SystemType
/// (no objects, only T0) and validates every structural invariant the text
/// parser enforces — dense ids, declared parents, access parents being
/// composites, ops valid for their object's type.
std::string EncodeSystemPayload(const SystemType& type,
                                const SiblingOrders& orders);
Status DecodeSystemPayload(const uint8_t* p, size_t n, SystemType* type,
                           SiblingOrders* orders);

}  // namespace ntsg::seg

#endif  // NTSG_TX_SEGMENT_FORMAT_H_
