#ifndef NTSG_TX_SEGMENT_SEGMENT_READER_H_
#define NTSG_TX_SEGMENT_SEGMENT_READER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "tx/segment/format.h"

namespace ntsg::seg {

/// Read-only mmap of a whole file. Movable, not copyable; unmaps on
/// destruction. Empty files map to (nullptr, 0), which the cursor treats as
/// zero segments.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// NotFound if the file cannot be opened; Internal on stat/mmap failure.
  static Status Open(const std::string& path, MappedFile* out);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// One decoded segment inside a larger mapping. `payload` points into the
/// mapping (as stored, i.e. post-codec) — no copy is made.
struct SegmentView {
  SegmentHeader header;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

/// Cursor over back-to-back segments in a byte range. Next() validates the
/// header (magic, version, CRC), bounds-checks the payload length against
/// the remaining bytes, and verifies the payload CRC for sealed segments.
/// Unsealed headers carry zero counts, so their nominal payload is empty —
/// the bytes after an unsealed header up to end-of-range are the write-ahead
/// tail, exposed via `tail`/`tail_len` for best-effort recovery scans.
class SegmentCursor {
 public:
  SegmentCursor(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}

  bool done() const { return p_ == end_; }

  /// Advances past the next segment. After an unsealed segment the cursor is
  /// positioned at end-of-range (the tail consumes the rest).
  Status Next(SegmentView* out);

  /// Raw bytes following the most recent unsealed header (empty otherwise).
  const uint8_t* tail() const { return tail_; }
  size_t tail_len() const { return tail_len_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
  const uint8_t* tail_ = nullptr;
  size_t tail_len_ = 0;
};

/// Decodes a sealed actions segment into `trace` (appending), validating
/// every record against `type` and the stored action count. Raw-codec
/// payloads decode straight out of the mapping; RLE payloads inflate into
/// `*scratch` first.
Status DecodeActionsInto(const SegmentView& view, const SystemType& type,
                         Trace* trace, std::string* scratch);

/// Strict whole-buffer decode of a binary trace: a sealed system segment
/// followed by zero or more sealed action segments with matching
/// fingerprints and contiguous first_pos. Any unsealed segment, CRC or
/// fingerprint mismatch, gap, or trailing byte is Corruption. `type` must be
/// fresh (no objects, only T0).
Status DecodeBinaryTrace(const uint8_t* data, size_t size, SystemType* type,
                         Trace* trace, SiblingOrders* orders = nullptr);

/// Serializes the full system + trace as one sealed binary file image.
/// Actions are split into segments of at most `actions_per_segment`.
std::string SerializeBinaryTrace(const SystemType& type, const Trace& trace,
                                 const SiblingOrders& orders = {},
                                 Codec codec = Codec::kRaw,
                                 uint64_t actions_per_segment = 1 << 16);

/// File wrappers, mirroring Read/WriteTraceFile. ReadBinaryTraceFile maps
/// the file and replays zero-copy via DecodeBinaryTrace; NotFound if the
/// file cannot be opened, Corruption on any format violation.
Status ReadBinaryTraceFile(const std::string& path, SystemType* type,
                           Trace* trace, SiblingOrders* orders = nullptr);
Status WriteBinaryTraceFile(const std::string& path, const SystemType& type,
                            const Trace& trace,
                            const SiblingOrders& orders = {},
                            Codec codec = Codec::kRaw,
                            uint64_t actions_per_segment = 1 << 16);

/// True if the file starts with the segment magic (reads 8 bytes; does not
/// validate anything else). NotFound if the file cannot be opened.
Result<bool> SniffBinaryTraceFile(const std::string& path);

/// Format-dispatching read: sniffs the magic and calls ReadBinaryTraceFile
/// or the text ReadTraceFile accordingly.
Status ReadTraceFileAuto(const std::string& path, SystemType* type,
                         Trace* trace, SiblingOrders* orders = nullptr);

}  // namespace ntsg::seg

#endif  // NTSG_TX_SEGMENT_SEGMENT_READER_H_
