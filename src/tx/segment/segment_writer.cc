#include "tx/segment/segment_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ntsg::seg {

namespace {

Status WriteFully(int fd, const void* data, size_t n, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write " + path + ": " + std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status PwriteFully(int fd, const void* data, size_t n, off_t off,
                   const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pwrite " + path + ": " + std::strerror(errno));
    }
    p += w;
    off += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

void AppendSealedSegment(std::string* out, SegmentKind kind,
                         uint64_t type_fingerprint, uint64_t action_count,
                         uint64_t first_pos, Codec codec,
                         std::string_view raw_payload, uint32_t extra_flags) {
  std::string stored;
  if (codec == Codec::kRle) {
    stored = RleCompress(raw_payload);
  }
  std::string_view payload =
      codec == Codec::kRle ? std::string_view(stored) : raw_payload;

  SegmentHeader h;
  h.kind = kind;
  h.type_fingerprint = type_fingerprint;
  h.action_count = action_count;
  h.payload_len = payload.size();
  h.first_pos = first_pos;
  h.codec = codec;
  h.flags = kFlagSealed | extra_flags;
  h.payload_crc = Crc32c(payload.data(), payload.size());

  uint8_t header_bytes[kHeaderSize];
  EncodeHeader(h, header_bytes);
  out->append(reinterpret_cast<const char*>(header_bytes), kHeaderSize);
  out->append(payload.data(), payload.size());
}

Status SegmentWriter::Create(const std::string& path, const Options& opts,
                             std::unique_ptr<SegmentWriter>* out) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  auto writer =
      std::unique_ptr<SegmentWriter>(new SegmentWriter(path, fd, opts));

  // Unsealed placeholder: real identity fields, zero counts, sealed clear.
  SegmentHeader h;
  h.kind = SegmentKind::kActions;
  h.type_fingerprint = opts.type_fingerprint;
  h.first_pos = opts.first_pos;
  h.codec = opts.codec;
  uint8_t header_bytes[kHeaderSize];
  EncodeHeader(h, header_bytes);
  NTSG_RETURN_IF_ERROR(WriteFully(fd, header_bytes, kHeaderSize, path));

  *out = std::move(writer);
  return Status::Ok();
}

Status SegmentWriter::Resume(const std::string& path, const Options& opts,
                             uint64_t valid_payload, uint64_t action_count,
                             std::unique_ptr<SegmentWriter>* out) {
  if (opts.codec != Codec::kRaw) {
    return Status::InvalidArgument("only raw-codec tails can be resumed");
  }
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  auto writer =
      std::unique_ptr<SegmentWriter>(new SegmentWriter(path, fd, opts));

  // Drop any torn bytes past the last record that decoded cleanly, then
  // recompute the running CRC over the kept prefix.
  off_t keep = static_cast<off_t>(kHeaderSize + valid_payload);
  if (::ftruncate(fd, keep) != 0) {
    return Status::Internal("ftruncate " + path + ": " + std::strerror(errno));
  }
  if (::lseek(fd, keep, SEEK_SET) < 0) {
    return Status::Internal("lseek " + path + ": " + std::strerror(errno));
  }
  std::string prefix(static_cast<size_t>(valid_payload), '\0');
  size_t got = 0;
  while (got < prefix.size()) {
    ssize_t r = ::pread(fd, prefix.data() + got, prefix.size() - got,
                        static_cast<off_t>(kHeaderSize + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pread " + path + ": " + std::strerror(errno));
    }
    if (r == 0) return Status::Corruption("segment tail shorter than claimed");
    got += static_cast<size_t>(r);
  }
  writer->written_ = valid_payload;
  writer->crc_ = Crc32c(prefix.data(), prefix.size());
  writer->action_count_ = action_count;

  *out = std::move(writer);
  return Status::Ok();
}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status SegmentWriter::Append(const Action& a) {
  if (sealed_) return Status::FailedPrecondition("segment already sealed");
  AppendActionRecord(&pending_, a);
  ++action_count_;
  return Status::Ok();
}

Status SegmentWriter::WritePending() {
  if (pending_.empty()) return Status::Ok();
  NTSG_RETURN_IF_ERROR(WriteFully(fd_, pending_.data(), pending_.size(), path_));
  crc_ = Crc32c(pending_.data(), pending_.size(), crc_);
  written_ += pending_.size();
  pending_.clear();
  return Status::Ok();
}

Status SegmentWriter::Flush() {
  if (sealed_) return Status::FailedPrecondition("segment already sealed");
  if (opts_.codec != Codec::kRaw) return Status::Ok();
  return WritePending();
}

Status SegmentWriter::Seal() {
  if (sealed_) return Status::FailedPrecondition("segment already sealed");

  uint64_t payload_len;
  uint32_t payload_crc;
  if (opts_.codec == Codec::kRaw) {
    NTSG_RETURN_IF_ERROR(WritePending());
    payload_len = written_;
    payload_crc = crc_;
  } else {
    std::string stored = RleCompress(pending_);
    NTSG_RETURN_IF_ERROR(WriteFully(fd_, stored.data(), stored.size(), path_));
    payload_len = stored.size();
    payload_crc = Crc32c(stored.data(), stored.size());
    pending_.clear();
  }

  SegmentHeader h;
  h.kind = SegmentKind::kActions;
  h.type_fingerprint = opts_.type_fingerprint;
  h.action_count = action_count_;
  h.payload_len = payload_len;
  h.first_pos = opts_.first_pos;
  h.codec = opts_.codec;
  h.flags = kFlagSealed;
  h.payload_crc = payload_crc;
  uint8_t header_bytes[kHeaderSize];
  EncodeHeader(h, header_bytes);
  NTSG_RETURN_IF_ERROR(PwriteFully(fd_, header_bytes, kHeaderSize, 0, path_));

  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync " + path_ + ": " + std::strerror(errno));
  }
  sealed_ = true;
  return Status::Ok();
}

Status WriteSystemSegment(const std::string& path, const SystemType& type,
                          const SiblingOrders& orders, Codec codec,
                          uint64_t* fingerprint_out) {
  std::string payload = EncodeSystemPayload(type, orders);
  uint64_t fingerprint = Fingerprint64(payload.data(), payload.size());

  std::string file;
  AppendSealedSegment(&file, SegmentKind::kSystem, fingerprint,
                      /*action_count=*/0, /*first_pos=*/0, codec, payload);

  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  Status s = WriteFully(fd, file.data(), file.size(), path);
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::Internal("fsync " + path + ": " + std::strerror(errno));
  }
  ::close(fd);
  if (s.ok() && fingerprint_out != nullptr) *fingerprint_out = fingerprint;
  return s;
}

}  // namespace ntsg::seg
