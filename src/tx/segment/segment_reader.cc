#include "tx/segment/segment_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "tx/segment/segment_writer.h"

namespace ntsg::seg {

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Status MappedFile::Open(const std::string& path, MappedFile* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat " + path + ": " + std::strerror(errno));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Internal(path + " is not a regular file");
  }
  MappedFile mapped;
  if (st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::Internal("mmap " + path + ": " + std::strerror(errno));
    }
    mapped.data_ = static_cast<const uint8_t*>(p);
    mapped.size_ = static_cast<size_t>(st.st_size);
  }
  ::close(fd);
  *out = std::move(mapped);
  return Status::Ok();
}

Status SegmentCursor::Next(SegmentView* out) {
  tail_ = nullptr;
  tail_len_ = 0;
  if (done()) return Status::Corruption("no more segments");

  SegmentHeader h;
  NTSG_RETURN_IF_ERROR(DecodeHeader(p_, static_cast<size_t>(end_ - p_), &h));
  p_ += kHeaderSize;

  if (!h.sealed()) {
    // Write-ahead tail: everything to end-of-range is unverified bytes.
    out->header = h;
    out->payload = p_;
    out->payload_len = 0;
    tail_ = p_;
    tail_len_ = static_cast<size_t>(end_ - p_);
    p_ = end_;
    return Status::Ok();
  }

  if (h.payload_len > static_cast<uint64_t>(end_ - p_)) {
    return Status::Corruption("segment payload truncated");
  }
  size_t len = static_cast<size_t>(h.payload_len);
  if (Crc32c(p_, len) != h.payload_crc) {
    return Status::Corruption("segment payload CRC mismatch");
  }
  out->header = h;
  out->payload = p_;
  out->payload_len = len;
  p_ += len;
  return Status::Ok();
}

Status DecodeActionsInto(const SegmentView& view, const SystemType& type,
                         Trace* trace, std::string* scratch) {
  const uint8_t* p = view.payload;
  const uint8_t* end = p + view.payload_len;
  if (view.header.codec == Codec::kRle) {
    NTSG_RETURN_IF_ERROR(RleDecompress(
        std::string_view(reinterpret_cast<const char*>(view.payload),
                         view.payload_len),
        scratch));
    p = reinterpret_cast<const uint8_t*>(scratch->data());
    end = p + scratch->size();
  }
  uint64_t decoded = 0;
  Action a;
  while (p != end) {
    NTSG_RETURN_IF_ERROR(DecodeActionRecord(&p, end, type, &a));
    trace->push_back(a);
    ++decoded;
  }
  if (decoded != view.header.action_count) {
    return Status::Corruption("segment action count mismatch: header says " +
                              std::to_string(view.header.action_count) +
                              ", payload holds " + std::to_string(decoded));
  }
  return Status::Ok();
}

Status DecodeBinaryTrace(const uint8_t* data, size_t size, SystemType* type,
                         Trace* trace, SiblingOrders* orders) {
  SegmentCursor cursor(data, size);
  if (cursor.done()) return Status::Corruption("empty binary trace");

  SegmentView view;
  NTSG_RETURN_IF_ERROR(cursor.Next(&view));
  if (view.header.kind != SegmentKind::kSystem) {
    return Status::Corruption("binary trace must start with a system segment");
  }
  if (!view.header.sealed()) {
    return Status::Corruption("system segment is unsealed");
  }

  std::string scratch;
  const uint8_t* sys_payload = view.payload;
  size_t sys_len = view.payload_len;
  if (view.header.codec == Codec::kRle) {
    NTSG_RETURN_IF_ERROR(RleDecompress(
        std::string_view(reinterpret_cast<const char*>(view.payload),
                         view.payload_len),
        &scratch));
    sys_payload = reinterpret_cast<const uint8_t*>(scratch.data());
    sys_len = scratch.size();
  }
  uint64_t fingerprint = Fingerprint64(sys_payload, sys_len);
  if (view.header.type_fingerprint != fingerprint) {
    return Status::Corruption("system segment fingerprint mismatch");
  }
  NTSG_RETURN_IF_ERROR(DecodeSystemPayload(sys_payload, sys_len, type, orders));

  if (view.header.last() && !cursor.done()) {
    return Status::Corruption("segments after the marked-last segment");
  }

  uint64_t next_pos = 0;
  std::string action_scratch;
  bool saw_last = view.header.last();
  while (!cursor.done()) {
    NTSG_RETURN_IF_ERROR(cursor.Next(&view));
    if (view.header.kind != SegmentKind::kActions) {
      return Status::Corruption("duplicate system segment");
    }
    if (!view.header.sealed()) {
      return Status::Corruption("unsealed action segment in binary trace");
    }
    if (view.header.last() && !cursor.done()) {
      return Status::Corruption("segments after the marked-last segment");
    }
    saw_last = view.header.last();
    if (view.header.type_fingerprint != fingerprint) {
      return Status::Corruption(
          "action segment belongs to a different system type");
    }
    if (view.header.first_pos != next_pos) {
      return Status::Corruption("action segments out of order or gapped");
    }
    NTSG_RETURN_IF_ERROR(
        DecodeActionsInto(view, *type, trace, &action_scratch));
    next_pos += view.header.action_count;
  }
  if (!saw_last) {
    return Status::Corruption(
        "binary trace truncated at a segment boundary (no last-segment mark)");
  }
  return Status::Ok();
}

std::string SerializeBinaryTrace(const SystemType& type, const Trace& trace,
                                 const SiblingOrders& orders, Codec codec,
                                 uint64_t actions_per_segment) {
  if (actions_per_segment == 0) actions_per_segment = 1;
  std::string out;

  std::string sys_payload = EncodeSystemPayload(type, orders);
  uint64_t fingerprint = Fingerprint64(sys_payload.data(), sys_payload.size());
  // kFlagLast marks the image's final segment so a truncation that drops a
  // whole trailing segment cannot pass as a shorter-but-valid trace.
  AppendSealedSegment(&out, SegmentKind::kSystem, fingerprint,
                      /*action_count=*/0, /*first_pos=*/0, codec, sys_payload,
                      trace.empty() ? kFlagLast : 0);

  std::string payload;
  for (size_t first = 0; first < trace.size(); first += actions_per_segment) {
    size_t count =
        std::min<size_t>(actions_per_segment, trace.size() - first);
    payload.clear();
    for (size_t i = 0; i < count; ++i) {
      AppendActionRecord(&payload, trace[first + i]);
    }
    AppendSealedSegment(&out, SegmentKind::kActions, fingerprint, count, first,
                        codec, payload,
                        first + count == trace.size() ? kFlagLast : 0);
  }
  return out;
}

Status ReadBinaryTraceFile(const std::string& path, SystemType* type,
                           Trace* trace, SiblingOrders* orders) {
  MappedFile mapped;
  NTSG_RETURN_IF_ERROR(MappedFile::Open(path, &mapped));
  return DecodeBinaryTrace(mapped.data(), mapped.size(), type, trace, orders);
}

Status WriteBinaryTraceFile(const std::string& path, const SystemType& type,
                            const Trace& trace, const SiblingOrders& orders,
                            Codec codec, uint64_t actions_per_segment) {
  std::string image =
      SerializeBinaryTrace(type, trace, orders, codec, actions_per_segment);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing: " +
                            std::strerror(errno));
  }
  size_t written = image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
  bool flushed = std::fflush(f) == 0;
  bool closed = std::fclose(f) == 0;
  if (written != image.size() || !flushed || !closed) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Result<bool> SniffBinaryTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  char head[sizeof(kMagic)];
  size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return got == sizeof(head) && std::memcmp(head, kMagic, sizeof(head)) == 0;
}

Status ReadTraceFileAuto(const std::string& path, SystemType* type,
                         Trace* trace, SiblingOrders* orders) {
  Result<bool> binary = SniffBinaryTraceFile(path);
  if (!binary.ok()) return binary.status();
  if (*binary) {
    return ReadBinaryTraceFile(path, type, trace, orders);
  }
  return ReadTraceFile(path, type, trace, orders);
}

}  // namespace ntsg::seg
