#ifndef NTSG_TX_SEGMENT_TRACE_STORE_H_
#define NTSG_TX_SEGMENT_TRACE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "tx/segment/format.h"
#include "tx/segment/segment_writer.h"

namespace ntsg::seg {

/// A directory of segments stitched into one logical trace — the persistent
/// form of a run and, because the active segment accepts appends before it
/// is sealed, a write-ahead log at the same time.
///
/// Layout: `seg-00000000.ntsgs` is the sealed system segment; every later
/// `seg-%08u.ntsgs` holds a run of actions. Segments roll at
/// `actions_per_segment`; Seal is the durability point. On reopen, the
/// sealed prefix is trusted (CRC-verified), and an unsealed last segment is
/// scanned best-effort: the longest cleanly-decoding record prefix is
/// recovered, torn bytes after it are truncated away, and appending resumes
/// there — recovery restarts from the last sealed boundary plus whatever
/// tail survived, never from text re-ingestion.
///
/// Segments whose transactions have all been retired by the GC can be
/// dropped (unlinked) without disturbing the rest of the store; ReadAll
/// tolerates the resulting gaps in both the numbering and the positions.
class TraceStore {
 public:
  struct Options {
    uint64_t actions_per_segment = 4096;
    /// Streaming appends require kRaw (a compressed payload cannot hit the
    /// disk until seal); kRle is honored for Create/Open stores that only
    /// ever seal whole segments.
    Codec codec = Codec::kRaw;
  };

  /// Initializes `dir` (created if missing; any existing seg-*.ntsgs files
  /// are removed) with a sealed system segment for `type`. The store keeps
  /// the `type` pointer — the caller's SystemType must outlive the store.
  static Status Create(const std::string& dir, const SystemType* type,
                       const SiblingOrders& orders, const Options& opts,
                       std::unique_ptr<TraceStore>* out);

  /// Reopens `dir`: decodes the system segment into the caller's fresh
  /// `type`, replays every sealed segment plus the recovered tail into
  /// `recovered`, and leaves the store ready for further appends.
  static Status Open(const std::string& dir, SystemType* type,
                     SiblingOrders* orders, Trace* recovered,
                     const Options& opts, std::unique_ptr<TraceStore>* out);

  ~TraceStore() = default;

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Appends one action to the active segment, rolling (seal + new segment)
  /// at the configured size.
  Status Append(const Action& a);

  /// Seals the active segment if it has any actions (fsync'd); a subsequent
  /// Append opens a fresh one.
  Status SealActive();

  /// Replays the whole store (sealed segments only) into `out`, verifying
  /// CRCs and fingerprints. Positions may be gapped if segments were
  /// dropped; records are appended in position order.
  Status ReadAll(Trace* out) const;

  /// Unlinks every *sealed* action segment all of whose actions belong to
  /// retired families: `retired(root)` answers whether the depth-1 ancestor
  /// family `root` has been retired by the GC. Actions naming T0 itself
  /// (top-level completions) pin their segment. Returns the number of
  /// segments dropped through `dropped`.
  Status DropRetiredSegments(
      const std::function<bool(TxName)>& retired, size_t* dropped);

  uint64_t next_pos() const { return next_pos_; }
  uint64_t num_sealed_segments() const { return sealed_.size(); }
  const std::string& dir() const { return dir_; }

  /// `seg-%08u.ntsgs` path for index `idx` under `dir`.
  static std::string SegmentPath(const std::string& dir, uint64_t idx);

 private:
  TraceStore(std::string dir, const SystemType* type, const Options& opts)
      : dir_(std::move(dir)), type_(type), opts_(opts) {}

  Status RollActive();

  struct SealedInfo {
    uint64_t index;      // file-name index
    uint64_t first_pos;  // global position of its first action
  };

  std::string dir_;
  const SystemType* type_;
  Options opts_;
  uint64_t fingerprint_ = 0;
  uint64_t next_index_ = 1;  // next segment file index to create
  uint64_t next_pos_ = 0;    // global position of the next appended action
  std::map<uint64_t, SealedInfo> sealed_;  // by first_pos
  std::unique_ptr<SegmentWriter> active_;
  uint64_t active_index_ = 0;
  uint64_t active_first_pos_ = 0;
};

}  // namespace ntsg::seg

#endif  // NTSG_TX_SEGMENT_TRACE_STORE_H_
