#include "tx/segment/format.h"

#include <cstring>

namespace ntsg::seg {

namespace {

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

// The same value-vs-OK split the text format's "ok" token makes.
constexpr uint8_t kValueOk = 0;
constexpr uint8_t kValueInt = 1;

bool KindHasValue(ActionKind kind) {
  return kind == ActionKind::kRequestCommit ||
         kind == ActionKind::kReportCommit;
}

bool KindHasObject(ActionKind kind) {
  return kind == ActionKind::kInformCommit || kind == ActionKind::kInformAbort;
}

// Caps that bound decoder allocations on corrupt input before any payload
// CRC check runs (the tail-recovery scan decodes unchecked bytes).
constexpr uint64_t kMaxObjectNameLen = 1u << 16;
constexpr uint64_t kMaxDecl = 1u << 28;  // objects / names / orders / children

const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

void EncodeHeader(const SegmentHeader& h, uint8_t out[kHeaderSize]) {
  std::memcpy(out, kMagic, sizeof(kMagic));
  PutU32(out + 8, h.version);
  PutU32(out + 12, static_cast<uint32_t>(h.kind));
  PutU64(out + 16, h.type_fingerprint);
  PutU64(out + 24, h.action_count);
  PutU64(out + 32, h.payload_len);
  PutU64(out + 40, h.first_pos);
  PutU32(out + 48, static_cast<uint32_t>(h.codec));
  PutU32(out + 52, h.flags);
  PutU32(out + 56, h.payload_crc);
  PutU32(out + 60, Crc32c(out, 60));
}

Status DecodeHeader(const uint8_t* p, size_t n, SegmentHeader* out) {
  if (n < kHeaderSize) {
    return Status::Corruption("segment header truncated");
  }
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad segment magic");
  }
  if (GetU32(p + 60) != Crc32c(p, 60)) {
    return Status::Corruption("segment header CRC mismatch");
  }
  out->version = GetU32(p + 8);
  if (out->version == 0 || out->version > kFormatVersion) {
    return Status::Corruption("unsupported segment format version " +
                              std::to_string(out->version));
  }
  uint32_t kind = GetU32(p + 12);
  if (kind > static_cast<uint32_t>(SegmentKind::kActions)) {
    return Status::Corruption("unknown segment kind");
  }
  out->kind = static_cast<SegmentKind>(kind);
  out->type_fingerprint = GetU64(p + 16);
  out->action_count = GetU64(p + 24);
  out->payload_len = GetU64(p + 32);
  out->first_pos = GetU64(p + 40);
  uint32_t codec = GetU32(p + 48);
  if (codec > static_cast<uint32_t>(Codec::kRle)) {
    return Status::Corruption("unknown segment codec");
  }
  out->codec = static_cast<Codec>(codec);
  out->flags = GetU32(p + 52);
  if ((out->flags & ~(kFlagSealed | kFlagLast)) != 0) {
    return Status::Corruption("unknown segment flags");
  }
  out->payload_crc = GetU32(p + 56);
  return Status::Ok();
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(const uint8_t** p, const uint8_t* end, uint64_t* out) {
  uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (*p == end) return false;
    uint8_t b = *(*p)++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      // Reject non-canonical overlong encodings that smuggle bits past 64.
      if (shift == 63 && b > 1) return false;
      *out = v;
      return true;
    }
  }
  return false;
}

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

uint64_t Fingerprint64(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string RleCompress(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() / 2 + 16);
  size_t i = 0;
  while (i < raw.size()) {
    // Measure the run at i.
    size_t run = 1;
    while (i + run < raw.size() && raw[i + run] == raw[i] && run < 129) ++run;
    if (run >= 2) {
      out.push_back(static_cast<char>(0x80 + (run - 2)));
      out.push_back(raw[i]);
      i += run;
      continue;
    }
    // Accumulate a literal stretch until the next run of >= 3 (a run of 2
    // inside a literal is cheaper left literal than split).
    size_t start = i;
    while (i < raw.size()) {
      size_t ahead = 1;
      while (i + ahead < raw.size() && raw[i + ahead] == raw[i] && ahead < 3) {
        ++ahead;
      }
      if (ahead >= 3) break;
      // A literal control byte can cover at most 128 bytes (len - 1 must
      // stay below the 0x80 repeat marker), so never step past that.
      if (i - start + ahead > 128) break;
      i += ahead;
    }
    size_t len = i - start;
    if (len == 0) {  // the stretch opens with a 3+ run; loop around
      continue;
    }
    out.push_back(static_cast<char>(len - 1));
    out.append(raw.substr(start, len));
  }
  return out;
}

Status RleDecompress(std::string_view compressed, std::string* out) {
  out->clear();
  size_t i = 0;
  while (i < compressed.size()) {
    uint8_t c = static_cast<uint8_t>(compressed[i++]);
    if (c < 0x80) {
      size_t len = static_cast<size_t>(c) + 1;
      if (i + len > compressed.size()) {
        return Status::Corruption("RLE literal run truncated");
      }
      out->append(compressed.substr(i, len));
      i += len;
    } else {
      if (i >= compressed.size()) {
        return Status::Corruption("RLE repeat run truncated");
      }
      out->append(static_cast<size_t>(c - 0x80) + 2, compressed[i++]);
    }
  }
  return Status::Ok();
}

void AppendActionRecord(std::string* out, const Action& a) {
  out->push_back(static_cast<char>(a.kind));
  PutVarint(out, a.tx);
  if (KindHasValue(a.kind)) {
    if (a.value.is_ok()) {
      out->push_back(static_cast<char>(kValueOk));
    } else {
      out->push_back(static_cast<char>(kValueInt));
      PutVarint(out, ZigzagEncode(a.value.AsInt()));
    }
  }
  if (KindHasObject(a.kind)) {
    PutVarint(out, a.at_object);
  }
}

Status DecodeActionRecord(const uint8_t** p, const uint8_t* end,
                          const SystemType& type, Action* out) {
  if (*p == end) return Status::Corruption("action record truncated");
  uint8_t kind_byte = *(*p)++;
  if (kind_byte > static_cast<uint8_t>(ActionKind::kInformAbort)) {
    return Status::Corruption("unknown action kind byte");
  }
  ActionKind kind = static_cast<ActionKind>(kind_byte);
  uint64_t tx;
  if (!GetVarint(p, end, &tx)) {
    return Status::Corruption("action record truncated (tx)");
  }
  if (tx >= type.num_names()) {
    return Status::Corruption("action names undeclared transaction");
  }
  *out = Action{};
  out->kind = kind;
  out->tx = static_cast<TxName>(tx);
  if (KindHasValue(kind)) {
    if (*p == end) return Status::Corruption("action record truncated (value)");
    uint8_t tag = *(*p)++;
    if (tag == kValueOk) {
      out->value = Value::Ok();
    } else if (tag == kValueInt) {
      uint64_t z;
      if (!GetVarint(p, end, &z)) {
        return Status::Corruption("action record truncated (value payload)");
      }
      out->value = Value::Int(ZigzagDecode(z));
    } else {
      return Status::Corruption("unknown value tag");
    }
  }
  if (KindHasObject(kind)) {
    uint64_t obj;
    if (!GetVarint(p, end, &obj)) {
      return Status::Corruption("action record truncated (object)");
    }
    if (obj >= type.num_objects()) {
      return Status::Corruption("action names unknown object");
    }
    out->at_object = static_cast<ObjectId>(obj);
  }
  return Status::Ok();
}

std::string EncodeSystemPayload(const SystemType& type,
                                const SiblingOrders& orders) {
  std::string out;
  PutVarint(&out, type.num_objects());
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    out.push_back(static_cast<char>(type.object_type(x)));
    PutVarint(&out, ZigzagEncode(type.object_initial(x)));
    const std::string& name = type.object_name(x);
    PutVarint(&out, name.size());
    out.append(name);
  }
  PutVarint(&out, type.num_names());
  for (TxName t = 1; t < type.num_names(); ++t) {
    PutVarint(&out, type.parent(t));
    if (type.IsAccess(t)) {
      const AccessSpec& acc = type.access(t);
      out.push_back(1);
      PutVarint(&out, acc.object);
      out.push_back(static_cast<char>(acc.op));
      PutVarint(&out, ZigzagEncode(acc.arg));
    } else {
      out.push_back(0);
    }
  }
  PutVarint(&out, orders.size());
  for (const auto& [parent, children] : orders) {
    PutVarint(&out, parent);
    PutVarint(&out, children.size());
    for (TxName c : children) PutVarint(&out, c);
  }
  return out;
}

Status DecodeSystemPayload(const uint8_t* p, size_t n, SystemType* type,
                           SiblingOrders* orders) {
  if (type->num_objects() != 0 || type->num_names() != 1) {
    return Status::InvalidArgument("target SystemType must be empty");
  }
  const uint8_t* end = p + n;
  uint64_t num_objects;
  if (!GetVarint(&p, end, &num_objects) || num_objects > kMaxDecl) {
    return Status::Corruption("system payload truncated (object count)");
  }
  for (uint64_t x = 0; x < num_objects; ++x) {
    if (p == end) return Status::Corruption("object table truncated");
    uint8_t otype = *p++;
    if (otype > static_cast<uint8_t>(ObjectType::kBankAccount)) {
      return Status::Corruption("unknown object type byte");
    }
    uint64_t zinitial, name_len;
    if (!GetVarint(&p, end, &zinitial) || !GetVarint(&p, end, &name_len) ||
        name_len > kMaxObjectNameLen ||
        name_len > static_cast<uint64_t>(end - p)) {
      return Status::Corruption("object table truncated");
    }
    std::string name(reinterpret_cast<const char*>(p),
                     static_cast<size_t>(name_len));
    p += name_len;
    type->AddObject(static_cast<ObjectType>(otype), std::move(name),
                    ZigzagDecode(zinitial));
  }
  uint64_t num_names;
  if (!GetVarint(&p, end, &num_names) || num_names == 0 ||
      num_names > kMaxDecl) {
    return Status::Corruption("system payload truncated (name count)");
  }
  for (uint64_t t = 1; t < num_names; ++t) {
    uint64_t parent;
    if (!GetVarint(&p, end, &parent) || p == end) {
      return Status::Corruption("name arena truncated");
    }
    if (parent >= t) return Status::Corruption("parent not yet declared");
    if (type->IsAccess(static_cast<TxName>(parent))) {
      return Status::Corruption("accesses are leaves (access given a child)");
    }
    uint8_t has_access = *p++;
    if (has_access == 0) {
      type->NewChild(static_cast<TxName>(parent));
    } else if (has_access == 1) {
      uint64_t obj;
      if (!GetVarint(&p, end, &obj) || p == end) {
        return Status::Corruption("access spec truncated");
      }
      if (obj >= type->num_objects()) {
        return Status::Corruption("access names unknown object");
      }
      uint8_t op = *p++;
      if (op > static_cast<uint8_t>(OpCode::kBalance)) {
        return Status::Corruption("unknown op byte");
      }
      uint64_t zarg;
      if (!GetVarint(&p, end, &zarg)) {
        return Status::Corruption("access spec truncated (arg)");
      }
      if (!OpValidForType(type->object_type(static_cast<ObjectId>(obj)),
                          static_cast<OpCode>(op))) {
        return Status::Corruption("op invalid for object type");
      }
      type->NewAccess(static_cast<TxName>(parent),
                      AccessSpec{static_cast<ObjectId>(obj),
                                 static_cast<OpCode>(op), ZigzagDecode(zarg)});
    } else {
      return Status::Corruption("bad access marker");
    }
  }
  uint64_t num_orders;
  if (!GetVarint(&p, end, &num_orders) || num_orders > kMaxDecl) {
    return Status::Corruption("system payload truncated (order count)");
  }
  for (uint64_t i = 0; i < num_orders; ++i) {
    uint64_t parent, count;
    if (!GetVarint(&p, end, &parent) || !GetVarint(&p, end, &count) ||
        count > kMaxDecl) {
      return Status::Corruption("sibling order truncated");
    }
    if (parent >= type->num_names()) {
      return Status::Corruption("unknown order parent");
    }
    std::vector<TxName> children;
    children.reserve(static_cast<size_t>(count));
    for (uint64_t k = 0; k < count; ++k) {
      uint64_t child;
      if (!GetVarint(&p, end, &child)) {
        return Status::Corruption("sibling order truncated");
      }
      if (child >= type->num_names() ||
          type->parent(static_cast<TxName>(child)) !=
              static_cast<TxName>(parent)) {
        return Status::Corruption(
            "order child is not a child of the stated parent");
      }
      children.push_back(static_cast<TxName>(child));
    }
    if (orders != nullptr) {
      (*orders)[static_cast<TxName>(parent)] = std::move(children);
    }
  }
  if (p != end) return Status::Corruption("trailing bytes in system payload");
  return Status::Ok();
}

}  // namespace ntsg::seg
