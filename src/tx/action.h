#ifndef NTSG_TX_ACTION_H_
#define NTSG_TX_ACTION_H_

#include <string>

#include "tx/access.h"
#include "tx/system_type.h"
#include "tx/value.h"

namespace ntsg {

/// The external action vocabulary of nested-transaction systems (Section 2).
/// The first seven kinds are the *serial actions*; the INFORM_* kinds appear
/// only in generic systems (Section 5.1) and are dropped by `serial(β)`.
enum class ActionKind : uint8_t {
  kCreate,         // CREATE(T)
  kRequestCreate,  // REQUEST_CREATE(T), T != T0
  kRequestCommit,  // REQUEST_COMMIT(T, v)
  kCommit,         // COMMIT(T), T != T0
  kAbort,          // ABORT(T), T != T0
  kReportCommit,   // REPORT_COMMIT(T, v)
  kReportAbort,    // REPORT_ABORT(T)
  kInformCommit,   // INFORM_COMMIT_AT(X) OF(T)
  kInformAbort,    // INFORM_ABORT_AT(X) OF(T)
};

const char* ActionKindName(ActionKind kind);

/// One action occurrence. `value` is meaningful for kRequestCommit and
/// kReportCommit; `at_object` for the INFORM_* kinds.
struct Action {
  ActionKind kind;
  TxName tx = kInvalidTx;
  Value value = Value::Ok();
  ObjectId at_object = kInvalidObject;

  static Action Create(TxName t) { return {ActionKind::kCreate, t, {}, kInvalidObject}; }
  static Action RequestCreate(TxName t) {
    return {ActionKind::kRequestCreate, t, {}, kInvalidObject};
  }
  static Action RequestCommit(TxName t, Value v) {
    return {ActionKind::kRequestCommit, t, v, kInvalidObject};
  }
  static Action Commit(TxName t) { return {ActionKind::kCommit, t, {}, kInvalidObject}; }
  static Action Abort(TxName t) { return {ActionKind::kAbort, t, {}, kInvalidObject}; }
  static Action ReportCommit(TxName t, Value v) {
    return {ActionKind::kReportCommit, t, v, kInvalidObject};
  }
  static Action ReportAbort(TxName t) {
    return {ActionKind::kReportAbort, t, {}, kInvalidObject};
  }
  static Action InformCommit(ObjectId x, TxName t) {
    return {ActionKind::kInformCommit, t, {}, x};
  }
  static Action InformAbort(ObjectId x, TxName t) {
    return {ActionKind::kInformAbort, t, {}, x};
  }

  bool IsSerial() const {
    return kind != ActionKind::kInformCommit && kind != ActionKind::kInformAbort;
  }

  /// True for COMMIT(T) / ABORT(T) — the completion actions for T.
  bool IsCompletion() const {
    return kind == ActionKind::kCommit || kind == ActionKind::kAbort;
  }

  bool operator==(const Action& other) const {
    return kind == other.kind && tx == other.tx && value == other.value &&
           at_object == other.at_object;
  }

  /// Arbitrary total order; lets actions key ordered containers (e.g. the
  /// controller's incrementally maintained enabled set).
  bool operator<(const Action& other) const {
    if (kind != other.kind) return kind < other.kind;
    if (tx != other.tx) return tx < other.tx;
    if (at_object != other.at_object) return at_object < other.at_object;
    return value < other.value;
  }

  std::string ToString(const SystemType& type) const;
};

/// The paper's transaction(π): the transaction automaton at which the serial
/// action π occurs. Defined for all serial actions except completions:
///   transaction(CREATE(T)) = transaction(REQUEST_COMMIT(T,v)) = T,
///   transaction(REQUEST_CREATE(T')) = transaction(REPORT_*(T')) = parent(T').
/// Returns kInvalidTx for COMMIT/ABORT/INFORM actions.
TxName TransactionOf(const SystemType& type, const Action& a);

/// hightransaction(π): transaction(π) for non-completions; parent(T) for a
/// completion action of T.
TxName HighTransactionOf(const SystemType& type, const Action& a);

/// lowtransaction(π): transaction(π) for non-completions; T for a completion
/// action of T.
TxName LowTransactionOf(const SystemType& type, const Action& a);

/// object(π): the object accessed, defined when π is CREATE(T) or
/// REQUEST_COMMIT(T,v) for an access T; kInvalidObject otherwise.
ObjectId ObjectOfAction(const SystemType& type, const Action& a);

}  // namespace ntsg

#endif  // NTSG_TX_ACTION_H_
