#include "tx/trace_io.h"

#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strict_parse.h"

namespace ntsg {

namespace {

const std::vector<std::pair<OpCode, const char*>>& OpCodeTable() {
  static const std::vector<std::pair<OpCode, const char*>> table = {
      {OpCode::kRead, "read"},         {OpCode::kWrite, "write"},
      {OpCode::kIncrement, "inc"},     {OpCode::kDecrement, "dec"},
      {OpCode::kCounterRead, "cread"}, {OpCode::kAdd, "add"},
      {OpCode::kRemove, "remove"},     {OpCode::kContains, "contains"},
      {OpCode::kSetSize, "size"},      {OpCode::kEnqueue, "enq"},
      {OpCode::kDequeue, "deq"},       {OpCode::kQueueSize, "qsize"},
      {OpCode::kDeposit, "deposit"},   {OpCode::kWithdraw, "withdraw"},
      {OpCode::kBalance, "balance"}};
  return table;
}

bool ParseOpCode(const std::string& s, OpCode* out) {
  for (const auto& [code, name] : OpCodeTable()) {
    if (s == name) {
      *out = code;
      return true;
    }
  }
  return false;
}

bool ParseObjectType(const std::string& s, ObjectType* out) {
  for (ObjectType t : {ObjectType::kReadWrite, ObjectType::kCounter,
                       ObjectType::kSet, ObjectType::kQueue,
                       ObjectType::kBankAccount}) {
    if (s == ObjectTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

bool ParseActionKind(const std::string& s, ActionKind* out) {
  for (ActionKind k :
       {ActionKind::kCreate, ActionKind::kRequestCreate,
        ActionKind::kRequestCommit, ActionKind::kCommit, ActionKind::kAbort,
        ActionKind::kReportCommit, ActionKind::kReportAbort,
        ActionKind::kInformCommit, ActionKind::kInformAbort}) {
    if (s == ActionKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool KindHasValue(ActionKind kind) {
  return kind == ActionKind::kRequestCommit ||
         kind == ActionKind::kReportCommit;
}

bool KindHasObject(ActionKind kind) {
  return kind == ActionKind::kInformCommit || kind == ActionKind::kInformAbort;
}

}  // namespace

std::string SerializeSystemAndTrace(const SystemType& type, const Trace& trace,
                                    const SiblingOrders& orders) {
  std::ostringstream out;
  out << "ntsg-trace v1\n";
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    out << "object " << x << " " << ObjectTypeName(type.object_type(x)) << " "
        << type.object_name(x) << " " << type.object_initial(x) << "\n";
  }
  for (TxName t = 1; t < type.num_names(); ++t) {
    out << "tx " << t << " " << type.parent(t);
    if (type.IsAccess(t)) {
      const AccessSpec& acc = type.access(t);
      out << " access " << acc.object << " " << OpCodeName(acc.op) << " "
          << acc.arg;
    }
    out << "\n";
  }
  for (const auto& [parent, children] : orders) {
    out << "order " << parent;
    for (TxName c : children) out << " " << c;
    out << "\n";
  }
  for (const Action& a : trace) {
    out << "event " << ActionKindName(a.kind) << " " << a.tx;
    if (KindHasValue(a.kind)) {
      out << " " << (a.value.is_ok() ? "ok" : std::to_string(a.value.AsInt()));
    }
    if (KindHasObject(a.kind)) out << " " << a.at_object;
    out << "\n";
  }
  return out.str();
}

Status ParseSystemAndTrace(const std::string& text, SystemType* type,
                           Trace* trace, SiblingOrders* orders) {
  if (type->num_objects() != 0 || type->num_names() != 1) {
    return Status::InvalidArgument("target SystemType must be empty");
  }
  trace->clear();

  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  auto fail = [&lineno](const std::string& why) {
    return Status::Corruption("line " + std::to_string(lineno) + ": " + why);
  };

  if (!std::getline(in, line)) return Status::Corruption("empty input");
  ++lineno;
  if (line != "ntsg-trace v1") return fail("bad header");

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    // Every line must be fully consumed; a numeric field that stops early
    // ("12xyz") leaves its junk behind for this check to reject.
    auto has_trailing_junk = [&fields] {
      std::string extra;
      return static_cast<bool>(fields >> extra);
    };
    if (tag == "object") {
      uint32_t id;
      std::string type_name, obj_name;
      int64_t initial;
      if (!(fields >> id >> type_name >> obj_name >> initial)) {
        return fail("malformed object line");
      }
      ObjectType otype;
      if (!ParseObjectType(type_name, &otype)) {
        return fail("unknown object type " + type_name);
      }
      if (id != type->num_objects()) return fail("object ids must be dense");
      if (has_trailing_junk()) return fail("trailing junk on object line");
      type->AddObject(otype, obj_name, initial);
    } else if (tag == "tx") {
      uint32_t id, parent;
      if (!(fields >> id >> parent)) return fail("malformed tx line");
      if (id != type->num_names()) return fail("tx ids must be dense");
      if (parent >= type->num_names()) return fail("parent not yet declared");
      if (type->IsAccess(parent)) {
        return fail("accesses are leaves (parent is an access)");
      }
      std::string access_tag;
      if (fields >> access_tag) {
        if (access_tag != "access") return fail("expected 'access'");
        uint32_t obj;
        std::string op_name;
        int64_t arg;
        if (!(fields >> obj >> op_name >> arg)) {
          return fail("malformed access spec");
        }
        OpCode op;
        if (!ParseOpCode(op_name, &op)) {
          return fail("unknown op " + op_name);
        }
        if (obj >= type->num_objects()) return fail("unknown object");
        if (!OpValidForType(type->object_type(obj), op)) {
          return fail("op invalid for object type");
        }
        if (has_trailing_junk()) return fail("trailing junk on tx line");
        type->NewAccess(parent, AccessSpec{obj, op, arg});
      } else {
        type->NewChild(parent);
      }
    } else if (tag == "order") {
      uint32_t parent;
      if (!(fields >> parent)) return fail("malformed order line");
      if (parent >= type->num_names()) return fail("unknown order parent");
      std::vector<TxName> children;
      uint32_t child;
      while (fields >> child) {
        if (child >= type->num_names()) return fail("unknown order child");
        if (type->parent(child) != parent) {
          return fail("order child is not a child of the stated parent");
        }
        children.push_back(child);
      }
      // The child loop stops at end-of-line (eof) or at a non-numeric /
      // half-numeric token (junk left in the stream).
      if (!fields.eof()) return fail("bad order child");
      if (orders != nullptr) (*orders)[parent] = std::move(children);
    } else if (tag == "event") {
      std::string kind_name;
      uint32_t tx;
      if (!(fields >> kind_name >> tx)) return fail("malformed event line");
      ActionKind kind;
      if (!ParseActionKind(kind_name, &kind)) {
        return fail("unknown action kind " + kind_name);
      }
      if (tx >= type->num_names()) return fail("unknown transaction");
      Action a;
      a.kind = kind;
      a.tx = tx;
      if (KindHasValue(kind)) {
        std::string v;
        if (!(fields >> v)) return fail("missing value");
        if (v == "ok") {
          a.value = Value::Ok();
        } else {
          int64_t iv;
          if (!StrictParseInt64(v, &iv)) {
            return fail("bad value token '" + v + "'");
          }
          a.value = Value::Int(iv);
        }
      }
      if (KindHasObject(kind)) {
        uint32_t obj;
        if (!(fields >> obj)) return fail("missing object");
        if (obj >= type->num_objects()) return fail("unknown object");
        a.at_object = obj;
      }
      if (has_trailing_junk()) return fail("trailing junk on event line");
      trace->push_back(a);
    } else {
      return fail("unknown tag " + tag);
    }
  }
  return Status::Ok();
}

Status WriteTraceFile(const std::string& path, const SystemType& type,
                      const Trace& trace, const SiblingOrders& orders) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << SerializeSystemAndTrace(type, trace, orders);
  // The buffered data only hits the disk at flush: an ENOSPC failure is
  // invisible to out.good() before this point.
  out.flush();
  return out.good() ? Status::Ok()
                    : Status::Internal("write failed for " + path);
}

Status ReadTraceFile(const std::string& path, SystemType* type, Trace* trace,
                     SiblingOrders* orders) {
  // Opening a directory "succeeds" and then fails mid-read in a way istreams
  // blur with an empty file; classify it up front.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    return Status::Internal(path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("I/O error while reading " + path);
  }
  return ParseSystemAndTrace(buf.str(), type, trace, orders);
}

}  // namespace ntsg
