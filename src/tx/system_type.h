#ifndef NTSG_TX_SYSTEM_TYPE_H_
#define NTSG_TX_SYSTEM_TYPE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tx/access.h"

namespace ntsg {

/// Handle for a transaction name. `kT0` (handle 0) is the root of the
/// transaction tree — the "mythical" transaction modelling the environment.
using TxName = uint32_t;

inline constexpr TxName kT0 = 0;
inline constexpr TxName kInvalidTx = 0xFFFFFFFFu;

/// The paper's "system type": the tree of transaction names, the partition of
/// its leaves (accesses) among objects, and the object table.
///
/// The paper's tree is infinite and known in advance; since any finite
/// execution touches only finitely many names, we intern names lazily in an
/// arena. All tree queries the theory needs — parent, ancestor, descendant,
/// lca — are answered from a binary-lifting ancestor index maintained as
/// names are interned: level k of `up_` holds every name's 2^k-th ancestor
/// (clamped to T0), so Lca / ChildToward / IsAncestor cost O(log depth)
/// jumps instead of a parent-pointer walk. Appending a name extends each
/// level in O(1); a new level is backfilled in O(n) the first time any name
/// reaches depth 2^k, for O(n log depth) total index cost. The index is
/// immutable between interning calls, so concurrent read-only tree queries
/// (the parallel batch certifier) are race-free.
///
/// A name is an *access* iff it carries an AccessSpec; accesses must be
/// leaves (never given children).
class SystemType {
 public:
  SystemType();

  SystemType(const SystemType&) = delete;
  SystemType& operator=(const SystemType&) = delete;

  // --- Object table -------------------------------------------------------

  /// Registers a shared object; `initial` is the initial value d of its
  /// serial specification (ignored by types with a fixed empty initial
  /// state, i.e. set and queue).
  ObjectId AddObject(ObjectType type, std::string name, int64_t initial = 0);

  size_t num_objects() const { return objects_.size(); }
  ObjectType object_type(ObjectId x) const { return objects_[x].type; }
  int64_t object_initial(ObjectId x) const { return objects_[x].initial; }
  const std::string& object_name(ObjectId x) const { return objects_[x].name; }

  // --- Name arena ----------------------------------------------------------

  /// Creates a fresh non-access child of `parent`. `parent` must not be an
  /// access.
  TxName NewChild(TxName parent);

  /// Creates a fresh access child of `parent` performing `spec`. The spec's
  /// operation must be valid for the object's type.
  TxName NewAccess(TxName parent, const AccessSpec& spec);

  size_t num_names() const { return nodes_.size(); }

  TxName parent(TxName t) const { return nodes_[t].parent; }
  uint32_t depth(TxName t) const { return nodes_[t].depth; }

  bool IsAccess(TxName t) const { return nodes_[t].access.has_value(); }

  /// Access decoding; only valid when IsAccess(t).
  const AccessSpec& access(TxName t) const { return *nodes_[t].access; }

  /// Object accessed by `t`; kInvalidObject if `t` is not an access.
  ObjectId ObjectOf(TxName t) const;

  /// True iff `a` is an ancestor of `d` (every name is its own ancestor).
  bool IsAncestor(TxName a, TxName d) const;

  bool IsDescendant(TxName d, TxName a) const { return IsAncestor(a, d); }

  /// True iff parent(a) == parent(b) and a != b. T0 has no siblings.
  bool AreSiblings(TxName a, TxName b) const;

  /// Least common ancestor of `a` and `b`.
  TxName Lca(TxName a, TxName b) const;

  /// The ancestor of `t` at depth `target_depth`. Requires
  /// target_depth <= depth(t).
  TxName AncestorAtDepth(TxName t, uint32_t target_depth) const;

  /// The child of ancestor `anc` on the path down to descendant `d`.
  /// Requires IsAncestor(anc, d) and anc != d.
  TxName ChildToward(TxName anc, TxName d) const;

  /// Ancestors of `t` from `t` up to and including T0.
  std::vector<TxName> Ancestors(TxName t) const;

  /// Every name in the subtree rooted at `root` (root included), in
  /// unspecified order. Walks the intrusive child lists, so the cost is
  /// proportional to the subtree, not the arena — the GC uses this to
  /// enumerate a retired family without scanning every interned name.
  std::vector<TxName> SubtreeOf(TxName root) const;

  /// Human-readable dotted path, e.g. "T0.2.1".
  std::string NameOf(TxName t) const;

  /// Levels currently held by the ancestor index (log2 of the deepest
  /// interned name, rounded up); exposed for tests and stats.
  size_t lca_index_levels() const { return up_.size(); }

 private:
  struct Node {
    TxName parent;
    uint32_t depth;
    std::optional<AccessSpec> access;
    /// Intrusive child list (prepend on intern, so reverse creation order);
    /// lets SubtreeOf walk one family without scanning the arena. Appending
    /// a child mutates only the new node and its parent's head pointer,
    /// preserving the immutable-between-interning-calls contract for
    /// concurrent readers of already-interned subtrees.
    TxName first_child = kInvalidTx;
    TxName next_sibling = kInvalidTx;
  };

  struct ObjectInfo {
    ObjectType type;
    std::string name;
    int64_t initial;
  };

  /// Appends `t` (just pushed onto nodes_) to every level of the ancestor
  /// index, growing a new level first if `t` is the first name deep enough
  /// to need it.
  void IndexNewNode(TxName t);

  std::vector<Node> nodes_;
  std::vector<ObjectInfo> objects_;
  /// up_[k][t] = the 2^k-th ancestor of t, clamped to T0 (level 0 mirrors
  /// the parent pointers, keeping the jump loops uniform). Level k exists
  /// once some name has depth >= 2^k; every level spans all of nodes_.
  std::vector<std::vector<TxName>> up_;
  uint32_t max_depth_ = 0;
};

}  // namespace ntsg

#endif  // NTSG_TX_SYSTEM_TYPE_H_
