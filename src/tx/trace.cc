#include "tx/trace.h"

#include "common/logging.h"

namespace ntsg {

Trace Perform(const std::vector<Operation>& ops) {
  Trace out;
  out.reserve(ops.size() * 2);
  for (const Operation& op : ops) {
    out.push_back(Action::Create(op.tx));
    out.push_back(Action::RequestCommit(op.tx, op.value));
  }
  return out;
}

std::vector<Operation> OperationsIn(const SystemType& type,
                                    const Trace& trace) {
  std::vector<Operation> ops;
  for (const Action& a : trace) {
    if (a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx)) {
      ops.push_back(Operation{a.tx, a.value});
    }
  }
  return ops;
}

Trace ProjectTransaction(const SystemType& type, const Trace& trace,
                         TxName t) {
  Trace out;
  for (const Action& a : trace) {
    if (!a.IsSerial()) continue;
    if (TransactionOf(type, a) == t) out.push_back(a);
  }
  return out;
}

Trace ProjectObject(const SystemType& type, const Trace& trace, ObjectId x) {
  Trace out;
  for (const Action& a : trace) {
    if (!a.IsSerial()) continue;
    if (ObjectOfAction(type, a) == x) out.push_back(a);
  }
  return out;
}

Trace SerialPart(const Trace& trace) {
  Trace out;
  out.reserve(trace.size());
  for (const Action& a : trace) {
    if (a.IsSerial()) out.push_back(a);
  }
  return out;
}

Trace ProjectGenericObject(const SystemType& type, const Trace& trace,
                           ObjectId x) {
  Trace out;
  for (const Action& a : trace) {
    switch (a.kind) {
      case ActionKind::kCreate:
      case ActionKind::kRequestCommit:
        if (type.ObjectOf(a.tx) == x) out.push_back(a);
        break;
      case ActionKind::kInformCommit:
      case ActionKind::kInformAbort:
        if (a.at_object == x) out.push_back(a);
        break;
      default:
        break;
    }
  }
  return out;
}

TraceIndex::TraceIndex(const SystemType& type, const Trace& trace)
    : type_(type) {
  size_t n = type.num_names();
  created_.assign(n, 0);
  committed_.assign(n, 0);
  aborted_.assign(n, 0);
  create_requested_.assign(n, 0);
  commit_requested_.assign(n, 0);
  for (const Action& a : trace) {
    NTSG_CHECK_LT(a.tx, n);
    switch (a.kind) {
      case ActionKind::kCreate:
        created_[a.tx] = 1;
        break;
      case ActionKind::kCommit:
        committed_[a.tx] = 1;
        break;
      case ActionKind::kAbort:
        aborted_[a.tx] = 1;
        break;
      case ActionKind::kRequestCreate:
        create_requested_[a.tx] = 1;
        break;
      case ActionKind::kRequestCommit:
        commit_requested_[a.tx] = 1;
        break;
      default:
        break;
    }
  }
}

bool TraceIndex::IsOrphan(TxName t) const {
  for (TxName u = t;; u = type_.parent(u)) {
    if (IsAborted(u)) return true;
    if (u == kT0) return false;
  }
}

bool TraceIndex::IsVisible(TxName t_prime, TxName t) const {
  TxName lca = type_.Lca(t_prime, t);
  // Every ancestor of t_prime strictly below the lca must have committed.
  for (TxName u = t_prime; u != lca; u = type_.parent(u)) {
    if (!IsCommitted(u)) return false;
  }
  return true;
}

Trace VisibleTo(const SystemType& type, const Trace& trace, TxName t) {
  TraceIndex index(type, trace);
  Trace out;
  for (const Action& a : trace) {
    if (!a.IsSerial()) continue;
    TxName high = HighTransactionOf(type, a);
    if (high == kInvalidTx) continue;
    if (index.IsVisible(high, t)) out.push_back(a);
  }
  return out;
}

Trace Clean(const SystemType& type, const Trace& trace) {
  TraceIndex index(type, trace);
  Trace out;
  for (const Action& a : trace) {
    if (!a.IsSerial()) continue;
    TxName high = HighTransactionOf(type, a);
    if (high == kInvalidTx) continue;
    if (!index.IsOrphan(high)) out.push_back(a);
  }
  return out;
}

bool IsOrphanIn(const SystemType& type, const Trace& trace, TxName t) {
  return TraceIndex(type, trace).IsOrphan(t);
}

std::string TraceToString(const SystemType& type, const Trace& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += std::to_string(i);
    out += ": ";
    out += trace[i].ToString(type);
    out += "\n";
  }
  return out;
}

}  // namespace ntsg
