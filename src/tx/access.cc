#include "tx/access.h"

namespace ntsg {

bool IsUpdateOp(OpCode op) {
  switch (op) {
    case OpCode::kWrite:
    case OpCode::kIncrement:
    case OpCode::kDecrement:
    case OpCode::kAdd:
    case OpCode::kRemove:
    case OpCode::kEnqueue:
    case OpCode::kDeposit:
      return true;
    case OpCode::kRead:
    case OpCode::kCounterRead:
    case OpCode::kContains:
    case OpCode::kSetSize:
    case OpCode::kDequeue:
    case OpCode::kQueueSize:
    case OpCode::kWithdraw:
    case OpCode::kBalance:
      return false;
  }
  return false;
}

bool IsModifyingOp(OpCode op) {
  switch (op) {
    case OpCode::kWrite:
    case OpCode::kIncrement:
    case OpCode::kDecrement:
    case OpCode::kAdd:
    case OpCode::kRemove:
    case OpCode::kEnqueue:
    case OpCode::kDequeue:
    case OpCode::kDeposit:
    case OpCode::kWithdraw:
      return true;
    case OpCode::kRead:
    case OpCode::kCounterRead:
    case OpCode::kContains:
    case OpCode::kSetSize:
    case OpCode::kQueueSize:
    case OpCode::kBalance:
      return false;
  }
  return true;
}

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kRead:
      return "read";
    case OpCode::kWrite:
      return "write";
    case OpCode::kIncrement:
      return "inc";
    case OpCode::kDecrement:
      return "dec";
    case OpCode::kCounterRead:
      return "cread";
    case OpCode::kAdd:
      return "add";
    case OpCode::kRemove:
      return "remove";
    case OpCode::kContains:
      return "contains";
    case OpCode::kSetSize:
      return "size";
    case OpCode::kEnqueue:
      return "enq";
    case OpCode::kDequeue:
      return "deq";
    case OpCode::kQueueSize:
      return "qsize";
    case OpCode::kDeposit:
      return "deposit";
    case OpCode::kWithdraw:
      return "withdraw";
    case OpCode::kBalance:
      return "balance";
  }
  return "?";
}

const char* ObjectTypeName(ObjectType type) {
  switch (type) {
    case ObjectType::kReadWrite:
      return "read_write";
    case ObjectType::kCounter:
      return "counter";
    case ObjectType::kSet:
      return "set";
    case ObjectType::kQueue:
      return "queue";
    case ObjectType::kBankAccount:
      return "bank_account";
  }
  return "?";
}

bool OpValidForType(ObjectType type, OpCode op) {
  switch (type) {
    case ObjectType::kReadWrite:
      return op == OpCode::kRead || op == OpCode::kWrite;
    case ObjectType::kCounter:
      return op == OpCode::kIncrement || op == OpCode::kDecrement ||
             op == OpCode::kCounterRead;
    case ObjectType::kSet:
      return op == OpCode::kAdd || op == OpCode::kRemove ||
             op == OpCode::kContains || op == OpCode::kSetSize;
    case ObjectType::kQueue:
      return op == OpCode::kEnqueue || op == OpCode::kDequeue ||
             op == OpCode::kQueueSize;
    case ObjectType::kBankAccount:
      return op == OpCode::kDeposit || op == OpCode::kWithdraw ||
             op == OpCode::kBalance;
  }
  return false;
}

std::string AccessSpecToString(const AccessSpec& spec) {
  std::string out = OpCodeName(spec.op);
  out += "(X";
  out += std::to_string(spec.object);
  out += ", ";
  out += std::to_string(spec.arg);
  out += ")";
  return out;
}

}  // namespace ntsg
