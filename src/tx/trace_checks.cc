#include "tx/trace_checks.h"

#include <map>
#include <set>

namespace ntsg {

namespace {

std::string Describe(const SystemType& type, const Action& a) {
  return a.ToString(type);
}

}  // namespace

Status CheckSimpleBehavior(const SystemType& type, const Trace& trace) {
  std::set<TxName> create_requested;
  std::set<TxName> created;
  std::map<TxName, std::set<int64_t>> commit_values;  // encoded values
  std::set<TxName> commit_requested;
  std::set<TxName> committed;
  std::set<TxName> aborted;
  std::set<TxName> reported;

  auto encode = [](const Value& v) {
    // OK and Int(v) never collide: OK encodes to a sentinel outside the
    // int64 payload space we use (tagged in the high bit via a pair).
    return v.is_ok() ? std::pair<int, int64_t>(1, 0)
                     : std::pair<int, int64_t>(0, v.AsInt());
  };
  std::map<TxName, std::set<std::pair<int, int64_t>>> requested_values;

  for (const Action& a : trace) {
    if (!a.IsSerial()) continue;
    switch (a.kind) {
      case ActionKind::kRequestCreate:
        if (a.tx == kT0) {
          return Status::Corruption("REQUEST_CREATE(T0) is not an action");
        }
        create_requested.insert(a.tx);
        break;
      case ActionKind::kCreate:
        if (a.tx == kT0) {
          return Status::Corruption("CREATE(T0) is not emitted (T0 is awake)");
        }
        if (!create_requested.count(a.tx)) {
          return Status::Corruption("CREATE without preceding REQUEST_CREATE: " +
                                    Describe(type, a));
        }
        if (!created.insert(a.tx).second) {
          return Status::Corruption("duplicate CREATE: " + Describe(type, a));
        }
        break;
      case ActionKind::kRequestCommit:
        if (type.IsAccess(a.tx)) {
          if (!created.count(a.tx)) {
            return Status::Corruption(
                "access response without invocation: " + Describe(type, a));
          }
          if (commit_requested.count(a.tx)) {
            return Status::Corruption("multiple responses to access: " +
                                      Describe(type, a));
          }
        }
        commit_requested.insert(a.tx);
        requested_values[a.tx].insert(encode(a.value));
        break;
      case ActionKind::kCommit:
        if (a.tx == kT0) return Status::Corruption("COMMIT(T0)");
        if (!commit_requested.count(a.tx)) {
          return Status::Corruption("COMMIT without REQUEST_COMMIT: " +
                                    Describe(type, a));
        }
        if (committed.count(a.tx) || aborted.count(a.tx)) {
          return Status::Corruption("second completion event: " +
                                    Describe(type, a));
        }
        committed.insert(a.tx);
        break;
      case ActionKind::kAbort:
        if (a.tx == kT0) return Status::Corruption("ABORT(T0)");
        if (!create_requested.count(a.tx)) {
          return Status::Corruption("ABORT without REQUEST_CREATE: " +
                                    Describe(type, a));
        }
        if (committed.count(a.tx) || aborted.count(a.tx)) {
          return Status::Corruption("second completion event: " +
                                    Describe(type, a));
        }
        aborted.insert(a.tx);
        break;
      case ActionKind::kReportCommit:
        if (!committed.count(a.tx)) {
          return Status::Corruption("REPORT_COMMIT before COMMIT: " +
                                    Describe(type, a));
        }
        if (!requested_values[a.tx].count(encode(a.value))) {
          return Status::Corruption("REPORT_COMMIT with unrequested value: " +
                                    Describe(type, a));
        }
        if (!reported.insert(a.tx).second) {
          return Status::Corruption("duplicate report: " + Describe(type, a));
        }
        break;
      case ActionKind::kReportAbort:
        if (!aborted.count(a.tx)) {
          return Status::Corruption("REPORT_ABORT before ABORT: " +
                                    Describe(type, a));
        }
        if (!reported.insert(a.tx).second) {
          return Status::Corruption("duplicate report: " + Describe(type, a));
        }
        break;
      default:
        break;
    }
  }
  return Status::Ok();
}

Status CheckSerialObjectWellFormed(const SystemType& type, const Trace& trace,
                                   ObjectId x) {
  std::set<TxName> seen;
  TxName active = kInvalidTx;
  for (const Action& a : trace) {
    if (a.kind == ActionKind::kCreate) {
      if (!type.IsAccess(a.tx) || type.ObjectOf(a.tx) != x) {
        return Status::Corruption("CREATE for non-access-to-X: " +
                                  Describe(type, a));
      }
      if (active != kInvalidTx) {
        return Status::Corruption("CREATE while another access pending: " +
                                  Describe(type, a));
      }
      if (!seen.insert(a.tx).second) {
        return Status::Corruption("repeated access transaction: " +
                                  Describe(type, a));
      }
      active = a.tx;
    } else if (a.kind == ActionKind::kRequestCommit) {
      if (a.tx != active) {
        return Status::Corruption("REQUEST_COMMIT for non-pending access: " +
                                  Describe(type, a));
      }
      active = kInvalidTx;
    } else {
      return Status::Corruption("non-object action in serial object trace: " +
                                Describe(type, a));
    }
  }
  return Status::Ok();
}

Status CheckTransactionWellFormed(const SystemType& type,
                                  const Trace& projection, TxName t) {
  bool created = (t == kT0);  // T0 is modelled as always awake.
  bool commit_requested = false;
  std::set<TxName> requested_children;
  std::set<TxName> reported_children;

  for (const Action& a : projection) {
    switch (a.kind) {
      case ActionKind::kCreate:
        if (a.tx != t) {
          return Status::Corruption("foreign CREATE in projection");
        }
        if (created) {
          return Status::Corruption("duplicate CREATE(T) in beta|T");
        }
        created = true;
        break;
      case ActionKind::kRequestCreate: {
        if (type.parent(a.tx) != t) {
          return Status::Corruption("REQUEST_CREATE for non-child");
        }
        if (!created) {
          return Status::Corruption(
              "REQUEST_CREATE before CREATE(T): " + Describe(type, a));
        }
        if (commit_requested) {
          return Status::Corruption("output after REQUEST_COMMIT(T): " +
                                    Describe(type, a));
        }
        if (!requested_children.insert(a.tx).second) {
          return Status::Corruption("duplicate REQUEST_CREATE: " +
                                    Describe(type, a));
        }
        break;
      }
      case ActionKind::kReportCommit:
      case ActionKind::kReportAbort:
        if (type.parent(a.tx) != t) {
          return Status::Corruption("report for non-child");
        }
        if (!requested_children.count(a.tx)) {
          return Status::Corruption("report for unrequested child: " +
                                    Describe(type, a));
        }
        if (!reported_children.insert(a.tx).second) {
          return Status::Corruption("duplicate report for child: " +
                                    Describe(type, a));
        }
        break;
      case ActionKind::kRequestCommit:
        if (a.tx != t) {
          return Status::Corruption("foreign REQUEST_COMMIT in projection");
        }
        if (!created) {
          return Status::Corruption("REQUEST_COMMIT before CREATE(T)");
        }
        if (commit_requested) {
          return Status::Corruption("duplicate REQUEST_COMMIT(T)");
        }
        if (reported_children.size() != requested_children.size()) {
          return Status::Corruption(
              "REQUEST_COMMIT before all children reported");
        }
        commit_requested = true;
        break;
      default:
        return Status::Corruption("unexpected action in beta|T: " +
                                  Describe(type, a));
    }
  }
  return Status::Ok();
}

Status CheckGenericObjectWellFormed(const SystemType& type,
                                    const Trace& projection, ObjectId x) {
  std::set<TxName> created;
  std::set<TxName> responded;
  std::set<TxName> informed_commit;
  std::set<TxName> informed_abort;
  for (const Action& a : projection) {
    switch (a.kind) {
      case ActionKind::kCreate:
        if (type.ObjectOf(a.tx) != x) {
          return Status::Corruption("CREATE for access to another object");
        }
        if (!created.insert(a.tx).second) {
          return Status::Corruption("duplicate CREATE at object: " +
                                    Describe(type, a));
        }
        break;
      case ActionKind::kRequestCommit:
        if (!created.count(a.tx)) {
          return Status::Corruption("response before invocation: " +
                                    Describe(type, a));
        }
        if (!responded.insert(a.tx).second) {
          return Status::Corruption("duplicate response: " +
                                    Describe(type, a));
        }
        break;
      case ActionKind::kInformCommit:
        if (informed_abort.count(a.tx)) {
          return Status::Corruption(
              "INFORM_COMMIT after INFORM_ABORT for same tx");
        }
        informed_commit.insert(a.tx);
        break;
      case ActionKind::kInformAbort:
        if (informed_commit.count(a.tx)) {
          return Status::Corruption(
              "INFORM_ABORT after INFORM_COMMIT for same tx");
        }
        informed_abort.insert(a.tx);
        break;
      default:
        return Status::Corruption("unexpected action at generic object: " +
                                  Describe(type, a));
    }
  }
  return Status::Ok();
}

}  // namespace ntsg
