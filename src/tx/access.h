#ifndef NTSG_TX_ACCESS_H_
#define NTSG_TX_ACCESS_H_

#include <cstdint>
#include <string>

namespace ntsg {

/// Identifies a shared data object X of the system type. Objects are
/// registered with the SystemType; the id indexes its object table.
using ObjectId = uint32_t;

inline constexpr ObjectId kInvalidObject = 0xFFFFFFFFu;

/// The serial data type of an object, which fixes how its operations are
/// interpreted (src/spec implements the corresponding serial specifications).
enum class ObjectType : uint8_t {
  kReadWrite,    // Section 3.1 read/write register.
  kCounter,      // inc/dec/read counter (Section 6 example).
  kSet,          // add/remove/contains integer set.
  kQueue,        // FIFO queue of integers.
  kBankAccount,  // deposit/withdraw-with-failure/balance.
};

/// Operation codes across all bundled data types. Which codes are legal for
/// an object depends on its ObjectType.
enum class OpCode : uint8_t {
  // ReadWrite.
  kRead,
  kWrite,  // arg = value written (the paper's data(T)).
  // Counter.
  kIncrement,  // arg = amount.
  kDecrement,  // arg = amount.
  kCounterRead,
  // Set.
  kAdd,       // arg = element.
  kRemove,    // arg = element.
  kContains,  // arg = element; returns 0/1.
  kSetSize,
  // Queue.
  kEnqueue,  // arg = element.
  kDequeue,  // returns front or kQueueEmpty.
  kQueueSize,
  // BankAccount.
  kDeposit,   // arg = amount (>= 0).
  kWithdraw,  // arg = amount; returns 1 on success, 0 if insufficient funds.
  kBalance,
};

/// Returned by kDequeue on an empty queue. Queue elements are restricted to
/// non-negative integers (enforced by QueueSpec), so this sentinel is
/// unambiguous.
inline constexpr int64_t kQueueEmpty = -1;

/// Describes an access transaction (a leaf of the transaction tree): which
/// object it touches and what operation it performs. The paper encodes all
/// parameters of an access in its name; AccessSpec is that decoding.
struct AccessSpec {
  ObjectId object = kInvalidObject;
  OpCode op = OpCode::kRead;
  int64_t arg = 0;

  bool operator==(const AccessSpec& other) const {
    return object == other.object && op == other.op && arg == other.arg;
  }
};

/// True for operations whose serial return value is always OK (the
/// "update"-style operations). Note: not the same as IsModifyingOp —
/// withdraw and dequeue modify state yet return values.
bool IsUpdateOp(OpCode op);

/// True for operations that may modify the object state (the "update" class
/// of read/update locking): everything except the pure observers.
bool IsModifyingOp(OpCode op);

const char* OpCodeName(OpCode op);
const char* ObjectTypeName(ObjectType type);

/// True if `op` is in the operation vocabulary of objects of type `type`.
bool OpValidForType(ObjectType type, OpCode op);

std::string AccessSpecToString(const AccessSpec& spec);

}  // namespace ntsg

#endif  // NTSG_TX_ACCESS_H_
