#include "tx/action.h"

namespace ntsg {

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kCreate:
      return "CREATE";
    case ActionKind::kRequestCreate:
      return "REQUEST_CREATE";
    case ActionKind::kRequestCommit:
      return "REQUEST_COMMIT";
    case ActionKind::kCommit:
      return "COMMIT";
    case ActionKind::kAbort:
      return "ABORT";
    case ActionKind::kReportCommit:
      return "REPORT_COMMIT";
    case ActionKind::kReportAbort:
      return "REPORT_ABORT";
    case ActionKind::kInformCommit:
      return "INFORM_COMMIT";
    case ActionKind::kInformAbort:
      return "INFORM_ABORT";
  }
  return "?";
}

std::string Action::ToString(const SystemType& type) const {
  std::string out = ActionKindName(kind);
  out += "(";
  out += type.NameOf(tx);
  if (kind == ActionKind::kRequestCommit || kind == ActionKind::kReportCommit) {
    out += ", ";
    out += value.ToString();
  }
  if (kind == ActionKind::kInformCommit || kind == ActionKind::kInformAbort) {
    out += " at ";
    out += type.object_name(at_object);
  }
  out += ")";
  return out;
}

TxName TransactionOf(const SystemType& type, const Action& a) {
  switch (a.kind) {
    case ActionKind::kCreate:
    case ActionKind::kRequestCommit:
      return a.tx;
    case ActionKind::kRequestCreate:
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      return type.parent(a.tx);
    case ActionKind::kCommit:
    case ActionKind::kAbort:
    case ActionKind::kInformCommit:
    case ActionKind::kInformAbort:
      return kInvalidTx;
  }
  return kInvalidTx;
}

TxName HighTransactionOf(const SystemType& type, const Action& a) {
  if (a.IsCompletion()) return type.parent(a.tx);
  return TransactionOf(type, a);
}

TxName LowTransactionOf(const SystemType& type, const Action& a) {
  if (a.IsCompletion()) return a.tx;
  return TransactionOf(type, a);
}

ObjectId ObjectOfAction(const SystemType& type, const Action& a) {
  if (a.kind != ActionKind::kCreate && a.kind != ActionKind::kRequestCommit) {
    return kInvalidObject;
  }
  return type.ObjectOf(a.tx);
}

}  // namespace ntsg
