#ifndef NTSG_TX_TRACE_IO_H_
#define NTSG_TX_TRACE_IO_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Sibling orders attached to a trace (e.g. the timestamp order an MVTO run
/// serialized against), so exact offline audits can target the scheduler's
/// own order rather than deriving one.
using SiblingOrders = std::map<TxName, std::vector<TxName>>;

/// Text serialization of a system type plus one of its behaviors, so traces
/// can be captured from a live system and audited offline (see the
/// trace_audit example and the ntsg CLI). Line-oriented format:
///
///   ntsg-trace v1
///   object <id> <type-name> <object-name> <initial>
///   tx <id> <parent-id>                        # non-access name
///   tx <id> <parent-id> access <obj> <op> <arg>
///   order <parent-id> <child-id>...            # optional sibling order
///   event <ACTION-KIND> <tx> [ok|<int>] [<obj>]
///
/// Names and objects must be declared before use; ids must be dense and in
/// creation order (matching SystemType's arena). T0 (id 0) is implicit.
std::string SerializeSystemAndTrace(const SystemType& type, const Trace& trace,
                                    const SiblingOrders& orders = {});

/// Parses the format above into a *fresh* SystemType (must be empty: no
/// objects, only T0) and a trace. Returns Corruption with a line number on
/// malformed input. `orders` (optional) receives any sibling-order lines.
Status ParseSystemAndTrace(const std::string& text, SystemType* type,
                           Trace* trace, SiblingOrders* orders = nullptr);

/// Convenience file wrappers.
Status WriteTraceFile(const std::string& path, const SystemType& type,
                      const Trace& trace, const SiblingOrders& orders = {});
Status ReadTraceFile(const std::string& path, SystemType* type, Trace* trace,
                     SiblingOrders* orders = nullptr);

}  // namespace ntsg

#endif  // NTSG_TX_TRACE_IO_H_
