#ifndef NTSG_TX_TRACE_CHECKS_H_
#define NTSG_TX_TRACE_CHECKS_H_

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Checks that `trace`'s serial part satisfies the constraints the simple
/// database embodies (Section 2.3.1):
///   * CREATE(T) only after REQUEST_CREATE(T), and at most once per T;
///   * COMMIT(T) only after some REQUEST_COMMIT(T, v);
///   * ABORT(T) only after REQUEST_CREATE(T);
///   * at most one completion (COMMIT or ABORT) per T;
///   * REPORT_COMMIT(T, v) only after COMMIT(T) with a matching requested v;
///   * REPORT_ABORT(T) only after ABORT(T); at most one report per T;
///   * REQUEST_COMMIT(T, v) for an access T only after CREATE(T), at most
///     one response per access;
///   * no CREATE, COMMIT, ABORT or REQUEST_CREATE mentioning T0.
///
/// Our systems never emit CREATE(T0): the root transaction (the environment)
/// is modelled as always awake. This is a presentational deviation from the
/// paper and is applied uniformly to serial and generic systems, so
/// "serially correct for T0" comparisons are unaffected.
Status CheckSimpleBehavior(const SystemType& type, const Trace& trace);

/// Checks that `trace` (a sequence of external actions of one serial object
/// S_X) is serial object well-formed: a prefix of
/// CREATE(T1) REQUEST_COMMIT(T1,v1) CREATE(T2) ... with distinct Ti, all
/// accesses to X (Section 2.2.2).
Status CheckSerialObjectWellFormed(const SystemType& type, const Trace& trace,
                                   ObjectId x);

/// Checks transaction well-formedness of β|T for a non-access T:
///   * for T != T0: the first event is CREATE(T), occurring exactly once;
///   * REQUEST_CREATE(T') at most once per child T';
///   * at most one report per child, and only for requested children;
///   * REQUEST_COMMIT(T, v) at most once, only after a report was received
///     for every requested child, and no further outputs after it.
Status CheckTransactionWellFormed(const SystemType& type,
                                  const Trace& projection, TxName t);

/// Checks the generic-object well-formedness of a projection obtained via
/// ProjectGenericObject: CREATE/REQUEST_COMMIT alternate correctly per
/// access (create before response, at most one of each), and no INFORM_ABORT
/// and INFORM_COMMIT occur for the same transaction.
Status CheckGenericObjectWellFormed(const SystemType& type,
                                    const Trace& projection, ObjectId x);

}  // namespace ntsg

#endif  // NTSG_TX_TRACE_CHECKS_H_
