#ifndef NTSG_TX_VALUE_H_
#define NTSG_TX_VALUE_H_

#include <cstdint>
#include <string>

namespace ntsg {

/// Return value of a transaction or access (the paper's `v` in
/// REQUEST_COMMIT(T, v)). Update-style accesses (writes, increments,
/// enqueues, ...) return the distinguished acknowledgment `OK`; observer
/// accesses return an integer from the object's domain.
///
/// All bundled serial object types use integer domains. This loses no
/// generality for the paper's constructions: none of the definitions
/// (conflict, precedes, visibility, SG) inspect domain structure, only value
/// equality.
class Value {
 public:
  /// Default-constructs OK; makes Value usable in containers.
  Value() : is_ok_(true), v_(0) {}

  static Value Ok() { return Value(); }
  static Value Int(int64_t v) { return Value(false, v); }

  bool is_ok() const { return is_ok_; }

  /// Domain value; only meaningful when !is_ok().
  int64_t AsInt() const { return v_; }

  bool operator==(const Value& other) const {
    if (is_ok_ != other.is_ok_) return false;
    return is_ok_ || v_ == other.v_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Arbitrary total order (OK first, then by payload); lets values key
  /// ordered containers.
  bool operator<(const Value& other) const {
    if (is_ok_ != other.is_ok_) return is_ok_;
    return !is_ok_ && v_ < other.v_;
  }

  std::string ToString() const {
    return is_ok_ ? "OK" : std::to_string(v_);
  }

 private:
  Value(bool is_ok, int64_t v) : is_ok_(is_ok), v_(v) {}

  bool is_ok_;
  int64_t v_;
};

}  // namespace ntsg

#endif  // NTSG_TX_VALUE_H_
