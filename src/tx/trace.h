#ifndef NTSG_TX_TRACE_H_
#define NTSG_TX_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tx/action.h"
#include "tx/system_type.h"

namespace ntsg {

/// A finite sequence of actions — the paper's β. Traces are produced by
/// system executions and consumed by the analysis machinery; every
/// definition of Sections 2-4 and 6 is a pure function over traces.
using Trace = std::vector<Action>;

/// An operation (T, v) of an object: an access transaction name paired with
/// its return value (Section 2.2).
struct Operation {
  TxName tx;
  Value value;

  bool operator==(const Operation& other) const {
    return tx == other.tx && value == other.value;
  }
};

/// perform(T,v) = CREATE(T) REQUEST_COMMIT(T,v), extended pointwise to
/// sequences of operations.
Trace Perform(const std::vector<Operation>& ops);

/// The operations occurring in `trace`: one (T,v) per REQUEST_COMMIT(T,v)
/// event whose T is an access, in trace order.
std::vector<Operation> OperationsIn(const SystemType& type, const Trace& trace);

/// β|T — subsequence of serial actions π with transaction(π) == T.
Trace ProjectTransaction(const SystemType& type, const Trace& trace, TxName t);

/// β|X — subsequence of serial actions π with object(π) == X.
Trace ProjectObject(const SystemType& type, const Trace& trace, ObjectId x);

/// serial(β) — subsequence of serial actions (drops INFORM_*).
Trace SerialPart(const Trace& trace);

/// Events visible to an object automaton G_X in a generic system: the
/// CREATE/REQUEST_COMMIT events of accesses to X plus INFORM_* at X.
Trace ProjectGenericObject(const SystemType& type, const Trace& trace,
                           ObjectId x);

/// Per-trace status index: which transactions were created / committed /
/// aborted / requested, orphanhood, and pairwise visibility. Built once in
/// O(|β|); queries are O(depth).
class TraceIndex {
 public:
  TraceIndex(const SystemType& type, const Trace& trace);

  bool IsCreated(TxName t) const { return Flag(created_, t); }
  bool IsCommitted(TxName t) const { return Flag(committed_, t); }
  bool IsAborted(TxName t) const { return Flag(aborted_, t); }
  bool IsCreateRequested(TxName t) const { return Flag(create_requested_, t); }
  bool IsCommitRequested(TxName t) const { return Flag(commit_requested_, t); }
  bool IsCompleted(TxName t) const { return IsCommitted(t) || IsAborted(t); }

  /// T is an orphan in β iff some ancestor of T aborted (Section 2.2.4).
  bool IsOrphan(TxName t) const;

  /// T is live in β iff created but not completed.
  bool IsLive(TxName t) const { return IsCreated(t) && !IsCompleted(t); }

  /// T' is visible to T in β iff every U in ancestors(T') - ancestors(T)
  /// committed in β (Section 2.3.2).
  bool IsVisible(TxName t_prime, TxName t) const;

 private:
  static bool Flag(const std::vector<uint8_t>& v, TxName t) {
    return t < v.size() && v[t] != 0;
  }

  const SystemType& type_;
  std::vector<uint8_t> created_;
  std::vector<uint8_t> committed_;
  std::vector<uint8_t> aborted_;
  std::vector<uint8_t> create_requested_;
  std::vector<uint8_t> commit_requested_;
};

/// visible(β, T) — subsequence of serial actions of β whose hightransaction
/// is visible to T in β. (Visibility is judged against the *whole* of β, as
/// in the paper.)
Trace VisibleTo(const SystemType& type, const Trace& trace, TxName t);

/// clean(β) — subsequence of serial actions of β whose hightransaction is
/// not an orphan in β (Section 3.3).
Trace Clean(const SystemType& type, const Trace& trace);

/// True iff T is an orphan in `trace` (convenience wrapper).
bool IsOrphanIn(const SystemType& type, const Trace& trace, TxName t);

/// Renders a trace one action per line, for debugging and examples.
std::string TraceToString(const SystemType& type, const Trace& trace);

}  // namespace ntsg

#endif  // NTSG_TX_TRACE_H_
