#include "tx/system_type.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"

namespace ntsg {

SystemType::SystemType() {
  nodes_.push_back(Node{kInvalidTx, 0, std::nullopt});  // T0.
  // T0 needs no index entries: max_depth_ is 0, so up_ stays empty until
  // the first child is interned.
}

void SystemType::IndexNewNode(TxName t) {
  // Extend every existing level with the new name. Level k reads level k-1,
  // which already holds `t` by the time we get there, so each append is O(1).
  for (size_t k = 0; k < up_.size(); ++k) {
    TxName half = (k == 0) ? nodes_[t].parent : up_[k - 1][t];
    up_[k].push_back((k == 0) ? half : up_[k - 1][half]);
  }
  const uint32_t d = nodes_[t].depth;
  if (d <= max_depth_) return;
  max_depth_ = d;
  // `t` is the first name deep enough for a longer jump: backfill whole
  // levels (each spans all of nodes_, `t` included). Depth grows by at most
  // one per interned name, so this adds at most one level per call and
  // O(n log depth) work over the life of the arena.
  while ((uint64_t{1} << up_.size()) <= max_depth_) {
    obs::SpanTimer span(obs::GetSgBuildMetrics().lca_level_build_us);
    const size_t k = up_.size();
    std::vector<TxName> level(nodes_.size());
    if (k == 0) {
      for (TxName x = 0; x < level.size(); ++x)
        level[x] = (x == kT0) ? kT0 : nodes_[x].parent;
    } else {
      const std::vector<TxName>& prev = up_[k - 1];
      for (TxName x = 0; x < level.size(); ++x) level[x] = prev[prev[x]];
    }
    up_.push_back(std::move(level));
  }
}

ObjectId SystemType::AddObject(ObjectType type, std::string name,
                               int64_t initial) {
  objects_.push_back(ObjectInfo{type, std::move(name), initial});
  return static_cast<ObjectId>(objects_.size() - 1);
}

TxName SystemType::NewChild(TxName parent) {
  NTSG_CHECK_LT(parent, nodes_.size());
  NTSG_CHECK(!IsAccess(parent)) << "accesses are leaves";
  nodes_.push_back(Node{parent, nodes_[parent].depth + 1, std::nullopt});
  TxName t = static_cast<TxName>(nodes_.size() - 1);
  nodes_[t].next_sibling = nodes_[parent].first_child;
  nodes_[parent].first_child = t;
  IndexNewNode(t);
  return t;
}

TxName SystemType::NewAccess(TxName parent, const AccessSpec& spec) {
  NTSG_CHECK_LT(parent, nodes_.size());
  NTSG_CHECK(!IsAccess(parent)) << "accesses are leaves";
  NTSG_CHECK_LT(spec.object, objects_.size());
  NTSG_CHECK(OpValidForType(objects_[spec.object].type, spec.op))
      << OpCodeName(spec.op) << " invalid for "
      << ObjectTypeName(objects_[spec.object].type);
  nodes_.push_back(Node{parent, nodes_[parent].depth + 1, spec});
  TxName t = static_cast<TxName>(nodes_.size() - 1);
  nodes_[t].next_sibling = nodes_[parent].first_child;
  nodes_[parent].first_child = t;
  IndexNewNode(t);
  return t;
}

ObjectId SystemType::ObjectOf(TxName t) const {
  if (!IsAccess(t)) return kInvalidObject;
  return nodes_[t].access->object;
}

bool SystemType::IsAncestor(TxName a, TxName d) const {
  NTSG_CHECK_LT(a, nodes_.size());
  NTSG_CHECK_LT(d, nodes_.size());
  if (nodes_[a].depth > nodes_[d].depth) return false;
  return AncestorAtDepth(d, nodes_[a].depth) == a;
}

bool SystemType::AreSiblings(TxName a, TxName b) const {
  if (a == b || a == kT0 || b == kT0) return false;
  return nodes_[a].parent == nodes_[b].parent;
}

TxName SystemType::Lca(TxName a, TxName b) const {
  NTSG_CHECK_LT(a, nodes_.size());
  NTSG_CHECK_LT(b, nodes_.size());
  const uint32_t da = nodes_[a].depth, db = nodes_[b].depth;
  if (da > db) {
    a = AncestorAtDepth(a, db);
  } else if (db > da) {
    b = AncestorAtDepth(b, da);
  }
  if (a == b) return a;
  // Jump both names up whenever their 2^k-th ancestors still differ; the
  // clamp-to-T0 convention makes over-long jumps land on T0 together, so
  // they are simply not taken. Afterwards a and b are distinct children of
  // the lca.
  for (size_t k = up_.size(); k-- > 0;) {
    if (up_[k][a] != up_[k][b]) {
      a = up_[k][a];
      b = up_[k][b];
    }
  }
  return nodes_[a].parent;
}

TxName SystemType::AncestorAtDepth(TxName t, uint32_t target_depth) const {
  NTSG_CHECK_LT(t, nodes_.size());
  NTSG_CHECK_LE(target_depth, nodes_[t].depth);
  uint32_t diff = nodes_[t].depth - target_depth;
  for (size_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1u) t = up_[k][t];
  }
  return t;
}

TxName SystemType::ChildToward(TxName anc, TxName d) const {
  NTSG_CHECK(IsAncestor(anc, d));
  NTSG_CHECK_NE(anc, d);
  return AncestorAtDepth(d, nodes_[anc].depth + 1);
}

std::vector<TxName> SystemType::Ancestors(TxName t) const {
  std::vector<TxName> out;
  out.reserve(nodes_[t].depth + 1);
  for (;;) {
    out.push_back(t);
    if (t == kT0) break;
    t = nodes_[t].parent;
  }
  return out;
}

std::vector<TxName> SystemType::SubtreeOf(TxName root) const {
  NTSG_CHECK_LT(root, nodes_.size());
  std::vector<TxName> out;
  out.push_back(root);
  for (size_t i = 0; i < out.size(); ++i) {
    for (TxName c = nodes_[out[i]].first_child; c != kInvalidTx;
         c = nodes_[c].next_sibling) {
      out.push_back(c);
    }
  }
  return out;
}

std::string SystemType::NameOf(TxName t) const {
  if (t == kT0) return "T0";
  std::vector<TxName> path = Ancestors(t);
  std::reverse(path.begin(), path.end());
  std::string out = "T0";
  for (size_t i = 1; i < path.size(); ++i) {
    out += ".";
    out += std::to_string(path[i]);
  }
  return out;
}

}  // namespace ntsg
