#include "tx/system_type.h"

#include <algorithm>

#include "common/logging.h"

namespace ntsg {

SystemType::SystemType() {
  nodes_.push_back(Node{kInvalidTx, 0, std::nullopt});  // T0.
}

ObjectId SystemType::AddObject(ObjectType type, std::string name,
                               int64_t initial) {
  objects_.push_back(ObjectInfo{type, std::move(name), initial});
  return static_cast<ObjectId>(objects_.size() - 1);
}

TxName SystemType::NewChild(TxName parent) {
  NTSG_CHECK_LT(parent, nodes_.size());
  NTSG_CHECK(!IsAccess(parent)) << "accesses are leaves";
  nodes_.push_back(Node{parent, nodes_[parent].depth + 1, std::nullopt});
  return static_cast<TxName>(nodes_.size() - 1);
}

TxName SystemType::NewAccess(TxName parent, const AccessSpec& spec) {
  NTSG_CHECK_LT(parent, nodes_.size());
  NTSG_CHECK(!IsAccess(parent)) << "accesses are leaves";
  NTSG_CHECK_LT(spec.object, objects_.size());
  NTSG_CHECK(OpValidForType(objects_[spec.object].type, spec.op))
      << OpCodeName(spec.op) << " invalid for "
      << ObjectTypeName(objects_[spec.object].type);
  nodes_.push_back(Node{parent, nodes_[parent].depth + 1, spec});
  return static_cast<TxName>(nodes_.size() - 1);
}

ObjectId SystemType::ObjectOf(TxName t) const {
  if (!IsAccess(t)) return kInvalidObject;
  return nodes_[t].access->object;
}

bool SystemType::IsAncestor(TxName a, TxName d) const {
  NTSG_CHECK_LT(a, nodes_.size());
  NTSG_CHECK_LT(d, nodes_.size());
  while (nodes_[d].depth > nodes_[a].depth) d = nodes_[d].parent;
  return a == d;
}

bool SystemType::AreSiblings(TxName a, TxName b) const {
  if (a == b || a == kT0 || b == kT0) return false;
  return nodes_[a].parent == nodes_[b].parent;
}

TxName SystemType::Lca(TxName a, TxName b) const {
  NTSG_CHECK_LT(a, nodes_.size());
  NTSG_CHECK_LT(b, nodes_.size());
  while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
  while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return a;
}

TxName SystemType::ChildToward(TxName anc, TxName d) const {
  NTSG_CHECK(IsAncestor(anc, d));
  NTSG_CHECK_NE(anc, d);
  while (nodes_[d].depth > nodes_[anc].depth + 1) d = nodes_[d].parent;
  return d;
}

std::vector<TxName> SystemType::Ancestors(TxName t) const {
  std::vector<TxName> out;
  out.reserve(nodes_[t].depth + 1);
  for (;;) {
    out.push_back(t);
    if (t == kT0) break;
    t = nodes_[t].parent;
  }
  return out;
}

std::string SystemType::NameOf(TxName t) const {
  if (t == kT0) return "T0";
  std::vector<TxName> path = Ancestors(t);
  std::reverse(path.begin(), path.end());
  std::string out = "T0";
  for (size_t i = 1; i < path.size(); ++i) {
    out += ".";
    out += std::to_string(path[i]);
  }
  return out;
}

}  // namespace ntsg
