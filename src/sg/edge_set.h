#ifndef NTSG_SG_EDGE_SET_H_
#define NTSG_SG_EDGE_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sg/conflicts.h"

namespace ntsg {

/// SplitMix64 finalizer: a cheap, well-distributed mixer for the
/// open-addressing tables below.
inline uint64_t HashMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Open-addressing hash map from a 64-bit key to a dense uint32 index, the
/// workhorse lookup of the conflict frontier. Keys are exact (no collision
/// folding): callers pack at most two 32-bit ids into the key. Linear
/// probing, power-of-two capacity, value-semantic (copyable for ingest
/// snapshots). The all-ones key is reserved as the empty sentinel and the
/// value just below it as the erase tombstone; erasure (the GC retirement
/// path) tombstones the cell so later probe chains stay intact, and the
/// table rehashes tombstones away once they would dominate the load.
class FlatIndexMap {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  uint32_t Find(uint64_t key) const {
    if (cells_.empty()) return kNotFound;
    for (size_t i = HashMix64(key) & mask_;; i = (i + 1) & mask_) {
      if (cells_[i].key == kEmptyKey) return kNotFound;
      if (cells_[i].key == key) return cells_[i].value;
    }
  }

  /// Returns the value slot for `key`, inserting `value_if_new` first if the
  /// key is absent. The pointer is invalidated by the next insertion.
  uint32_t* FindOrInsert(uint64_t key, uint32_t value_if_new) {
    NTSG_CHECK_LT(key, kTombKey);
    if (size_ + tombs_ + 1 > (cells_.size() * 3) / 4) Grow();
    size_t tomb = SIZE_MAX;
    for (size_t i = HashMix64(key) & mask_;; i = (i + 1) & mask_) {
      if (cells_[i].key == kEmptyKey) {
        // Reuse the first tombstone on the probe chain if one was passed;
        // the chain up to here proved the key absent.
        if (tomb != SIZE_MAX) {
          i = tomb;
          --tombs_;
        }
        cells_[i] = Cell{key, value_if_new};
        ++size_;
        return &cells_[i].value;
      }
      if (cells_[i].key == kTombKey) {
        if (tomb == SIZE_MAX) tomb = i;
        continue;
      }
      if (cells_[i].key == key) return &cells_[i].value;
    }
  }

  /// Removes `key` if present; returns true iff it was. The cell becomes a
  /// tombstone (probe chains through it survive) until the next rehash.
  bool Erase(uint64_t key) {
    if (cells_.empty()) return false;
    for (size_t i = HashMix64(key) & mask_;; i = (i + 1) & mask_) {
      if (cells_[i].key == kEmptyKey) return false;
      if (cells_[i].key == key) {
        cells_[i].key = kTombKey;
        --size_;
        ++tombs_;
        return true;
      }
    }
  }

  /// Visits every live (key, value) pair, in unspecified order. The table
  /// must not be mutated during the walk.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Cell& c : cells_) {
      if (c.key < kTombKey) fn(c.key, c.value);
    }
  }

  size_t size() const { return size_; }
  /// Tombstoned cells awaiting a rehash; exposed for the container tests.
  size_t tombstones() const { return tombs_; }

 private:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};
  static constexpr uint64_t kTombKey = ~uint64_t{0} - 1;

  struct Cell {
    uint64_t key;
    uint32_t value;
  };

  void Grow() {
    // Double only when live entries need the room; a tombstone-heavy table
    // rehashes at its current capacity, which drops every tombstone.
    size_t cap = cells_.empty() ? 16
                 : size_ + 1 > (cells_.size() * 3) / 8 ? cells_.size() * 2
                                                       : cells_.size();
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{kEmptyKey, 0});
    mask_ = cap - 1;
    tombs_ = 0;
    for (const Cell& c : old) {
      if (c.key >= kTombKey) continue;
      for (size_t i = HashMix64(c.key) & mask_;; i = (i + 1) & mask_) {
        if (cells_[i].key == kEmptyKey) {
          cells_[i] = c;
          break;
        }
      }
    }
  }

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t tombs_ = 0;
};

/// Deduplicating set of sibling edges: an insertion-ordered arena of edges
/// plus an open-addressing slot table over it. Replaces std::set<SiblingEdge>
/// on the construction hot paths — O(1) expected insert, no node allocations,
/// value-semantic (copyable for ingest snapshots).
///
/// Erasure (the GC retirement path) tombstones the slot and turns the arena
/// entry into a dead sentinel (`parent == kInvalidTx`) so surviving arena
/// indices stay valid; the arena compacts in stable order once dead entries
/// would dominate. `edges()` exposes the raw arena, sentinels included —
/// iterate with `ForEach` (or skip `parent == kInvalidTx`) after erasures.
class SiblingEdgeSet {
 public:
  /// Inserts `e` if absent; returns true iff it was new.
  bool Insert(const SiblingEdge& e) {
    NTSG_CHECK_NE(e.parent, kInvalidTx);
    if (edges_.size() + 1 > (slots_.size() * 3) / 4) Grow();
    size_t tomb = SIZE_MAX;
    for (size_t i = Hash(e) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i] == kEmptySlot) {
        if (tomb != SIZE_MAX) i = tomb;
        slots_[i] = static_cast<uint32_t>(edges_.size());
        edges_.push_back(e);
        return true;
      }
      if (slots_[i] == kTombSlot) {
        if (tomb == SIZE_MAX) tomb = i;
        continue;
      }
      if (edges_[slots_[i]] == e) return false;
    }
  }

  bool Contains(const SiblingEdge& e) const {
    if (slots_.empty()) return false;
    for (size_t i = Hash(e) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i] == kEmptySlot) return false;
      if (slots_[i] == kTombSlot) continue;
      if (edges_[slots_[i]] == e) return true;
    }
  }

  /// Removes `e` if present; returns true iff it was. The arena entry
  /// becomes a dead sentinel until the next compaction, so indices held by
  /// concurrent readers of `edges()` are never shifted by an erase.
  bool Erase(const SiblingEdge& e) {
    if (slots_.empty()) return false;
    for (size_t i = Hash(e) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i] == kEmptySlot) return false;
      if (slots_[i] == kTombSlot) continue;
      if (edges_[slots_[i]] == e) {
        edges_[slots_[i]] = kDeadEdge();
        slots_[i] = kTombSlot;
        ++dead_;
        MaybeCompact();
        return true;
      }
    }
  }

  /// Removes every edge for which `pred` returns true; returns the number
  /// removed. Surviving edges keep their relative insertion order.
  template <typename Pred>
  size_t EraseIf(Pred&& pred) {
    size_t removed = 0;
    for (SiblingEdge& e : edges_) {
      if (e.parent == kInvalidTx) continue;
      if (pred(static_cast<const SiblingEdge&>(e))) {
        e = kDeadEdge();
        ++removed;
      }
    }
    if (removed > 0) {
      dead_ += removed;
      Compact();
    }
    return removed;
  }

  /// Visits live edges in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const SiblingEdge& e : edges_) {
      if (e.parent != kInvalidTx) fn(e);
    }
  }

  size_t size() const { return edges_.size() - dead_; }
  bool empty() const { return size() == 0; }

  /// Raw arena in insertion order (stable across runs only if insertions
  /// are). After erasures it contains dead sentinels with
  /// `parent == kInvalidTx`; callers must skip them.
  const std::vector<SiblingEdge>& edges() const { return edges_; }

  /// Live edges sorted by (parent, from, to) — the canonical order every
  /// public relation returns and the fingerprinter consumes.
  std::vector<SiblingEdge> SortedEdges() const {
    std::vector<SiblingEdge> out;
    out.reserve(size());
    for (const SiblingEdge& e : edges_) {
      if (e.parent != kInvalidTx) out.push_back(e);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void clear() {
    edges_.clear();
    dead_ = 0;
    slots_.assign(slots_.size(), kEmptySlot);
  }

  /// Dead arena entries awaiting compaction; exposed for the container tests.
  size_t dead() const { return dead_; }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr uint32_t kTombSlot = 0xFFFFFFFEu;

  static SiblingEdge kDeadEdge() {
    return SiblingEdge{kInvalidTx, kInvalidTx, kInvalidTx};
  }

  static uint64_t Hash(const SiblingEdge& e) {
    uint64_t k = (uint64_t{e.parent} << 32) | e.from;
    return HashMix64(k ^ HashMix64(e.to));
  }

  void MaybeCompact() {
    if (dead_ >= 16 && dead_ * 2 > edges_.size()) Compact();
  }

  /// Stable-order rebuild of the arena without dead sentinels, then a full
  /// slot-table rebuild (which also drops every slot tombstone).
  void Compact() {
    std::vector<SiblingEdge> live;
    live.reserve(edges_.size() - dead_);
    for (const SiblingEdge& e : edges_) {
      if (e.parent != kInvalidTx) live.push_back(e);
    }
    edges_ = std::move(live);
    dead_ = 0;
    if (slots_.empty()) return;
    Rehash(slots_.size());
  }

  void Grow() {
    Rehash(slots_.empty() ? 32 : slots_.size() * 2);
  }

  void Rehash(size_t cap) {
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    for (size_t idx = 0; idx < edges_.size(); ++idx) {
      if (edges_[idx].parent == kInvalidTx) continue;
      for (size_t i = Hash(edges_[idx]) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i] == kEmptySlot) {
          slots_[i] = static_cast<uint32_t>(idx);
          break;
        }
      }
    }
  }

  std::vector<SiblingEdge> edges_;
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
  size_t dead_ = 0;
};

}  // namespace ntsg

#endif  // NTSG_SG_EDGE_SET_H_
