#ifndef NTSG_SG_EDGE_SET_H_
#define NTSG_SG_EDGE_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sg/conflicts.h"

namespace ntsg {

/// SplitMix64 finalizer: a cheap, well-distributed mixer for the
/// open-addressing tables below.
inline uint64_t HashMix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Open-addressing hash map from a 64-bit key to a dense uint32 index, the
/// workhorse lookup of the conflict frontier. Keys are exact (no collision
/// folding): callers pack at most two 32-bit ids into the key. Linear
/// probing, power-of-two capacity, value-semantic (copyable for ingest
/// snapshots). The all-ones key is reserved as the empty sentinel.
class FlatIndexMap {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  uint32_t Find(uint64_t key) const {
    if (cells_.empty()) return kNotFound;
    for (size_t i = HashMix64(key) & mask_;; i = (i + 1) & mask_) {
      if (cells_[i].key == kEmptyKey) return kNotFound;
      if (cells_[i].key == key) return cells_[i].value;
    }
  }

  /// Returns the value slot for `key`, inserting `value_if_new` first if the
  /// key is absent. The pointer is invalidated by the next insertion.
  uint32_t* FindOrInsert(uint64_t key, uint32_t value_if_new) {
    NTSG_CHECK_NE(key, kEmptyKey);
    if (size_ + 1 > (cells_.size() * 3) / 4) Grow();
    for (size_t i = HashMix64(key) & mask_;; i = (i + 1) & mask_) {
      if (cells_[i].key == kEmptyKey) {
        cells_[i] = Cell{key, value_if_new};
        ++size_;
        return &cells_[i].value;
      }
      if (cells_[i].key == key) return &cells_[i].value;
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  struct Cell {
    uint64_t key;
    uint32_t value;
  };

  void Grow() {
    size_t cap = cells_.empty() ? 16 : cells_.size() * 2;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{kEmptyKey, 0});
    mask_ = cap - 1;
    for (const Cell& c : old) {
      if (c.key == kEmptyKey) continue;
      for (size_t i = HashMix64(c.key) & mask_;; i = (i + 1) & mask_) {
        if (cells_[i].key == kEmptyKey) {
          cells_[i] = c;
          break;
        }
      }
    }
  }

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Deduplicating set of sibling edges: an insertion-ordered arena of edges
/// plus an open-addressing slot table over it. Replaces std::set<SiblingEdge>
/// on the construction hot paths — O(1) expected insert, no node allocations,
/// value-semantic (copyable for ingest snapshots).
class SiblingEdgeSet {
 public:
  /// Inserts `e` if absent; returns true iff it was new.
  bool Insert(const SiblingEdge& e) {
    if (edges_.size() + 1 > (slots_.size() * 3) / 4) Grow();
    for (size_t i = Hash(e) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i] == kEmptySlot) {
        slots_[i] = static_cast<uint32_t>(edges_.size());
        edges_.push_back(e);
        return true;
      }
      if (edges_[slots_[i]] == e) return false;
    }
  }

  bool Contains(const SiblingEdge& e) const {
    if (slots_.empty()) return false;
    for (size_t i = Hash(e) & mask_;; i = (i + 1) & mask_) {
      if (slots_[i] == kEmptySlot) return false;
      if (edges_[slots_[i]] == e) return true;
    }
  }

  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  /// Edges in insertion order (stable across runs only if insertions are).
  const std::vector<SiblingEdge>& edges() const { return edges_; }

  /// Edges sorted by (parent, from, to) — the canonical order every public
  /// relation returns and the fingerprinter consumes.
  std::vector<SiblingEdge> SortedEdges() const {
    std::vector<SiblingEdge> out = edges_;
    std::sort(out.begin(), out.end());
    return out;
  }

  void clear() {
    edges_.clear();
    slots_.assign(slots_.size(), kEmptySlot);
  }

 private:
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  static uint64_t Hash(const SiblingEdge& e) {
    uint64_t k = (uint64_t{e.parent} << 32) | e.from;
    return HashMix64(k ^ HashMix64(e.to));
  }

  void Grow() {
    size_t cap = slots_.empty() ? 32 : slots_.size() * 2;
    slots_.assign(cap, kEmptySlot);
    mask_ = cap - 1;
    for (size_t idx = 0; idx < edges_.size(); ++idx) {
      for (size_t i = Hash(edges_[idx]) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i] == kEmptySlot) {
          slots_[i] = static_cast<uint32_t>(idx);
          break;
        }
      }
    }
  }

  std::vector<SiblingEdge> edges_;
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

}  // namespace ntsg

#endif  // NTSG_SG_EDGE_SET_H_
