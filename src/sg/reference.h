#ifndef NTSG_SG_REFERENCE_H_
#define NTSG_SG_REFERENCE_H_

#include <vector>

#include "sg/conflicts.h"

namespace ntsg {

/// Executable specification of conflict(β): the direct transcription of
/// Section 4 / Section 6.1 — every ordered pair of visible operations on
/// every object, tested with AccessOpsConflict and resolved to a sibling
/// edge through the lca. O(k²) pairs per object; retained verbatim (modulo
/// the retired std::set round-trip) as the oracle the differential suite
/// and the before/after benchmarks pin the frontier construction against.
/// Returns edges sorted by (parent, from, to), deduplicated — the same
/// contract as ConflictRelation.
std::vector<SiblingEdge> NaiveConflictRelation(const SystemType& type,
                                               const Trace& beta,
                                               ConflictMode mode);

/// Executable specification of precedes(β), same role and contract as
/// NaiveConflictRelation.
std::vector<SiblingEdge> NaivePrecedesRelation(const SystemType& type,
                                               const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_SG_REFERENCE_H_
