#ifndef NTSG_SG_APPROPRIATE_H_
#define NTSG_SG_APPROPRIATE_H_

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Section 3.2 (read/write objects): β has appropriate return values iff for
/// every REQUEST_COMMIT(T, v) in visible(β, T0) with T an access to X,
/// either T is a write and v = OK, or T is a read and v = final-value(δ, X)
/// where δ is the prefix of visible(β, T0) preceding the event.
/// Requires all objects to be read/write. `beta` is a sequence of serial
/// actions (a simple behavior, or serial(β) of a generic behavior).
Status CheckAppropriateReturnValuesRw(const SystemType& type,
                                      const Trace& beta);

/// Section 6.1 (arbitrary types; equals the above on read/write systems by
/// Lemma 5): for every object X, perform(operations(visible(β, T0)|X)) must
/// be a behavior of S_X — checked by spec replay.
Status CheckAppropriateReturnValuesGeneral(const SystemType& type,
                                           const Trace& beta);

/// Section 3.3: a REQUEST_COMMIT(T, v) event for a read access at position
/// `pos` in the serial-action sequence `beta` is *current* iff
/// v = clean-final-value(β', X) where β' is the prefix before the event.
bool IsCurrentReadEvent(const SystemType& type, const Trace& beta, size_t pos);

/// Section 3.3: the event is *safe* iff clean-last-write(β', X) is undefined
/// or visible to T in β'. A read that is not safe reads "dirty data".
bool IsSafeReadEvent(const SystemType& type, const Trace& beta, size_t pos);

/// Lemma 6 hypotheses: every write response in visible(β, T0) is OK and
/// every read response in visible(β, T0) is current and safe in β. When this
/// passes, β has appropriate return values. Requires read/write objects.
Status CheckCurrentAndSafe(const SystemType& type, const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_SG_APPROPRIATE_H_
