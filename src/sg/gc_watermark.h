#ifndef NTSG_SG_GC_WATERMARK_H_
#define NTSG_SG_GC_WATERMARK_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tx/system_type.h"

namespace ntsg {

/// Tuning for the commit-watermark garbage collector (see DESIGN.md §10).
/// A retirement pass runs every `interval` ingested actions; 0 disables GC
/// entirely (the default — certifiers keep the original grow-forever
/// behavior unless CertifyOptions::gc_watermark opts in).
struct GcOptions {
  size_t interval = 0;

  bool enabled() const { return interval != 0; }
};

/// Counters a certifier accumulates across retirement passes; surfaced in
/// reports and mirrored into the ntsg_gc_* metric families.
struct GcStats {
  uint64_t runs = 0;             // Retirement passes executed.
  uint64_t retired_families = 0; // Top-level families retired.
  uint64_t retired_nodes = 0;    // Graph nodes removed.
  uint64_t pruned_ops = 0;       // Visible operations folded into checkpoints.
  uint64_t late_events = 0;      // Actions naming already-retired families.
  uint64_t last_watermark = 0;   // Position watermark of the latest pass.
};

/// Per-family (child of T0) lifecycle bookkeeping behind the watermark GC.
///
/// SG(β)'s sibling edges never cross a parent boundary, so the unit of
/// retirement is the *top-level family*: the subtree under one child of T0.
/// A family is a retirement candidate ("sealed") once
///   (a) its root's REPORT_COMMIT / REPORT_ABORT has been ingested — the
///       report is the last verdict-relevant event a well-formed stream
///       delivers for the family (only INFORM_* stragglers and, under an
///       aborted root, orphaned-descendant activity follow, all of which
///       the certifier ignores) — and
///   (b) every activated operation under it sits strictly below the caller's
///       position watermark W (the lowest position a not-yet-delivered
///       action could still carry) — so no future out-of-order reveal can
///       emit a conflict edge into it.
/// Candidates still need the caller's predecessor-closure check against the
/// live graph before they may actually retire; that part lives with the
/// graph owner, not here.
class GcFamilyBook {
 public:
  /// Depth-1 ancestor of `t` — the family root — or kT0 when t is T0 itself
  /// (T0 is never retired).
  static TxName RootOf(const SystemType& type, TxName t) {
    if (t == kT0) return kT0;
    return type.AncestorAtDepth(t, 1);
  }

  /// Records that `root`'s family exists (idempotent). kT0 is ignored.
  void NoteRoot(TxName root) {
    if (root == kT0) return;
    families_.try_emplace(root);
  }

  /// Records that `root`'s T0-level report (commit or abort) was ingested.
  /// `aborted` is remembered past retirement: an aborted family's orphaned
  /// descendants may keep producing (verdict-inert) events indefinitely,
  /// and the late-event filter must not flag those as malformed.
  void NoteResolved(TxName root, bool aborted) {
    if (root == kT0) return;
    Family& f = families_[root];
    f.resolved = true;
    f.aborted = aborted;
  }

  /// Records an activated operation at stream position `pos` under `root`.
  void NoteOp(TxName root, size_t pos) {
    if (root == kT0) return;
    Family& f = families_[root];
    if (pos + 1 > f.max_pos_end) f.max_pos_end = pos + 1;
  }

  bool IsRetired(TxName root) const { return retired_.count(root) != 0; }

  /// True iff `root` was retired and its T0-level resolution was an abort
  /// (so post-retirement events under it are orphan noise, not corruption).
  bool RetiredAborted(TxName root) const {
    return retired_aborted_.count(root) != 0;
  }

  /// True iff any un-retired family is currently tracked.
  size_t live_families() const { return families_.size(); }

  /// Roots satisfying the sealing conditions under watermark `watermark`
  /// (every tracked op position < watermark) and not in `blocked` (families
  /// the caller must keep, e.g. ones with parked or held work). Sorted for
  /// deterministic downstream iteration.
  std::vector<TxName> SealedCandidates(
      size_t watermark, const std::unordered_set<TxName>& blocked) const;

  /// Moves `root` from live to retired. Must be called at most once per root.
  void MarkRetired(TxName root);

  /// Retired family roots, unordered. Membership answers "was this name's
  /// family retired" for late-event filtering.
  const std::unordered_set<TxName>& retired_roots() const { return retired_; }

  /// Deterministic (sorted) copy of the retired roots, for reports.
  std::vector<TxName> SortedRetiredRoots() const;

 private:
  struct Family {
    bool resolved = false;
    bool aborted = false;
    /// One past the highest activated-op position seen under this family;
    /// the family is position-quiescent under watermark W iff
    /// max_pos_end <= W.
    size_t max_pos_end = 0;
  };

  std::unordered_map<TxName, Family> families_;
  std::unordered_set<TxName> retired_;
  std::unordered_set<TxName> retired_aborted_;
};

}  // namespace ntsg

#endif  // NTSG_SG_GC_WATERMARK_H_
