#include "sg/fingerprint.h"

#include <algorithm>

namespace ntsg {

uint64_t FingerprintSerializationGraph(
    std::vector<SiblingEdge> conflict_edges,
    std::vector<SiblingEdge> precedes_edges) {
  std::sort(conflict_edges.begin(), conflict_edges.end());
  conflict_edges.erase(
      std::unique(conflict_edges.begin(), conflict_edges.end()),
      conflict_edges.end());
  std::sort(precedes_edges.begin(), precedes_edges.end());
  precedes_edges.erase(
      std::unique(precedes_edges.begin(), precedes_edges.end()),
      precedes_edges.end());
  GraphFingerprinter fp;
  for (const SiblingEdge& e : conflict_edges) fp.AddConflict(e);
  for (const SiblingEdge& e : precedes_edges) fp.AddPrecedes(e);
  return fp.Finish();
}

}  // namespace ntsg
