#ifndef NTSG_SG_GRAPH_H_
#define NTSG_SG_GRAPH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sg/conflicts.h"
#include "tx/trace.h"

namespace ntsg {

/// The serialization graph SG(β) (Section 4): a disjoint union of directed
/// graphs SG(β, T), one per transaction T visible to T0, whose nodes are T's
/// children and whose edges are precedes(β) ∪ conflict(β) restricted to
/// those children.
class SerializationGraph {
 public:
  /// Builds SG(β) from a sequence of serial actions. (For a generic behavior
  /// apply SerialPart first, mirroring the paper's SG(serial(β)).)
  /// `num_threads` > 1 parallelizes the conflict-relation build across
  /// objects; the resulting graph is identical for every thread count.
  static SerializationGraph Build(const SystemType& type, const Trace& beta,
                                  ConflictMode mode, size_t num_threads = 1);

  /// Builds from precomputed edge sets (used by incremental callers).
  static SerializationGraph FromEdges(std::vector<SiblingEdge> conflict_edges,
                                      std::vector<SiblingEdge> precedes_edges);

  const std::vector<SiblingEdge>& conflict_edges() const {
    return conflict_edges_;
  }
  const std::vector<SiblingEdge>& precedes_edges() const {
    return precedes_edges_;
  }

  /// Parents P with a non-empty component SG(β, P).
  std::vector<TxName> Parents() const;

  /// A directed cycle within one component, if any (as a node sequence
  /// [t1, ..., tk] with edges t1->t2->...->tk->t1); nullopt if acyclic.
  std::optional<std::vector<TxName>> FindCycle() const;

  bool IsAcyclic() const { return !FindCycle().has_value(); }

  /// For an acyclic graph: a topological order of the nodes of each
  /// component, keyed by parent. Nodes are every endpoint mentioned by an
  /// edge. Ties are broken by name for determinism.
  std::map<TxName, std::vector<TxName>> TopologicalOrders() const;

  /// Graphviz rendering; conflict edges solid, precedes edges dashed.
  std::string ToDot(const SystemType& type) const;

 private:
  std::vector<SiblingEdge> conflict_edges_;
  std::vector<SiblingEdge> precedes_edges_;
};

}  // namespace ntsg

#endif  // NTSG_SG_GRAPH_H_
