#ifndef NTSG_SG_CERTIFIER_H_
#define NTSG_SG_CERTIFIER_H_

#include <optional>

#include "common/status.h"
#include "sg/graph.h"
#include "tx/trace.h"

namespace ntsg {

/// Outcome of applying Theorem 8 / Theorem 19 to a behavior.
struct CertifierReport {
  /// OK iff both conditions hold (the behavior is certified serially
  /// correct for T0 by the theorem).
  Status status;

  bool appropriate_return_values = false;
  bool graph_acyclic = false;

  size_t conflict_edge_count = 0;
  size_t precedes_edge_count = 0;

  /// A cycle witness when !graph_acyclic.
  std::optional<std::vector<TxName>> cycle;
};

struct CertifyOptions {
  /// Worker threads for the batch conflict-relation build. Objects are
  /// sharded across workers (the ConcurrentIngestPipeline decomposition)
  /// and the per-shard edge sets merged before the acyclicity check; the
  /// report is identical for every thread count. 1 = fully sequential.
  size_t num_threads = 1;

  /// Nonzero switches from the batch build to the streaming certifier with
  /// commit-watermark GC running every `gc_watermark` actions, so peak
  /// memory tracks the live transaction population instead of the trace
  /// length (DESIGN.md §10). The verdict, the rejection witness, and the
  /// appropriate-return-values check are identical to the batch build
  /// (gc_differential_test); the reported edge counts cover the live
  /// (unretired) scope only.
  size_t gc_watermark = 0;
};

/// Applies the paper's sufficient condition for serial correctness to a
/// behavior: checks appropriate return values, builds SG(serial(β)) under
/// `mode`, and tests acyclicity. A non-OK status means "not certified" — the
/// condition is sufficient, not necessary, so a rejected behavior *may*
/// still be serially correct (the witness checker decides exactly).
///
/// `beta` may be a generic behavior (INFORM actions are stripped first, as
/// in Theorem 17/25) or a simple behavior.
CertifierReport CertifySeriallyCorrect(const SystemType& type,
                                       const Trace& beta, ConflictMode mode,
                                       const CertifyOptions& options = {});

}  // namespace ntsg

#endif  // NTSG_SG_CERTIFIER_H_
