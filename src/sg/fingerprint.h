#ifndef NTSG_SG_FINGERPRINT_H_
#define NTSG_SG_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "sg/conflicts.h"

namespace ntsg {

/// Canonical 64-bit fingerprint of a serialization graph, defined over the
/// *sets* of conflict and precedes edges: edges are sorted and hashed
/// (FNV-1a) with a tag separating the two relations, so any two certifiers
/// that agree on the edge sets agree on the fingerprint — regardless of
/// discovery order, sharding, or faults injected along the way. This is the
/// byte-identity the chaos tests and the golden corpus pin down.
uint64_t FingerprintSerializationGraph(std::vector<SiblingEdge> conflict_edges,
                                       std::vector<SiblingEdge> precedes_edges);

/// Overload for callers that already hold sorted, deduplicated edge ranges
/// (e.g. std::set iteration): hashes in iteration order without copying.
class GraphFingerprinter {
 public:
  /// Feed conflict edges first, then precedes edges, each in strictly
  /// increasing SiblingEdge order.
  void AddConflict(const SiblingEdge& e) { Mix(1, e); }
  void AddPrecedes(const SiblingEdge& e) { Mix(2, e); }

  uint64_t Finish() const { return hash_; }

 private:
  void Mix(uint64_t tag, const SiblingEdge& e) {
    for (uint64_t word :
         {tag, static_cast<uint64_t>(e.parent), static_cast<uint64_t>(e.from),
          static_cast<uint64_t>(e.to)}) {
      for (int byte = 0; byte < 8; ++byte) {
        hash_ ^= (word >> (8 * byte)) & 0xFF;
        hash_ *= 0x100000001B3ull;  // FNV-1a 64 prime
      }
    }
  }

  uint64_t hash_ = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
};

}  // namespace ntsg

#endif  // NTSG_SG_FINGERPRINT_H_
