#include "sg/affects.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace ntsg {

std::vector<std::pair<size_t, size_t>> DirectlyAffects(const SystemType& type,
                                                       const Trace& beta) {
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t j = 0; j < beta.size(); ++j) {
    const Action& pi = beta[j];
    NTSG_CHECK(pi.IsSerial());
    for (size_t i = 0; i < j; ++i) {
      const Action& phi = beta[i];
      bool affects = false;
      TxName tp = TransactionOf(type, phi);
      if (tp != kInvalidTx && tp == TransactionOf(type, pi)) affects = true;
      if (phi.kind == ActionKind::kRequestCreate && phi.tx == pi.tx &&
          (pi.kind == ActionKind::kCreate || pi.kind == ActionKind::kAbort)) {
        affects = true;
      }
      if (phi.kind == ActionKind::kRequestCommit && phi.tx == pi.tx &&
          pi.kind == ActionKind::kCommit) {
        affects = true;
      }
      if (phi.kind == ActionKind::kCommit && phi.tx == pi.tx &&
          pi.kind == ActionKind::kReportCommit) {
        affects = true;
      }
      if (phi.kind == ActionKind::kAbort && phi.tx == pi.tx &&
          pi.kind == ActionKind::kReportAbort) {
        affects = true;
      }
      if (affects) pairs.push_back({i, j});
    }
  }
  return pairs;
}

namespace {

/// Position of each node in each parent's order, for O(log) relative tests.
std::map<TxName, std::map<TxName, size_t>> IndexOrders(
    const std::map<TxName, std::vector<TxName>>& order) {
  std::map<TxName, std::map<TxName, size_t>> pos;
  for (const auto& [parent, children] : order) {
    for (size_t i = 0; i < children.size(); ++i) pos[parent][children[i]] = i;
  }
  return pos;
}

}  // namespace

Status CheckSuitability(
    const SystemType& type, const Trace& beta,
    const std::map<TxName, std::vector<TxName>>& order) {
  TraceIndex index(type, beta);

  // Events of visible(β, T0), with lowtransactions.
  struct Ev {
    size_t pos;
    TxName low;
  };
  std::vector<Ev> events;
  Trace visible_actions;
  for (size_t i = 0; i < beta.size(); ++i) {
    const Action& a = beta[i];
    if (!a.IsSerial()) continue;
    TxName high = HighTransactionOf(type, a);
    if (high == kInvalidTx || !index.IsVisible(high, kT0)) continue;
    events.push_back(Ev{i, LowTransactionOf(type, a)});
    visible_actions.push_back(a);
  }

  auto pos = IndexOrders(order);
  // Relative order of two lowtransactions under R_trans: -1 t1 before t2,
  // +1 after, 0 unordered/unrelated.
  auto rtrans = [&](TxName t1, TxName t2) -> int {
    if (t1 == t2) return 0;
    if (type.IsAncestor(t1, t2) || type.IsAncestor(t2, t1)) return 0;
    TxName p = type.Lca(t1, t2);
    TxName u1 = type.ChildToward(p, t1);
    TxName u2 = type.ChildToward(p, t2);
    auto pit = pos.find(p);
    if (pit == pos.end()) return 0;
    auto i1 = pit->second.find(u1), i2 = pit->second.find(u2);
    if (i1 == pit->second.end() || i2 == pit->second.end()) return 0;
    return i1->second < i2->second ? -1 : 1;
  };

  // Condition 1: all sibling lowtransaction pairs are ordered.
  for (size_t a = 0; a < events.size(); ++a) {
    for (size_t b = a + 1; b < events.size(); ++b) {
      TxName t1 = events[a].low, t2 = events[b].low;
      if (t1 == t2 || !type.AreSiblings(t1, t2)) continue;
      if (rtrans(t1, t2) == 0) {
        return Status::VerificationFailed(
            "order does not relate siblings " + type.NameOf(t1) + " and " +
            type.NameOf(t2));
      }
    }
  }

  // Condition 2: union of R_event(β) and affects(β) on visible events is
  // acyclic. Build adjacency over event indices (within `events`).
  size_t n = events.size();
  std::vector<std::vector<size_t>> adj(n);
  // Edges: directly-affects between visible events (transitive closure is
  // unnecessary for a cycle test) plus R_event edges in order direction.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const Action& phi = beta[events[a].pos];
      const Action& pi = beta[events[b].pos];
      if (events[a].pos < events[b].pos) {
        bool affects = false;
        TxName tp = TransactionOf(type, phi);
        if (tp != kInvalidTx && tp == TransactionOf(type, pi)) affects = true;
        if (phi.kind == ActionKind::kRequestCreate && phi.tx == pi.tx &&
            (pi.kind == ActionKind::kCreate ||
             pi.kind == ActionKind::kAbort)) {
          affects = true;
        }
        if (phi.kind == ActionKind::kRequestCommit && phi.tx == pi.tx &&
            pi.kind == ActionKind::kCommit) {
          affects = true;
        }
        if (phi.kind == ActionKind::kCommit && phi.tx == pi.tx &&
            pi.kind == ActionKind::kReportCommit) {
          affects = true;
        }
        if (phi.kind == ActionKind::kAbort && phi.tx == pi.tx &&
            pi.kind == ActionKind::kReportAbort) {
          affects = true;
        }
        if (affects) adj[a].push_back(b);
      }
      if (rtrans(events[a].low, events[b].low) < 0) adj[a].push_back(b);
    }
  }

  // Cycle test (iterative coloring DFS).
  std::vector<int> color(n, 0);
  for (size_t s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    std::vector<std::pair<size_t, size_t>> stack{{s, 0}};
    color[s] = 1;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx >= adj[node].size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      size_t next = adj[node][idx++];
      if (color[next] == 1) {
        return Status::VerificationFailed(
            "R_event and affects are inconsistent (cycle through event " +
            beta[events[next].pos].ToString(type) + ")");
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back({next, 0});
      }
    }
  }
  return Status::Ok();
}

}  // namespace ntsg
