#include "sg/gc_watermark.h"

#include <algorithm>

#include "common/logging.h"

namespace ntsg {

std::vector<TxName> GcFamilyBook::SealedCandidates(
    size_t watermark, const std::unordered_set<TxName>& blocked) const {
  std::vector<TxName> out;
  for (const auto& [root, f] : families_) {
    if (!f.resolved) continue;
    if (f.max_pos_end > watermark) continue;
    if (blocked.count(root) != 0) continue;
    out.push_back(root);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void GcFamilyBook::MarkRetired(TxName root) {
  NTSG_CHECK_NE(root, kT0);
  auto it = families_.find(root);
  NTSG_CHECK(it != families_.end());
  if (it->second.aborted) retired_aborted_.insert(root);
  families_.erase(it);
  NTSG_CHECK(retired_.insert(root).second);
}

std::vector<TxName> GcFamilyBook::SortedRetiredRoots() const {
  std::vector<TxName> out(retired_.begin(), retired_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ntsg
