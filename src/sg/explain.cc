#include "sg/explain.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "sg/appropriate.h"
#include "sg/graph.h"

namespace ntsg {

namespace {

/// First inducing action pair for every edge of the two relations, keyed by
/// the edge. "First" is deterministic: conflict pairs are scanned per object
/// (ascending id) with the later operation ascending, precedes pairs in β
/// order — the earliest moment each edge enters SG(β) wins.
struct ProvenanceMaps {
  std::map<SiblingEdge, EdgeProvenance> conflict;
  std::map<SiblingEdge, EdgeProvenance> precedes;
};

ProvenanceMaps BuildProvenance(const SystemType& type, const Trace& beta,
                               ConflictMode mode) {
  ProvenanceMaps maps;
  TraceIndex index(type, beta);

  // Conflict edges: the visible access operations per object, with their
  // positions in the full β (mirrors ConflictRelation's VisibleTo filter —
  // a REQUEST_COMMIT of access T is in visible(β, T0) iff T is visible).
  struct PosOp {
    uint64_t pos;
    TxName tx;
    Value value;
  };
  std::map<ObjectId, std::vector<PosOp>> per_object;
  for (size_t i = 0; i < beta.size(); ++i) {
    const Action& a = beta[i];
    if (a.kind != ActionKind::kRequestCommit || !type.IsAccess(a.tx)) continue;
    if (!index.IsVisible(a.tx, kT0)) continue;
    per_object[type.ObjectOf(a.tx)].push_back(PosOp{i, a.tx, a.value});
  }
  for (const auto& entry : per_object) {
    const std::vector<PosOp>& ops = entry.second;
    for (size_t j = 1; j < ops.size(); ++j) {
      for (size_t i = 0; i < j; ++i) {
        if (!AccessOpsConflict(type, mode, ops[i].tx, ops[i].value, ops[j].tx,
                               ops[j].value)) {
          continue;
        }
        TxName lca = type.Lca(ops[i].tx, ops[j].tx);
        TxName from = type.ChildToward(lca, ops[i].tx);
        TxName to = type.ChildToward(lca, ops[j].tx);
        if (from == to) continue;
        EdgeProvenance why;
        why.from_kind = ActionKind::kRequestCommit;
        why.to_kind = ActionKind::kRequestCommit;
        why.from_actor = ops[i].tx;
        why.to_actor = ops[j].tx;
        why.from_pos = ops[i].pos;
        why.to_pos = ops[j].pos;
        maps.conflict.try_emplace(SiblingEdge{lca, from, to}, why);
      }
    }
  }

  // Precedes edges: mirrors PrecedesRelation, keeping positions and the
  // report kind of the earlier sibling.
  struct Reported {
    TxName child;
    uint64_t pos;
    ActionKind kind;
  };
  std::map<TxName, std::vector<Reported>> reported_children;
  for (size_t i = 0; i < beta.size(); ++i) {
    const Action& a = beta[i];
    if (a.kind == ActionKind::kReportCommit ||
        a.kind == ActionKind::kReportAbort) {
      reported_children[type.parent(a.tx)].push_back(
          Reported{a.tx, i, a.kind});
    } else if (a.kind == ActionKind::kRequestCreate) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      auto it = reported_children.find(p);
      if (it == reported_children.end()) continue;
      for (const Reported& r : it->second) {
        if (r.child == a.tx) continue;
        EdgeProvenance why;
        why.from_kind = r.kind;
        why.to_kind = ActionKind::kRequestCreate;
        why.from_actor = r.child;
        why.to_actor = a.tx;
        why.from_pos = r.pos;
        why.to_pos = i;
        maps.precedes.try_emplace(SiblingEdge{p, r.child, a.tx}, why);
      }
    }
  }
  return maps;
}

/// Rotates the cycle so the smallest transaction name leads — the stable
/// ordering the golden files pin (a cycle has no canonical start otherwise).
std::vector<TxName> CanonicalRotation(const std::vector<TxName>& nodes) {
  if (nodes.empty()) return nodes;
  size_t k = std::min_element(nodes.begin(), nodes.end()) - nodes.begin();
  std::vector<TxName> rot;
  rot.reserve(nodes.size());
  rot.insert(rot.end(), nodes.begin() + k, nodes.end());
  rot.insert(rot.end(), nodes.begin(), nodes.begin() + k);
  return rot;
}

bool WitnessVerified(const std::vector<ExplainedEdge>& cycle) {
  if (cycle.size() < 2) return false;
  std::set<TxName> nodes;
  for (size_t i = 0; i < cycle.size(); ++i) {
    const ExplainedEdge& e = cycle[i];
    if (!e.in_graph || !e.has_provenance) return false;
    if (e.edge.parent != cycle[0].edge.parent) return false;
    if (e.edge.to != cycle[(i + 1) % cycle.size()].edge.from) return false;
    if (!nodes.insert(e.edge.from).second) return false;  // repeated node
  }
  return true;
}

std::string RenderAction(const SystemType& type, ActionKind kind, TxName actor,
                         uint64_t pos) {
  std::string out = ActionKindName(kind);
  out += "(";
  out += type.NameOf(actor);
  out += ")@";
  out += std::to_string(pos);
  return out;
}

}  // namespace

std::vector<ExplainedEdge> ExplainCycle(const SystemType& type,
                                        const Trace& beta, ConflictMode mode,
                                        const std::vector<TxName>& nodes) {
  if (nodes.size() < 2) return {};
  std::vector<TxName> rot = CanonicalRotation(nodes);

  Trace serial = SerialPart(beta);
  SerializationGraph sg = SerializationGraph::Build(type, serial, mode);
  std::set<SiblingEdge> conflict_set(sg.conflict_edges().begin(),
                                     sg.conflict_edges().end());
  std::set<SiblingEdge> precedes_set(sg.precedes_edges().begin(),
                                     sg.precedes_edges().end());
  ProvenanceMaps prov = BuildProvenance(type, beta, mode);

  std::vector<ExplainedEdge> out;
  out.reserve(rot.size());
  for (size_t i = 0; i < rot.size(); ++i) {
    TxName from = rot[i];
    TxName to = rot[(i + 1) % rot.size()];
    ExplainedEdge ex;
    // Every node of a component is a child of the component's parent, so
    // the edge's parent is recoverable from either endpoint.
    ex.edge = SiblingEdge{type.parent(from), from, to};
    if (conflict_set.count(ex.edge) != 0) {
      ex.is_conflict = true;
      ex.in_graph = true;
    } else if (precedes_set.count(ex.edge) != 0) {
      ex.is_conflict = false;
      ex.in_graph = true;
    }
    const auto& pmap = ex.is_conflict ? prov.conflict : prov.precedes;
    auto it = pmap.find(ex.edge);
    if (it != pmap.end()) {
      ex.has_provenance = true;
      ex.why = it->second;
    }
    out.push_back(ex);
  }
  return out;
}

CertificationExplanation ExplainCertification(const SystemType& type,
                                              const Trace& beta,
                                              ConflictMode mode) {
  CertificationExplanation ex;
  CertifierReport report = CertifySeriallyCorrect(type, beta, mode);
  ex.status = report.status;
  ex.appropriate_return_values = report.appropriate_return_values;
  ex.graph_acyclic = report.graph_acyclic;
  ex.conflict_edge_count = report.conflict_edge_count;
  ex.precedes_edge_count = report.precedes_edge_count;

  if (!report.appropriate_return_values) {
    Trace serial = SerialPart(beta);
    Status values = mode == ConflictMode::kReadWrite
                        ? CheckAppropriateReturnValuesRw(type, serial)
                        : CheckAppropriateReturnValuesGeneral(type, serial);
    ex.value_violation = values.message();
  }
  if (report.cycle.has_value()) {
    ex.cycle = ExplainCycle(type, beta, mode, *report.cycle);
    ex.witness_verified = WitnessVerified(ex.cycle);
  }
  return ex;
}

std::string CertificationExplanation::ToString(const SystemType& type) const {
  std::ostringstream out;
  if (certified()) {
    out << "verdict: CERTIFIED\n";
  } else {
    out << "verdict: REJECTED (";
    if (!appropriate_return_values) {
      out << "return values not appropriate";
      if (!graph_acyclic) out << "; ";
    }
    if (!graph_acyclic) out << "serialization graph has a cycle";
    out << ")\n";
  }
  out << "appropriate return values: "
      << (appropriate_return_values ? "yes" : "no") << "\n";
  if (!value_violation.empty()) {
    out << "detail: " << value_violation << "\n";
  }
  out << "serialization graph: " << (graph_acyclic ? "acyclic" : "cyclic")
      << " (" << conflict_edge_count << " conflict edge(s), "
      << precedes_edge_count << " precedes edge(s))\n";
  if (!cycle.empty()) {
    out << "cycle in SG(beta, " << type.NameOf(cycle.front().edge.parent)
        << "): " << cycle.size() << " edge(s)\n";
    size_t present = 0;
    for (const ExplainedEdge& e : cycle) {
      out << "  " << type.NameOf(e.edge.from) << " -> "
          << type.NameOf(e.edge.to) << " ["
          << (e.in_graph ? (e.is_conflict ? "conflict" : "precedes")
                         : "MISSING")
          << "]";
      if (e.has_provenance) {
        out << " induced by "
            << RenderAction(type, e.why.from_kind, e.why.from_actor,
                            e.why.from_pos)
            << " -> "
            << RenderAction(type, e.why.to_kind, e.why.to_actor,
                            e.why.to_pos);
      }
      out << "\n";
      if (e.in_graph) ++present;
    }
    out << "witness verified against SG(beta): "
        << (witness_verified ? "yes" : "NO") << " (" << present << "/"
        << cycle.size() << " edges present)\n";
  }
  return out.str();
}

}  // namespace ntsg
