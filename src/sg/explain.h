#ifndef NTSG_SG_EXPLAIN_H_
#define NTSG_SG_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sg/certifier.h"
#include "sg/conflicts.h"
#include "tx/trace.h"

namespace ntsg {

/// The pair of actions in β that put one edge into SG(β):
///   * a conflict edge is induced by two conflicting REQUEST_COMMIT events
///     in visible(β, T0) — `from_actor`/`to_actor` are the two accesses;
///   * a precedes edge is induced by a report event for the earlier sibling
///     followed by REQUEST_CREATE of the later one.
/// Positions index the full input β (INFORM actions counted), so they match
/// what `ntsg audit` and the incremental certifier's first_rejection_pos
/// report for the same file.
struct EdgeProvenance {
  ActionKind from_kind = ActionKind::kCreate;
  ActionKind to_kind = ActionKind::kCreate;
  TxName from_actor = kInvalidTx;
  TxName to_actor = kInvalidTx;
  uint64_t from_pos = 0;
  uint64_t to_pos = 0;
};

/// One edge of the witness cycle, labeled by its relation and re-verified
/// against the constructed SG(β).
struct ExplainedEdge {
  SiblingEdge edge;
  bool is_conflict = false;   // conflict(β) if true, precedes(β) otherwise
  bool in_graph = false;      // membership re-checked in SG(β)'s edge set
  bool has_provenance = false;
  EdgeProvenance why;
};

/// The certifier's verdict with its evidence: what CertifySeriallyCorrect
/// decides plus, on a cyclic rejection, the actual cycle path with per-edge
/// relation labels and inducing actions. The cycle is canonicalized (rotated
/// so the smallest transaction name leads) so output is stable across runs.
struct CertificationExplanation {
  Status status;  // identical to CertifierReport::status for the same input
  bool appropriate_return_values = false;
  bool graph_acyclic = false;
  std::string value_violation;  // non-empty iff !appropriate_return_values

  size_t conflict_edge_count = 0;
  size_t precedes_edge_count = 0;

  /// Witness cycle: edges chain cycle[i].edge.to == cycle[i+1].edge.from,
  /// closing back to cycle[0].edge.from. Empty iff graph_acyclic.
  std::vector<ExplainedEdge> cycle;

  /// True iff the cycle is non-degenerate, every edge chains, every edge is
  /// present in SG(β) under its claimed relation, and every edge carries an
  /// inducing action pair — the re-check the acceptance criteria demand.
  bool witness_verified = false;

  bool certified() const { return status.ok(); }

  /// Deterministic human-readable rendering (what `ntsg explain` prints and
  /// the golden files pin).
  std::string ToString(const SystemType& type) const;
};

/// Runs the batch certification of Theorem 8/19 and, on a cycle, extracts
/// and verifies the witness. Pure function of (type, β, mode); agrees with
/// CertifySeriallyCorrect on the verdict bit for bit.
CertificationExplanation ExplainCertification(const SystemType& type,
                                              const Trace& beta,
                                              ConflictMode mode);

/// Labels + provenance for an externally discovered cycle (e.g. the
/// IncrementalCertifier's online witness): resolves each consecutive edge of
/// `nodes` (closing back to the front) against SG(β) exactly as
/// ExplainCertification does. Returns the canonicalized edges.
std::vector<ExplainedEdge> ExplainCycle(const SystemType& type,
                                        const Trace& beta, ConflictMode mode,
                                        const std::vector<TxName>& nodes);

}  // namespace ntsg

#endif  // NTSG_SG_EXPLAIN_H_
