#include "sg/graph.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/logging.h"
#include "sg/edge_set.h"

namespace ntsg {

namespace {

/// Flattened adjacency of one component SG(β, parent): nodes sorted by
/// name; successor lists aligned with `nodes`, in first-emission order
/// (conflict edges before precedes edges, duplicates dropped first-come).
/// That is exactly the order the previous std::map-of-maps construction
/// produced, which keeps the cycle FindCycle reports — and hence the golden
/// explain transcripts — stable.
struct Component {
  TxName parent;
  std::vector<TxName> nodes;
  std::vector<std::vector<TxName>> succs;

  size_t IndexOf(TxName n) const {
    size_t i = static_cast<size_t>(
        std::lower_bound(nodes.begin(), nodes.end(), n) - nodes.begin());
    NTSG_CHECK_LT(i, nodes.size());
    NTSG_CHECK_EQ(nodes[i], n);
    return i;
  }
};

std::vector<Component> BuildComponents(
    const std::vector<SiblingEdge>& conflict_edges,
    const std::vector<SiblingEdge>& precedes_edges) {
  // Pass 1: every (parent, endpoint) pair, sorted and deduplicated, yields
  // the component list with sorted node sets (isolated edge targets
  // included).
  std::vector<std::pair<TxName, TxName>> members;
  for (const auto* edges : {&conflict_edges, &precedes_edges}) {
    for (const SiblingEdge& e : *edges) {
      members.emplace_back(e.parent, e.from);
      members.emplace_back(e.parent, e.to);
    }
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  std::vector<Component> comps;
  for (const auto& [parent, node] : members) {
    if (comps.empty() || comps.back().parent != parent) {
      comps.push_back(Component{parent, {}, {}});
    }
    comps.back().nodes.push_back(node);
  }
  for (Component& c : comps) c.succs.resize(c.nodes.size());

  // Pass 2: fill successor lists, first occurrence wins across the conflict
  // edges (in input order) and then the precedes edges.
  SiblingEdgeSet seen;
  auto comp_of = [&comps](TxName parent) -> Component& {
    size_t lo = 0, hi = comps.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (comps[mid].parent < parent) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return comps[lo];
  };
  for (const auto* edges : {&conflict_edges, &precedes_edges}) {
    for (const SiblingEdge& e : *edges) {
      if (!seen.Insert(e)) continue;
      Component& c = comp_of(e.parent);
      c.succs[c.IndexOf(e.from)].push_back(e.to);
    }
  }
  return comps;
}

}  // namespace

SerializationGraph SerializationGraph::Build(const SystemType& type,
                                             const Trace& beta,
                                             ConflictMode mode,
                                             size_t num_threads) {
  return FromEdges(ConflictRelation(type, beta, mode, num_threads),
                   PrecedesRelation(type, beta));
}

SerializationGraph SerializationGraph::FromEdges(
    std::vector<SiblingEdge> conflict_edges,
    std::vector<SiblingEdge> precedes_edges) {
  SerializationGraph g;
  g.conflict_edges_ = std::move(conflict_edges);
  g.precedes_edges_ = std::move(precedes_edges);
  return g;
}

std::vector<TxName> SerializationGraph::Parents() const {
  std::vector<TxName> parents;
  for (const auto* edges : {&conflict_edges_, &precedes_edges_}) {
    for (const SiblingEdge& e : *edges) parents.push_back(e.parent);
  }
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

std::optional<std::vector<TxName>> SerializationGraph::FindCycle() const {
  for (const Component& comp : BuildComponents(conflict_edges_,
                                               precedes_edges_)) {
    // Iterative DFS with colors; records the stack to extract the cycle.
    std::vector<uint8_t> color(comp.nodes.size(), 0);  // 0 white, 1 gray,
                                                       // 2 black.
    for (size_t start = 0; start < comp.nodes.size(); ++start) {
      if (color[start] != 0) continue;
      std::vector<std::pair<size_t, size_t>> stack;  // (node, next succ idx).
      stack.push_back({start, 0});
      color[start] = 1;
      while (!stack.empty()) {
        auto& [node, idx] = stack.back();
        const std::vector<TxName>& succ = comp.succs[node];
        if (idx >= succ.size()) {
          color[node] = 2;
          stack.pop_back();
          continue;
        }
        size_t next = comp.IndexOf(succ[idx++]);
        if (color[next] == 1) {
          // Found a back edge; the cycle is the stack suffix from `next`.
          std::vector<TxName> cycle;
          bool in_cycle = false;
          for (const auto& frame : stack) {
            if (frame.first == next) in_cycle = true;
            if (in_cycle) cycle.push_back(comp.nodes[frame.first]);
          }
          return cycle;
        }
        if (color[next] == 0) {
          color[next] = 1;
          stack.push_back({next, 0});
        }
      }
    }
  }
  return std::nullopt;
}

std::map<TxName, std::vector<TxName>> SerializationGraph::TopologicalOrders()
    const {
  NTSG_CHECK(IsAcyclic()) << "topological order requested for cyclic graph";
  std::map<TxName, std::vector<TxName>> result;
  for (const Component& comp : BuildComponents(conflict_edges_,
                                               precedes_edges_)) {
    // Kahn's algorithm; the min-heap frontier releases the smallest name
    // first, matching the sorted-set frontier it replaces.
    std::vector<size_t> indegree(comp.nodes.size(), 0);
    for (const std::vector<TxName>& succ : comp.succs) {
      for (TxName s : succ) indegree[comp.IndexOf(s)]++;
    }
    std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>>
        frontier;
    for (size_t n = 0; n < indegree.size(); ++n) {
      if (indegree[n] == 0) frontier.push(n);
    }
    std::vector<TxName> order;
    while (!frontier.empty()) {
      size_t n = frontier.top();
      frontier.pop();
      order.push_back(comp.nodes[n]);
      for (TxName s : comp.succs[n]) {
        size_t si = comp.IndexOf(s);
        if (--indegree[si] == 0) frontier.push(si);
      }
    }
    NTSG_CHECK_EQ(order.size(), comp.nodes.size());
    result[comp.parent] = std::move(order);
  }
  return result;
}

std::string SerializationGraph::ToDot(const SystemType& type) const {
  std::string out = "digraph SG {\n";
  auto parents = Parents();
  int cluster = 0;
  for (TxName p : parents) {
    out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
    out += "    label=\"SG(beta, " + type.NameOf(p) + ")\";\n";
    for (const SiblingEdge& e : conflict_edges_) {
      if (e.parent != p) continue;
      out += "    \"" + type.NameOf(e.from) + "\" -> \"" + type.NameOf(e.to) +
             "\" [color=black];\n";
    }
    for (const SiblingEdge& e : precedes_edges_) {
      if (e.parent != p) continue;
      out += "    \"" + type.NameOf(e.from) + "\" -> \"" + type.NameOf(e.to) +
             "\" [style=dashed, color=blue];\n";
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ntsg
