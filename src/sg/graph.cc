#include "sg/graph.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace ntsg {

SerializationGraph SerializationGraph::Build(const SystemType& type,
                                             const Trace& beta,
                                             ConflictMode mode) {
  return FromEdges(ConflictRelation(type, beta, mode),
                   PrecedesRelation(type, beta));
}

SerializationGraph SerializationGraph::FromEdges(
    std::vector<SiblingEdge> conflict_edges,
    std::vector<SiblingEdge> precedes_edges) {
  SerializationGraph g;
  g.conflict_edges_ = std::move(conflict_edges);
  g.precedes_edges_ = std::move(precedes_edges);
  return g;
}

std::map<TxName, std::map<TxName, std::vector<TxName>>>
SerializationGraph::BuildAdjacency() const {
  std::map<TxName, std::map<TxName, std::vector<TxName>>> adj;
  std::set<std::pair<std::pair<TxName, TxName>, TxName>> seen;
  for (const auto* edges : {&conflict_edges_, &precedes_edges_}) {
    for (const SiblingEdge& e : *edges) {
      if (!seen.insert({{e.parent, e.from}, e.to}).second) continue;
      adj[e.parent][e.from].push_back(e.to);
      adj[e.parent].try_emplace(e.to);  // Ensure node exists.
    }
  }
  return adj;
}

std::vector<TxName> SerializationGraph::Parents() const {
  std::set<TxName> parents;
  for (const auto* edges : {&conflict_edges_, &precedes_edges_}) {
    for (const SiblingEdge& e : *edges) parents.insert(e.parent);
  }
  return std::vector<TxName>(parents.begin(), parents.end());
}

std::optional<std::vector<TxName>> SerializationGraph::FindCycle() const {
  auto adj = BuildAdjacency();
  for (const auto& [parent, nodes] : adj) {
    (void)parent;
    // Iterative DFS with colors; records the stack to extract the cycle.
    std::map<TxName, int> color;  // 0 white, 1 gray, 2 black.
    for (const auto& [start, succs] : nodes) {
      (void)succs;
      if (color[start] != 0) continue;
      std::vector<std::pair<TxName, size_t>> stack;  // (node, next succ idx).
      stack.push_back({start, 0});
      color[start] = 1;
      while (!stack.empty()) {
        auto& [node, idx] = stack.back();
        const std::vector<TxName>& succ = nodes.at(node);
        if (idx >= succ.size()) {
          color[node] = 2;
          stack.pop_back();
          continue;
        }
        TxName next = succ[idx++];
        int c = color[next];
        if (c == 1) {
          // Found a back edge; the cycle is the stack suffix from `next`.
          std::vector<TxName> cycle;
          bool in_cycle = false;
          for (const auto& [n, i] : stack) {
            (void)i;
            if (n == next) in_cycle = true;
            if (in_cycle) cycle.push_back(n);
          }
          return cycle;
        }
        if (c == 0) {
          color[next] = 1;
          stack.push_back({next, 0});
        }
      }
    }
  }
  return std::nullopt;
}

std::map<TxName, std::vector<TxName>> SerializationGraph::TopologicalOrders()
    const {
  NTSG_CHECK(IsAcyclic()) << "topological order requested for cyclic graph";
  auto adj = BuildAdjacency();
  std::map<TxName, std::vector<TxName>> result;
  for (const auto& [parent, nodes] : adj) {
    // Kahn's algorithm with a deterministic (sorted) frontier.
    std::map<TxName, int> indegree;
    for (const auto& [n, succs] : nodes) {
      indegree.try_emplace(n, 0);
      for (TxName s : succs) indegree[s]++;
    }
    std::set<TxName> frontier;
    for (const auto& [n, d] : indegree) {
      if (d == 0) frontier.insert(n);
    }
    std::vector<TxName> order;
    while (!frontier.empty()) {
      TxName n = *frontier.begin();
      frontier.erase(frontier.begin());
      order.push_back(n);
      for (TxName s : nodes.at(n)) {
        if (--indegree[s] == 0) frontier.insert(s);
      }
    }
    NTSG_CHECK_EQ(order.size(), nodes.size());
    result[parent] = std::move(order);
  }
  return result;
}

std::string SerializationGraph::ToDot(const SystemType& type) const {
  std::string out = "digraph SG {\n";
  auto parents = Parents();
  int cluster = 0;
  for (TxName p : parents) {
    out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
    out += "    label=\"SG(beta, " + type.NameOf(p) + ")\";\n";
    for (const SiblingEdge& e : conflict_edges_) {
      if (e.parent != p) continue;
      out += "    \"" + type.NameOf(e.from) + "\" -> \"" + type.NameOf(e.to) +
             "\" [color=black];\n";
    }
    for (const SiblingEdge& e : precedes_edges_) {
      if (e.parent != p) continue;
      out += "    \"" + type.NameOf(e.from) + "\" -> \"" + type.NameOf(e.to) +
             "\" [style=dashed, color=blue];\n";
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ntsg
