#include "sg/conflict_frontier.h"

#include "common/logging.h"

namespace ntsg {

namespace {

uint64_t HashOpRecord(const OpRecord& rec) {
  uint64_t h = HashMix64(static_cast<uint64_t>(rec.op));
  h = HashMix64(h ^ static_cast<uint64_t>(rec.arg));
  h = HashMix64(h ^ (rec.ret.is_ok() ? 0x517cc1b727220a95ull
                                     : static_cast<uint64_t>(rec.ret.AsInt())));
  // The all-ones key is the map's empty sentinel; fold it away.
  return h & 0x7FFFFFFFFFFFFFFFull;
}

}  // namespace

ObjectConflictFrontier::ObjectConflictFrontier(const SystemType& type,
                                               ConflictMode mode,
                                               ObjectId object)
    : type_(&type),
      mode_(mode),
      object_(object),
      otype_(type.object_type(object)) {
  NTSG_CHECK(mode != ConflictMode::kReadWrite ||
             otype_ == ObjectType::kReadWrite)
      << "kReadWrite conflict mode requires read/write objects";
}

bool ObjectConflictFrontier::ClassesConflict(const OpRecord& a,
                                             const OpRecord& b) const {
  if (mode_ == ConflictMode::kReadWrite) return RwAccessesConflict(a.op, b.op);
  return OperationsConflict(otype_, a, b);
}

uint32_t ObjectConflictFrontier::InternClass(const OpRecord& rec) {
  uint64_t h = HashOpRecord(rec);
  uint32_t* head = class_table_.FindOrInsert(h, kNoEntry);
  for (uint32_t c = *head; c != kNoEntry; c = classes_[c].chain_next) {
    const OpRecord& r = classes_[c].rec;
    if (r.op == rec.op && r.arg == rec.arg && r.ret == rec.ret) return c;
  }
  // New class: compute its conflict adjacency against every class seen so
  // far (self included) exactly once; these are the only OperationsConflict
  // evaluations the frontier ever performs.
  uint32_t id = static_cast<uint32_t>(classes_.size());
  classes_.push_back(ClassDef{rec, *head, {}});
  *head = id;
  ClassDef& me = classes_[id];
  for (uint32_t d = 0; d <= id; ++d) {
    ++stats_.class_pair_evals;
    if (!ClassesConflict(me.rec, classes_[d].rec)) continue;
    me.conflicts.push_back(d);
    if (d != id) classes_[d].conflicts.push_back(id);
  }
  return id;
}

void ObjectConflictFrontier::Emit(TxName parent, TxName from, TxName to,
                                  std::vector<SiblingEdge>* out) {
  ++stats_.hits;
  SiblingEdge e{parent, from, to};
  if (dedup_.Insert(e)) {
    ++stats_.edges_emitted;
    out->push_back(e);
  }
}

void ObjectConflictFrontier::AddOp(TxName access, const Value& v, uint64_t pos,
                                   std::vector<SiblingEdge>* new_edges) {
  const SystemType& type = *type_;
  NTSG_CHECK(type.IsAccess(access));
  const AccessSpec& spec = type.access(access);
  NTSG_CHECK_EQ(spec.object, object_);

  const bool in_order = !any_ops_ || pos > max_pos_;
  // In kReadWrite mode the conflict verdict ignores arguments and values, so
  // normalizing the class key to (op) alone keeps the table at two classes.
  OpRecord rec = mode_ == ConflictMode::kReadWrite
                     ? OpRecord{spec.op, 0, Value::Ok()}
                     : OpRecord{spec.op, spec.arg, v};
  const uint32_t cu = InternClass(rec);

  // Walk the ancestor chain; `child` is the child of `node` toward the
  // access. At the lca with any prior conflicting operation the two
  // to-children differ and an edge is emitted; above it they coincide and
  // the child-equality test skips the pair, exactly as from != to does in
  // the pair scan.
  TxName child = access;
  for (TxName node = type.parent(access);; child = node,
              node = type.parent(node)) {
    // Probe phase: edges against earlier (and, out of order, later)
    // operations of conflicting classes. Runs before this operation is
    // recorded so a self-conflicting class never pairs the op with itself.
    for (uint32_t d : classes_[cu].conflicts) {
      uint32_t list_idx =
          node_class_lists_.Find((uint64_t{node} << 32) | d);
      if (list_idx == FlatIndexMap::kNotFound) {
        ++stats_.misses;
        continue;
      }
      ClassList& list = lists_[list_idx];
      uint32_t* slot_idx = list.child_slots.FindOrInsert(
          child, static_cast<uint32_t>(list.slots.size()));
      if (*slot_idx == list.slots.size()) list.slots.push_back(ChildSlot{});
      ChildSlot& cs = list.slots[*slot_idx];
      if (in_order) {
        // Every existing entry has min_pos < pos; consume the unseen suffix
        // and advance the watermark so no (entry, observer) pair is scanned
        // twice across this child's operations.
        for (size_t i = cs.watermark; i < list.entries.size(); ++i) {
          const ChildStat& e = list.entries[i];
          if (e.child != child) Emit(node, e.child, child, new_edges);
        }
        cs.watermark = static_cast<uint32_t>(list.entries.size());
      } else {
        // Deep reveal: the position falls inside history. Rescan in full,
        // both directions; the dedup set absorbs re-emission. Watermarks
        // are left alone — they only ever describe in-order consumption.
        for (const ChildStat& e : list.entries) {
          if (e.child == child) continue;
          if (e.min_pos < pos) Emit(node, e.child, child, new_edges);
          if (e.max_pos > pos) Emit(node, child, e.child, new_edges);
        }
      }
    }

    // Record phase: fold this operation into entries(node, cu).
    uint32_t* list_slot = node_class_lists_.FindOrInsert(
        (uint64_t{node} << 32) | cu, static_cast<uint32_t>(lists_.size()));
    if (*list_slot == lists_.size()) lists_.emplace_back();
    ClassList& mine = lists_[*list_slot];
    uint32_t* slot_idx = mine.child_slots.FindOrInsert(
        child, static_cast<uint32_t>(mine.slots.size()));
    if (*slot_idx == mine.slots.size()) mine.slots.push_back(ChildSlot{});
    ChildSlot& cs = mine.slots[*slot_idx];
    if (cs.entry == kNoEntry) {
      cs.entry = static_cast<uint32_t>(mine.entries.size());
      mine.entries.push_back(ChildStat{child, pos, pos});
    } else {
      ChildStat& e = mine.entries[cs.entry];
      if (pos < e.min_pos) e.min_pos = pos;
      if (pos > e.max_pos) e.max_pos = pos;
    }

    if (node == kT0) break;
  }

  if (!any_ops_ || pos > max_pos_) max_pos_ = pos;
  any_ops_ = true;
}

}  // namespace ntsg
