#include "sg/conflict_frontier.h"

#include <iterator>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace ntsg {

namespace {

uint64_t HashOpRecord(const OpRecord& rec) {
  uint64_t h = HashMix64(static_cast<uint64_t>(rec.op));
  h = HashMix64(h ^ static_cast<uint64_t>(rec.arg));
  h = HashMix64(h ^ (rec.ret.is_ok() ? 0x517cc1b727220a95ull
                                     : static_cast<uint64_t>(rec.ret.AsInt())));
  // The all-ones key is the map's empty sentinel; fold it away.
  return h & 0x7FFFFFFFFFFFFFFFull;
}

}  // namespace

ObjectConflictFrontier::ObjectConflictFrontier(const SystemType& type,
                                               ConflictMode mode,
                                               ObjectId object)
    : type_(&type),
      mode_(mode),
      object_(object),
      otype_(type.object_type(object)) {
  NTSG_CHECK(mode != ConflictMode::kReadWrite ||
             otype_ == ObjectType::kReadWrite)
      << "kReadWrite conflict mode requires read/write objects";
}

bool ObjectConflictFrontier::ClassesConflict(const OpRecord& a,
                                             const OpRecord& b) const {
  if (mode_ == ConflictMode::kReadWrite) return RwAccessesConflict(a.op, b.op);
  return OperationsConflict(otype_, a, b);
}

uint32_t ObjectConflictFrontier::InternClass(const OpRecord& rec) {
  uint64_t h = HashOpRecord(rec);
  uint32_t* head = class_table_.FindOrInsert(h, kNoEntry);
  for (uint32_t c = *head; c != kNoEntry; c = classes_[c].chain_next) {
    const OpRecord& r = classes_[c].rec;
    if (r.op == rec.op && r.arg == rec.arg && r.ret == rec.ret) return c;
  }
  // New class: compute its conflict adjacency against every class seen so
  // far (self included) exactly once; these are the only OperationsConflict
  // evaluations the frontier ever performs.
  uint32_t id = static_cast<uint32_t>(classes_.size());
  classes_.push_back(ClassDef{rec, *head, {}});
  *head = id;
  ClassDef& me = classes_[id];
  for (uint32_t d = 0; d <= id; ++d) {
    ++stats_.class_pair_evals;
    if (!ClassesConflict(me.rec, classes_[d].rec)) continue;
    me.conflicts.push_back(d);
    if (d != id) classes_[d].conflicts.push_back(id);
  }
  return id;
}

void ObjectConflictFrontier::Emit(TxName parent, TxName from, TxName to,
                                  uint32_t from_class, uint32_t to_class,
                                  std::vector<SiblingEdge>* out) {
  ++stats_.hits;
  SiblingEdge e{parent, from, to};
  if (labels_enabled_) {
    // Classify this inducing pair by the observer/mutator split of its two
    // operation classes. Two pure observers never conflict under either
    // mode (reads commute; backward commutativity of two observers holds
    // because neither moves the state), so the fourth combination cannot
    // occur; map it to ww defensively.
    const bool from_mod = IsModifyingOp(classes_[from_class].rec.op);
    const bool to_mod = IsModifyingOp(classes_[to_class].rec.op);
    DepKind kind = !from_mod && to_mod ? DepKind::kReadWrite
                   : from_mod && !to_mod ? DepKind::kWriteRead
                                         : DepKind::kWriteWrite;
    label_bits_[e] |= static_cast<uint8_t>(kind);
  }
  if (dedup_.Insert(e)) {
    ++stats_.edges_emitted;
    out->push_back(e);
  }
}

void ObjectConflictFrontier::AddOp(TxName access, const Value& v, uint64_t pos,
                                   std::vector<SiblingEdge>* new_edges) {
  const SystemType& type = *type_;
  NTSG_CHECK(type.IsAccess(access));
  const AccessSpec& spec = type.access(access);
  NTSG_CHECK_EQ(spec.object, object_);

  const bool in_order = !any_ops_ || pos > max_pos_;
  // In kReadWrite mode the conflict verdict ignores arguments and values, so
  // normalizing the class key to (op) alone keeps the table at two classes.
  OpRecord rec = mode_ == ConflictMode::kReadWrite
                     ? OpRecord{spec.op, 0, Value::Ok()}
                     : OpRecord{spec.op, spec.arg, v};
  const uint32_t cu = InternClass(rec);

  // Walk the ancestor chain; `child` is the child of `node` toward the
  // access. At the lca with any prior conflicting operation the two
  // to-children differ and an edge is emitted; above it they coincide and
  // the child-equality test skips the pair, exactly as from != to does in
  // the pair scan.
  TxName child = access;
  for (TxName node = type.parent(access);; child = node,
              node = type.parent(node)) {
    // Probe phase: edges against earlier (and, out of order, later)
    // operations of conflicting classes. Runs before this operation is
    // recorded so a self-conflicting class never pairs the op with itself.
    for (uint32_t d : classes_[cu].conflicts) {
      uint32_t list_idx =
          node_class_lists_.Find((uint64_t{node} << 32) | d);
      if (list_idx == FlatIndexMap::kNotFound) {
        ++stats_.misses;
        continue;
      }
      ClassList& list = lists_[list_idx];
      uint32_t* slot_idx = list.child_slots.FindOrInsert(
          child, static_cast<uint32_t>(list.slots.size()));
      if (*slot_idx == list.slots.size()) list.slots.push_back(ChildSlot{});
      ChildSlot& cs = list.slots[*slot_idx];
      if (in_order) {
        // Every existing entry has min_pos < pos; consume the unseen suffix
        // and advance the watermark so no (entry, observer) pair is scanned
        // twice across this child's operations.
        for (size_t i = cs.watermark; i < list.entries.size(); ++i) {
          const ChildStat& e = list.entries[i];
          if (e.child != child) Emit(node, e.child, child, d, cu, new_edges);
        }
        cs.watermark = static_cast<uint32_t>(list.entries.size());
      } else {
        // Deep reveal: the position falls inside history. Rescan in full,
        // both directions; the dedup set absorbs re-emission. Watermarks
        // are left alone — they only ever describe in-order consumption.
        for (const ChildStat& e : list.entries) {
          if (e.child == child) continue;
          if (e.min_pos < pos) Emit(node, e.child, child, d, cu, new_edges);
          if (e.max_pos > pos) Emit(node, child, e.child, cu, d, new_edges);
        }
      }
    }

    // Record phase: fold this operation into entries(node, cu). A fresh
    // list recycles a Retire-freed slot before growing the arena, so live
    // indices stay dense on a GC'd stream. A prospective index can never
    // collide with an existing mapping: freed indices have no keys pointing
    // at them and lists_.size() is out of range.
    uint32_t prospective = free_lists_.empty()
                               ? static_cast<uint32_t>(lists_.size())
                               : free_lists_.back();
    uint32_t* list_slot = node_class_lists_.FindOrInsert(
        (uint64_t{node} << 32) | cu, prospective);
    if (*list_slot == prospective) {
      if (free_lists_.empty()) {
        lists_.emplace_back();
      } else {
        free_lists_.pop_back();
      }
    }
    ClassList& mine = lists_[*list_slot];
    uint32_t* slot_idx = mine.child_slots.FindOrInsert(
        child, static_cast<uint32_t>(mine.slots.size()));
    if (*slot_idx == mine.slots.size()) mine.slots.push_back(ChildSlot{});
    ChildSlot& cs = mine.slots[*slot_idx];
    if (cs.entry == kNoEntry) {
      cs.entry = static_cast<uint32_t>(mine.entries.size());
      mine.entries.push_back(ChildStat{child, pos, pos});
    } else {
      ChildStat& e = mine.entries[cs.entry];
      if (pos < e.min_pos) e.min_pos = pos;
      if (pos > e.max_pos) e.max_pos = pos;
    }

    if (node == kT0) break;
  }

  if (!any_ops_ || pos > max_pos_) max_pos_ = pos;
  any_ops_ = true;
}

void ObjectConflictFrontier::Retire(
    const std::unordered_set<TxName>& retired_roots) {
  const SystemType& type = *type_;
  auto family_retired = [&](TxName t) {
    if (t == kT0) return false;
    return retired_roots.count(type.AncestorAtDepth(t, 1)) != 0;
  };

  // Pass 1 over the key table: collect the lists to drop or filter (the
  // table cannot be mutated mid-walk). Interior nodes of a retired family
  // lose their whole (node, class) list; T0-level lists only lose the
  // entries of retired children.
  std::vector<std::pair<uint64_t, uint32_t>> drop, filter;
  node_class_lists_.ForEach([&](uint64_t key, uint32_t idx) {
    TxName node = static_cast<TxName>(key >> 32);
    if (node == kT0) {
      filter.emplace_back(key, idx);
    } else if (family_retired(node)) {
      drop.emplace_back(key, idx);
    }
  });

  for (const auto& [key, idx] : drop) {
    lists_[idx] = ClassList{};
    free_lists_.push_back(idx);
    NTSG_CHECK(node_class_lists_.Erase(key));
  }

  for (const auto& [key, idx] : filter) {
    ClassList& list = lists_[idx];
    // removed_prefix[i] = retired entries among entries[0, i): the watermark
    // remap. Watermarks are prefix lengths of `entries`, so once retired
    // entries vanish, every consumed-prefix count shifts down by the number
    // removed below it.
    std::vector<uint32_t> removed_prefix(list.entries.size() + 1, 0);
    bool any_removed = false;
    for (size_t i = 0; i < list.entries.size(); ++i) {
      bool gone = retired_roots.count(list.entries[i].child) != 0;
      removed_prefix[i + 1] = removed_prefix[i] + (gone ? 1 : 0);
      any_removed |= gone;
    }
    if (!any_removed) continue;

    std::vector<ChildStat> kept;
    kept.reserve(list.entries.size() - removed_prefix.back());
    for (const ChildStat& e : list.entries) {
      if (retired_roots.count(e.child) == 0) kept.push_back(e);
    }

    if (kept.empty()) {
      // Nothing left to observe either way: surviving observers' watermarks
      // reset with the empty entry list when the slot is recreated.
      lists_[idx] = ClassList{};
      free_lists_.push_back(idx);
      NTSG_CHECK(node_class_lists_.Erase(key));
      continue;
    }

    // Rebuild the per-child slots keeping only live children, remapping
    // their entry indices and watermarks past the removed prefix.
    ClassList rebuilt;
    rebuilt.entries = std::move(kept);
    list.child_slots.ForEach([&](uint64_t child_key, uint32_t slot_idx) {
      TxName child = static_cast<TxName>(child_key);
      if (retired_roots.count(child) != 0) return;
      const ChildSlot& old_slot = list.slots[slot_idx];
      ChildSlot remapped;
      remapped.entry = old_slot.entry == kNoEntry
                           ? kNoEntry
                           : old_slot.entry - removed_prefix[old_slot.entry];
      remapped.watermark = old_slot.watermark -
                           removed_prefix[old_slot.watermark];
      uint32_t* s = rebuilt.child_slots.FindOrInsert(
          child, static_cast<uint32_t>(rebuilt.slots.size()));
      NTSG_CHECK_EQ(*s, rebuilt.slots.size());
      rebuilt.slots.push_back(remapped);
    });
    lists_[idx] = std::move(rebuilt);
  }

  // Memoized edge verdicts naming retired families would otherwise pin their
  // arena entries forever; the closure invariant means an edge touches a
  // retired family iff its T0-projected endpoint does.
  auto retired_edge = [&](const SiblingEdge& e) {
    if (e.parent == kT0) {
      return retired_roots.count(e.from) != 0 ||
             retired_roots.count(e.to) != 0;
    }
    return family_retired(e.parent);
  };
  dedup_.EraseIf(retired_edge);
  for (auto it = label_bits_.begin(); it != label_bits_.end();) {
    it = retired_edge(it->first) ? label_bits_.erase(it) : std::next(it);
  }
}

}  // namespace ntsg
