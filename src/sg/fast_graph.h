#ifndef NTSG_SG_FAST_GRAPH_H_
#define NTSG_SG_FAST_GRAPH_H_

#include <map>
#include <optional>
#include <vector>

#include "sg/conflicts.h"

namespace ntsg {

/// Result of the timeline-encoded acyclicity check.
struct FastSgReport {
  bool acyclic = true;
  size_t conflict_edge_count = 0;
  size_t timeline_edge_count = 0;
  size_t timeline_node_count = 0;
};

/// Acyclicity of SG(β) without materializing precedes(β).
///
/// precedes(β) relates (T, T') whenever a report for T occurs before
/// REQUEST_CREATE(T') — a relation with Θ(n²) pairs once siblings complete
/// in sequence, which dominates SerializationGraph::Build at scale (see
/// bench_sg_construction). But for *cycle detection* its transitive
/// structure can be threaded through per-parent "timeline" nodes:
///
///   * scanning β, each parent accumulates reported children; when a new
///     child is requested after at least one report, an epoch node v is
///     sealed with edges  reported-child -> v  and  v_prev -> v;
///   * each child requested while an epoch is open gets an edge  v -> child.
///
/// Then report(T) precedes request(T') iff a timeline path T ->* T' exists,
/// so the union of conflict edges and timeline edges has a cycle iff
/// conflict(β) ∪ precedes(β) does. Total timeline edges: O(n).
///
/// Used where only the verdict matters (monitoring, large audits); the full
/// SerializationGraph remains the source of topological orders for the
/// witness construction.
FastSgReport FastSgAcyclicity(const SystemType& type, const Trace& beta,
                              ConflictMode mode);

/// Per-parent sibling orders consistent with conflict(β) ∪ precedes(β),
/// derived from the timeline-encoded graph: a deterministic topological
/// sort of the combined graph, projected onto each parent's children. Any
/// projection of a topological order is consistent with every edge inside
/// the component, so the result is valid input for BuildAndCheckWitness —
/// at O(n) timeline cost instead of the Θ(n²) materialized relation.
///
/// Returns nullopt when the graph is cyclic (no order exists).
std::optional<std::map<TxName, std::vector<TxName>>> FastTopologicalOrders(
    const SystemType& type, const Trace& beta, ConflictMode mode);

}  // namespace ntsg

#endif  // NTSG_SG_FAST_GRAPH_H_
