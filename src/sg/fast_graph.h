#ifndef NTSG_SG_FAST_GRAPH_H_
#define NTSG_SG_FAST_GRAPH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sg/conflicts.h"

namespace ntsg {

/// Result of the timeline-encoded acyclicity check.
struct FastSgReport {
  bool acyclic = true;
  size_t conflict_edge_count = 0;
  size_t timeline_edge_count = 0;
  size_t timeline_node_count = 0;
};

/// Acyclicity of SG(β) without materializing precedes(β).
///
/// precedes(β) relates (T, T') whenever a report for T occurs before
/// REQUEST_CREATE(T') — a relation with Θ(n²) pairs once siblings complete
/// in sequence, which dominates SerializationGraph::Build at scale (see
/// bench_sg_construction). But for *cycle detection* its transitive
/// structure can be threaded through per-parent "timeline" nodes:
///
///   * scanning β, each parent accumulates reported children; when a new
///     child is requested after at least one report, an epoch node v is
///     sealed with edges  reported-child -> v  and  v_prev -> v;
///   * each child requested while an epoch is open gets an edge  v -> child.
///
/// Then report(T) precedes request(T') iff a timeline path T ->* T' exists,
/// so the union of conflict edges and timeline edges has a cycle iff
/// conflict(β) ∪ precedes(β) does. Total timeline edges: O(n).
///
/// Used where only the verdict matters (monitoring, large audits); the full
/// SerializationGraph remains the source of topological orders for the
/// witness construction.
FastSgReport FastSgAcyclicity(const SystemType& type, const Trace& beta,
                              ConflictMode mode);

/// Per-parent sibling orders consistent with conflict(β) ∪ precedes(β),
/// derived from the timeline-encoded graph: a deterministic topological
/// sort of the combined graph, projected onto each parent's children. Any
/// projection of a topological order is consistent with every edge inside
/// the component, so the result is valid input for BuildAndCheckWitness —
/// at O(n) timeline cost instead of the Θ(n²) materialized relation.
///
/// Returns nullopt when the graph is cyclic (no order exists).
std::optional<std::map<TxName, std::vector<TxName>>> FastTopologicalOrders(
    const SystemType& type, const Trace& beta, ConflictMode mode);

/// Directed graph with Pearce–Kelly incremental topological-order
/// maintenance: edges are added one at a time, a cycle-closing edge is
/// rejected *before* any state changes, and the amortized reordering work is
/// bounded by the "affected region" between the endpoints' current order
/// positions rather than the whole graph.
///
/// This is the cycle-test engine behind the online certifier and the SGT
/// coordinator. SG(β) is a disjoint union of per-parent sibling components;
/// since every edge stays inside one component, keeping them in a single
/// shared order loses nothing — the union is acyclic iff each component is.
///
/// Edge removal (needed when an SGT abort expunges supporting operations)
/// keeps the current order untouched: any topological order of a graph
/// remains valid for every subgraph.
///
/// Node removal (the GC retirement path) reclaims the node's slab slot for
/// reuse and erases every incident edge; combined with CompactOrders it
/// keeps both the slab and the order-key space bounded by the live node
/// count on an unbounded stream.
class IncrementalTopoGraph {
 public:
  /// Adds the edge from -> to. Returns false iff the edge would close a
  /// cycle (including from == to); the graph is unchanged in that case.
  /// Adding an edge that is already present is a no-op returning true.
  bool AddEdge(TxName from, TxName to);

  /// One staged edge of a batched insertion.
  struct BatchEdge {
    TxName from;
    TxName to;
  };

  /// Outcome of AddEdgesBatch.
  struct BatchAddResult {
    /// True iff the whole batch committed. False leaves the graph
    /// byte-identical to before the call — the caller replays per-edge to
    /// recover exactly which edge a sequential insertion would reject.
    bool ok = false;
    /// Edges not already present (inserted when ok; in-batch and live
    /// duplicates are skipped, as per-edge insertion would no-op them).
    size_t fresh_edges = 0;
    /// Nodes whose order keys were reassigned (0 on the forward-only path).
    size_t region_nodes = 0;
  };

  /// Batched admission: attempts to add every edge with ONE affected-region
  /// recompute instead of one Pearce–Kelly pass per edge. All-or-nothing:
  ///
  ///   * duplicates (against the live graph and within the batch) are
  ///     dropped first, exactly as sequential insertion would no-op them;
  ///   * if no surviving edge violates the maintained order (ord[to] >=
  ///     ord[from] for all), the batch commits with zero traversal;
  ///   * otherwise the affected region is the full ord interval
  ///     [min ord(to), max ord(from)] over the violating edges — every cycle
  ///     the batch could close lies inside it, because committed and
  ///     forward staged edges ascend in ord — and one deterministic Kahn
  ///     pass over the induced subgraph (old + staged edges) either reorders
  ///     the region within its own ord pool or proves a cycle;
  ///   * on a cycle (or a from == to edge) nothing is modified and ok is
  ///     false.
  ///
  /// On success the committed state is byte-identical to what sequential
  /// AddEdge calls in batch order would have produced everywhere it is
  /// observable: node slots are created in first-appearance order and
  /// adjacency lists append in batch order, so FindPath and InNeighbors see
  /// the same graph (only the unobservable ord keys may differ).
  BatchAddResult AddEdgesBatch(const std::vector<BatchEdge>& edges);

  bool HasEdge(TxName from, TxName to) const;

  /// Removes the edge if present (no-op otherwise). Never invalidates the
  /// maintained order.
  void RemoveEdge(TxName from, TxName to);

  /// Removes the node and every incident edge (no-op if never seen). The
  /// slab slot is recycled for the next new node. Neighbor adjacency lists
  /// are erased order-preservingly so FindPath's deterministic successor
  /// exploration over the survivors is unchanged. Never invalidates the
  /// maintained order (a subgraph keeps every topological order valid).
  void RemoveNode(TxName t);

  /// In-neighbors of `t` (empty if never seen), in edge-insertion order.
  /// The GC's predecessor-closure primitive.
  std::vector<TxName> InNeighbors(TxName t) const;

  /// Reassigns order keys to 0..node_count()-1 preserving the current
  /// relative order, and rewinds the key allocator. Called after a
  /// retirement wave so the key space cannot creep toward overflow on an
  /// unbounded stream.
  void CompactOrders();

  /// Current position of `t` in the maintained topological order; nullopt
  /// for nodes the graph has never seen. For any present edge u -> v,
  /// *OrdOf(u) < *OrdOf(v).
  std::optional<uint64_t> OrdOf(TxName t) const;

  /// A directed path from -> ... -> to over present edges (endpoints
  /// included), or empty when none exists. Deterministic (successors are
  /// explored in insertion order) and read-only — the witness-recovery
  /// primitive: after AddEdge(u, v) returns false, FindPath(v, u) plus the
  /// rejected edge is the cycle that insertion would have closed.
  std::vector<TxName> FindPath(TxName from, TxName to) const;

  /// Live nodes (slab slots on the free list are not counted).
  size_t node_count() const { return slot_.size(); }
  size_t edge_count() const { return edges_.size(); }
  /// Slab capacity including recycled slots; bounded-memory assertions in
  /// the GC soak test watch this rather than node_count().
  size_t slab_count() const { return nodes_.size(); }
  /// Next order key the allocator would hand out; CompactOrders rewinds it.
  uint64_t next_ord() const { return next_ord_; }

 private:
  struct Node {
    std::vector<uint32_t> out;
    std::vector<uint32_t> in;
    uint64_t ord;
    TxName name;
  };

  static uint64_t EdgeKey(TxName from, TxName to) {
    static_assert(sizeof(TxName) <= sizeof(uint32_t),
                  "EdgeKey packs two TxNames into one uint64; widen the key "
                  "before widening TxName");
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  /// Slot of `t`, creating the node (at the end of the order) on first use.
  uint32_t Slot(TxName t);

  std::vector<Node> nodes_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<TxName, uint32_t> slot_;
  std::unordered_set<uint64_t> edges_;
  uint64_t next_ord_ = 0;
};

}  // namespace ntsg

#endif  // NTSG_SG_FAST_GRAPH_H_
