#include "sg/conflicts.h"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"
#include "sg/conflict_frontier.h"
#include "sg/edge_set.h"
#include "spec/commutativity.h"

namespace ntsg {

bool AccessOpsConflict(const SystemType& type, ConflictMode mode, TxName u,
                       const Value& vu, TxName w, const Value& vw) {
  const AccessSpec& au = type.access(u);
  const AccessSpec& aw = type.access(w);
  if (au.object != aw.object) return false;
  ObjectType otype = type.object_type(au.object);
  switch (mode) {
    case ConflictMode::kReadWrite:
      NTSG_CHECK(otype == ObjectType::kReadWrite)
          << "kReadWrite conflict mode requires read/write objects";
      return RwAccessesConflict(au.op, aw.op);
    case ConflictMode::kCommutativity:
      return OperationsConflict(otype, OpRecord{au.op, au.arg, vu},
                                OpRecord{aw.op, aw.arg, vw});
  }
  return true;
}

namespace {

/// Runs the frontier over one slice of objects, appending discovered edges
/// to `out` and accumulating work tallies into `stats`. Reads only the
/// (immutable during certification) SystemType and this slice's operation
/// lists, so concurrent calls on disjoint slices are race-free.
void BuildObjects(const SystemType& type, ConflictMode mode,
                  const std::vector<std::vector<Operation>>& per_object,
                  const std::vector<ObjectId>& objects,
                  std::vector<SiblingEdge>* out, FrontierStats* stats) {
  for (ObjectId x : objects) {
    ObjectConflictFrontier frontier(type, mode, x);
    uint64_t pos = 0;
    for (const Operation& op : per_object[x]) {
      frontier.AddOp(op.tx, op.value, pos++, out);
    }
    stats->edges_emitted += frontier.stats().edges_emitted;
    stats->hits += frontier.stats().hits;
    stats->misses += frontier.stats().misses;
    stats->class_pair_evals += frontier.stats().class_pair_evals;
  }
}

}  // namespace

std::vector<SiblingEdge> ConflictRelation(const SystemType& type,
                                          const Trace& beta, ConflictMode mode,
                                          size_t num_threads) {
  const obs::SgBuildMetrics& metrics = obs::GetSgBuildMetrics();
  obs::SpanTimer span(metrics.batch_build_us);

  // Operations of visible(β, T0), grouped by object (dense table), in order.
  Trace vis = VisibleTo(type, beta, kT0);
  std::vector<std::vector<Operation>> per_object(type.num_objects());
  for (const Action& a : vis) {
    if (a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx)) {
      per_object[type.ObjectOf(a.tx)].push_back(Operation{a.tx, a.value});
    }
  }
  std::vector<ObjectId> live;
  for (ObjectId x = 0; x < per_object.size(); ++x) {
    if (!per_object[x].empty()) live.push_back(x);
  }

  std::vector<SiblingEdge> edges;
  FrontierStats total;
  if (num_threads <= 1 || live.size() <= 1) {
    BuildObjects(type, mode, per_object, live, &edges, &total);
  } else {
    // Shard objects across workers as the ingest pipeline does; per-object
    // builds are independent, and the sort+dedup below makes the merged
    // result identical for every thread count and interleaving.
    const size_t shards = std::min(num_threads, live.size());
    std::vector<std::vector<ObjectId>> buckets(shards);
    for (ObjectId x : live) buckets[HashMix64(x) % shards].push_back(x);
    std::vector<std::vector<SiblingEdge>> outs(shards);
    std::vector<FrontierStats> stats(shards);
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      workers.emplace_back([&, s] {
        BuildObjects(type, mode, per_object, buckets[s], &outs[s], &stats[s]);
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t s = 0; s < shards; ++s) {
      edges.insert(edges.end(), outs[s].begin(), outs[s].end());
      total.edges_emitted += stats[s].edges_emitted;
      total.hits += stats[s].hits;
      total.misses += stats[s].misses;
      total.class_pair_evals += stats[s].class_pair_evals;
    }
    metrics.parallel_merges->Inc(shards);
  }

  // Canonical order; distinct objects can induce the same sibling edge, so
  // dedup across objects here (each frontier already dedups within one).
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  metrics.conflict_edges_emitted->Inc(total.edges_emitted);
  metrics.frontier_hits->Inc(total.hits);
  metrics.frontier_misses->Inc(total.misses);
  metrics.class_pair_evals->Inc(total.class_pair_evals);
  return edges;
}

namespace {

/// Label-tracking variant of BuildObjects: runs an EnableLabels() frontier
/// over one slice of objects and folds each object's edge bitmasks into
/// `merged` (OR on the kinds, smallest object id as representative).
void BuildLabeledObjects(const SystemType& type, ConflictMode mode,
                         const std::vector<std::vector<Operation>>& per_object,
                         const std::vector<ObjectId>& objects,
                         std::map<SiblingEdge, EdgeLabel>* merged,
                         FrontierStats* stats) {
  std::vector<SiblingEdge> scratch;
  for (ObjectId x : objects) {
    ObjectConflictFrontier frontier(type, mode, x);
    frontier.EnableLabels();
    uint64_t pos = 0;
    for (const Operation& op : per_object[x]) {
      frontier.AddOp(op.tx, op.value, pos++, &scratch);
    }
    for (const auto& [edge, kinds] : frontier.edge_label_bits()) {
      EdgeLabel& label = (*merged)[edge];
      label.kinds |= kinds;
      if (x < label.object) label.object = x;
    }
    stats->edges_emitted += frontier.stats().edges_emitted;
    stats->hits += frontier.stats().hits;
    stats->misses += frontier.stats().misses;
    stats->class_pair_evals += frontier.stats().class_pair_evals;
  }
}

}  // namespace

std::vector<LabeledSiblingEdge> LabeledConflictRelation(
    const SystemType& type, const Trace& beta, ConflictMode mode,
    size_t num_threads) {
  const obs::SgBuildMetrics& metrics = obs::GetSgBuildMetrics();
  obs::SpanTimer span(metrics.batch_build_us);

  Trace vis = VisibleTo(type, beta, kT0);
  std::vector<std::vector<Operation>> per_object(type.num_objects());
  for (const Action& a : vis) {
    if (a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx)) {
      per_object[type.ObjectOf(a.tx)].push_back(Operation{a.tx, a.value});
    }
  }
  std::vector<ObjectId> live;
  for (ObjectId x = 0; x < per_object.size(); ++x) {
    if (!per_object[x].empty()) live.push_back(x);
  }

  std::map<SiblingEdge, EdgeLabel> merged;
  FrontierStats total;
  if (num_threads <= 1 || live.size() <= 1) {
    BuildLabeledObjects(type, mode, per_object, live, &merged, &total);
  } else {
    const size_t shards = std::min(num_threads, live.size());
    std::vector<std::vector<ObjectId>> buckets(shards);
    for (ObjectId x : live) buckets[HashMix64(x) % shards].push_back(x);
    std::vector<std::map<SiblingEdge, EdgeLabel>> outs(shards);
    std::vector<FrontierStats> stats(shards);
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      workers.emplace_back([&, s] {
        BuildLabeledObjects(type, mode, per_object, buckets[s], &outs[s],
                            &stats[s]);
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t s = 0; s < shards; ++s) {
      for (const auto& [edge, label] : outs[s]) merged[edge].Merge(label);
      total.edges_emitted += stats[s].edges_emitted;
      total.hits += stats[s].hits;
      total.misses += stats[s].misses;
      total.class_pair_evals += stats[s].class_pair_evals;
    }
    metrics.parallel_merges->Inc(shards);
  }

  // The map is keyed by SiblingEdge's canonical (parent, from, to) order, so
  // the result carries ConflictRelation's ordering guarantee for free.
  std::vector<LabeledSiblingEdge> edges;
  edges.reserve(merged.size());
  for (const auto& [edge, label] : merged) {
    edges.push_back(LabeledSiblingEdge{edge, label});
  }

  metrics.conflict_edges_emitted->Inc(total.edges_emitted);
  metrics.frontier_hits->Inc(total.hits);
  metrics.frontier_misses->Inc(total.misses);
  metrics.class_pair_evals->Inc(total.class_pair_evals);
  return edges;
}

std::vector<SiblingEdge> PrecedesRelation(const SystemType& type,
                                          const Trace& beta) {
  TraceIndex index(type, beta);
  // reported_children[P] = children of P already reported at this point.
  std::unordered_map<TxName, std::vector<TxName>> reported_children;
  SiblingEdgeSet edges;
  for (const Action& a : beta) {
    if (a.kind == ActionKind::kReportCommit ||
        a.kind == ActionKind::kReportAbort) {
      reported_children[type.parent(a.tx)].push_back(a.tx);
    } else if (a.kind == ActionKind::kRequestCreate) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      auto it = reported_children.find(p);
      if (it == reported_children.end()) continue;
      for (TxName earlier : it->second) {
        if (earlier != a.tx) edges.Insert(SiblingEdge{p, earlier, a.tx});
      }
    }
  }
  obs::GetSgBuildMetrics().precedes_edges_emitted->Inc(edges.size());
  return edges.SortedEdges();
}

}  // namespace ntsg
