#ifndef NTSG_SG_CONFLICTS_H_
#define NTSG_SG_CONFLICTS_H_

#include <cstdint>
#include <vector>

#include "tx/trace.h"

namespace ntsg {

/// How operation conflicts are judged when building the serialization graph.
enum class ConflictMode : uint8_t {
  /// Section 4: objects must be read/write; two accesses to the same object
  /// conflict iff at least one is a write (value-independent).
  kReadWrite,
  /// Section 6.1: two operations conflict iff they fail to commute backward
  /// under the object's serial specification (value-dependent). Sound for
  /// every bundled data type, including read/write registers.
  kCommutativity,
};

/// A directed sibling edge (from, to): both are children of `parent`.
struct SiblingEdge {
  TxName parent;
  TxName from;
  TxName to;

  bool operator==(const SiblingEdge& other) const {
    return parent == other.parent && from == other.from && to == other.to;
  }
  bool operator<(const SiblingEdge& other) const {
    if (parent != other.parent) return parent < other.parent;
    if (from != other.from) return from < other.from;
    return to < other.to;
  }
};

/// The dependency kind of one inducing operation pair of a conflict edge
/// (T, T'): classified by whether each endpoint's operation is a pure
/// observer (IsModifyingOp is false) or a mutator. The isolation-level
/// checkers (src/iso) branch on exactly one distinction — whether an edge is
/// *purely* an anti-dependency (observer before mutator, the classic rw
/// edge) or carries any forward dependency — so the kinds are kept as a
/// small bitmask per edge.
enum class DepKind : uint8_t {
  kWriteWrite = 1,  // mutator -> mutator (ww)
  kWriteRead = 2,   // mutator -> observer (wr, a read-from dependency)
  kReadWrite = 4,   // observer -> mutator (rw, an anti-dependency)
};

/// Accumulated label of one conflict edge: the union of DepKind bits over
/// every inducing operation pair, plus one representative object.
///
/// Exactness contract: the `kReadWrite`-only test (`anti_only()`) is exact —
/// an edge reports anti-only iff *every* inducing pair is observer->mutator.
/// The ww-vs-wr split inside the dependency class is best-effort under the
/// frontier's in-order watermark suppression (a suppressed pair always has
/// the same anti/dependency class as the pair that consumed its entry, but
/// may differ in ww vs wr); src/iso uses that split only to *name*
/// anomalies, never to decide a verdict.
struct EdgeLabel {
  uint8_t kinds = 0;  // OR of DepKind bits
  ObjectId object = kInvalidObject;

  void Add(DepKind k, ObjectId obj) {
    kinds |= static_cast<uint8_t>(k);
    if (object == kInvalidObject || obj < object) object = obj;
  }
  bool Has(DepKind k) const {
    return (kinds & static_cast<uint8_t>(k)) != 0;
  }
  /// Every inducing pair was observer->mutator: a pure anti-dependency.
  bool anti_only() const {
    return kinds == static_cast<uint8_t>(DepKind::kReadWrite);
  }
  void Merge(const EdgeLabel& other) {
    kinds |= other.kinds;
    if (other.object < object) object = other.object;
  }
};

/// A conflict edge together with its accumulated dependency label.
struct LabeledSiblingEdge {
  SiblingEdge edge;
  EdgeLabel label;

  bool operator<(const LabeledSiblingEdge& other) const {
    return edge < other.edge;
  }
};

/// Decides whether two access operations conflict under `mode`: the
/// operation-level predicate behind ConflictRelation, exposed for the
/// incremental certifier, which discovers conflicting pairs one visible
/// operation at a time. `u`/`w` must be accesses; `vu`/`vw` their recorded
/// return values (inspected only in kCommutativity mode). Symmetric.
bool AccessOpsConflict(const SystemType& type, ConflictMode mode, TxName u,
                       const Value& vu, TxName w, const Value& vw);

/// conflict(β) (Section 4, generalized in Section 6.1): (T, T') with common
/// parent P such that accesses U (a descendant of T) and U' (of T') perform
/// conflicting operations, the REQUEST_COMMIT of U preceding that of U' in
/// visible(β, T0). `beta` must be a sequence of serial actions (apply
/// SerialPart first for generic behaviors).
///
/// Built per object by ObjectConflictFrontier (work proportional to edge
/// candidates, not operation pairs; see conflict_frontier.h). With
/// `num_threads` > 1 the per-object builds are sharded across that many
/// worker threads (objects are independent — the same decomposition
/// ConcurrentIngestPipeline uses) and the edge sets merged afterwards.
///
/// Ordering guarantee: the returned vector is deduplicated and sorted by
/// (parent, from, to), independent of `num_threads` and thread scheduling.
/// FingerprintSerializationGraph and the adjacency construction in
/// SerializationGraph rely on this canonical order; so do the golden
/// explain transcripts.
std::vector<SiblingEdge> ConflictRelation(const SystemType& type,
                                          const Trace& beta, ConflictMode mode,
                                          size_t num_threads = 1);

/// conflict(β) with per-edge dependency labels: the same edge set as
/// ConflictRelation (same ordering guarantee, same dedup), with each edge
/// carrying the union of DepKind bits over its inducing operation pairs and
/// a representative object. Built by the same ObjectConflictFrontier with
/// label tracking enabled; when two objects induce the same sibling edge
/// their labels are OR-merged and the smallest object id kept.
std::vector<LabeledSiblingEdge> LabeledConflictRelation(
    const SystemType& type, const Trace& beta, ConflictMode mode,
    size_t num_threads = 1);

/// precedes(β) (Section 4): (T, T') siblings whose common parent is visible
/// to T0 in β, with a report event for T preceding REQUEST_CREATE(T') in β.
/// Same ordering guarantee as ConflictRelation: deduplicated, sorted by
/// (parent, from, to).
std::vector<SiblingEdge> PrecedesRelation(const SystemType& type,
                                          const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_SG_CONFLICTS_H_
