#ifndef NTSG_SG_CONFLICTS_H_
#define NTSG_SG_CONFLICTS_H_

#include <cstdint>
#include <vector>

#include "tx/trace.h"

namespace ntsg {

/// How operation conflicts are judged when building the serialization graph.
enum class ConflictMode : uint8_t {
  /// Section 4: objects must be read/write; two accesses to the same object
  /// conflict iff at least one is a write (value-independent).
  kReadWrite,
  /// Section 6.1: two operations conflict iff they fail to commute backward
  /// under the object's serial specification (value-dependent). Sound for
  /// every bundled data type, including read/write registers.
  kCommutativity,
};

/// A directed sibling edge (from, to): both are children of `parent`.
struct SiblingEdge {
  TxName parent;
  TxName from;
  TxName to;

  bool operator==(const SiblingEdge& other) const {
    return parent == other.parent && from == other.from && to == other.to;
  }
  bool operator<(const SiblingEdge& other) const {
    if (parent != other.parent) return parent < other.parent;
    if (from != other.from) return from < other.from;
    return to < other.to;
  }
};

/// Decides whether two access operations conflict under `mode`: the
/// operation-level predicate behind ConflictRelation, exposed for the
/// incremental certifier, which discovers conflicting pairs one visible
/// operation at a time. `u`/`w` must be accesses; `vu`/`vw` their recorded
/// return values (inspected only in kCommutativity mode). Symmetric.
bool AccessOpsConflict(const SystemType& type, ConflictMode mode, TxName u,
                       const Value& vu, TxName w, const Value& vw);

/// conflict(β) (Section 4, generalized in Section 6.1): (T, T') with common
/// parent P such that accesses U (a descendant of T) and U' (of T') perform
/// conflicting operations, the REQUEST_COMMIT of U preceding that of U' in
/// visible(β, T0). `beta` must be a sequence of serial actions (apply
/// SerialPart first for generic behaviors).
///
/// Built per object by ObjectConflictFrontier (work proportional to edge
/// candidates, not operation pairs; see conflict_frontier.h). With
/// `num_threads` > 1 the per-object builds are sharded across that many
/// worker threads (objects are independent — the same decomposition
/// ConcurrentIngestPipeline uses) and the edge sets merged afterwards.
///
/// Ordering guarantee: the returned vector is deduplicated and sorted by
/// (parent, from, to), independent of `num_threads` and thread scheduling.
/// FingerprintSerializationGraph and the adjacency construction in
/// SerializationGraph rely on this canonical order; so do the golden
/// explain transcripts.
std::vector<SiblingEdge> ConflictRelation(const SystemType& type,
                                          const Trace& beta, ConflictMode mode,
                                          size_t num_threads = 1);

/// precedes(β) (Section 4): (T, T') siblings whose common parent is visible
/// to T0 in β, with a report event for T preceding REQUEST_CREATE(T') in β.
/// Same ordering guarantee as ConflictRelation: deduplicated, sorted by
/// (parent, from, to).
std::vector<SiblingEdge> PrecedesRelation(const SystemType& type,
                                          const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_SG_CONFLICTS_H_
