#ifndef NTSG_SG_CONFLICT_FRONTIER_H_
#define NTSG_SG_CONFLICT_FRONTIER_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "sg/edge_set.h"
#include "spec/commutativity.h"
#include "tx/trace.h"

namespace ntsg {

/// Work tallies of one frontier, for the obs layer. The frontier itself
/// never touches metrics (keeping it value-semantic and thread-confined);
/// callers publish these after a build or an activation batch.
struct FrontierStats {
  uint64_t edges_emitted = 0;    // distinct sibling edges produced
  uint64_t hits = 0;             // stat entries that induced an edge candidate
  uint64_t misses = 0;           // class lists probed and found absent/empty
  uint64_t class_pair_evals = 0; // conflict verdicts computed at intern time
};

/// Incremental conflict-edge discovery for one object — the replacement for
/// the quadratic all-pairs scan in ConflictRelation.
///
/// Operations are grouped into *classes*: in kReadWrite mode the two classes
/// read/write (value-independent), in kCommutativity mode one class per
/// distinct (op, arg, return) triple, with the OperationsConflict verdict
/// computed once per class pair when a class is first interned (commuting
/// pairs are skipped wholesale on every later operation).
///
/// For every internal tree node P on the ancestor chain of an access and
/// every class d, the frontier keeps the per-child summary
///
///   entries(P, d) = { (C, min_pos, max_pos) :
///                     C child of P with a class-d operation below it },
///
/// where min/max_pos range over positions (in visible(β, T0) operation
/// order) of class-d operations descending through C. This summary is
/// exactly what the conflict relation needs: an operation at position p
/// descending through child C induces the edge (P, C', C) iff some
/// conflicting operation descends through C' != C at a position < p — i.e.
/// iff min_pos(C', d) < p for some d conflicting with the new op's class —
/// and symmetrically (P, C, C') iff max_pos(C', d) > p. (With a single
/// last-writer + readers-since-last-write pair instead of per-child minima,
/// the write-write edge from the first of three sibling writers to the third
/// would be lost; the per-child summary is the exact generalization.)
///
/// In-order insertion (p greater than every prior position, the batch case)
/// takes the first branch only, and a per-(P, observer child, d) watermark
/// remembers the prefix of entries(P, d) already consumed, so each (entry,
/// observer) pair is scanned once — total work proportional to edge
/// candidates, not operation pairs. Out-of-order insertion (a deep reveal in
/// the online path) rescans the lists in full, testing both directions; the
/// internal dedup set keeps re-emission from reaching the caller twice.
///
/// Value-semantic: copyable for ingest-pipeline snapshots. Holds a pointer
/// to the SystemType, which must outlive it.
class ObjectConflictFrontier {
 public:
  ObjectConflictFrontier(const SystemType& type, ConflictMode mode,
                         ObjectId object);

  /// Feeds the operation (access, v) at position `pos` (its index in the
  /// object's visible-operation order; strictly increasing in batch use,
  /// arbitrary-but-distinct online). Appends every *new* conflict edge it
  /// induces to `new_edges`.
  void AddOp(TxName access, const Value& v, uint64_t pos,
             std::vector<SiblingEdge>* new_edges);

  /// Turns on per-edge dependency-label accumulation (DepKind bits, see
  /// conflicts.h). Off by default so the hot certification path pays
  /// nothing; the isolation-level checkers enable it before the first
  /// AddOp. Labels are accumulated on every probe hit, *before* the dedup
  /// set suppresses re-emission, so an edge's bitmask keeps growing as new
  /// inducing pairs appear even after the edge itself was reported.
  void EnableLabels() { labels_enabled_ = true; }
  bool labels_enabled() const { return labels_enabled_; }

  /// Accumulated DepKind bitmask per emitted edge (empty unless
  /// EnableLabels() was called before the ops were fed). The representative
  /// object of every entry is this frontier's object.
  const std::map<SiblingEdge, uint8_t>& edge_label_bits() const {
    return label_bits_;
  }

  /// Drops every summary belonging to a retired top-level family (the GC
  /// reclamation path). `retired_roots` holds children of T0 whose whole
  /// subtree is retired; the caller guarantees no future AddOp names any of
  /// them. Frees the (node, class) lists of interior nodes inside retired
  /// families, filters retired children out of the T0-level lists (remapping
  /// the in-order watermarks past the removed prefix entries), and drops
  /// memoized edge verdicts touching retired names. Class definitions are
  /// kept: they are object-type-global, not per-family (see DESIGN.md §10
  /// on the kCommutativity residual).
  void Retire(const std::unordered_set<TxName>& retired_roots);

  const FrontierStats& stats() const { return stats_; }
  size_t num_classes() const { return classes_.size(); }
  /// Live (node, class) summaries; the soak test's bounded-memory probe.
  size_t num_live_lists() const {
    return node_class_lists_.size();
  }

 private:
  static constexpr uint32_t kNoEntry = 0xFFFFFFFFu;

  struct ClassDef {
    OpRecord rec;
    uint32_t chain_next = kNoEntry;  // next class with the same hash
    std::vector<uint32_t> conflicts; // class ids conflicting with this one
  };

  /// Per-child class-d summary at one node.
  struct ChildStat {
    TxName child;
    uint64_t min_pos;
    uint64_t max_pos;
  };

  /// Per-(node, d) role of one child: its entry in `entries` (kNoEntry for a
  /// pure observer) and the prefix of `entries` it has already consumed.
  struct ChildSlot {
    uint32_t entry = kNoEntry;
    uint32_t watermark = 0;
  };

  struct ClassList {
    std::vector<ChildStat> entries;  // first-appearance order
    FlatIndexMap child_slots;        // child -> index into slots
    std::vector<ChildSlot> slots;
  };

  uint32_t InternClass(const OpRecord& rec);
  bool ClassesConflict(const OpRecord& a, const OpRecord& b) const;
  /// `from_class`/`to_class` are the operation classes of the two inducing
  /// operations — the label accumulator classifies the pair from them.
  void Emit(TxName parent, TxName from, TxName to, uint32_t from_class,
            uint32_t to_class, std::vector<SiblingEdge>* out);

  const SystemType* type_;
  ConflictMode mode_;
  ObjectId object_;
  ObjectType otype_;

  std::vector<ClassDef> classes_;
  FlatIndexMap class_table_;       // hash(rec) -> head of chain in classes_
  FlatIndexMap node_class_lists_;  // (node << 32 | class) -> index in lists_
  std::vector<ClassList> lists_;
  std::vector<uint32_t> free_lists_;  // indices in lists_ freed by Retire

  SiblingEdgeSet dedup_;
  bool labels_enabled_ = false;
  std::map<SiblingEdge, uint8_t> label_bits_;
  uint64_t max_pos_ = 0;
  bool any_ops_ = false;
  FrontierStats stats_;
};

}  // namespace ntsg

#endif  // NTSG_SG_CONFLICT_FRONTIER_H_
