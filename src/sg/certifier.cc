#include "sg/certifier.h"

#include <string>

#include "sg/appropriate.h"
#include "sg/incremental_certifier.h"

namespace ntsg {

namespace {

// The bounded-memory path: stream the behavior through the incremental
// certifier with the watermark collector enabled instead of materializing
// SG(serial(beta)) whole. Same verdict and witness; edge counts cover the
// live scope only (retired families' memoized edges are reclaimed).
CertifierReport CertifyStreamingWithGc(const SystemType& type,
                                       const Trace& beta, ConflictMode mode,
                                       size_t interval) {
  GcOptions gc;
  gc.interval = interval;
  IncrementalCertifier cert(type, mode, gc);
  cert.IngestTrace(beta);

  CertifierReport report;
  IncrementalVerdict v = cert.verdict();
  report.appropriate_return_values = v.appropriate;
  report.graph_acyclic = v.acyclic;
  report.conflict_edge_count = cert.conflict_edge_count();
  report.precedes_edge_count = cert.precedes_edge_count();
  if (!v.acyclic) report.cycle = cert.cycle_witness();
  // Status preference order matches the batch build: values first.
  if (!v.appropriate) {
    report.status =
        Status::VerificationFailed("return values not appropriate");
  } else if (!v.acyclic) {
    std::string names;
    for (TxName t : *report.cycle) {
      if (!names.empty()) names += " -> ";
      names += type.NameOf(t);
    }
    report.status =
        Status::VerificationFailed("serialization graph has cycle: " + names);
  } else {
    report.status = Status::Ok();
  }
  return report;
}

}  // namespace

CertifierReport CertifySeriallyCorrect(const SystemType& type,
                                       const Trace& beta, ConflictMode mode,
                                       const CertifyOptions& options) {
  if (options.gc_watermark > 0) {
    return CertifyStreamingWithGc(type, beta, mode, options.gc_watermark);
  }
  CertifierReport report;
  Trace serial = SerialPart(beta);

  Status values = mode == ConflictMode::kReadWrite
                      ? CheckAppropriateReturnValuesRw(type, serial)
                      : CheckAppropriateReturnValuesGeneral(type, serial);
  report.appropriate_return_values = values.ok();

  SerializationGraph sg =
      SerializationGraph::Build(type, serial, mode, options.num_threads);
  report.conflict_edge_count = sg.conflict_edges().size();
  report.precedes_edge_count = sg.precedes_edges().size();
  report.cycle = sg.FindCycle();
  report.graph_acyclic = !report.cycle.has_value();

  if (!values.ok()) {
    report.status = Status::VerificationFailed(
        "return values not appropriate: " + values.message());
  } else if (!report.graph_acyclic) {
    std::string names;
    for (TxName t : *report.cycle) {
      if (!names.empty()) names += " -> ";
      names += type.NameOf(t);
    }
    report.status =
        Status::VerificationFailed("serialization graph has cycle: " + names);
  } else {
    report.status = Status::Ok();
  }
  return report;
}

}  // namespace ntsg
