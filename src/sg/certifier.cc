#include "sg/certifier.h"

#include "sg/appropriate.h"

namespace ntsg {

CertifierReport CertifySeriallyCorrect(const SystemType& type,
                                       const Trace& beta, ConflictMode mode,
                                       const CertifyOptions& options) {
  CertifierReport report;
  Trace serial = SerialPart(beta);

  Status values = mode == ConflictMode::kReadWrite
                      ? CheckAppropriateReturnValuesRw(type, serial)
                      : CheckAppropriateReturnValuesGeneral(type, serial);
  report.appropriate_return_values = values.ok();

  SerializationGraph sg =
      SerializationGraph::Build(type, serial, mode, options.num_threads);
  report.conflict_edge_count = sg.conflict_edges().size();
  report.precedes_edge_count = sg.precedes_edges().size();
  report.cycle = sg.FindCycle();
  report.graph_acyclic = !report.cycle.has_value();

  if (!values.ok()) {
    report.status = Status::VerificationFailed(
        "return values not appropriate: " + values.message());
  } else if (!report.graph_acyclic) {
    std::string names;
    for (TxName t : *report.cycle) {
      if (!names.empty()) names += " -> ";
      names += type.NameOf(t);
    }
    report.status =
        Status::VerificationFailed("serialization graph has cycle: " + names);
  } else {
    report.status = Status::Ok();
  }
  return report;
}

}  // namespace ntsg
