#ifndef NTSG_SG_INCREMENTAL_CERTIFIER_H_
#define NTSG_SG_INCREMENTAL_CERTIFIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sg/conflict_frontier.h"
#include "sg/conflicts.h"
#include "sg/edge_set.h"
#include "sg/fast_graph.h"
#include "spec/serial_spec.h"
#include "tx/trace.h"

namespace ntsg {

/// Activates items when their subject transaction becomes visible to T0 —
/// i.e. when every ancestor strictly below T0 (the subject included) has
/// committed. Visibility is monotone over trace prefixes: once a subject is
/// visible it stays visible, so each watched item fires at most once.
///
/// A watched subject waits on its *lowest uncommitted ancestor*; each COMMIT
/// re-resolves exactly the items parked on the committing name, so the
/// amortized cost per item is O(depth) pointer walks per ancestor commit.
///
/// Watched items are plain data (subject + caller tag), not callbacks, so
/// the tracker has value semantics: copying it is the snapshot of the
/// certifier's visibility frontier that crash recovery restores.
class VisibilityTracker {
 public:
  explicit VisibilityTracker(const SystemType& type) : type_(&type) {}

  /// A parked activation: `tag` is caller-defined payload routing (e.g. the
  /// trace position of a pending operation).
  struct Item {
    TxName subject;
    uint64_t tag;
  };

  enum class WatchResult : uint8_t {
    kVisible,  // already visible; the caller activates now
    kParked,   // parked on the lowest uncommitted ancestor
    kDead,     // an ancestor aborted; the subject can never become visible
  };

  /// Registers (subject, tag) to fire when `subject` is visible to T0.
  WatchResult Watch(TxName subject, uint64_t tag);

  /// Records COMMIT(t); appends newly visible items to `fired` (in parked
  /// order) and items whose subject turned out dead to `dropped` (if
  /// non-null).
  void OnCommit(TxName t, std::vector<Item>* fired,
                std::vector<Item>* dropped = nullptr);

  /// Records ABORT(t); appends items parked directly on t to `dropped` (if
  /// non-null) — COMMIT(t) can no longer happen.
  void OnAbort(TxName t, std::vector<Item>* dropped = nullptr);

  bool IsCommitted(TxName t) const { return Flag(committed_, t); }
  bool IsAborted(TxName t) const { return Flag(aborted_, t); }

 private:
  /// Lowest uncommitted ancestor of `subject` below T0 (kInvalidTx when
  /// visible now). Sets `*dead` when an ancestor has aborted.
  TxName BlockerOf(TxName subject, bool* dead) const;

  static bool Flag(const std::vector<uint8_t>& v, TxName t) {
    return t < v.size() && v[t] != 0;
  }
  static void SetFlag(std::vector<uint8_t>* v, TxName t) {
    if (t >= v->size()) v->resize(t + 1, 0);
    (*v)[t] = 1;
  }

  const SystemType* type_;
  std::vector<uint8_t> committed_;
  std::vector<uint8_t> aborted_;
  std::unordered_map<TxName, std::vector<Item>> waiters_;
};

/// Per-object slice of the online certifier: the visible operation sequence
/// ordered by trace position, its legality under the object's serial
/// specification (= the appropriate-return-values condition of Theorem
/// 8/19), and conflict discovery against previously visible operations via
/// an ObjectConflictFrontier (class-summarized, so discovery cost is
/// independent of how many visible operations this object has seen).
///
/// Operations normally arrive in position order (appended as commits make
/// them visible), which extends the replay state in O(1); a commit deep in
/// the tree can retroactively reveal an *earlier* operation, in which case
/// the replay is redone from scratch for this object only (the frontier
/// handles the out-of-order insert natively).
///
/// Copyable (the serial-spec replay state clones; the frontier has value
/// semantics), which is what shard snapshots and certifier restore points
/// are made of. Re-inserting an already present (pos, tx, value) — a
/// duplicated delivery — is an exact no-op, so at-least-once delivery
/// cannot shift the verdict.
class ObjectIngestState {
 public:
  ObjectIngestState(const SystemType& type, ObjectId x, ConflictMode mode);

  ObjectIngestState(const ObjectIngestState& other);
  ObjectIngestState& operator=(const ObjectIngestState& other);

  /// Inserts the newly visible operation (REQUEST_COMMIT of access `tx`
  /// returning `v` at trace position `pos`) and appends to `new_edges`
  /// every sibling edge (lca, child-toward-earlier, child-toward-later)
  /// induced by a conflict between the new operation and an already visible
  /// one — already deduplicated within this object. Idempotent: a duplicate
  /// of an already inserted operation changes nothing and emits nothing.
  void InsertVisibleOp(uint64_t pos, TxName tx, const Value& v,
                       std::vector<SiblingEdge>* new_edges);

  /// True iff the visible operation sequence replays against the serial
  /// spec (every recorded return value matches).
  bool legal() const { return legal_; }

  size_t op_count() const { return ops_.size(); }

 private:
  /// Full replay after an out-of-order insertion (or to re-judge a sequence
  /// that was illegal before the insertion).
  void Recompute();

  const SystemType* type_;
  ObjectId x_;
  std::map<uint64_t, Operation> ops_;
  ObjectConflictFrontier frontier_;
  std::unique_ptr<SerialSpec> replay_;
  bool legal_ = true;
};

/// The certifier's running answer for the prefix ingested so far.
struct IncrementalVerdict {
  bool appropriate = true;
  bool acyclic = true;

  bool ok() const { return appropriate && acyclic; }
};

/// Online form of Theorem 8/19: consumes a behavior action by action and
/// maintains the batch certifier's verdict for the current prefix —
/// prefix-consistent with CertifySeriallyCorrect by construction (and
/// property-tested in tests/incremental_certifier_test.cc):
///
///   * conflict(β) edges appear when both endpoints' operations are visible
///     to T0; visibility activations are driven by the VisibilityTracker;
///   * precedes(β) edges appear from per-parent report/request bookkeeping
///     once the parent is visible;
///   * acyclicity of the union is maintained by Pearce–Kelly insertion
///     (IncrementalTopoGraph) with early cycle rejection — edges are
///     monotone over prefixes, so a cyclic verdict is final;
///   * appropriate return values are maintained per object by incremental
///     serial-spec replay.
///
/// INFORM actions are ignored (Theorem 17/25 strips them), so generic
/// behaviors can be fed verbatim.
///
/// The certifier has value semantics: copying it captures the complete
/// ingest state, so `IncrementalCertifier snap = cert;` is a snapshot and
/// `cert = snap;` is the restore — a restarted certifier resumes from the
/// checkpoint and re-ingests only the suffix, never the whole behavior.
class IncrementalCertifier {
 public:
  IncrementalCertifier(const SystemType& type, ConflictMode mode);

  IncrementalCertifier(const IncrementalCertifier& other);
  IncrementalCertifier& operator=(const IncrementalCertifier& other);

  void Ingest(const Action& a);
  void IngestTrace(const Trace& beta);

  IncrementalVerdict verdict() const {
    return IncrementalVerdict{illegal_objects_ == 0, acyclic_};
  }

  size_t conflict_edge_count() const { return conflict_edges_.size(); }
  size_t precedes_edge_count() const { return precedes_edges_.size(); }
  size_t actions_ingested() const { return pos_; }

  /// Canonical fingerprint of the current conflict ∪ precedes edge sets
  /// (see sg/fingerprint.h). Certifiers that agree on the edge sets agree
  /// here, byte for byte.
  uint64_t graph_fingerprint() const;

  /// Position of the first action whose ingestion turned the verdict
  /// not-OK; nullopt while the prefix is certified.
  std::optional<uint64_t> first_rejection_pos() const {
    return first_rejection_pos_;
  }

  /// Online cycle witness: the nodes of the cycle the first rejected edge
  /// would have closed, in cycle order (edges w[i] -> w[i+1], closing
  /// w.back() -> w.front()). Recovered by FindPath at rejection time, while
  /// the graph still holds exactly the acyclic prefix; empty while no edge
  /// has been rejected. Feed to ExplainCycle (sg/explain.h) for relation
  /// labels and action provenance.
  const std::vector<TxName>& cycle_witness() const { return cycle_witness_; }

 private:
  /// Per-parent precedes bookkeeping. Until the parent is visible, report /
  /// request-create events are buffered in order; afterwards reports
  /// accumulate and every request-create emits edges from all earlier
  /// reported siblings.
  struct ParentScope {
    bool registered = false;
    bool visible = false;
    std::vector<TxName> reported;
    std::vector<std::pair<bool, TxName>> buffer;  // (is_report, child)
  };

  /// A REQUEST_COMMIT awaiting visibility, keyed by trace position (= the
  /// tracker tag for operations).
  struct PendingOp {
    TxName tx;
    Value value;
  };

  void FireItem(const VisibilityTracker::Item& item);
  void DropItem(const VisibilityTracker::Item& item);
  void ActivateOp(uint64_t pos, TxName tx, const Value& v);
  void ScopeEvent(TxName parent, bool is_report, TxName child);
  void ActivateScope(TxName parent);
  void EmitPrecedes(TxName parent, TxName from, TxName to);
  void AddGraphEdge(TxName parent, TxName from, TxName to, bool is_conflict);
  void NoteVerdict();
  ObjectIngestState& ObjectState(ObjectId x);

  const SystemType* type_;
  ConflictMode mode_;
  VisibilityTracker tracker_;
  std::vector<std::unique_ptr<ObjectIngestState>> objects_;
  size_t illegal_objects_ = 0;
  std::unordered_map<TxName, ParentScope> scopes_;
  std::unordered_map<uint64_t, PendingOp> pending_ops_;
  SiblingEdgeSet conflict_edges_;
  SiblingEdgeSet precedes_edges_;
  IncrementalTopoGraph graph_;
  bool acyclic_ = true;
  uint64_t pos_ = 0;
  std::optional<uint64_t> first_rejection_pos_;
  std::vector<TxName> cycle_witness_;
};

}  // namespace ntsg

#endif  // NTSG_SG_INCREMENTAL_CERTIFIER_H_
