#ifndef NTSG_SG_INCREMENTAL_CERTIFIER_H_
#define NTSG_SG_INCREMENTAL_CERTIFIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sg/conflict_frontier.h"
#include "sg/conflicts.h"
#include "sg/edge_set.h"
#include "sg/fast_graph.h"
#include "sg/gc_watermark.h"
#include "spec/serial_spec.h"
#include "tx/trace.h"

namespace ntsg {

/// Activates items when their subject transaction becomes visible to T0 —
/// i.e. when every ancestor strictly below T0 (the subject included) has
/// committed. Visibility is monotone over trace prefixes: once a subject is
/// visible it stays visible, so each watched item fires at most once.
///
/// A watched subject waits on its *lowest uncommitted ancestor*; each COMMIT
/// re-resolves exactly the items parked on the committing name, so the
/// amortized cost per item is O(depth) pointer walks per ancestor commit.
///
/// Watched items are plain data (subject + caller tag), not callbacks, so
/// the tracker has value semantics: copying it is the snapshot of the
/// certifier's visibility frontier that crash recovery restores.
class VisibilityTracker {
 public:
  explicit VisibilityTracker(const SystemType& type) : type_(&type) {}

  /// A parked activation: `tag` is caller-defined payload routing (e.g. the
  /// trace position of a pending operation).
  struct Item {
    TxName subject;
    uint64_t tag;
  };

  enum class WatchResult : uint8_t {
    kVisible,  // already visible; the caller activates now
    kParked,   // parked on the lowest uncommitted ancestor
    kDead,     // an ancestor aborted; the subject can never become visible
  };

  /// Registers (subject, tag) to fire when `subject` is visible to T0.
  WatchResult Watch(TxName subject, uint64_t tag);

  /// Records COMMIT(t); appends newly visible items to `fired` (in parked
  /// order) and items whose subject turned out dead to `dropped` (if
  /// non-null).
  void OnCommit(TxName t, std::vector<Item>* fired,
                std::vector<Item>* dropped = nullptr);

  /// Records ABORT(t); appends items parked directly on t to `dropped` (if
  /// non-null) — COMMIT(t) can no longer happen.
  void OnAbort(TxName t, std::vector<Item>* dropped = nullptr);

  bool IsCommitted(TxName t) const { return (Flags(t) & kCommittedBit) != 0; }
  bool IsAborted(TxName t) const { return (Flags(t) & kAbortedBit) != 0; }

  /// True iff `t` can never become visible: some ancestor strictly below T0
  /// (t included) has aborted. Items watching such a subject will never
  /// fire, so the GC neither waits for them nor counts their positions.
  bool NeverVisible(TxName t) const;

  /// Releases all state for `t`: its commit/abort flags and any items
  /// parked on it (the GC calls this per retired name after proving no
  /// parked item under the family can ever fire). Frees a flag page once
  /// its last live name retires, which is what keeps tracker memory
  /// proportional to live names on an unbounded stream.
  void Retire(TxName t);

  /// Visits every parked item (blocker order unspecified, parked order
  /// within one blocker). The GC's watermark computation input.
  template <typename Fn>
  void ForEachParked(Fn&& fn) const {
    for (const auto& [blocker, items] : waiters_) {
      for (const Item& item : items) fn(item);
    }
  }

 private:
  /// Commit/abort flags live in fixed-size pages indexed by name so state
  /// can be released page-wise: a dense vector over names would grow with
  /// every name ever interned, which is exactly what the GC exists to avoid.
  static constexpr uint8_t kCommittedBit = 1;
  static constexpr uint8_t kAbortedBit = 2;
  static constexpr size_t kPageBits = 12;
  static constexpr size_t kPageSize = size_t{1} << kPageBits;

  struct Page {
    std::vector<uint8_t> flags;  // empty (freed) or kPageSize bytes
    uint32_t live = 0;           // names on this page with nonzero flags
  };

  /// Lowest uncommitted ancestor of `subject` below T0 (kInvalidTx when
  /// visible now). Sets `*dead` when an ancestor has aborted.
  TxName BlockerOf(TxName subject, bool* dead) const;

  uint8_t Flags(TxName t) const {
    size_t p = t >> kPageBits;
    if (p >= pages_.size() || pages_[p].flags.empty()) return 0;
    return pages_[p].flags[t & (kPageSize - 1)];
  }
  void SetBit(TxName t, uint8_t bit);

  const SystemType* type_;
  std::vector<Page> pages_;
  std::unordered_map<TxName, std::vector<Item>> waiters_;
};

/// Per-object slice of the online certifier: the visible operation sequence
/// ordered by trace position, its legality under the object's serial
/// specification (= the appropriate-return-values condition of Theorem
/// 8/19), and conflict discovery against previously visible operations via
/// an ObjectConflictFrontier (class-summarized, so discovery cost is
/// independent of how many visible operations this object has seen).
///
/// Operations normally arrive in position order (appended as commits make
/// them visible), which extends the replay state in O(1); a commit deep in
/// the tree can retroactively reveal an *earlier* operation, in which case
/// the replay is redone from scratch for this object only (the frontier
/// handles the out-of-order insert natively).
///
/// Copyable (the serial-spec replay state clones; the frontier has value
/// semantics), which is what shard snapshots and certifier restore points
/// are made of. Re-inserting an already present (pos, tx, value) — a
/// duplicated delivery — is an exact no-op, so at-least-once delivery
/// cannot shift the verdict.
class ObjectIngestState {
 public:
  ObjectIngestState(const SystemType& type, ObjectId x, ConflictMode mode);

  ObjectIngestState(const ObjectIngestState& other);
  ObjectIngestState& operator=(const ObjectIngestState& other);

  /// Inserts the newly visible operation (REQUEST_COMMIT of access `tx`
  /// returning `v` at trace position `pos`) and appends to `new_edges`
  /// every sibling edge (lca, child-toward-earlier, child-toward-later)
  /// induced by a conflict between the new operation and an already visible
  /// one — already deduplicated within this object. Idempotent: a duplicate
  /// of an already inserted operation changes nothing and emits nothing;
  /// likewise an operation at a position the GC already folded into the
  /// replay checkpoint (a redelivery of a pruned op) is dropped unseen.
  void InsertVisibleOp(uint64_t pos, TxName tx, const Value& v,
                       std::vector<SiblingEdge>* new_edges);

  /// GC reclamation: drops this object's frontier summaries for retired
  /// families, then folds the longest position-prefix of the visible
  /// sequence consisting entirely of retired-family operations into a
  /// serial-spec checkpoint (`base_`). Prefix-only pruning is what keeps
  /// the replay exact: every retired operation sits below the caller's
  /// watermark while every future insertion sits at or above it, so a
  /// retired op that is interleaved *after* a live family's op stays in
  /// ops_ (still needed to replay the live op's suffix) until the live op's
  /// family retires too. Returns the number of operations pruned.
  size_t Retire(const std::unordered_set<TxName>& retired_roots);

  /// True iff the visible operation sequence replays against the serial
  /// spec (every recorded return value matches).
  bool legal() const { return legal_; }

  size_t op_count() const { return ops_.size(); }
  /// Positions below this bound were pruned into the checkpoint.
  uint64_t pruned_upto() const { return pruned_upto_; }

 private:
  /// Full replay after an out-of-order insertion (or to re-judge a sequence
  /// that was illegal before the insertion). Starts from the GC checkpoint
  /// when one exists.
  void Recompute();

  const SystemType* type_;
  ObjectId x_;
  std::map<uint64_t, Operation> ops_;
  ObjectConflictFrontier frontier_;
  std::unique_ptr<SerialSpec> replay_;
  bool legal_ = true;
  /// Serial-spec state after the pruned prefix (null until the first prune);
  /// Recompute clones it instead of replaying from the initial value.
  std::unique_ptr<SerialSpec> base_;
  /// Divergence already inside the pruned prefix pins the verdict illegal
  /// (defensive: the certifier stops GC'ing after the first rejection, so a
  /// divergent prefix is never actually pruned).
  bool base_illegal_ = false;
  uint64_t pruned_upto_ = 0;
};

/// The certifier's running answer for the prefix ingested so far.
struct IncrementalVerdict {
  bool appropriate = true;
  bool acyclic = true;

  bool ok() const { return appropriate && acyclic; }
};

/// Online form of Theorem 8/19: consumes a behavior action by action and
/// maintains the batch certifier's verdict for the current prefix —
/// prefix-consistent with CertifySeriallyCorrect by construction (and
/// property-tested in tests/incremental_certifier_test.cc):
///
///   * conflict(β) edges appear when both endpoints' operations are visible
///     to T0; visibility activations are driven by the VisibilityTracker;
///   * precedes(β) edges appear from per-parent report/request bookkeeping
///     once the parent is visible;
///   * acyclicity of the union is maintained by Pearce–Kelly insertion
///     (IncrementalTopoGraph) with early cycle rejection — edges are
///     monotone over prefixes, so a cyclic verdict is final;
///   * appropriate return values are maintained per object by incremental
///     serial-spec replay.
///
/// INFORM actions are ignored (Theorem 17/25 strips them), so generic
/// behaviors can be fed verbatim.
///
/// The certifier has value semantics: copying it captures the complete
/// ingest state, so `IncrementalCertifier snap = cert;` is a snapshot and
/// `cert = snap;` is the restore — a restarted certifier resumes from the
/// checkpoint and re-ingests only the suffix, never the whole behavior.
class IncrementalCertifier {
 public:
  /// With `gc.enabled()` a commit-watermark retirement pass runs every
  /// `gc.interval` ingested actions, bounding memory by the live-transaction
  /// footprint instead of the stream length (DESIGN.md §10). The verdict,
  /// rejection witness, and live-scope fingerprint are unchanged by GC —
  /// the guarantee tests/gc_differential_test.cc enforces.
  IncrementalCertifier(const SystemType& type, ConflictMode mode,
                       GcOptions gc = GcOptions{});

  IncrementalCertifier(const IncrementalCertifier& other);
  IncrementalCertifier& operator=(const IncrementalCertifier& other);

  void Ingest(const Action& a);
  void IngestTrace(const Trace& beta);

  /// Epoch-batched admission: ingests the actions in order but defers every
  /// serialization-graph insertion the batch produces, committing them with
  /// ONE batched reorder pass (IncrementalTopoGraph::AddEdgesBatch) at the
  /// end instead of one Pearce–Kelly pass per edge. Equivalent to calling
  /// Ingest per action at every batch boundary: verdict, first_rejection_pos,
  /// cycle witness, and graph fingerprint are byte-identical (the batch-
  /// parity property test). Two guards keep that exact:
  ///
  ///   * a batch never spans a GC barrier — staged edges flush before every
  ///     scheduled RunGc, so the collector always sees the live graph;
  ///   * once the verdict is cyclic (final), remaining actions take the
  ///     per-event path — there is nothing left to batch.
  ///
  /// On batch rejection the staged edges are replayed per-edge from the
  /// start of the batch (the failed commit leaves the graph untouched), so
  /// the exact first-rejecting action and its witness cycle are recovered.
  void IngestBatch(std::span<const Action> batch);

  /// IngestTrace in batches of `batch_size` actions (<=1 means per-event).
  void IngestTraceBatched(const Trace& beta, size_t batch_size);

  /// Runs one retirement pass now (normally driven by the ingest counter).
  /// No-op when GC is disabled or the verdict has already gone not-OK (a
  /// cyclic verdict is final and the witness must stay intact).
  void RunGc();

  IncrementalVerdict verdict() const {
    return IncrementalVerdict{illegal_objects_ == 0, acyclic_};
  }

  size_t conflict_edge_count() const { return conflict_edges_.size(); }
  size_t precedes_edge_count() const { return precedes_edges_.size(); }
  size_t actions_ingested() const { return pos_; }

  /// Canonical fingerprint of the current conflict ∪ precedes edge sets
  /// (see sg/fingerprint.h). Certifiers that agree on the edge sets agree
  /// here, byte for byte. Under GC the sets hold live edges only, so
  /// compare against an unpruned certifier via FingerprintLiveScope.
  uint64_t graph_fingerprint() const;

  /// Fingerprint restricted to edges touching no family in `retired_roots`
  /// (children of T0). On an unpruned certifier, passing a GC'd certifier's
  /// retired_roots() yields exactly the GC'd certifier's
  /// graph_fingerprint(): retirement drops edges inside retired families
  /// and suppresses the future retired→live edges this filter excludes.
  uint64_t FingerprintLiveScope(
      const std::unordered_set<TxName>& retired_roots) const;

  /// Families retired so far (children of T0); empty when GC is off.
  const std::unordered_set<TxName>& retired_roots() const {
    return book_.retired_roots();
  }
  /// Deterministic (sorted) retired roots, for reports and tests.
  std::vector<TxName> SortedRetiredRoots() const {
    return book_.SortedRetiredRoots();
  }
  const GcStats& gc_stats() const { return gc_stats_; }
  /// Live serialization-graph nodes — the soak test's bounded-memory probe.
  size_t live_node_count() const { return graph_.node_count(); }

  /// Position of the first action whose ingestion turned the verdict
  /// not-OK; nullopt while the prefix is certified.
  std::optional<uint64_t> first_rejection_pos() const {
    return first_rejection_pos_;
  }

  /// Online cycle witness: the nodes of the cycle the first rejected edge
  /// would have closed, in cycle order (edges w[i] -> w[i+1], closing
  /// w.back() -> w.front()). Recovered by FindPath at rejection time, while
  /// the graph still holds exactly the acyclic prefix; empty while no edge
  /// has been rejected. Feed to ExplainCycle (sg/explain.h) for relation
  /// labels and action provenance.
  const std::vector<TxName>& cycle_witness() const { return cycle_witness_; }

 private:
  /// Per-parent precedes bookkeeping. Until the parent is visible, report /
  /// request-create events are buffered in order; afterwards reports
  /// accumulate and every request-create emits edges from all earlier
  /// reported siblings.
  struct ParentScope {
    bool registered = false;
    bool visible = false;
    std::vector<TxName> reported;
    std::vector<std::pair<bool, TxName>> buffer;  // (is_report, child)
  };

  /// A REQUEST_COMMIT awaiting visibility, keyed by trace position (= the
  /// tracker tag for operations).
  struct PendingOp {
    TxName tx;
    Value value;
  };

  /// One deferred graph insertion: the edge plus the position of the action
  /// whose processing produced it, so a rejected batch can map the first
  /// cycle-closing edge back to its first-rejecting action.
  struct StagedEdge {
    TxName parent;
    TxName from;
    TxName to;
    bool is_conflict;
    uint64_t action_pos;
  };

  void FireItem(const VisibilityTracker::Item& item);
  void DropItem(const VisibilityTracker::Item& item);
  void ActivateOp(uint64_t pos, TxName tx, const Value& v);
  void ScopeEvent(TxName parent, bool is_report, TxName child);
  void ActivateScope(TxName parent);
  void EmitPrecedes(TxName parent, TxName from, TxName to);
  void AddGraphEdge(TxName parent, TxName from, TxName to, bool is_conflict);
  void NoteVerdict();
  /// Ingest minus the per-action verdict/GC tail — the shared body of the
  /// per-event and batched paths. Returns false when the action named a
  /// retired family and was dropped: the position is consumed, but the
  /// verdict/GC tail must NOT run for it (a dropped event is invisible, so
  /// it cannot trigger a collection pass — the retirement schedule would
  /// otherwise drift from a run that never saw the late event).
  bool IngestAction(const Action& a);
  /// Commits (or replays) the staged edges and reconciles the deferred
  /// verdict: first_rejection_pos becomes the minimum of the first staged
  /// illegal-values position and the first cycle-closing action, exactly
  /// what per-event NoteVerdict would have latched.
  void FlushBatch();
  ObjectIngestState& ObjectState(ObjectId x);
  /// Executes the retirement of `roots` (already sealed and
  /// predecessor-closed): graph nodes, frontier summaries, tracker state,
  /// scopes, pending ops, and memoized edges.
  void RetireFamilies(const std::vector<TxName>& roots);

  const SystemType* type_;
  ConflictMode mode_;
  VisibilityTracker tracker_;
  std::vector<std::unique_ptr<ObjectIngestState>> objects_;
  size_t illegal_objects_ = 0;
  std::unordered_map<TxName, ParentScope> scopes_;
  std::unordered_map<uint64_t, PendingOp> pending_ops_;
  SiblingEdgeSet conflict_edges_;
  SiblingEdgeSet precedes_edges_;
  IncrementalTopoGraph graph_;
  bool acyclic_ = true;
  uint64_t pos_ = 0;
  std::optional<uint64_t> first_rejection_pos_;
  std::vector<TxName> cycle_witness_;
  GcOptions gc_;
  GcFamilyBook book_;
  GcStats gc_stats_;
  /// Batched-admission state. Empty/false at every public-call boundary
  /// except inside IngestBatch (FlushBatch always runs before it returns),
  /// so copies taken between calls need not carry it.
  bool batching_ = false;
  std::vector<StagedEdge> staged_edges_;
  std::optional<uint64_t> staged_illegal_pos_;
  uint64_t batch_actions_ = 0;
  /// Per-call scratch (cleared before each use) so the park/fire hot path
  /// does zero heap allocation at steady state; never holds state across
  /// calls and is deliberately not copied.
  std::vector<VisibilityTracker::Item> fired_scratch_;
  std::vector<VisibilityTracker::Item> dropped_scratch_;
  std::vector<SiblingEdge> edge_scratch_;
};

}  // namespace ntsg

#endif  // NTSG_SG_INCREMENTAL_CERTIFIER_H_
