#include "sg/reference.h"

#include <map>
#include <set>
#include <vector>

namespace ntsg {

std::vector<SiblingEdge> NaiveConflictRelation(const SystemType& type,
                                               const Trace& beta,
                                               ConflictMode mode) {
  // Operations of visible(β, T0), grouped by object, in order.
  Trace vis = VisibleTo(type, beta, kT0);
  std::map<ObjectId, std::vector<Operation>> per_object;
  for (const Action& a : vis) {
    if (a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx)) {
      per_object[type.ObjectOf(a.tx)].push_back(Operation{a.tx, a.value});
    }
  }

  std::set<SiblingEdge> edges;
  for (const auto& entry : per_object) {
    const std::vector<Operation>& ops = entry.second;
    for (size_t j = 1; j < ops.size(); ++j) {
      for (size_t i = 0; i < j; ++i) {
        TxName u = ops[i].tx, w = ops[j].tx;
        if (!AccessOpsConflict(type, mode, u, ops[i].value, w, ops[j].value)) {
          continue;
        }
        TxName lca = type.Lca(u, w);
        // Accesses are leaves, so distinct accesses are never related by
        // ancestry; the lca is a proper ancestor of both.
        TxName from = type.ChildToward(lca, u);
        TxName to = type.ChildToward(lca, w);
        if (from != to) edges.insert(SiblingEdge{lca, from, to});
      }
    }
  }
  return std::vector<SiblingEdge>(edges.begin(), edges.end());
}

std::vector<SiblingEdge> NaivePrecedesRelation(const SystemType& type,
                                               const Trace& beta) {
  TraceIndex index(type, beta);
  // reported_children[P] = children of P already reported at this point.
  std::map<TxName, std::vector<TxName>> reported_children;
  std::set<SiblingEdge> edges;
  for (const Action& a : beta) {
    if (a.kind == ActionKind::kReportCommit ||
        a.kind == ActionKind::kReportAbort) {
      reported_children[type.parent(a.tx)].push_back(a.tx);
    } else if (a.kind == ActionKind::kRequestCreate) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      auto it = reported_children.find(p);
      if (it == reported_children.end()) continue;
      for (TxName earlier : it->second) {
        if (earlier != a.tx) edges.insert(SiblingEdge{p, earlier, a.tx});
      }
    }
  }
  return std::vector<SiblingEdge>(edges.begin(), edges.end());
}

}  // namespace ntsg
