#include "sg/fast_graph.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/logging.h"
#include "obs/trace.h"

namespace ntsg {

namespace {

/// Node ids: real transaction names in the low range; timeline (virtual)
/// nodes tagged in the high bits.
using NodeId = uint64_t;

// The tagging scheme (and EdgeKey in the header) packs a TxName into the low
// 32 bits of a uint64 and claims everything above for virtual-node tags. A
// wider TxName would silently classify real transactions as timeline nodes
// and alias edge keys; refuse to compile instead.
static_assert(sizeof(TxName) <= sizeof(uint32_t),
              "NodeId tagging and EdgeKey packing assume TxName fits in "
              "32 bits; widen the tag layout before widening TxName");

NodeId RealNode(TxName t) { return t; }
NodeId VirtualNode(size_t k) {
  NTSG_CHECK((k >> 32) == 0) << "virtual-node index overflows the tag layout";
  return (uint64_t{1} << 32) | k;
}
bool IsRealNode(NodeId n) { return (n >> 32) == 0; }

/// Builds the combined conflict + timeline graph (see header).
std::map<NodeId, std::vector<NodeId>> BuildFastGraph(const SystemType& type,
                                                     const Trace& beta,
                                                     ConflictMode mode,
                                                     FastSgReport* report) {
  std::map<NodeId, std::vector<NodeId>> adj;

  std::vector<SiblingEdge> conflicts = ConflictRelation(type, beta, mode);
  report->conflict_edge_count = conflicts.size();
  for (const SiblingEdge& e : conflicts) {
    adj[RealNode(e.from)].push_back(RealNode(e.to));
    adj.try_emplace(RealNode(e.to));
  }

  TraceIndex index(type, beta);
  struct ParentState {
    std::vector<TxName> pending_reported;
    NodeId last_virtual = 0;
    bool has_virtual = false;
  };
  std::map<TxName, ParentState> parents;
  size_t next_virtual = 0;

  for (const Action& a : beta) {
    if (a.kind == ActionKind::kReportCommit ||
        a.kind == ActionKind::kReportAbort) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      parents[p].pending_reported.push_back(a.tx);
    } else if (a.kind == ActionKind::kRequestCreate) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      ParentState& st = parents[p];
      if (!st.pending_reported.empty()) {
        // Seal an epoch: reported children funnel into a fresh node.
        NodeId v = VirtualNode(next_virtual++);
        ++report->timeline_node_count;
        for (TxName c : st.pending_reported) {
          adj[RealNode(c)].push_back(v);
          ++report->timeline_edge_count;
        }
        st.pending_reported.clear();
        if (st.has_virtual) {
          adj[st.last_virtual].push_back(v);
          ++report->timeline_edge_count;
        }
        adj.try_emplace(v);
        st.last_virtual = v;
        st.has_virtual = true;
      }
      if (st.has_virtual) {
        adj[st.last_virtual].push_back(RealNode(a.tx));
        adj.try_emplace(RealNode(a.tx));
        ++report->timeline_edge_count;
      }
    }
  }
  return adj;
}

/// Kahn's algorithm with a deterministic (ordered) frontier. Returns the
/// topological sequence, or an empty vector on a cycle.
std::vector<NodeId> TopoSort(const std::map<NodeId, std::vector<NodeId>>& adj) {
  std::map<NodeId, int> indegree;
  for (const auto& [n, succs] : adj) {
    indegree.try_emplace(n, 0);
    for (NodeId s : succs) indegree[s]++;
  }
  std::set<NodeId> frontier;
  for (const auto& [n, d] : indegree) {
    if (d == 0) frontier.insert(n);
  }
  std::vector<NodeId> order;
  while (!frontier.empty()) {
    NodeId n = *frontier.begin();
    frontier.erase(frontier.begin());
    order.push_back(n);
    auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (NodeId s : it->second) {
      if (--indegree[s] == 0) frontier.insert(s);
    }
  }
  if (order.size() != indegree.size()) return {};  // Cycle.
  return order;
}

}  // namespace

FastSgReport FastSgAcyclicity(const SystemType& type, const Trace& beta,
                              ConflictMode mode) {
  FastSgReport report;
  auto adj = BuildFastGraph(type, beta, mode, &report);
  report.acyclic = !TopoSort(adj).empty() || adj.empty();
  return report;
}

std::optional<std::map<TxName, std::vector<TxName>>> FastTopologicalOrders(
    const SystemType& type, const Trace& beta, ConflictMode mode) {
  FastSgReport report;
  auto adj = BuildFastGraph(type, beta, mode, &report);
  std::vector<NodeId> order = TopoSort(adj);
  if (order.empty() && !adj.empty()) return std::nullopt;

  std::map<TxName, std::vector<TxName>> result;
  for (NodeId n : order) {
    if (!IsRealNode(n)) continue;
    TxName t = static_cast<TxName>(n);
    result[type.parent(t)].push_back(t);
  }
  return result;
}

uint32_t IncrementalTopoGraph::Slot(TxName t) {
  auto it = slot_.find(t);
  if (it != slot_.end()) return it->second;
  uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
    nodes_[s] = Node{{}, {}, next_ord_++, t};
  } else {
    s = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{{}, {}, next_ord_++, t});
  }
  slot_.emplace(t, s);
  return s;
}

bool IncrementalTopoGraph::HasEdge(TxName from, TxName to) const {
  return edges_.count(EdgeKey(from, to)) != 0;
}

std::optional<uint64_t> IncrementalTopoGraph::OrdOf(TxName t) const {
  auto it = slot_.find(t);
  if (it == slot_.end()) return std::nullopt;
  return nodes_[it->second].ord;
}

bool IncrementalTopoGraph::AddEdge(TxName from, TxName to) {
  if (from == to) return false;
  uint64_t key = EdgeKey(from, to);
  if (edges_.count(key) != 0) return true;
  uint32_t sx = Slot(from);
  uint32_t sy = Slot(to);

  if (nodes_[sy].ord < nodes_[sx].ord) {
    // The order is violated: discover the affected region
    // [ord(to), ord(from)]. In a valid topological order every path out of
    // `to` ascends in ord, so a to ->* from path — the only way the new edge
    // closes a cycle — lies entirely inside the region.
    const uint64_t lb = nodes_[sy].ord;
    const uint64_t ub = nodes_[sx].ord;
    std::vector<uint32_t> delta_f, delta_b, stack;
    std::unordered_set<uint32_t> seen_f, seen_b;

    stack.push_back(sy);
    seen_f.insert(sy);
    while (!stack.empty()) {
      uint32_t n = stack.back();
      stack.pop_back();
      delta_f.push_back(n);
      for (uint32_t s : nodes_[n].out) {
        if (s == sx) return false;  // Cycle; nothing was modified.
        if (nodes_[s].ord <= ub && seen_f.insert(s).second) {
          stack.push_back(s);
        }
      }
    }

    stack.push_back(sx);
    seen_b.insert(sx);
    while (!stack.empty()) {
      uint32_t n = stack.back();
      stack.pop_back();
      delta_b.push_back(n);
      for (uint32_t s : nodes_[n].in) {
        if (nodes_[s].ord >= lb && seen_b.insert(s).second) {
          stack.push_back(s);
        }
      }
    }

    // Acyclic: delta_b and delta_f are disjoint (a shared node would lie on
    // a to ->* from path). Reuse the combined ord pool, placing everything
    // that must precede the new edge before everything that must follow it,
    // preserving relative order inside each side.
    auto by_ord = [this](uint32_t a, uint32_t b) {
      return nodes_[a].ord < nodes_[b].ord;
    };
    std::sort(delta_b.begin(), delta_b.end(), by_ord);
    std::sort(delta_f.begin(), delta_f.end(), by_ord);
    std::vector<uint64_t> pool;
    pool.reserve(delta_b.size() + delta_f.size());
    for (uint32_t n : delta_b) pool.push_back(nodes_[n].ord);
    for (uint32_t n : delta_f) pool.push_back(nodes_[n].ord);
    std::sort(pool.begin(), pool.end());
    size_t k = 0;
    for (uint32_t n : delta_b) nodes_[n].ord = pool[k++];
    for (uint32_t n : delta_f) nodes_[n].ord = pool[k++];
    obs::TraceEmit(obs::TraceEventKind::kTopoReorder, 0, from, to, 0,
                   delta_b.size() + delta_f.size());
  }

  nodes_[sx].out.push_back(sy);
  nodes_[sy].in.push_back(sx);
  edges_.insert(key);
  return true;
}

IncrementalTopoGraph::BatchAddResult IncrementalTopoGraph::AddEdgesBatch(
    const std::vector<BatchEdge>& edges) {
  BatchAddResult result;

  // ---- Phase A: dedup + feasibility. Strictly read-only, so any failure
  // leaves the graph byte-identical and the caller can replay per-edge.
  struct Fresh {
    uint32_t from_vid;
    uint32_t to_vid;
    TxName from;
    TxName to;
  };
  std::vector<Fresh> fresh;
  fresh.reserve(edges.size());
  std::unordered_set<uint64_t> staged_keys;
  // Names the graph has never seen get virtual ids past the slab; their
  // pseudo-ords mirror what Slot() will assign in phase B (next_ord_ + j in
  // first-appearance order), so feasibility sees the committed ord layout.
  std::unordered_map<TxName, uint32_t> new_vids;
  std::vector<TxName> new_names;
  const uint32_t slab = static_cast<uint32_t>(nodes_.size());
  auto vid_of = [&](TxName t) {
    auto it = slot_.find(t);
    if (it != slot_.end()) return it->second;
    auto [nit, added] =
        new_vids.try_emplace(t, slab + static_cast<uint32_t>(new_names.size()));
    if (added) new_names.push_back(t);
    return nit->second;
  };
  auto ord_of = [&](uint32_t vid) {
    return vid < slab ? nodes_[vid].ord : next_ord_ + (vid - slab);
  };
  for (const BatchEdge& e : edges) {
    // A self loop is a cycle per-edge insertion rejects before creating any
    // node; fail the whole batch so the replay reproduces that exactly.
    if (e.from == e.to) return result;
    uint64_t key = EdgeKey(e.from, e.to);
    if (edges_.count(key) != 0 || !staged_keys.insert(key).second) continue;
    fresh.push_back(Fresh{vid_of(e.from), vid_of(e.to), e.from, e.to});
  }
  result.fresh_edges = fresh.size();

  uint64_t lb = 0, ub = 0;
  bool invalidating = false;
  for (const Fresh& e : fresh) {
    uint64_t of = ord_of(e.from_vid);
    uint64_t ot = ord_of(e.to_vid);
    if (ot < of) {
      lb = invalidating ? std::min(lb, ot) : ot;
      ub = invalidating ? std::max(ub, of) : of;
      invalidating = true;
    }
  }

  std::vector<uint32_t> kahn_vids;  // region in its recomputed order
  std::vector<uint64_t> pool;       // region's own ord keys, ascending
  if (invalidating) {
    // Every cycle the batch could close lies inside the ord interval
    // [lb, ub]: committed and forward staged edges ascend in ord, so a
    // cycle alternates ascending runs with violating staged edges — and a
    // violating edge's head has ord >= lb while its tail has ord <= ub,
    // which pins each run (and hence every node of the cycle) inside the
    // interval. One Kahn pass over the induced subgraph therefore decides
    // acyclicity of the whole union, and its output order reuses the
    // region's own ord pool so nothing outside the interval moves.
    std::vector<uint32_t> region;
    for (const auto& [name, s] : slot_) {
      (void)name;
      if (nodes_[s].ord >= lb && nodes_[s].ord <= ub) region.push_back(s);
    }
    for (uint32_t j = 0; j < new_names.size(); ++j) {
      uint64_t o = next_ord_ + j;
      if (o >= lb && o <= ub) region.push_back(slab + j);
    }
    std::sort(region.begin(), region.end(),
              [&](uint32_t a, uint32_t b) { return ord_of(a) < ord_of(b); });
    std::unordered_map<uint32_t, uint32_t> rix;  // vid -> region index
    rix.reserve(region.size() * 2);
    for (uint32_t i = 0; i < region.size(); ++i) rix.emplace(region[i], i);

    std::vector<std::vector<uint32_t>> radj(region.size());
    std::vector<uint32_t> indeg(region.size(), 0);
    for (uint32_t i = 0; i < region.size(); ++i) {
      uint32_t vid = region[i];
      if (vid >= slab) continue;  // new nodes have no committed edges
      for (uint32_t succ : nodes_[vid].out) {
        auto it = rix.find(succ);
        if (it != rix.end()) {
          radj[i].push_back(it->second);
          ++indeg[it->second];
        }
      }
    }
    for (const Fresh& e : fresh) {
      auto f = rix.find(e.from_vid);
      auto t = rix.find(e.to_vid);
      if (f != rix.end() && t != rix.end()) {
        radj[f->second].push_back(t->second);
        ++indeg[t->second];
      }
    }

    // Deterministic Kahn: region indices ascend in old ord (region is
    // ord-sorted), and the frontier always pops the smallest — ties in the
    // final order are broken by the pre-batch order, like Pearce–Kelly's
    // relative-order preservation.
    std::set<uint32_t> ready;
    for (uint32_t i = 0; i < region.size(); ++i) {
      if (indeg[i] == 0) ready.insert(i);
    }
    kahn_vids.reserve(region.size());
    while (!ready.empty()) {
      uint32_t i = *ready.begin();
      ready.erase(ready.begin());
      kahn_vids.push_back(region[i]);
      for (uint32_t s : radj[i]) {
        if (--indeg[s] == 0) ready.insert(s);
      }
    }
    if (kahn_vids.size() != region.size()) return result;  // cycle; unchanged
    pool.reserve(region.size());
    for (uint32_t vid : region) pool.push_back(ord_of(vid));
    result.region_nodes = region.size();
  }

  // ---- Phase B: commit. Node slots are created in first-appearance order
  // and adjacency lists append in batch order — exactly the state a
  // successful per-edge replay of the batch would leave, so FindPath and
  // InNeighbors cannot tell the two apart.
  std::vector<uint32_t> new_slots(new_names.size());
  for (size_t j = 0; j < new_names.size(); ++j) {
    new_slots[j] = Slot(new_names[j]);
  }
  auto slot_of = [&](uint32_t vid) {
    return vid < slab ? vid : new_slots[vid - slab];
  };
  for (size_t k = 0; k < kahn_vids.size(); ++k) {
    nodes_[slot_of(kahn_vids[k])].ord = pool[k];
  }
  for (const Fresh& e : fresh) {
    uint32_t sx = slot_of(e.from_vid);
    uint32_t sy = slot_of(e.to_vid);
    nodes_[sx].out.push_back(sy);
    nodes_[sy].in.push_back(sx);
    edges_.insert(EdgeKey(e.from, e.to));
  }
  if (!kahn_vids.empty()) {
    obs::TraceEmit(obs::TraceEventKind::kTopoReorder, 0, 0, 0, 0,
                   kahn_vids.size());
  }
  result.ok = true;
  return result;
}

std::vector<TxName> IncrementalTopoGraph::FindPath(TxName from,
                                                   TxName to) const {
  auto itf = slot_.find(from);
  auto itt = slot_.find(to);
  if (itf == slot_.end() || itt == slot_.end()) return {};
  const uint32_t sf = itf->second;
  const uint32_t st = itt->second;
  if (sf == st) return {from};

  // BFS with parent pointers: the witness is a shortest path, and the
  // first-discovered one is unique given the insertion-ordered adjacency.
  std::vector<uint32_t> parent(nodes_.size(), UINT32_MAX);
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<uint32_t> queue;
  queue.push_back(sf);
  seen[sf] = 1;
  bool found = false;
  for (size_t qi = 0; qi < queue.size() && !found; ++qi) {
    uint32_t n = queue[qi];
    for (uint32_t s : nodes_[n].out) {
      if (seen[s] != 0) continue;
      seen[s] = 1;
      parent[s] = n;
      if (s == st) {
        found = true;
        break;
      }
      queue.push_back(s);
    }
  }
  if (!found) return {};

  std::vector<TxName> path;
  for (uint32_t n = st; n != UINT32_MAX; n = parent[n]) {
    path.push_back(nodes_[n].name);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void IncrementalTopoGraph::RemoveEdge(TxName from, TxName to) {
  // No kEdgeRemoved here: the SGT coordinator also calls RemoveEdge to roll
  // back trial insertions, which are not real expunges — the semantic
  // removal event is emitted by the caller that owns the edge's meaning.
  if (edges_.erase(EdgeKey(from, to)) == 0) return;
  uint32_t sx = slot_.at(from);
  uint32_t sy = slot_.at(to);
  // The key was in edges_, so both adjacency lists must hold the edge; if
  // they diverged (a partially restored snapshot, a future refactor bug),
  // dereferencing find()'s end() here would be UB — fail loudly instead.
  auto drop = [](std::vector<uint32_t>& v, uint32_t target) {
    auto it = std::find(v.begin(), v.end(), target);
    NTSG_CHECK(it != v.end())
        << "edge set and adjacency lists diverged on removal";
    *it = v.back();
    v.pop_back();
  };
  drop(nodes_[sx].out, sy);
  drop(nodes_[sy].in, sx);
}

void IncrementalTopoGraph::RemoveNode(TxName t) {
  auto it = slot_.find(t);
  if (it == slot_.end()) return;
  const uint32_t s = it->second;
  // Unlike RemoveEdge's swap-pop (safe there: the caller owns both ends),
  // neighbor lists are erased in place. Retired nodes may have live
  // successors, and a live node's `in` list feeds AddEdge's backward search
  // in whatever order entries sit — but its `out` list drives FindPath's
  // deterministic exploration, so a predecessor's out list must keep its
  // insertion order when this node leaves it.
  auto erase_stable = [](std::vector<uint32_t>& v, uint32_t target) {
    auto pos = std::find(v.begin(), v.end(), target);
    NTSG_CHECK(pos != v.end())
        << "edge set and adjacency lists diverged on node removal";
    v.erase(pos);
  };
  for (uint32_t succ : nodes_[s].out) {
    NTSG_CHECK_EQ(edges_.erase(EdgeKey(t, nodes_[succ].name)), 1u);
    erase_stable(nodes_[succ].in, s);
  }
  for (uint32_t pred : nodes_[s].in) {
    NTSG_CHECK_EQ(edges_.erase(EdgeKey(nodes_[pred].name, t)), 1u);
    erase_stable(nodes_[pred].out, s);
  }
  // Release the adjacency storage now (slab reuse only clears it), so a
  // retired high-degree node does not pin its peak allocation forever.
  nodes_[s].out = {};
  nodes_[s].in = {};
  slot_.erase(it);
  free_slots_.push_back(s);
}

std::vector<TxName> IncrementalTopoGraph::InNeighbors(TxName t) const {
  auto it = slot_.find(t);
  if (it == slot_.end()) return {};
  std::vector<TxName> preds;
  preds.reserve(nodes_[it->second].in.size());
  for (uint32_t p : nodes_[it->second].in) preds.push_back(nodes_[p].name);
  return preds;
}

void IncrementalTopoGraph::CompactOrders() {
  std::vector<uint32_t> live;
  live.reserve(slot_.size());
  for (const auto& [t, s] : slot_) live.push_back(s);
  std::sort(live.begin(), live.end(), [this](uint32_t a, uint32_t b) {
    return nodes_[a].ord < nodes_[b].ord;
  });
  uint64_t k = 0;
  for (uint32_t s : live) nodes_[s].ord = k++;
  next_ord_ = k;
}

}  // namespace ntsg
