#include "sg/fast_graph.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace ntsg {

namespace {

/// Node ids: real transaction names in the low range; timeline (virtual)
/// nodes tagged in the high bits.
using NodeId = uint64_t;

NodeId RealNode(TxName t) { return t; }
NodeId VirtualNode(size_t k) { return (uint64_t{1} << 32) | k; }
bool IsRealNode(NodeId n) { return (n >> 32) == 0; }

/// Builds the combined conflict + timeline graph (see header).
std::map<NodeId, std::vector<NodeId>> BuildFastGraph(const SystemType& type,
                                                     const Trace& beta,
                                                     ConflictMode mode,
                                                     FastSgReport* report) {
  std::map<NodeId, std::vector<NodeId>> adj;

  std::vector<SiblingEdge> conflicts = ConflictRelation(type, beta, mode);
  report->conflict_edge_count = conflicts.size();
  for (const SiblingEdge& e : conflicts) {
    adj[RealNode(e.from)].push_back(RealNode(e.to));
    adj.try_emplace(RealNode(e.to));
  }

  TraceIndex index(type, beta);
  struct ParentState {
    std::vector<TxName> pending_reported;
    NodeId last_virtual = 0;
    bool has_virtual = false;
  };
  std::map<TxName, ParentState> parents;
  size_t next_virtual = 0;

  for (const Action& a : beta) {
    if (a.kind == ActionKind::kReportCommit ||
        a.kind == ActionKind::kReportAbort) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      parents[p].pending_reported.push_back(a.tx);
    } else if (a.kind == ActionKind::kRequestCreate) {
      TxName p = type.parent(a.tx);
      if (!index.IsVisible(p, kT0)) continue;
      ParentState& st = parents[p];
      if (!st.pending_reported.empty()) {
        // Seal an epoch: reported children funnel into a fresh node.
        NodeId v = VirtualNode(next_virtual++);
        ++report->timeline_node_count;
        for (TxName c : st.pending_reported) {
          adj[RealNode(c)].push_back(v);
          ++report->timeline_edge_count;
        }
        st.pending_reported.clear();
        if (st.has_virtual) {
          adj[st.last_virtual].push_back(v);
          ++report->timeline_edge_count;
        }
        adj.try_emplace(v);
        st.last_virtual = v;
        st.has_virtual = true;
      }
      if (st.has_virtual) {
        adj[st.last_virtual].push_back(RealNode(a.tx));
        adj.try_emplace(RealNode(a.tx));
        ++report->timeline_edge_count;
      }
    }
  }
  return adj;
}

/// Kahn's algorithm with a deterministic (ordered) frontier. Returns the
/// topological sequence, or an empty vector on a cycle.
std::vector<NodeId> TopoSort(const std::map<NodeId, std::vector<NodeId>>& adj) {
  std::map<NodeId, int> indegree;
  for (const auto& [n, succs] : adj) {
    indegree.try_emplace(n, 0);
    for (NodeId s : succs) indegree[s]++;
  }
  std::set<NodeId> frontier;
  for (const auto& [n, d] : indegree) {
    if (d == 0) frontier.insert(n);
  }
  std::vector<NodeId> order;
  while (!frontier.empty()) {
    NodeId n = *frontier.begin();
    frontier.erase(frontier.begin());
    order.push_back(n);
    auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (NodeId s : it->second) {
      if (--indegree[s] == 0) frontier.insert(s);
    }
  }
  if (order.size() != indegree.size()) return {};  // Cycle.
  return order;
}

}  // namespace

FastSgReport FastSgAcyclicity(const SystemType& type, const Trace& beta,
                              ConflictMode mode) {
  FastSgReport report;
  auto adj = BuildFastGraph(type, beta, mode, &report);
  report.acyclic = !TopoSort(adj).empty() || adj.empty();
  return report;
}

std::optional<std::map<TxName, std::vector<TxName>>> FastTopologicalOrders(
    const SystemType& type, const Trace& beta, ConflictMode mode) {
  FastSgReport report;
  auto adj = BuildFastGraph(type, beta, mode, &report);
  std::vector<NodeId> order = TopoSort(adj);
  if (order.empty() && !adj.empty()) return std::nullopt;

  std::map<TxName, std::vector<TxName>> result;
  for (NodeId n : order) {
    if (!IsRealNode(n)) continue;
    TxName t = static_cast<TxName>(n);
    result[type.parent(t)].push_back(t);
  }
  return result;
}

}  // namespace ntsg
