#include "sg/appropriate.h"

#include <map>

#include "common/logging.h"
#include "spec/final_value.h"
#include "spec/replay.h"

namespace ntsg {

Status CheckAppropriateReturnValuesRw(const SystemType& type,
                                      const Trace& beta) {
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    NTSG_CHECK(type.object_type(x) == ObjectType::kReadWrite)
        << "read/write appropriateness requires read/write objects";
  }
  Trace vis = VisibleTo(type, beta, kT0);
  // Walk visible(β, T0) maintaining the last write per object.
  std::map<ObjectId, TxName> last_write;
  for (const Action& a : vis) {
    if (a.kind != ActionKind::kRequestCommit || !type.IsAccess(a.tx)) continue;
    const AccessSpec& acc = type.access(a.tx);
    if (acc.op == OpCode::kWrite) {
      if (!a.value.is_ok()) {
        return Status::VerificationFailed(
            "write access returned non-OK: " + a.ToString(type));
      }
      last_write[acc.object] = a.tx;
    } else {
      auto it = last_write.find(acc.object);
      int64_t expect = it == last_write.end()
                           ? type.object_initial(acc.object)
                           : type.access(it->second).arg;
      if (a.value.is_ok() || a.value.AsInt() != expect) {
        return Status::VerificationFailed(
            "read access returned " + a.value.ToString() + " but final-value" +
            " of the visible prefix is " + std::to_string(expect) + ": " +
            a.ToString(type));
      }
    }
  }
  return Status::Ok();
}

Status CheckAppropriateReturnValuesGeneral(const SystemType& type,
                                           const Trace& beta) {
  Trace vis = VisibleTo(type, beta, kT0);
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    std::vector<Operation> ops =
        OperationsIn(type, ProjectObject(type, vis, x));
    Status s = ReplayOperations(type, x, ops);
    if (!s.ok()) {
      return Status::VerificationFailed(
          "object " + type.object_name(x) +
          ": visible operations are not a serial behavior: " + s.message());
    }
  }
  return Status::Ok();
}

namespace {

/// clean-last-write of the prefix beta[0, pos): the last write access to X
/// whose transaction is not an orphan within that prefix.
std::optional<TxName> CleanLastWriteOfPrefix(const SystemType& type,
                                             const Trace& beta, size_t pos,
                                             ObjectId x) {
  // Collect aborts within the prefix for orphan tests.
  std::vector<uint8_t> aborted(type.num_names(), 0);
  for (size_t i = 0; i < pos; ++i) {
    if (beta[i].kind == ActionKind::kAbort) aborted[beta[i].tx] = 1;
  }
  auto is_orphan = [&](TxName t) {
    for (TxName u = t;; u = type.parent(u)) {
      if (aborted[u]) return true;
      if (u == kT0) return false;
    }
  };
  std::optional<TxName> result;
  for (size_t i = 0; i < pos; ++i) {
    const Action& a = beta[i];
    if (a.kind != ActionKind::kRequestCommit || !type.IsAccess(a.tx)) continue;
    const AccessSpec& acc = type.access(a.tx);
    if (acc.object != x || acc.op != OpCode::kWrite) continue;
    if (!is_orphan(a.tx)) result = a.tx;
  }
  return result;
}

}  // namespace

bool IsCurrentReadEvent(const SystemType& type, const Trace& beta,
                        size_t pos) {
  const Action& a = beta[pos];
  NTSG_CHECK(a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx));
  const AccessSpec& acc = type.access(a.tx);
  NTSG_CHECK(acc.op == OpCode::kRead);
  std::optional<TxName> lw =
      CleanLastWriteOfPrefix(type, beta, pos, acc.object);
  int64_t expect =
      lw.has_value() ? type.access(*lw).arg : type.object_initial(acc.object);
  return !a.value.is_ok() && a.value.AsInt() == expect;
}

bool IsSafeReadEvent(const SystemType& type, const Trace& beta, size_t pos) {
  const Action& a = beta[pos];
  NTSG_CHECK(a.kind == ActionKind::kRequestCommit && type.IsAccess(a.tx));
  const AccessSpec& acc = type.access(a.tx);
  NTSG_CHECK(acc.op == OpCode::kRead);
  std::optional<TxName> lw =
      CleanLastWriteOfPrefix(type, beta, pos, acc.object);
  if (!lw.has_value()) return true;
  // Visibility of the writer to the reader, judged in the prefix.
  Trace prefix(beta.begin(), beta.begin() + static_cast<long>(pos));
  return TraceIndex(type, prefix).IsVisible(*lw, a.tx);
}

Status CheckCurrentAndSafe(const SystemType& type, const Trace& beta) {
  // Identify the events of visible(β, T0) by index.
  TraceIndex index(type, beta);
  for (size_t i = 0; i < beta.size(); ++i) {
    const Action& a = beta[i];
    if (a.kind != ActionKind::kRequestCommit || !type.IsAccess(a.tx)) continue;
    TxName high = HighTransactionOf(type, a);
    if (!index.IsVisible(high, kT0)) continue;
    const AccessSpec& acc = type.access(a.tx);
    if (acc.op == OpCode::kWrite) {
      if (!a.value.is_ok()) {
        return Status::VerificationFailed("write returned non-OK: " +
                                          a.ToString(type));
      }
    } else {
      if (!IsCurrentReadEvent(type, beta, i)) {
        return Status::VerificationFailed("read not current: " +
                                          a.ToString(type));
      }
      if (!IsSafeReadEvent(type, beta, i)) {
        return Status::VerificationFailed("read not safe (dirty read): " +
                                          a.ToString(type));
      }
    }
  }
  return Status::Ok();
}

}  // namespace ntsg
