#ifndef NTSG_SG_AFFECTS_H_
#define NTSG_SG_AFFECTS_H_

#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sg/conflicts.h"
#include "tx/trace.h"

namespace ntsg {

/// directly-affects(β) (Section 2.3.2): pairs of event *indices* (i, j),
/// i < j, such that one of the paper's six causality rules relates β[i] to
/// β[j]:
///   * transaction(β[i]) == transaction(β[j]) (same automaton, in order);
///   * REQUEST_CREATE(T)  -> CREATE(T);
///   * REQUEST_COMMIT(T,v)-> COMMIT(T);
///   * REQUEST_CREATE(T)  -> ABORT(T);
///   * COMMIT(T)          -> REPORT_COMMIT(T,v);
///   * ABORT(T)           -> REPORT_ABORT(T).
/// `beta` must be a sequence of serial actions. O(n^2); intended for
/// validation on modest traces.
std::vector<std::pair<size_t, size_t>> DirectlyAffects(const SystemType& type,
                                                       const Trace& beta);

/// Checks the *suitability* (Section 2.3.2) of a sibling order for β and T0:
///   1. every pair of siblings that are lowtransactions of events in
///      visible(β, T0) is ordered;
///   2. R_event(β) and affects(β) are consistent partial orders on the
///      events of visible(β, T0) — equivalently, their union is acyclic.
/// `order` lists, per parent, its children in the proposed order (as
/// produced by SerializationGraph::TopologicalOrders, possibly extended).
/// Used by tests to validate the order the certifier/witness derives.
Status CheckSuitability(
    const SystemType& type, const Trace& beta,
    const std::map<TxName, std::vector<TxName>>& order);

}  // namespace ntsg

#endif  // NTSG_SG_AFFECTS_H_
