#include "sg/incremental_certifier.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sg/fingerprint.h"

namespace ntsg {

namespace {

/// Tracker tags: plain positions address pending operations; the high bit
/// marks a parent-scope activation (positions and names both stay far below
/// 2^63).
constexpr uint64_t kScopeTagBit = 1ull << 63;

}  // namespace

// --- VisibilityTracker ------------------------------------------------------

TxName VisibilityTracker::BlockerOf(TxName subject, bool* dead) const {
  *dead = false;
  for (TxName u = subject; u != kT0; u = type_->parent(u)) {
    uint8_t f = Flags(u);
    if ((f & kAbortedBit) != 0) {
      *dead = true;
      return kInvalidTx;
    }
    if ((f & kCommittedBit) == 0) return u;
  }
  return kInvalidTx;
}

void VisibilityTracker::SetBit(TxName t, uint8_t bit) {
  size_t p = t >> kPageBits;
  if (p >= pages_.size()) pages_.resize(p + 1);
  Page& page = pages_[p];
  if (page.flags.empty()) page.flags.assign(kPageSize, 0);
  uint8_t& f = page.flags[t & (kPageSize - 1)];
  if (f == 0) ++page.live;
  f |= bit;
}

bool VisibilityTracker::NeverVisible(TxName t) const {
  for (TxName u = t; u != kT0; u = type_->parent(u)) {
    if ((Flags(u) & kAbortedBit) != 0) return true;
  }
  return false;
}

void VisibilityTracker::Retire(TxName t) {
  waiters_.erase(t);
  size_t p = t >> kPageBits;
  if (p >= pages_.size() || pages_[p].flags.empty()) return;
  Page& page = pages_[p];
  uint8_t& f = page.flags[t & (kPageSize - 1)];
  if (f == 0) return;
  f = 0;
  if (--page.live == 0) page.flags = {};  // Free the whole page.
}

VisibilityTracker::WatchResult VisibilityTracker::Watch(TxName subject,
                                                        uint64_t tag) {
  bool dead = false;
  TxName blocker = BlockerOf(subject, &dead);
  if (dead) return WatchResult::kDead;
  if (blocker == kInvalidTx) return WatchResult::kVisible;
  waiters_[blocker].push_back(Item{subject, tag});
  return WatchResult::kParked;
}

void VisibilityTracker::OnCommit(TxName t, std::vector<Item>* fired,
                                 std::vector<Item>* dropped) {
  SetBit(t, kCommittedBit);
  auto it = waiters_.find(t);
  if (it == waiters_.end()) return;
  std::vector<Item> parked = std::move(it->second);
  waiters_.erase(it);
  for (Item& item : parked) {
    bool dead = false;
    TxName blocker = BlockerOf(item.subject, &dead);
    if (dead) {
      if (dropped != nullptr) dropped->push_back(item);
      continue;
    }
    if (blocker == kInvalidTx) {
      fired->push_back(item);
    } else {
      waiters_[blocker].push_back(item);
    }
  }
}

void VisibilityTracker::OnAbort(TxName t, std::vector<Item>* dropped) {
  SetBit(t, kAbortedBit);
  // Items parked on t waited for COMMIT(t), which can no longer happen.
  auto it = waiters_.find(t);
  if (it == waiters_.end()) return;
  if (dropped != nullptr) {
    dropped->insert(dropped->end(), it->second.begin(), it->second.end());
  }
  waiters_.erase(it);
}

// --- ObjectIngestState ------------------------------------------------------

ObjectIngestState::ObjectIngestState(const SystemType& type, ObjectId x,
                                     ConflictMode mode)
    : type_(&type),
      x_(x),
      frontier_(type, mode, x),
      replay_(MakeSpec(type.object_type(x), type.object_initial(x))) {}

ObjectIngestState::ObjectIngestState(const ObjectIngestState& other)
    : type_(other.type_),
      x_(other.x_),
      ops_(other.ops_),
      frontier_(other.frontier_),
      replay_(other.replay_->Clone()),
      legal_(other.legal_),
      base_(other.base_ == nullptr ? nullptr : other.base_->Clone()),
      base_illegal_(other.base_illegal_),
      pruned_upto_(other.pruned_upto_) {}

ObjectIngestState& ObjectIngestState::operator=(
    const ObjectIngestState& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  x_ = other.x_;
  ops_ = other.ops_;
  frontier_ = other.frontier_;
  replay_ = other.replay_->Clone();
  legal_ = other.legal_;
  base_ = other.base_ == nullptr ? nullptr : other.base_->Clone();
  base_illegal_ = other.base_illegal_;
  pruned_upto_ = other.pruned_upto_;
  return *this;
}

void ObjectIngestState::InsertVisibleOp(uint64_t pos, TxName tx,
                                        const Value& v,
                                        std::vector<SiblingEdge>* new_edges) {
  if (pos < pruned_upto_) {
    // Redelivery of an operation the GC already folded into the checkpoint
    // (an at-least-once transport replaying a pruned position). Dropping it
    // before any side effect keeps pruning invisible to the verdict; the
    // frontier no longer holds the entries a re-probe would need anyway.
    return;
  }
  auto existing = ops_.find(pos);
  if (existing != ops_.end()) {
    // Duplicated delivery: at-least-once transports may hand us the same
    // operation twice. It must be byte-for-byte the same one; dropping it
    // is what makes redelivery idempotent.
    NTSG_CHECK(existing->second.tx == tx && existing->second.value == v)
        << "conflicting redelivery at trace position " << pos;
    return;
  }

  frontier_.AddOp(tx, v, pos, new_edges);

  auto [it, inserted] = ops_.emplace(pos, Operation{tx, v});
  NTSG_CHECK(inserted);
  if (std::next(it) == ops_.end() && legal_) {
    // Appended at the end of the visible sequence: extend the replay.
    const AccessSpec& acc = type_->access(tx);
    if (replay_->Apply(acc.op, acc.arg) != v) legal_ = false;
  } else if (std::next(it) != ops_.end()) {
    // Revealed out of order: the replay suffix is stale either way.
    Recompute();
  }
  // Appended while already illegal: the first divergence is untouched, so
  // the sequence stays illegal; nothing to do.
}

void ObjectIngestState::Recompute() {
  replay_ = base_ == nullptr
                ? MakeSpec(type_->object_type(x_), type_->object_initial(x_))
                : base_->Clone();
  legal_ = !base_illegal_;
  if (!legal_) return;
  for (const auto& [p, op] : ops_) {
    const AccessSpec& acc = type_->access(op.tx);
    if (replay_->Apply(acc.op, acc.arg) != op.value) {
      legal_ = false;
      break;
    }
  }
}

size_t ObjectIngestState::Retire(
    const std::unordered_set<TxName>& retired_roots) {
  frontier_.Retire(retired_roots);
  size_t pruned = 0;
  auto it = ops_.begin();
  while (it != ops_.end()) {
    // An access at depth 1 is its own family root.
    TxName root = type_->AncestorAtDepth(it->second.tx, 1);
    if (retired_roots.count(root) == 0) break;
    if (base_ == nullptr) {
      base_ = MakeSpec(type_->object_type(x_), type_->object_initial(x_));
    }
    if (!base_illegal_) {
      const AccessSpec& acc = type_->access(it->second.tx);
      if (base_->Apply(acc.op, acc.arg) != it->second.value) {
        base_illegal_ = true;
      }
    }
    pruned_upto_ = it->first + 1;
    it = ops_.erase(it);
    ++pruned;
  }
  return pruned;
}

// --- IncrementalCertifier ---------------------------------------------------

IncrementalCertifier::IncrementalCertifier(const SystemType& type,
                                           ConflictMode mode, GcOptions gc)
    : type_(&type), mode_(mode), tracker_(type), gc_(gc) {}

IncrementalCertifier::IncrementalCertifier(const IncrementalCertifier& other)
    : type_(other.type_),
      mode_(other.mode_),
      tracker_(other.tracker_),
      illegal_objects_(other.illegal_objects_),
      scopes_(other.scopes_),
      pending_ops_(other.pending_ops_),
      conflict_edges_(other.conflict_edges_),
      precedes_edges_(other.precedes_edges_),
      graph_(other.graph_),
      acyclic_(other.acyclic_),
      pos_(other.pos_),
      first_rejection_pos_(other.first_rejection_pos_),
      cycle_witness_(other.cycle_witness_),
      gc_(other.gc_),
      book_(other.book_),
      gc_stats_(other.gc_stats_) {
  objects_.reserve(other.objects_.size());
  for (const auto& state : other.objects_) {
    objects_.push_back(state == nullptr
                           ? nullptr
                           : std::make_unique<ObjectIngestState>(*state));
  }
}

IncrementalCertifier& IncrementalCertifier::operator=(
    const IncrementalCertifier& other) {
  if (this == &other) return *this;
  IncrementalCertifier copy(other);
  type_ = copy.type_;
  mode_ = copy.mode_;
  tracker_ = std::move(copy.tracker_);
  objects_ = std::move(copy.objects_);
  illegal_objects_ = copy.illegal_objects_;
  scopes_ = std::move(copy.scopes_);
  pending_ops_ = std::move(copy.pending_ops_);
  conflict_edges_ = std::move(copy.conflict_edges_);
  precedes_edges_ = std::move(copy.precedes_edges_);
  graph_ = std::move(copy.graph_);
  acyclic_ = copy.acyclic_;
  pos_ = copy.pos_;
  first_rejection_pos_ = copy.first_rejection_pos_;
  cycle_witness_ = std::move(copy.cycle_witness_);
  gc_ = copy.gc_;
  book_ = std::move(copy.book_);
  gc_stats_ = copy.gc_stats_;
  // Batch staging is empty at every public-call boundary (FlushBatch runs
  // before IngestBatch returns); clear defensively rather than copy.
  batching_ = false;
  staged_edges_.clear();
  staged_illegal_pos_.reset();
  batch_actions_ = 0;
  return *this;
}

ObjectIngestState& IncrementalCertifier::ObjectState(ObjectId x) {
  if (x >= objects_.size()) objects_.resize(x + 1);
  if (objects_[x] == nullptr) {
    objects_[x] = std::make_unique<ObjectIngestState>(*type_, x, mode_);
  }
  return *objects_[x];
}

void IncrementalCertifier::FireItem(const VisibilityTracker::Item& item) {
  if (item.tag & kScopeTagBit) {
    ActivateScope(static_cast<TxName>(item.tag & ~kScopeTagBit));
    return;
  }
  obs::TraceEmit(obs::TraceEventKind::kOpFired, item.subject, item.subject, 0,
                 0, item.tag);
  auto it = pending_ops_.find(item.tag);
  NTSG_CHECK(it != pending_ops_.end()) << "fired op without pending entry";
  PendingOp op = it->second;
  pending_ops_.erase(it);
  ActivateOp(item.tag, op.tx, op.value);
}

void IncrementalCertifier::DropItem(const VisibilityTracker::Item& item) {
  if (item.tag & kScopeTagBit) return;  // Scope state stays parked in scopes_.
  obs::GetCertifierMetrics().ops_dropped->Inc();
  obs::TraceEmit(obs::TraceEventKind::kOpDropped, item.subject, item.subject,
                 0, 0, item.tag);
  pending_ops_.erase(item.tag);
}

bool IncrementalCertifier::IngestAction(const Action& a) {
  obs::GetCertifierMetrics().actions_ingested->Inc();
  uint64_t pos = pos_++;
  if (gc_.enabled() && a.tx != kT0) {
    TxName root = GcFamilyBook::RootOf(*type_, a.tx);
    if (book_.IsRetired(root)) {
      // Well-formed streams do still name retired families: INFORM_* and
      // CREATE deliveries are verdict-inert by definition, and an aborted
      // root's orphaned descendants keep running (and eventually aborting)
      // long after the T0-level REPORT_ABORT. Both classes are invisible at
      // T0, so an unpruned certifier would ignore them too — drop them
      // silently; the position is still consumed to keep the stream
      // numbering aligned. Anything else naming a retired family means the
      // stream re-used a name whose whole lifecycle, report included, sat
      // below the watermark — count it as a late event and refuse to
      // resurrect reclaimed state.
      if (a.kind == ActionKind::kCreate ||
          a.kind == ActionKind::kInformCommit ||
          a.kind == ActionKind::kInformAbort || book_.RetiredAborted(root)) {
        return false;
      }
      ++gc_stats_.late_events;
      obs::GetGcMetrics().late_events->Inc();
      obs::TraceEmit(obs::TraceEventKind::kGcLateEvent, kT0, a.tx,
                     static_cast<uint32_t>(a.kind), 0, pos);
      return false;
    }
    book_.NoteRoot(root);
    // Resolution is keyed off the T0-level *report*, not the commit/abort
    // itself: the report is the last event that can touch T0's sibling
    // ordering (precedes(β) at the top level).
    if ((a.kind == ActionKind::kReportCommit ||
         a.kind == ActionKind::kReportAbort) &&
        type_->depth(a.tx) == 1) {
      book_.NoteResolved(a.tx, a.kind == ActionKind::kReportAbort);
    }
  }
  if (obs::TraceEnabled()) {
    // The causal span is the paper's hightransaction(π): the transaction
    // whose scope the action occurs in (completions land on the parent).
    TxName span = HighTransactionOf(*type_, a);
    if (span == kInvalidTx) span = kT0;
    obs::TraceEmit(obs::TraceEventKind::kActionIngested, span, a.tx,
                   static_cast<uint32_t>(a.kind), 0, pos);
  }
  // Member scratch, not locals: the park/fire path runs once per action and
  // a fresh pair of vectors here was the dominant steady-state allocation
  // (bench_incremental_certifier). FireItem/DropItem never re-enter this
  // path, so one scratch pair per certifier is safe.
  fired_scratch_.clear();
  dropped_scratch_.clear();
  std::vector<VisibilityTracker::Item>& fired = fired_scratch_;
  std::vector<VisibilityTracker::Item>& dropped = dropped_scratch_;
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_->IsAccess(a.tx)) {
        switch (tracker_.Watch(a.tx, pos)) {
          case VisibilityTracker::WatchResult::kVisible:
            ActivateOp(pos, a.tx, a.value);
            break;
          case VisibilityTracker::WatchResult::kParked:
            obs::GetCertifierMetrics().ops_parked->Inc();
            obs::TraceEmit(obs::TraceEventKind::kOpParked, a.tx, a.tx, 0, 0,
                           pos);
            pending_ops_.emplace(pos, PendingOp{a.tx, a.value});
            break;
          case VisibilityTracker::WatchResult::kDead:
            break;
        }
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      if (obs::TraceEnabled()) {
        // REQUEST_CREATE(T) .. REPORT_*(T) is T's interval in the parent's
        // span — the tree-shaped causal context of the tentpole.
        TxName parent = type_->parent(a.tx);
        obs::TraceEmit(obs::TraceEventKind::kSpanEnd, parent, a.tx, parent,
                       a.kind == ActionKind::kReportAbort ? obs::kTraceFlagAbort
                                                          : uint8_t{0},
                       pos);
      }
      ScopeEvent(type_->parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      if (obs::TraceEnabled()) {
        TxName parent = type_->parent(a.tx);
        obs::TraceEmit(obs::TraceEventKind::kSpanBegin, parent, a.tx, parent,
                       0, pos);
      }
      ScopeEvent(type_->parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit:
      tracker_.OnCommit(a.tx, &fired, &dropped);
      break;
    case ActionKind::kAbort:
      tracker_.OnAbort(a.tx, &dropped);
      break;
    default:
      break;  // CREATE and INFORM_* never affect the verdict.
  }
  obs::GetCertifierMetrics().visibility_fired->Inc(fired.size());
  for (const auto& item : fired) FireItem(item);
  for (const auto& item : dropped) DropItem(item);
  return true;
}

void IncrementalCertifier::Ingest(const Action& a) {
  if (!IngestAction(a)) return;
  NoteVerdict();
  if (gc_.enabled() && pos_ % gc_.interval == 0) RunGc();
}

void IncrementalCertifier::IngestTrace(const Trace& beta) {
  for (const Action& a : beta) Ingest(a);
}

void IncrementalCertifier::IngestBatch(std::span<const Action> batch) {
  for (const Action& a : batch) {
    if (!acyclic_) {
      // Cyclic verdicts are final and the witness must stay intact; the
      // remaining actions only update object replay state, which the
      // per-event path already does minimally.
      Ingest(a);
      continue;
    }
    batching_ = true;
    bool processed = IngestAction(a);
    ++batch_actions_;
    if (!processed) continue;  // Dropped late event: no verdict/GC tail.
    // Deferred NoteVerdict: graph insertions are staged, so acyclic_ cannot
    // flip mid-batch — but illegal return values surface immediately. Latch
    // the first such position; FlushBatch reconciles it against the first
    // cycle-closing action, which may be earlier.
    if (!first_rejection_pos_.has_value() && !staged_illegal_pos_.has_value() &&
        illegal_objects_ != 0) {
      staged_illegal_pos_ = pos_ - 1;
    }
    if (gc_.enabled() && pos_ % gc_.interval == 0) {
      // A batch never spans a GC barrier: the collector walks the live
      // graph (predecessor closure, retirement), so every staged edge must
      // be committed or rejected before it runs.
      FlushBatch();
      RunGc();
    }
  }
  if (batching_) FlushBatch();
}

void IncrementalCertifier::IngestTraceBatched(const Trace& beta,
                                              size_t batch_size) {
  if (batch_size <= 1) {
    IngestTrace(beta);
    return;
  }
  for (size_t i = 0; i < beta.size(); i += batch_size) {
    size_t n = std::min(batch_size, beta.size() - i);
    IngestBatch(std::span<const Action>(beta.data() + i, n));
  }
}

void IncrementalCertifier::FlushBatch() {
  batching_ = false;
  std::optional<uint64_t> cycle_pos;
  if (!staged_edges_.empty()) {
    obs::SpanTimer span(obs::GetBatchMetrics().commit_us);
    std::vector<IncrementalTopoGraph::BatchEdge> edges;
    edges.reserve(staged_edges_.size());
    for (const StagedEdge& e : staged_edges_) {
      edges.push_back(IncrementalTopoGraph::BatchEdge{e.from, e.to});
    }
    IncrementalTopoGraph::BatchAddResult r = graph_.AddEdgesBatch(edges);
    if (r.ok) {
      obs::GetBatchMetrics().batches_committed->Inc();
      obs::GetBatchMetrics().edges_committed->Inc(r.fresh_edges);
      obs::TraceEmit(obs::TraceEventKind::kBatchCommit, kT0,
                     static_cast<uint32_t>(staged_edges_.size()),
                     static_cast<uint32_t>(r.fresh_edges), 0, r.region_nodes);
      if (obs::TraceEnabled()) {
        // Keep the flight-recorder edge stream identical to per-event mode.
        for (const StagedEdge& e : staged_edges_) {
          obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, e.parent, e.from,
                         e.to,
                         e.is_conflict ? obs::kTraceFlagConflict
                                       : obs::kTraceFlagPrecedes);
        }
      }
    } else {
      // Somewhere in the batch a sequential insertion would have refused an
      // edge. The failed commit left the graph untouched, so replaying the
      // staged sequence per-edge from the top reproduces the per-event run
      // exactly: same first rejection, same FindPath witness, same
      // post-rejection insertions.
      obs::GetBatchMetrics().batches_bisected->Inc();
      obs::TraceEmit(obs::TraceEventKind::kBatchBisect, kT0,
                     static_cast<uint32_t>(staged_edges_.size()), 0, 0,
                     staged_edges_.size());
      for (const StagedEdge& e : staged_edges_) {
        bool was_acyclic = acyclic_;
        AddGraphEdge(e.parent, e.from, e.to, e.is_conflict);
        if (was_acyclic && !acyclic_) cycle_pos = e.action_pos;
      }
    }
    staged_edges_.clear();
  }
  obs::GetBatchMetrics().actions_batched->Inc(batch_actions_);
  obs::GetBatchMetrics().batch_size->Observe(
      static_cast<double>(batch_actions_));
  batch_actions_ = 0;
  if (!first_rejection_pos_.has_value()) {
    // What per-event NoteVerdict would have latched: the first action whose
    // processing left the verdict not-OK — the earlier of the first illegal-
    // values position and the first cycle-closing action. Flags reflect the
    // state at that action, so only causes at or before it are set.
    std::optional<uint64_t> bad = staged_illegal_pos_;
    if (cycle_pos.has_value() && (!bad.has_value() || *cycle_pos < *bad)) {
      bad = cycle_pos;
    }
    if (bad.has_value()) {
      first_rejection_pos_ = bad;
      uint8_t flags = 0;
      if (staged_illegal_pos_.has_value() && *staged_illegal_pos_ <= *bad) {
        flags |= obs::kTraceFlagInappropriate;
      }
      if (cycle_pos.has_value() && *cycle_pos <= *bad) {
        flags |= obs::kTraceFlagCycle;
      }
      obs::TraceEmit(obs::TraceEventKind::kVerdictRejected, kT0, 0, 0, flags,
                     *first_rejection_pos_);
    }
  }
  staged_illegal_pos_.reset();
}

void IncrementalCertifier::ActivateOp(uint64_t pos, TxName tx,
                                      const Value& v) {
  obs::GetCertifierMetrics().ops_activated->Inc();
  obs::TraceEmit(obs::TraceEventKind::kOpActivated, tx, tx, 0, 0, pos);
  if (gc_.enabled()) book_.NoteOp(GcFamilyBook::RootOf(*type_, tx), pos);
  ObjectIngestState& state = ObjectState(type_->ObjectOf(tx));
  bool was_legal = state.legal();
  // The frontier performs the lca / child-toward mapping itself and dedups
  // within the object; the certifier-level set dedups across objects. Member
  // scratch: this runs once per activated op and is not re-entered (the
  // AddGraphEdge below never fires another activation).
  edge_scratch_.clear();
  state.InsertVisibleOp(pos, tx, v, &edge_scratch_);
  if (was_legal != state.legal()) {
    illegal_objects_ += was_legal ? 1 : -1;
  }
  for (const SiblingEdge& e : edge_scratch_) {
    if (conflict_edges_.Insert(e)) {
      obs::GetCertifierMetrics().conflict_edges->Inc();
      AddGraphEdge(e.parent, e.from, e.to, /*is_conflict=*/true);
    }
  }
}

void IncrementalCertifier::ScopeEvent(TxName parent, bool is_report,
                                      TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    if (tracker_.Watch(parent, kScopeTagBit | parent) ==
        VisibilityTracker::WatchResult::kVisible) {
      scope.visible = true;  // e.g. parent == T0.
    }
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) {
      EmitPrecedes(parent, earlier, child);
    }
  }
}

void IncrementalCertifier::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  for (const auto& [is_report, child] : scope.buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        EmitPrecedes(parent, earlier, child);
      }
    }
  }
  scope.buffer.clear();
}

void IncrementalCertifier::EmitPrecedes(TxName parent, TxName from,
                                        TxName to) {
  if (from == to) return;
  if (precedes_edges_.Insert(SiblingEdge{parent, from, to})) {
    obs::GetCertifierMetrics().precedes_edges->Inc();
    AddGraphEdge(parent, from, to, /*is_conflict=*/false);
  }
}

void IncrementalCertifier::AddGraphEdge(TxName parent, TxName from, TxName to,
                                        bool is_conflict) {
  if (batching_) {
    // Deferred to FlushBatch. acyclic_ is true here (IngestBatch falls back
    // to per-event once it flips), so staging never hides a final verdict.
    staged_edges_.push_back(
        StagedEdge{parent, from, to, is_conflict, pos_ - 1});
    obs::GetBatchMetrics().edges_staged->Inc();
    return;
  }
  obs::SpanTimer span(obs::GetCertifierMetrics().edge_insert_us);
  uint8_t relation =
      is_conflict ? obs::kTraceFlagConflict : obs::kTraceFlagPrecedes;
  if (graph_.AddEdge(from, to)) {
    obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, parent, from, to,
                   relation);
    return;
  }
  obs::GetCertifierMetrics().cycle_rejections->Inc();
  obs::TraceEmit(obs::TraceEventKind::kEdgeRejected, parent, from, to,
                 relation);
  if (acyclic_) {
    // First rejection: the graph still holds exactly the acyclic prefix, so
    // the refused edge plus the to ->* from path is the cycle it would have
    // closed. [to, ..., from] in cycle order; the closing edge is the
    // rejected one.
    cycle_witness_ = graph_.FindPath(to, from);
  }
  acyclic_ = false;
}

void IncrementalCertifier::NoteVerdict() {
  if (!first_rejection_pos_.has_value() && !verdict().ok()) {
    first_rejection_pos_ = pos_ - 1;
    uint8_t flags = 0;
    if (illegal_objects_ != 0) flags |= obs::kTraceFlagInappropriate;
    if (!acyclic_) flags |= obs::kTraceFlagCycle;
    obs::TraceEmit(obs::TraceEventKind::kVerdictRejected, kT0, 0, 0, flags,
                   *first_rejection_pos_);
  }
}

uint64_t IncrementalCertifier::graph_fingerprint() const {
  // The fingerprinter wants strictly increasing edge order; the flat sets
  // record insertion order, so sort first.
  GraphFingerprinter fp;
  for (const SiblingEdge& e : conflict_edges_.SortedEdges()) fp.AddConflict(e);
  for (const SiblingEdge& e : precedes_edges_.SortedEdges()) fp.AddPrecedes(e);
  return fp.Finish();
}

uint64_t IncrementalCertifier::FingerprintLiveScope(
    const std::unordered_set<TxName>& retired_roots) const {
  // An edge is in retired scope iff its T0-projected endpoints are: sibling
  // edges never cross a parent boundary, so a non-T0 edge lies inside one
  // family (its parent's), and a T0 edge touches a retired family iff an
  // endpoint is a retired root.
  auto retired_edge = [&](const SiblingEdge& e) {
    if (e.parent == kT0) {
      return retired_roots.count(e.from) != 0 ||
             retired_roots.count(e.to) != 0;
    }
    return retired_roots.count(type_->AncestorAtDepth(e.parent, 1)) != 0;
  };
  GraphFingerprinter fp;
  for (const SiblingEdge& e : conflict_edges_.SortedEdges()) {
    if (!retired_edge(e)) fp.AddConflict(e);
  }
  for (const SiblingEdge& e : precedes_edges_.SortedEdges()) {
    if (!retired_edge(e)) fp.AddPrecedes(e);
  }
  return fp.Finish();
}

void IncrementalCertifier::RunGc() {
  // A cycle is final and its witness must survive untouched, so the
  // collector stands down once acyclicity is lost. Value-inappropriateness
  // does NOT stop collection: it can be transient (an out-of-order reveal
  // that a still-parked operation will heal), and the ops involved sit
  // above the watermark by construction — any family whose ops interleave
  // with parked work cannot seal — so retirement never disturbs it.
  if (!gc_.enabled() || !acyclic_) return;
  obs::SpanTimer span(obs::GetGcMetrics().run_us);
  ++gc_stats_.runs;
  obs::GetGcMetrics().runs->Inc();

  // Watermark W: no activation after this point can carry a position < W.
  // Fresh actions take positions >= pos_; the only older positions still
  // able to activate belong to parked pending operations that are not dead
  // (an aborted-ancestor op never fires). Families owning live parked work
  // — operations or unactivated scopes with future precedes edges — are
  // blocked outright.
  uint64_t watermark = pos_;
  std::unordered_set<TxName> blocked;
  for (const auto& [pos, op] : pending_ops_) {
    if (tracker_.NeverVisible(op.tx)) continue;
    blocked.insert(GcFamilyBook::RootOf(*type_, op.tx));
    watermark = std::min(watermark, pos);
  }
  for (const auto& [parent, scope] : scopes_) {
    if (parent == kT0 || scope.visible) continue;
    if (tracker_.NeverVisible(parent)) continue;
    blocked.insert(GcFamilyBook::RootOf(*type_, parent));
  }

  gc_stats_.last_watermark = watermark;

  std::vector<TxName> sealed =
      book_.SealedCandidates(static_cast<size_t>(watermark), blocked);

  // Predecessor closure: retire a sealed family only if every graph
  // in-neighbor (a T0-level sibling, by the component structure) retires
  // with it. Without this, an existing live→sealed edge plus a future
  // (suppressed) sealed→live edge could hide a cycle from the pruned
  // certifier. With it, no live→retired edge ever exists, which is also
  // what keeps FindPath witnesses identical (DESIGN.md §10).
  std::unordered_set<TxName> cand(sealed.begin(), sealed.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cand.begin(); it != cand.end();) {
      bool keep = true;
      for (TxName p : graph_.InNeighbors(*it)) {
        if (cand.count(p) == 0) {
          keep = false;
          break;
        }
      }
      if (keep) {
        ++it;
      } else {
        it = cand.erase(it);
        changed = true;
      }
    }
  }

  std::vector<TxName> roots(cand.begin(), cand.end());
  std::sort(roots.begin(), roots.end());
  obs::TraceEmit(obs::TraceEventKind::kGcRun, kT0,
                 static_cast<uint32_t>(roots.size()), 0, 0, watermark);
  if (!roots.empty()) RetireFamilies(roots);
  obs::GetGcMetrics().live_nodes->Set(graph_.node_count());
  obs::GetGcMetrics().live_families->Set(book_.live_families());
}

void IncrementalCertifier::RetireFamilies(const std::vector<TxName>& roots) {
  const std::unordered_set<TxName> rset(roots.begin(), roots.end());

  for (TxName root : roots) {
    size_t nodes_before = graph_.node_count();
    for (TxName t : type_->SubtreeOf(root)) {
      graph_.RemoveNode(t);
      tracker_.Retire(t);
      scopes_.erase(t);
    }
    size_t removed = nodes_before - graph_.node_count();
    gc_stats_.retired_nodes += removed;
    obs::GetGcMetrics().nodes_retired->Inc(removed);
    ++gc_stats_.retired_families;
    obs::GetGcMetrics().families_retired->Inc();
    obs::TraceEmit(obs::TraceEventKind::kGcRetire, root, root, 0, 0, removed);
    book_.MarkRetired(root);
  }

  // Parked operations under a retired family are necessarily dead (live
  // ones blocked the seal); their payloads go with the family.
  for (auto it = pending_ops_.begin(); it != pending_ops_.end();) {
    if (rset.count(GcFamilyBook::RootOf(*type_, it->second.tx)) != 0) {
      it = pending_ops_.erase(it);
    } else {
      ++it;
    }
  }

  // The T0 scope would otherwise emit precedes edges from retired reported
  // children to every future top-level request forever. Order-preserving
  // removal keeps the emission order of the survivors intact.
  auto t0_scope = scopes_.find(kT0);
  if (t0_scope != scopes_.end()) {
    ParentScope& scope = t0_scope->second;
    scope.reported.erase(
        std::remove_if(scope.reported.begin(), scope.reported.end(),
                       [&](TxName t) { return rset.count(t) != 0; }),
        scope.reported.end());
    scope.buffer.erase(
        std::remove_if(scope.buffer.begin(), scope.buffer.end(),
                       [&](const std::pair<bool, TxName>& ev) {
                         return rset.count(ev.second) != 0;
                       }),
        scope.buffer.end());
  }

  // Memoized edge verdicts inside the retired scope. Closure guarantees no
  // live→retired edge exists, so testing the T0 projection is exact.
  auto retired_edge = [&](const SiblingEdge& e) {
    if (e.parent == kT0) {
      return rset.count(e.from) != 0 || rset.count(e.to) != 0;
    }
    return rset.count(type_->AncestorAtDepth(e.parent, 1)) != 0;
  };
  conflict_edges_.EraseIf(retired_edge);
  precedes_edges_.EraseIf(retired_edge);

  // Per-object frontier summaries and replay-prefix checkpointing. The full
  // retired set goes in: an old retired family's operations that stayed in
  // an object's sequence because a live family's op was interleaved after
  // them become prunable once that family retires too.
  for (const auto& obj : objects_) {
    if (obj == nullptr) continue;
    size_t pruned = obj->Retire(book_.retired_roots());
    gc_stats_.pruned_ops += pruned;
    obs::GetGcMetrics().ops_pruned->Inc(pruned);
  }

  // Keep the Pearce–Kelly key space anchored at the live population so it
  // cannot creep toward overflow over an unbounded stream.
  graph_.CompactOrders();
}

}  // namespace ntsg
