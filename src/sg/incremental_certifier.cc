#include "sg/incremental_certifier.h"

#include <utility>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sg/fingerprint.h"

namespace ntsg {

namespace {

/// Tracker tags: plain positions address pending operations; the high bit
/// marks a parent-scope activation (positions and names both stay far below
/// 2^63).
constexpr uint64_t kScopeTagBit = 1ull << 63;

}  // namespace

// --- VisibilityTracker ------------------------------------------------------

TxName VisibilityTracker::BlockerOf(TxName subject, bool* dead) const {
  *dead = false;
  for (TxName u = subject; u != kT0; u = type_->parent(u)) {
    if (Flag(aborted_, u)) {
      *dead = true;
      return kInvalidTx;
    }
    if (!Flag(committed_, u)) return u;
  }
  return kInvalidTx;
}

VisibilityTracker::WatchResult VisibilityTracker::Watch(TxName subject,
                                                        uint64_t tag) {
  bool dead = false;
  TxName blocker = BlockerOf(subject, &dead);
  if (dead) return WatchResult::kDead;
  if (blocker == kInvalidTx) return WatchResult::kVisible;
  waiters_[blocker].push_back(Item{subject, tag});
  return WatchResult::kParked;
}

void VisibilityTracker::OnCommit(TxName t, std::vector<Item>* fired,
                                 std::vector<Item>* dropped) {
  SetFlag(&committed_, t);
  auto it = waiters_.find(t);
  if (it == waiters_.end()) return;
  std::vector<Item> parked = std::move(it->second);
  waiters_.erase(it);
  for (Item& item : parked) {
    bool dead = false;
    TxName blocker = BlockerOf(item.subject, &dead);
    if (dead) {
      if (dropped != nullptr) dropped->push_back(item);
      continue;
    }
    if (blocker == kInvalidTx) {
      fired->push_back(item);
    } else {
      waiters_[blocker].push_back(item);
    }
  }
}

void VisibilityTracker::OnAbort(TxName t, std::vector<Item>* dropped) {
  SetFlag(&aborted_, t);
  // Items parked on t waited for COMMIT(t), which can no longer happen.
  auto it = waiters_.find(t);
  if (it == waiters_.end()) return;
  if (dropped != nullptr) {
    dropped->insert(dropped->end(), it->second.begin(), it->second.end());
  }
  waiters_.erase(it);
}

// --- ObjectIngestState ------------------------------------------------------

ObjectIngestState::ObjectIngestState(const SystemType& type, ObjectId x,
                                     ConflictMode mode)
    : type_(&type),
      x_(x),
      frontier_(type, mode, x),
      replay_(MakeSpec(type.object_type(x), type.object_initial(x))) {}

ObjectIngestState::ObjectIngestState(const ObjectIngestState& other)
    : type_(other.type_),
      x_(other.x_),
      ops_(other.ops_),
      frontier_(other.frontier_),
      replay_(other.replay_->Clone()),
      legal_(other.legal_) {}

ObjectIngestState& ObjectIngestState::operator=(
    const ObjectIngestState& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  x_ = other.x_;
  ops_ = other.ops_;
  frontier_ = other.frontier_;
  replay_ = other.replay_->Clone();
  legal_ = other.legal_;
  return *this;
}

void ObjectIngestState::InsertVisibleOp(uint64_t pos, TxName tx,
                                        const Value& v,
                                        std::vector<SiblingEdge>* new_edges) {
  auto existing = ops_.find(pos);
  if (existing != ops_.end()) {
    // Duplicated delivery: at-least-once transports may hand us the same
    // operation twice. It must be byte-for-byte the same one; dropping it
    // is what makes redelivery idempotent.
    NTSG_CHECK(existing->second.tx == tx && existing->second.value == v)
        << "conflicting redelivery at trace position " << pos;
    return;
  }

  frontier_.AddOp(tx, v, pos, new_edges);

  auto [it, inserted] = ops_.emplace(pos, Operation{tx, v});
  NTSG_CHECK(inserted);
  if (std::next(it) == ops_.end() && legal_) {
    // Appended at the end of the visible sequence: extend the replay.
    const AccessSpec& acc = type_->access(tx);
    if (replay_->Apply(acc.op, acc.arg) != v) legal_ = false;
  } else if (std::next(it) != ops_.end()) {
    // Revealed out of order: the replay suffix is stale either way.
    Recompute();
  }
  // Appended while already illegal: the first divergence is untouched, so
  // the sequence stays illegal; nothing to do.
}

void ObjectIngestState::Recompute() {
  replay_ = MakeSpec(type_->object_type(x_), type_->object_initial(x_));
  legal_ = true;
  for (const auto& [p, op] : ops_) {
    const AccessSpec& acc = type_->access(op.tx);
    if (replay_->Apply(acc.op, acc.arg) != op.value) {
      legal_ = false;
      break;
    }
  }
}

// --- IncrementalCertifier ---------------------------------------------------

IncrementalCertifier::IncrementalCertifier(const SystemType& type,
                                           ConflictMode mode)
    : type_(&type), mode_(mode), tracker_(type) {}

IncrementalCertifier::IncrementalCertifier(const IncrementalCertifier& other)
    : type_(other.type_),
      mode_(other.mode_),
      tracker_(other.tracker_),
      illegal_objects_(other.illegal_objects_),
      scopes_(other.scopes_),
      pending_ops_(other.pending_ops_),
      conflict_edges_(other.conflict_edges_),
      precedes_edges_(other.precedes_edges_),
      graph_(other.graph_),
      acyclic_(other.acyclic_),
      pos_(other.pos_),
      first_rejection_pos_(other.first_rejection_pos_),
      cycle_witness_(other.cycle_witness_) {
  objects_.reserve(other.objects_.size());
  for (const auto& state : other.objects_) {
    objects_.push_back(state == nullptr
                           ? nullptr
                           : std::make_unique<ObjectIngestState>(*state));
  }
}

IncrementalCertifier& IncrementalCertifier::operator=(
    const IncrementalCertifier& other) {
  if (this == &other) return *this;
  IncrementalCertifier copy(other);
  type_ = copy.type_;
  mode_ = copy.mode_;
  tracker_ = std::move(copy.tracker_);
  objects_ = std::move(copy.objects_);
  illegal_objects_ = copy.illegal_objects_;
  scopes_ = std::move(copy.scopes_);
  pending_ops_ = std::move(copy.pending_ops_);
  conflict_edges_ = std::move(copy.conflict_edges_);
  precedes_edges_ = std::move(copy.precedes_edges_);
  graph_ = std::move(copy.graph_);
  acyclic_ = copy.acyclic_;
  pos_ = copy.pos_;
  first_rejection_pos_ = copy.first_rejection_pos_;
  cycle_witness_ = std::move(copy.cycle_witness_);
  return *this;
}

ObjectIngestState& IncrementalCertifier::ObjectState(ObjectId x) {
  if (x >= objects_.size()) objects_.resize(x + 1);
  if (objects_[x] == nullptr) {
    objects_[x] = std::make_unique<ObjectIngestState>(*type_, x, mode_);
  }
  return *objects_[x];
}

void IncrementalCertifier::FireItem(const VisibilityTracker::Item& item) {
  if (item.tag & kScopeTagBit) {
    ActivateScope(static_cast<TxName>(item.tag & ~kScopeTagBit));
    return;
  }
  obs::TraceEmit(obs::TraceEventKind::kOpFired, item.subject, item.subject, 0,
                 0, item.tag);
  auto it = pending_ops_.find(item.tag);
  NTSG_CHECK(it != pending_ops_.end()) << "fired op without pending entry";
  PendingOp op = it->second;
  pending_ops_.erase(it);
  ActivateOp(item.tag, op.tx, op.value);
}

void IncrementalCertifier::DropItem(const VisibilityTracker::Item& item) {
  if (item.tag & kScopeTagBit) return;  // Scope state stays parked in scopes_.
  obs::GetCertifierMetrics().ops_dropped->Inc();
  obs::TraceEmit(obs::TraceEventKind::kOpDropped, item.subject, item.subject,
                 0, 0, item.tag);
  pending_ops_.erase(item.tag);
}

void IncrementalCertifier::Ingest(const Action& a) {
  obs::GetCertifierMetrics().actions_ingested->Inc();
  uint64_t pos = pos_++;
  if (obs::TraceEnabled()) {
    // The causal span is the paper's hightransaction(π): the transaction
    // whose scope the action occurs in (completions land on the parent).
    TxName span = HighTransactionOf(*type_, a);
    if (span == kInvalidTx) span = kT0;
    obs::TraceEmit(obs::TraceEventKind::kActionIngested, span, a.tx,
                   static_cast<uint32_t>(a.kind), 0, pos);
  }
  std::vector<VisibilityTracker::Item> fired;
  std::vector<VisibilityTracker::Item> dropped;
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_->IsAccess(a.tx)) {
        switch (tracker_.Watch(a.tx, pos)) {
          case VisibilityTracker::WatchResult::kVisible:
            ActivateOp(pos, a.tx, a.value);
            break;
          case VisibilityTracker::WatchResult::kParked:
            obs::GetCertifierMetrics().ops_parked->Inc();
            obs::TraceEmit(obs::TraceEventKind::kOpParked, a.tx, a.tx, 0, 0,
                           pos);
            pending_ops_.emplace(pos, PendingOp{a.tx, a.value});
            break;
          case VisibilityTracker::WatchResult::kDead:
            break;
        }
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      if (obs::TraceEnabled()) {
        // REQUEST_CREATE(T) .. REPORT_*(T) is T's interval in the parent's
        // span — the tree-shaped causal context of the tentpole.
        TxName parent = type_->parent(a.tx);
        obs::TraceEmit(obs::TraceEventKind::kSpanEnd, parent, a.tx, parent,
                       a.kind == ActionKind::kReportAbort ? obs::kTraceFlagAbort
                                                          : uint8_t{0},
                       pos);
      }
      ScopeEvent(type_->parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      if (obs::TraceEnabled()) {
        TxName parent = type_->parent(a.tx);
        obs::TraceEmit(obs::TraceEventKind::kSpanBegin, parent, a.tx, parent,
                       0, pos);
      }
      ScopeEvent(type_->parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit:
      tracker_.OnCommit(a.tx, &fired, &dropped);
      break;
    case ActionKind::kAbort:
      tracker_.OnAbort(a.tx, &dropped);
      break;
    default:
      break;  // CREATE and INFORM_* never affect the verdict.
  }
  obs::GetCertifierMetrics().visibility_fired->Inc(fired.size());
  for (const auto& item : fired) FireItem(item);
  for (const auto& item : dropped) DropItem(item);
  NoteVerdict();
}

void IncrementalCertifier::IngestTrace(const Trace& beta) {
  for (const Action& a : beta) Ingest(a);
}

void IncrementalCertifier::ActivateOp(uint64_t pos, TxName tx,
                                      const Value& v) {
  obs::GetCertifierMetrics().ops_activated->Inc();
  obs::TraceEmit(obs::TraceEventKind::kOpActivated, tx, tx, 0, 0, pos);
  ObjectIngestState& state = ObjectState(type_->ObjectOf(tx));
  bool was_legal = state.legal();
  // The frontier performs the lca / child-toward mapping itself and dedups
  // within the object; the certifier-level set dedups across objects.
  std::vector<SiblingEdge> edges;
  state.InsertVisibleOp(pos, tx, v, &edges);
  if (was_legal != state.legal()) {
    illegal_objects_ += was_legal ? 1 : -1;
  }
  for (const SiblingEdge& e : edges) {
    if (conflict_edges_.Insert(e)) {
      obs::GetCertifierMetrics().conflict_edges->Inc();
      AddGraphEdge(e.parent, e.from, e.to, /*is_conflict=*/true);
    }
  }
}

void IncrementalCertifier::ScopeEvent(TxName parent, bool is_report,
                                      TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    if (tracker_.Watch(parent, kScopeTagBit | parent) ==
        VisibilityTracker::WatchResult::kVisible) {
      scope.visible = true;  // e.g. parent == T0.
    }
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) {
      EmitPrecedes(parent, earlier, child);
    }
  }
}

void IncrementalCertifier::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  for (const auto& [is_report, child] : scope.buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        EmitPrecedes(parent, earlier, child);
      }
    }
  }
  scope.buffer.clear();
}

void IncrementalCertifier::EmitPrecedes(TxName parent, TxName from,
                                        TxName to) {
  if (from == to) return;
  if (precedes_edges_.Insert(SiblingEdge{parent, from, to})) {
    obs::GetCertifierMetrics().precedes_edges->Inc();
    AddGraphEdge(parent, from, to, /*is_conflict=*/false);
  }
}

void IncrementalCertifier::AddGraphEdge(TxName parent, TxName from, TxName to,
                                        bool is_conflict) {
  obs::SpanTimer span(obs::GetCertifierMetrics().edge_insert_us);
  uint8_t relation =
      is_conflict ? obs::kTraceFlagConflict : obs::kTraceFlagPrecedes;
  if (graph_.AddEdge(from, to)) {
    obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, parent, from, to,
                   relation);
    return;
  }
  obs::GetCertifierMetrics().cycle_rejections->Inc();
  obs::TraceEmit(obs::TraceEventKind::kEdgeRejected, parent, from, to,
                 relation);
  if (acyclic_) {
    // First rejection: the graph still holds exactly the acyclic prefix, so
    // the refused edge plus the to ->* from path is the cycle it would have
    // closed. [to, ..., from] in cycle order; the closing edge is the
    // rejected one.
    cycle_witness_ = graph_.FindPath(to, from);
  }
  acyclic_ = false;
}

void IncrementalCertifier::NoteVerdict() {
  if (!first_rejection_pos_.has_value() && !verdict().ok()) {
    first_rejection_pos_ = pos_ - 1;
    uint8_t flags = 0;
    if (illegal_objects_ != 0) flags |= obs::kTraceFlagInappropriate;
    if (!acyclic_) flags |= obs::kTraceFlagCycle;
    obs::TraceEmit(obs::TraceEventKind::kVerdictRejected, kT0, 0, 0, flags,
                   *first_rejection_pos_);
  }
}

uint64_t IncrementalCertifier::graph_fingerprint() const {
  // The fingerprinter wants strictly increasing edge order; the flat sets
  // record insertion order, so sort first.
  GraphFingerprinter fp;
  for (const SiblingEdge& e : conflict_edges_.SortedEdges()) fp.AddConflict(e);
  for (const SiblingEdge& e : precedes_edges_.SortedEdges()) fp.AddPrecedes(e);
  return fp.Finish();
}

}  // namespace ntsg
