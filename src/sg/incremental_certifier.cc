#include "sg/incremental_certifier.h"

#include <utility>

#include "common/logging.h"

namespace ntsg {

// --- VisibilityTracker ------------------------------------------------------

TxName VisibilityTracker::BlockerOf(TxName subject, bool* dead) const {
  *dead = false;
  for (TxName u = subject; u != kT0; u = type_.parent(u)) {
    if (Flag(aborted_, u)) {
      *dead = true;
      return kInvalidTx;
    }
    if (!Flag(committed_, u)) return u;
  }
  return kInvalidTx;
}

void VisibilityTracker::Watch(TxName subject, std::function<void()> on_visible) {
  bool dead = false;
  TxName blocker = BlockerOf(subject, &dead);
  if (dead) return;
  if (blocker == kInvalidTx) {
    on_visible();
    return;
  }
  waiters_[blocker].push_back(Pending{subject, std::move(on_visible)});
}

void VisibilityTracker::OnCommit(TxName t) {
  SetFlag(&committed_, t);
  auto it = waiters_.find(t);
  if (it == waiters_.end()) return;
  std::vector<Pending> parked = std::move(it->second);
  waiters_.erase(it);
  for (Pending& p : parked) {
    bool dead = false;
    TxName blocker = BlockerOf(p.subject, &dead);
    if (dead) continue;
    if (blocker == kInvalidTx) {
      p.fire();
    } else {
      waiters_[blocker].push_back(std::move(p));
    }
  }
}

void VisibilityTracker::OnAbort(TxName t) {
  SetFlag(&aborted_, t);
  // Items parked on t waited for COMMIT(t), which can no longer happen.
  waiters_.erase(t);
}

// --- ObjectIngestState ------------------------------------------------------

ObjectIngestState::ObjectIngestState(const SystemType& type, ObjectId x)
    : type_(type),
      x_(x),
      replay_(MakeSpec(type.object_type(x), type.object_initial(x))) {}

void ObjectIngestState::InsertVisibleOp(
    uint64_t pos, TxName tx, const Value& v, ConflictMode mode,
    std::vector<std::pair<TxName, TxName>>* conflict_pairs) {
  for (const auto& [p, op] : ops_) {
    if (!AccessOpsConflict(type_, mode, op.tx, op.value, tx, v)) continue;
    if (p < pos) {
      conflict_pairs->emplace_back(op.tx, tx);
    } else {
      conflict_pairs->emplace_back(tx, op.tx);
    }
  }

  auto [it, inserted] = ops_.emplace(pos, Operation{tx, v});
  NTSG_CHECK(inserted) << "duplicate trace position " << pos;
  if (std::next(it) == ops_.end() && legal_) {
    // Appended at the end of the visible sequence: extend the replay.
    const AccessSpec& acc = type_.access(tx);
    if (replay_->Apply(acc.op, acc.arg) != v) legal_ = false;
  } else if (std::next(it) != ops_.end()) {
    // Revealed out of order: the replay suffix is stale either way.
    Recompute();
  }
  // Appended while already illegal: the first divergence is untouched, so
  // the sequence stays illegal; nothing to do.
}

void ObjectIngestState::Recompute() {
  replay_ = MakeSpec(type_.object_type(x_), type_.object_initial(x_));
  legal_ = true;
  for (const auto& [p, op] : ops_) {
    const AccessSpec& acc = type_.access(op.tx);
    if (replay_->Apply(acc.op, acc.arg) != op.value) {
      legal_ = false;
      break;
    }
  }
}

// --- IncrementalCertifier ---------------------------------------------------

IncrementalCertifier::IncrementalCertifier(const SystemType& type,
                                           ConflictMode mode)
    : type_(type), mode_(mode), tracker_(type) {}

ObjectIngestState& IncrementalCertifier::ObjectState(ObjectId x) {
  if (x >= objects_.size()) objects_.resize(x + 1);
  if (objects_[x] == nullptr) {
    objects_[x] = std::make_unique<ObjectIngestState>(type_, x);
  }
  return *objects_[x];
}

void IncrementalCertifier::Ingest(const Action& a) {
  uint64_t pos = pos_++;
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_.IsAccess(a.tx)) {
        TxName tx = a.tx;
        Value v = a.value;
        tracker_.Watch(tx, [this, pos, tx, v] { ActivateOp(pos, tx, v); });
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      ScopeEvent(type_.parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit:
      tracker_.OnCommit(a.tx);
      break;
    case ActionKind::kAbort:
      tracker_.OnAbort(a.tx);
      break;
    default:
      break;  // CREATE and INFORM_* never affect the verdict.
  }
  NoteVerdict();
}

void IncrementalCertifier::IngestTrace(const Trace& beta) {
  for (const Action& a : beta) Ingest(a);
}

void IncrementalCertifier::ActivateOp(uint64_t pos, TxName tx,
                                      const Value& v) {
  ObjectIngestState& state = ObjectState(type_.ObjectOf(tx));
  bool was_legal = state.legal();
  std::vector<std::pair<TxName, TxName>> pairs;
  state.InsertVisibleOp(pos, tx, v, mode_, &pairs);
  if (was_legal != state.legal()) {
    illegal_objects_ += was_legal ? 1 : -1;
  }
  for (const auto& [earlier, later] : pairs) {
    TxName lca = type_.Lca(earlier, later);
    // Accesses are leaves, so distinct accesses are never related by
    // ancestry; the lca is a proper ancestor of both.
    TxName from = type_.ChildToward(lca, earlier);
    TxName to = type_.ChildToward(lca, later);
    if (from == to) continue;
    if (conflict_edges_.insert(SiblingEdge{lca, from, to}).second) {
      AddGraphEdge(from, to);
    }
  }
}

void IncrementalCertifier::ScopeEvent(TxName parent, bool is_report,
                                      TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    // May fire synchronously (e.g. parent == T0); ParentScope references
    // stay valid across inserts into the node-based map.
    tracker_.Watch(parent, [this, parent] { ActivateScope(parent); });
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) {
      EmitPrecedes(parent, earlier, child);
    }
  }
}

void IncrementalCertifier::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  for (const auto& [is_report, child] : scope.buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        EmitPrecedes(parent, earlier, child);
      }
    }
  }
  scope.buffer.clear();
}

void IncrementalCertifier::EmitPrecedes(TxName parent, TxName from,
                                        TxName to) {
  if (from == to) return;
  if (precedes_edges_.insert(SiblingEdge{parent, from, to}).second) {
    AddGraphEdge(from, to);
  }
}

void IncrementalCertifier::AddGraphEdge(TxName from, TxName to) {
  if (!graph_.AddEdge(from, to)) acyclic_ = false;
}

void IncrementalCertifier::NoteVerdict() {
  if (!first_rejection_pos_.has_value() && !verdict().ok()) {
    first_rejection_pos_ = pos_ - 1;
  }
}

}  // namespace ntsg
