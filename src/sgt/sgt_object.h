#ifndef NTSG_SGT_SGT_OBJECT_H_
#define NTSG_SGT_SGT_OBJECT_H_

#include "sgt/coordinator.h"
#include "undo/undo_object.h"

namespace ntsg {

/// Online serialization-graph-test object — an *extension* beyond the
/// paper's two algorithms, in the direction its Section 7 suggests: use the
/// serialization graph construction itself as the concurrency control.
///
/// Semantics (building on the undo-logging object's log machinery):
///   * a response's value is the serial replay of the local log, as in U_X,
///     so responses are "current";
///   * observer operations (value-returning) keep U_X's precondition — all
///     non-commuting logged operations must be locally visible — which
///     keeps reads safe (no dirty values);
///   * *update* operations (OK-returning) are optimistic: they may respond
///     past non-visible conflicting operations, provided the global
///     serialization graph maintained by the SgtCoordinator stays acyclic.
///     Where Moss locking or undo logging would block (and eventually force
///     an abort via deadlock resolution), SGT proceeds and only aborts when
///     a cycle actually threatens.
///
/// This object is validated empirically: every test run is checked with the
/// Theorem 8/19 certifier and the witness checker.
class SgtObject final : public UndoObject {
 public:
  SgtObject(const SystemType& type, ObjectId x, SgtCoordinator* coordinator)
      // Log compaction must stay OFF here: the conflict edges a response
      // proposes are derived by scanning the log, and an edge against a
      // fully-committed (compacted) operation can still close a cycle with
      // an edge recorded earlier in the other direction. (Found by the
      // randomized confidence sweep; regression-tested in sgt_test.)
      : UndoObject(type, x, /*enable_compaction=*/false),
        coordinator_(coordinator) {}

  std::string name() const override { return "SGT_" + type_.object_name(x_); }

  std::vector<Action> EnabledOutputs() const override;

 protected:
  void OnInformAbort(TxName t) override;
  void OnRequestCommit(TxName access, const Value& v) override;

 private:
  /// Conflicts (logged op -> candidate) the response would induce, and
  /// whether every non-commuting logged op is locally visible.
  struct ConflictScan {
    std::vector<SgtCoordinator::AccessConflict> conflicts;
    bool all_visible = true;
  };
  ConflictScan ScanConflicts(TxName access, const OpRecord& mine) const;

  SgtCoordinator* coordinator_;
};

}  // namespace ntsg

#endif  // NTSG_SGT_SGT_OBJECT_H_
