#ifndef NTSG_SGT_COORDINATOR_H_
#define NTSG_SGT_COORDINATOR_H_

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "sg/fast_graph.h"
#include "tx/system_type.h"

namespace ntsg {

/// Shared, incrementally maintained serialization graph used by the online
/// SGT scheduler (an extension in the spirit of the paper's Section 7): SGT
/// objects propose the sibling conflict edges a candidate response would
/// add, and the coordinator admits the response only if the graph stays
/// acyclic.
///
/// Certification is online: the graph lives in a Pearce–Kelly
/// IncrementalTopoGraph whose topological order is maintained across
/// insertions, so an admission check costs at most one bounded reordering of
/// the affected region instead of a depth-first search over the whole
/// component per proposal (let alone a batch rebuild).
///
/// Edges are tagged with the pair of access transactions that induced them,
/// so that when a transaction aborts, the edges supported only by its
/// descendants' (expunged) operations disappear with it. Removal never
/// invalidates the maintained order.
class SgtCoordinator {
 public:
  explicit SgtCoordinator(const SystemType& type) : type_(type) {}

  /// A conflict between two access operations, ordered first -> second by
  /// response order.
  struct AccessConflict {
    TxName first;
    TxName second;
  };

  /// True iff adding the sibling edges induced by `conflicts` keeps every
  /// component acyclic. Logically const: new edges are trial-inserted into
  /// the Pearce–Kelly order and rolled back before returning.
  bool WouldRemainAcyclic(const std::vector<AccessConflict>& conflicts) const;

  /// Records the edges induced by `conflicts` (callers check
  /// WouldRemainAcyclic first; this CHECKs acyclicity in debug spirit).
  void AddConflicts(const std::vector<AccessConflict>& conflicts);

  /// Drops every edge one of whose supporting accesses is a descendant of
  /// `t` (called when t aborts). Idempotent.
  void OnAbort(TxName t);

  size_t edge_count() const { return edges_.size(); }

  /// Chaos hook (null = off): an injector filtered to kSpuriousReject,
  /// polled once per admission check (the tick is the check ordinal). A
  /// fired event makes WouldRemainAcyclic report "would close a cycle"
  /// without consulting the graph, driving the scheduler down its abort
  /// path; the system must still produce a serially correct behavior. Not
  /// owned; clear before the injector dies.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

 private:
  struct Edge {
    TxName parent;
    TxName from;
    TxName to;
    TxName from_access;
    TxName to_access;

    bool operator<(const Edge& other) const {
      return std::tie(parent, from, to, from_access, to_access) <
             std::tie(other.parent, other.from, other.to, other.from_access,
                      other.to_access);
    }
  };

  /// Sibling-level edge induced by a conflict; nullopt when both accesses
  /// fall under the same child (no sibling edge).
  std::optional<Edge> ToEdge(const AccessConflict& c) const;

  const SystemType& type_;
  std::set<Edge> edges_;
  /// (from, to) -> number of supporting access pairs. `from` determines the
  /// parent, so the pair identifies the sibling edge. graph_ holds exactly
  /// the pairs with positive support.
  std::map<std::pair<TxName, TxName>, int> support_;
  /// Mutable for the trial insertions of WouldRemainAcyclic (rolled back
  /// before it returns, leaving the edge set unchanged).
  mutable IncrementalTopoGraph graph_;
  FaultInjector* faults_ = nullptr;
  mutable uint64_t admission_checks_ = 0;
  mutable std::vector<FaultEvent> fired_scratch_;
};

}  // namespace ntsg

#endif  // NTSG_SGT_COORDINATOR_H_
