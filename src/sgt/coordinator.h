#ifndef NTSG_SGT_COORDINATOR_H_
#define NTSG_SGT_COORDINATOR_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "tx/system_type.h"

namespace ntsg {

/// Shared, incrementally maintained serialization graph used by the online
/// SGT scheduler (an extension in the spirit of the paper's Section 7): SGT
/// objects propose the sibling conflict edges a candidate response would
/// add, and the coordinator admits the response only if the graph stays
/// acyclic.
///
/// Edges are tagged with the pair of access transactions that induced them,
/// so that when a transaction aborts, the edges supported only by its
/// descendants' (expunged) operations disappear with it.
class SgtCoordinator {
 public:
  explicit SgtCoordinator(const SystemType& type) : type_(type) {}

  /// A conflict between two access operations, ordered first -> second by
  /// response order.
  struct AccessConflict {
    TxName first;
    TxName second;
  };

  /// True iff adding the sibling edges induced by `conflicts` keeps every
  /// component acyclic. Does not modify the graph.
  bool WouldRemainAcyclic(const std::vector<AccessConflict>& conflicts) const;

  /// Records the edges induced by `conflicts` (callers check
  /// WouldRemainAcyclic first; this CHECKs acyclicity in debug spirit).
  void AddConflicts(const std::vector<AccessConflict>& conflicts);

  /// Drops every edge one of whose supporting accesses is a descendant of
  /// `t` (called when t aborts). Idempotent.
  void OnAbort(TxName t);

  size_t edge_count() const { return edges_.size(); }

 private:
  struct Edge {
    TxName parent;
    TxName from;
    TxName to;
    TxName from_access;
    TxName to_access;

    bool operator<(const Edge& other) const {
      return std::tie(parent, from, to, from_access, to_access) <
             std::tie(other.parent, other.from, other.to, other.from_access,
                      other.to_access);
    }
  };

  /// Sibling-level edge induced by a conflict; nullopt when both accesses
  /// fall under the same child (no sibling edge).
  std::optional<Edge> ToEdge(const AccessConflict& c) const;

  /// True iff `target` is reachable from `start` within `parent`'s
  /// component, following stored adjacency plus optional `extra` edges.
  bool ReachesFrom(TxName parent, TxName start, TxName target,
                   const std::map<TxName, std::vector<TxName>>* extra) const;

  /// Cycle test over one component: stored adjacency plus `extra` edges,
  /// starting from the endpoints of `extra`.
  bool HasCycleAt(TxName parent,
                  const std::map<TxName, std::vector<TxName>>& extra) const;

  const SystemType& type_;
  std::set<Edge> edges_;
  /// parent -> from -> (to -> number of supporting access pairs). Kept in
  /// sync with edges_ so queries never rebuild the graph.
  std::map<TxName, std::map<TxName, std::map<TxName, int>>> adjacency_;
};

}  // namespace ntsg

#endif  // NTSG_SGT_COORDINATOR_H_
