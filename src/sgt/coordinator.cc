#include "sgt/coordinator.h"

#include <optional>

#include "common/logging.h"

namespace ntsg {

std::optional<SgtCoordinator::Edge> SgtCoordinator::ToEdge(
    const AccessConflict& c) const {
  TxName lca = type_.Lca(c.first, c.second);
  // Distinct accesses are leaves, so lca is a proper ancestor of both.
  TxName from = type_.ChildToward(lca, c.first);
  TxName to = type_.ChildToward(lca, c.second);
  if (from == to) return std::nullopt;
  return Edge{lca, from, to, c.first, c.second};
}

bool SgtCoordinator::ReachesFrom(
    TxName parent, TxName start, TxName target,
    const std::map<TxName, std::vector<TxName>>* extra) const {
  // DFS over the stored adjacency of `parent`'s component plus `extra`.
  auto pit = adjacency_.find(parent);
  std::set<TxName> visited;
  std::vector<TxName> stack = {start};
  while (!stack.empty()) {
    TxName node = stack.back();
    stack.pop_back();
    if (node == target) return true;
    if (!visited.insert(node).second) continue;
    if (pit != adjacency_.end()) {
      auto nit = pit->second.find(node);
      if (nit != pit->second.end()) {
        for (const auto& [succ, count] : nit->second) {
          (void)count;
          if (!visited.count(succ)) stack.push_back(succ);
        }
      }
    }
    if (extra != nullptr) {
      auto eit = extra->find(node);
      if (eit != extra->end()) {
        for (TxName succ : eit->second) {
          if (!visited.count(succ)) stack.push_back(succ);
        }
      }
    }
  }
  return false;
}

bool SgtCoordinator::WouldRemainAcyclic(
    const std::vector<AccessConflict>& conflicts) const {
  // Group the proposed sibling edges per parent, deduplicated (many access
  // conflicts induce the same sibling edge). A new cycle must pass through
  // a proposed edge, so only the touched components need a cycle test; one
  // coloring DFS per component covers all proposed edges at once.
  std::map<TxName, std::set<std::pair<TxName, TxName>>> proposed;
  for (const AccessConflict& c : conflicts) {
    std::optional<Edge> e = ToEdge(c);
    if (e.has_value()) proposed[e->parent].insert({e->from, e->to});
  }
  for (const auto& [parent, pairs] : proposed) {
    // Skip pairs the stored graph already contains: they cannot introduce a
    // cycle that was not there before.
    std::map<TxName, std::vector<TxName>> extra;
    bool any_new = false;
    auto pit = adjacency_.find(parent);
    for (const auto& [from, to] : pairs) {
      if (from == to) return false;
      bool known = false;
      if (pit != adjacency_.end()) {
        auto nit = pit->second.find(from);
        known = nit != pit->second.end() && nit->second.count(to) != 0;
      }
      if (!known) {
        extra[from].push_back(to);
        any_new = true;
      }
    }
    if (!any_new) continue;
    if (HasCycleAt(parent, extra)) return false;
  }
  return true;
}

bool SgtCoordinator::HasCycleAt(
    TxName parent, const std::map<TxName, std::vector<TxName>>& extra) const {
  // Coloring DFS over stored adjacency of this component plus `extra`.
  auto pit = adjacency_.find(parent);
  auto successors = [&](TxName n, std::vector<TxName>& out) {
    out.clear();
    if (pit != adjacency_.end()) {
      auto nit = pit->second.find(n);
      if (nit != pit->second.end()) {
        for (const auto& [succ, count] : nit->second) {
          (void)count;
          out.push_back(succ);
        }
      }
    }
    auto eit = extra.find(n);
    if (eit != extra.end()) {
      out.insert(out.end(), eit->second.begin(), eit->second.end());
    }
  };

  std::set<TxName> roots;
  for (const auto& [from, tos] : extra) {
    roots.insert(from);
    for (TxName t : tos) roots.insert(t);
  }
  std::map<TxName, int> color;
  std::vector<TxName> succ_buf;
  for (TxName start : roots) {
    if (color[start] != 0) continue;
    // Stack of (node, expanded successor list, index).
    std::vector<std::pair<TxName, std::vector<TxName>>> stack;
    std::vector<size_t> idx;
    successors(start, succ_buf);
    stack.push_back({start, succ_buf});
    idx.push_back(0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, succs] = stack.back();
      size_t& i = idx.back();
      if (i >= succs.size()) {
        color[node] = 2;
        stack.pop_back();
        idx.pop_back();
        continue;
      }
      TxName next = succs[i++];
      int c = color[next];
      if (c == 1) return true;
      if (c == 0) {
        color[next] = 1;
        successors(next, succ_buf);
        stack.push_back({next, succ_buf});
        idx.push_back(0);
      }
    }
  }
  return false;
}

void SgtCoordinator::AddConflicts(
    const std::vector<AccessConflict>& conflicts) {
  NTSG_CHECK(WouldRemainAcyclic(conflicts))
      << "SGT coordinator asked to admit a cycle";
  for (const AccessConflict& c : conflicts) {
    std::optional<Edge> e = ToEdge(c);
    if (!e.has_value()) continue;
    if (edges_.insert(*e).second) {
      adjacency_[e->parent][e->from][e->to]++;
    }
  }
}

void SgtCoordinator::OnAbort(TxName t) {
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (type_.IsAncestor(t, it->from_access) ||
        type_.IsAncestor(t, it->to_access)) {
      // Decrement the supporting count; drop the adjacency entry when the
      // last supporting access pair dies.
      auto& succs = adjacency_[it->parent][it->from];
      auto sit = succs.find(it->to);
      NTSG_CHECK(sit != succs.end());
      if (--sit->second == 0) succs.erase(sit);
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ntsg
