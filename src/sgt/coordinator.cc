#include "sgt/coordinator.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "obs/families.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace ntsg {

std::optional<SgtCoordinator::Edge> SgtCoordinator::ToEdge(
    const AccessConflict& c) const {
  TxName lca = type_.Lca(c.first, c.second);
  // Distinct accesses are leaves, so lca is a proper ancestor of both.
  TxName from = type_.ChildToward(lca, c.first);
  TxName to = type_.ChildToward(lca, c.second);
  if (from == to) return std::nullopt;
  return Edge{lca, from, to, c.first, c.second};
}

bool SgtCoordinator::WouldRemainAcyclic(
    const std::vector<AccessConflict>& conflicts) const {
  obs::GetSgtMetrics().admission_checks->Inc();
  obs::SpanTimer span(obs::GetSgtMetrics().admission_us);
  uint64_t tick = admission_checks_++;
  if (faults_ != nullptr) {
    fired_scratch_.clear();
    if (faults_->Poll(tick, &fired_scratch_)) {
      faults_->stats().spurious_rejects += fired_scratch_.size();
      obs::TraceEmit(obs::TraceEventKind::kAdmissionCheck, kT0,
                     conflicts.empty() ? kT0 : conflicts.front().second, 0,
                     obs::kTraceFlagReject | obs::kTraceFlagSpurious,
                     conflicts.size());
      return false;  // lie: report a cycle and force the abort path
    }
  }
  // Trial-insert the proposed edges not already in the graph; any rejection
  // means the combined edge set is cyclic. Rolling the accepted trials back
  // restores the edge set (the maintained order may differ, but any order
  // valid for a supergraph is valid for the graph).
  std::vector<std::pair<TxName, TxName>> added;
  bool acyclic = true;
  for (const AccessConflict& c : conflicts) {
    std::optional<Edge> e = ToEdge(c);
    if (!e.has_value()) continue;
    if (graph_.HasEdge(e->from, e->to)) continue;
    if (!graph_.AddEdge(e->from, e->to)) {
      acyclic = false;
      break;
    }
    added.emplace_back(e->from, e->to);
  }
  for (const auto& [from, to] : added) graph_.RemoveEdge(from, to);
  if (!acyclic) obs::GetSgtMetrics().admission_rejects->Inc();
  obs::TraceEmit(obs::TraceEventKind::kAdmissionCheck, kT0,
                 conflicts.empty() ? kT0 : conflicts.front().second, 0,
                 acyclic ? uint8_t{0} : obs::kTraceFlagReject,
                 conflicts.size());
  return acyclic;
}

void SgtCoordinator::AddConflicts(
    const std::vector<AccessConflict>& conflicts) {
  for (const AccessConflict& c : conflicts) {
    std::optional<Edge> e = ToEdge(c);
    if (!e.has_value()) continue;
    if (!edges_.insert(*e).second) continue;
    if (++support_[{e->from, e->to}] == 1) {
      obs::GetSgtMetrics().edges_added->Inc();
      obs::TraceEmit(obs::TraceEventKind::kEdgeInserted, e->parent, e->from,
                     e->to, obs::kTraceFlagConflict);
      NTSG_CHECK(graph_.AddEdge(e->from, e->to))
          << "SGT coordinator asked to admit a cycle";
    }
  }
}

void SgtCoordinator::OnAbort(TxName t) {
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (type_.IsAncestor(t, it->from_access) ||
        type_.IsAncestor(t, it->to_access)) {
      // Decrement the supporting count; drop the graph edge when the last
      // supporting access pair dies.
      auto sit = support_.find({it->from, it->to});
      NTSG_CHECK(sit != support_.end());
      if (--sit->second == 0) {
        support_.erase(sit);
        obs::GetSgtMetrics().edges_removed->Inc();
        obs::TraceEmit(obs::TraceEventKind::kEdgeRemoved, it->parent,
                       it->from, it->to, obs::kTraceFlagConflict);
        graph_.RemoveEdge(it->from, it->to);
      }
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ntsg
