#include "sgt/sgt_object.h"

#include "common/logging.h"

namespace ntsg {

SgtObject::ConflictScan SgtObject::ScanConflicts(TxName access,
                                                 const OpRecord& mine) const {
  ConflictScan scan;
  ObjectType otype = type_.object_type(x_);
  for (const Operation& entry : log_) {
    if (CommutesBackward(otype, mine, RecordOf(entry))) continue;
    scan.conflicts.push_back(SgtCoordinator::AccessConflict{entry.tx, access});
    if (!IsLocallyVisible(entry.tx, access)) scan.all_visible = false;
  }
  return scan;
}

std::vector<Action> SgtObject::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : pending()) {
    const AccessSpec& acc = type_.access(t);
    std::unique_ptr<SerialSpec> probe = state_->Clone();
    Value v = probe->Apply(acc.op, acc.arg);
    ConflictScan scan = ScanConflicts(t, OpRecord{acc.op, acc.arg, v});
    // Observers must not depend on data that can still be undone.
    if (!IsUpdateOp(acc.op) && !scan.all_visible) continue;
    if (!coordinator_->WouldRemainAcyclic(scan.conflicts)) continue;
    out.push_back(Action::RequestCommit(t, v));
  }
  return out;
}

void SgtObject::OnRequestCommit(TxName access, const Value& v) {
  const AccessSpec& acc = type_.access(access);
  ConflictScan scan = ScanConflicts(access, OpRecord{acc.op, acc.arg, v});
  coordinator_->AddConflicts(scan.conflicts);
  UndoObject::OnRequestCommit(access, v);
}

void SgtObject::OnInformAbort(TxName t) {
  coordinator_->OnAbort(t);
  UndoObject::OnInformAbort(t);
}

}  // namespace ntsg
