#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"

namespace ntsg {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashWorker:
      return "crash-worker";
    case FaultKind::kRestartFail:
      return "restart-fail";
    case FaultKind::kDelayDelivery:
      return "delay-delivery";
    case FaultKind::kDuplicateDelivery:
      return "duplicate-delivery";
    case FaultKind::kReorderDelivery:
      return "reorder-delivery";
    case FaultKind::kSnapshotWorker:
      return "snapshot-worker";
    case FaultKind::kInjectAbort:
      return "inject-abort";
    case FaultKind::kSpuriousReject:
      return "spurious-reject";
  }
  return "unknown";
}

FaultPlan FaultPlan::Generate(uint64_t seed, uint64_t horizon,
                              size_t num_shards,
                              const FaultPlanParams& params) {
  FaultPlan plan;
  if (horizon == 0) return plan;
  Rng rng(seed ^ 0xFA17FA17FA17FA17ull);
  auto emit = [&](FaultKind kind, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      FaultEvent e;
      e.at = rng.NextBelow(horizon);
      e.kind = kind;
      e.target = num_shards > 0 ? rng.NextBelow(num_shards) : 0;
      switch (kind) {
        case FaultKind::kDelayDelivery:
          e.param = 1 + rng.NextBelow(std::max<uint64_t>(params.max_delay, 1));
          break;
        case FaultKind::kInjectAbort:
          // Deterministic victim selector; the site reduces it modulo the
          // live set at firing time.
          e.param = rng.NextU64();
          break;
        default:
          break;
      }
      plan.events.push_back(e);
    }
  };
  emit(FaultKind::kCrashWorker, params.crashes);
  emit(FaultKind::kRestartFail, params.restart_fails);
  emit(FaultKind::kDelayDelivery, params.delays);
  emit(FaultKind::kDuplicateDelivery, params.duplicates);
  emit(FaultKind::kReorderDelivery, params.reorders);
  emit(FaultKind::kSnapshotWorker, params.snapshots);
  emit(FaultKind::kInjectAbort, params.injected_aborts);
  emit(FaultKind::kSpuriousReject, params.spurious_rejects);
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream out;
  for (const FaultEvent& e : events) {
    out << "@" << e.at << " " << FaultKindName(e.kind) << " target="
        << e.target;
    if (e.param != 0) out << " param=" << e.param;
    out << "\n";
  }
  return out.str();
}

}  // namespace ntsg
