#include "fault/fault_injector.h"

#include <algorithm>
#include <sstream>

#include "obs/families.h"
#include "obs/trace.h"

namespace ntsg {

std::string FaultStats::ToString() const {
  std::ostringstream out;
  out << "crashes=" << crashes << " restarts=" << restarts << " (attempts="
      << restart_attempts << ", failures=" << restart_failures
      << ") delays=" << delays << " duplicates=" << duplicates
      << " reorders=" << reorders << " snapshots=" << snapshots
      << " replayed=" << items_replayed << " injected_aborts="
      << injected_aborts << " spurious_rejects=" << spurious_rejects;
  return out.str();
}

void PublishFaultStats(const FaultStats& stats) {
  const obs::FaultMetrics& m = obs::GetFaultMetrics();
  m.crashes->Inc(stats.crashes);
  m.restart_attempts->Inc(stats.restart_attempts);
  m.restart_failures->Inc(stats.restart_failures);
  m.restarts->Inc(stats.restarts);
  m.delays->Inc(stats.delays);
  m.duplicates->Inc(stats.duplicates);
  m.reorders->Inc(stats.reorders);
  m.snapshots->Inc(stats.snapshots);
  m.items_replayed->Inc(stats.items_replayed);
  m.injected_aborts->Inc(stats.injected_aborts);
  m.spurious_rejects->Inc(stats.spurious_rejects);
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             std::initializer_list<FaultKind> kinds) {
  for (const FaultEvent& e : plan.events) {
    if (std::find(kinds.begin(), kinds.end(), e.kind) == kinds.end()) {
      continue;
    }
    if (e.kind == FaultKind::kRestartFail) {
      ++restart_fails_[e.target];
    } else {
      events_.push_back(e);  // Plan events are already sorted by `at`.
    }
  }
}

bool FaultInjector::Poll(uint64_t tick, std::vector<FaultEvent>* fired) {
  bool any = false;
  while (next_ < events_.size() && events_[next_].at <= tick) {
    const FaultEvent& e = events_[next_++];
    // Span 0 = T0: faults are environment events, outside any transaction.
    obs::TraceEmit(obs::TraceEventKind::kFaultFired, 0,
                   static_cast<uint32_t>(e.target),
                   static_cast<uint32_t>(e.kind), 0, e.param);
    fired->push_back(e);
    any = true;
  }
  return any;
}

bool FaultInjector::TakeRestartFail(uint64_t target) {
  auto it = restart_fails_.find(target);
  if (it == restart_fails_.end() || it->second == 0) return false;
  --it->second;
  return true;
}

}  // namespace ntsg
