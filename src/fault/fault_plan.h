#ifndef NTSG_FAULT_FAULT_PLAN_H_
#define NTSG_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ntsg {

/// The fault vocabulary. Every kind models a liveness/robustness hazard the
/// paper's system model already permits: the controller may abort any
/// non-completed transaction at any moment (Section 2.3), delivery to a
/// worker may be late, repeated, or reordered, and a worker may lose its
/// volatile state and rejoin. A correct checker's verdict must be unchanged
/// by all of them.
enum class FaultKind : uint8_t {
  /// Ingest pipeline: the targeted shard worker loses all volatile state
  /// (its per-object replay states) and its thread exits. Recovery restores
  /// the last snapshot and replays the retained delivery log.
  kCrashWorker,
  /// Ingest pipeline: one restart attempt for the targeted shard fails;
  /// the router retries with exponential backoff (bounded).
  kRestartFail,
  /// Ingest pipeline: hold the next delivery to the targeted shard back
  /// until `param` further deliveries to that shard have gone out.
  kDelayDelivery,
  /// Ingest pipeline: redeliver the most recent delivery to the targeted
  /// shard a second time (at-least-once delivery).
  kDuplicateDelivery,
  /// Ingest pipeline: swap the next delivery to the targeted shard with the
  /// one after it (equivalent to a delay of one).
  kReorderDelivery,
  /// Ingest pipeline: the targeted shard worker checkpoints its per-object
  /// state and truncates its delivery log.
  kSnapshotWorker,
  /// Simulation driver: the controller aborts a live transaction chosen
  /// deterministically by `param` (the paper's controller nondeterminism).
  kInjectAbort,
  /// SGT coordinator: one admission check spuriously reports "would close a
  /// cycle", forcing the scheduler down its abort path.
  kSpuriousReject,
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault. `at` is a site-local tick: the router's action
/// position for delivery faults, the simulation step for injected aborts,
/// the admission-check ordinal for spurious rejections. `target` addresses
/// a shard where relevant; `param` carries a kind-specific amount.
struct FaultEvent {
  uint64_t at = 0;
  FaultKind kind = FaultKind::kCrashWorker;
  uint64_t target = 0;
  uint64_t param = 0;
};

/// Tuning knobs for plan generation: expected number of events of each
/// family over the horizon. Counts, not probabilities, so a plan's intensity
/// is independent of the horizon length.
struct FaultPlanParams {
  size_t crashes = 2;
  size_t restart_fails = 1;
  size_t delays = 4;
  size_t duplicates = 4;
  size_t reorders = 2;
  size_t snapshots = 2;
  size_t injected_aborts = 0;
  size_t spurious_rejects = 0;
  /// Upper bound for kDelayDelivery's hold-back amount.
  uint64_t max_delay = 6;
};

/// A deterministic, seed-replayable schedule of fault events, sorted by
/// tick. The same (seed, horizon, num_shards, params) always yields the
/// same plan, so every chaos run is replayable from its seed alone.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Draws event ticks uniformly over [0, horizon) and shard targets over
  /// [0, num_shards), per `params`, from a seeded stream.
  static FaultPlan Generate(uint64_t seed, uint64_t horizon,
                            size_t num_shards, const FaultPlanParams& params);

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  /// One event per line, for logs and the chaos CLI.
  std::string ToString() const;
};

}  // namespace ntsg

#endif  // NTSG_FAULT_FAULT_PLAN_H_
