#ifndef NTSG_FAULT_FAULT_INJECTOR_H_
#define NTSG_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.h"

namespace ntsg {

/// Counters of faults actually delivered to a site, so tests and the chaos
/// CLI can assert a plan genuinely fired (a chaos run whose faults all
/// missed proves nothing).
struct FaultStats {
  size_t crashes = 0;
  size_t restart_attempts = 0;
  size_t restart_failures = 0;
  size_t restarts = 0;
  size_t delays = 0;
  size_t duplicates = 0;
  size_t reorders = 0;
  size_t snapshots = 0;
  size_t items_replayed = 0;
  size_t injected_aborts = 0;
  size_t spurious_rejects = 0;

  size_t total_injected() const {
    return crashes + delays + duplicates + reorders + snapshots +
           injected_aborts + spurious_rejects;
  }

  std::string ToString() const;
};

/// Folds a delivered-fault tally into the process-wide ntsg_fault_* metric
/// families (obs/families.h), so chaos activity lands on the same scrape as
/// certifier and ingest metrics. Call once per finished run (the pipeline's
/// Finish, the driver's end of Run); counters accumulate across runs.
void PublishFaultStats(const FaultStats& stats);

/// Per-site cursor over a FaultPlan: each injection site (ingest router,
/// simulation driver, SGT coordinator) constructs its own injector filtered
/// to the kinds it interprets, then polls it with its own monotone tick.
/// Sites keep a *pointer* that is null when chaos is off, so a disabled
/// hook costs one branch — the zero-cost-when-disabled discipline measured
/// by bench_fault_overhead.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::initializer_list<FaultKind> kinds);

  /// Appends to `fired` every pending event with event.at <= tick (ticks
  /// must be polled in nondecreasing order) and advances the cursor.
  /// Returns true iff anything fired.
  bool Poll(uint64_t tick, std::vector<FaultEvent>* fired);

  /// Consumes one queued kRestartFail for `target`; returns false when none
  /// remain (the restart attempt succeeds). Counted-not-scheduled: restart
  /// attempts have no global tick.
  bool TakeRestartFail(uint64_t target);

  /// Events of the filtered kinds that the site never reached (e.g. the
  /// trace ended first).
  size_t pending() const { return events_.size() - next_; }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  std::vector<FaultEvent> events_;  // sorted by at; excludes kRestartFail
  size_t next_ = 0;
  std::unordered_map<uint64_t, size_t> restart_fails_;  // target -> count
  FaultStats stats_;
};

}  // namespace ntsg

#endif  // NTSG_FAULT_FAULT_INJECTOR_H_
