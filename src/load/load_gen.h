#ifndef NTSG_LOAD_LOAD_GEN_H_
#define NTSG_LOAD_LOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "load/workloads.h"
#include "sg/gc_watermark.h"

namespace ntsg::load {

/// Which certifier the harness drives.
enum class CertMode : uint8_t {
  kBatch,        // collect the stream, CertifySeriallyCorrect at the end
  kIncremental,  // IncrementalCertifier, verdict live at every epoch
  kSharded,      // ConcurrentIngestPipeline (worker threads)
};

const char* CertModeName(CertMode m);
/// Parses "batch" | "incremental" | "sharded"; false on anything else.
bool ParseCertMode(const std::string& s, CertMode* out);

/// Open-loop run configuration. The arrival schedule — one virtual
/// timestamp per trace action — is a pure function of (rate, poisson,
/// arrival_seed); wall-clock pacing replays it in real time but never feeds
/// back into it (arrivals are not slowed by a saturated certifier, which is
/// what makes the measured latency coordination-omission-free).
struct LoadOptions {
  /// Offered rate in actions per virtual second; > 0.
  double rate = 50'000.0;
  /// Poisson arrivals (exponential inter-arrival times) vs a fixed
  /// interval of 1/rate.
  bool poisson = true;
  /// Seeds the arrival process only — independent of the workload seed so
  /// the same behavior can be replayed under different arrival patterns.
  uint64_t arrival_seed = 7;
  /// Timeline epochs the virtual-time span is divided into; > 0.
  size_t epochs = 10;
  CertMode mode = CertMode::kIncremental;
  /// Worker threads for kSharded.
  size_t shards = 4;
  /// Commit-watermark GC interval for incremental/sharded; 0 = off.
  size_t gc_interval = 0;
  /// >1 enables epoch-batched admission: the incremental sink buffers up to
  /// this many actions and commits them with one IngestBatch (flushing at
  /// every timeline epoch boundary and at Finish, so epoch verdicts stay
  /// deterministic); the sharded sink passes it through as the workers'
  /// batch_max (queue runs drained and committed per stripe in one batched
  /// reorder). 0 or 1 = per-event. Verdicts are batching-independent.
  size_t batch = 0;
  /// Sleep until each arrival's scheduled wall time (true measurement);
  /// false admits back-to-back and records pure service time — what the
  /// determinism tests use, since the virtual-time bookkeeping is identical
  /// either way.
  bool pace = true;
  /// Non-empty streams a per-epoch NDJSON timeline here.
  std::string timeline_path;
  /// Adds the wall-clock fields (latency quantiles, queue depth, metrics
  /// snapshot) to each timeline record. Off, the timeline carries only the
  /// deterministic core and is byte-identical across runs and shard counts.
  bool timeline_wallclock = false;
};

struct LoadReport {
  CertMode mode = CertMode::kIncremental;
  /// Final verdict over the full behavior (all modes certify at Finish).
  bool certified = false;
  bool appropriate = false;
  bool acyclic = false;

  uint64_t actions = 0;       // actions admitted (= the full trace)
  uint64_t ops = 0;           // access REQUEST_COMMITs among them
  uint64_t vtime_end_us = 0;  // virtual-time span of the schedule
  uint64_t late_arrivals = 0; // paced arrivals admitted past their slot

  double wall_seconds = 0;
  double offered_rate = 0;   // actions / virtual second (the config)
  double achieved_rate = 0;  // actions / wall second actually admitted

  // Admission-latency quantiles in microseconds: scheduled-arrival to
  // admission-complete when paced, pure admission service time otherwise.
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;

  GcStats gc;                  // zeros for kBatch or GC off
  uint64_t epochs_emitted = 0; // timeline records written (0 = no timeline)
  Status timeline_status;      // non-OK: the timeline file is not trustworthy
};

/// Drives `wl` through the configured certifier on the open-loop schedule.
/// The returned report's verdict fields answer whether the workload
/// certifies; Status is non-OK only for harness-level failures (an
/// unwritable timeline path).
Status RunLoad(const WorkloadInstance& wl, const LoadOptions& opt,
               LoadReport* out);

/// Saturation sweep: steps the offered rate by `rate_multiplier` from
/// `base.rate` until the admission latency knees (p99 above `knee_p99_us`)
/// or admission falls behind (achieved below `behind_fraction` of offered),
/// then reports the last pre-knee step's achieved rate as the saturation
/// throughput. Runs paced with the timeline disabled — each step is a real
/// measurement, not a replay.
struct SweepOptions {
  LoadOptions base;
  size_t max_steps = 8;
  double rate_multiplier = 2.0;
  double knee_p99_us = 5'000.0;
  double behind_fraction = 0.9;
};

struct SweepStep {
  double offered_rate = 0;
  double achieved_rate = 0;
  double p50_us = 0;
  double p99_us = 0;
  bool kneed = false;
};

struct SweepReport {
  std::vector<SweepStep> steps;
  /// Achieved rate of the last step before the knee (or of the last step
  /// run, when no knee was reached within max_steps).
  double saturation_rate = 0;
  bool certified = false;  // every step's final verdict
};

Status RunSaturationSweep(const WorkloadInstance& wl, const SweepOptions& opt,
                          SweepReport* out);

}  // namespace ntsg::load

#endif  // NTSG_LOAD_LOAD_GEN_H_
