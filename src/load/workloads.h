#ifndef NTSG_LOAD_WORKLOADS_H_
#define NTSG_LOAD_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sg/conflicts.h"
#include "sim/driver.h"
#include "tx/system_type.h"
#include "tx/trace.h"

namespace ntsg::load {

/// Application workload suite for the open-loop load harness: three
/// hand-shaped nested-transaction generators that stand in for real
/// application code, the way the paper's examples do. Each produces a full
/// behavior by running the simulation driver over the U_X (undo-logging,
/// Section 6.2) backend, so any certifier mode can be driven with it.
enum class Workload : uint8_t {
  /// Bank transfers and audits over kBankAccount objects: a transfer is a
  /// sequential pair (withdraw source; deposit destination) — nested so an
  /// insufficient-funds abort of the withdraw rolls back the whole transfer
  /// — and an audit reads many balances in parallel subtransactions.
  kBank,
  /// TPC-C-flavored new-order: take an order number from the district
  /// counter, then update the stock of each ordered item in parallel, every
  /// item update itself a (read stock; decrement stock) sequence — three
  /// levels of nesting, mixed with read-only stock-level scans.
  kTpcc,
  /// Backward-commutativity stress per paper Section 6: counters and sets
  /// hammered with increments/decrements and adds/removes that commute
  /// backward, plus occasional observers that do not — the workload where
  /// ConflictMode::kCommutativity certifies far fewer edges than a
  /// read/write interpretation would.
  kCommute,
};

const char* WorkloadName(Workload w);
/// Case-sensitive parse of "bank" | "tpcc" | "commute". False on anything
/// else, leaving `out` untouched.
bool ParseWorkload(const std::string& s, Workload* out);

struct WorkloadParams {
  Workload workload = Workload::kBank;
  /// Number of application objects (accounts / items / structures); >= 2.
  size_t scale = 16;
  /// Top-level transactions generated.
  size_t toplevel = 64;
  /// Retry budget per top-level transaction after an abort report.
  int retries = 2;
  /// Seeds both program shaping and the simulation scheduler. The produced
  /// behavior is a pure function of (workload, scale, toplevel, retries,
  /// seed) — the determinism the byte-identical timeline contract rests on.
  uint64_t seed = 1;
};

/// A generated behavior ready to feed a certifier, plus the context needed
/// to certify it.
struct WorkloadInstance {
  std::unique_ptr<SystemType> type;
  Trace trace;
  SimStats stats;
  /// Conflict interpretation matching the object mix (kCommutativity for
  /// every bundled workload — they all use typed objects).
  ConflictMode mode = ConflictMode::kCommutativity;
};

/// Builds the system type, generates the programs, and runs the simulation.
/// Deterministic in `params` (see WorkloadParams::seed).
WorkloadInstance BuildWorkload(const WorkloadParams& params);

}  // namespace ntsg::load

#endif  // NTSG_LOAD_WORKLOADS_H_
