#include "load/workloads.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "sim/program.h"

namespace ntsg::load {

namespace {

using NodeVec = std::vector<std::unique_ptr<ProgramNode>>;

// --- Bank: transfers and audits over kBankAccount objects -----------------

constexpr int64_t kInitialBalance = 1000;

// transfer(a -> b, amt): sequential withdraw-then-deposit. The withdraw can
// legitimately fail (returns 0 on insufficient funds) — that is a legal
// serial return value, not an abort, so transfers never retry for balance
// reasons; retries only fire on concurrency aborts.
std::unique_ptr<ProgramNode> BankTransfer(Rng& rng, size_t accounts) {
  const ObjectId a = static_cast<ObjectId>(rng.NextBelow(accounts));
  ObjectId b = static_cast<ObjectId>(rng.NextBelow(accounts - 1));
  if (b >= a) ++b;  // distinct destination, uniform over the rest
  const int64_t amt = rng.NextInRange(1, 50);
  NodeVec steps;
  steps.push_back(MakeAccess(a, OpCode::kWithdraw, amt));
  steps.push_back(MakeAccess(b, OpCode::kDeposit, amt));
  return MakeSeq(std::move(steps));
}

// audit: balance reads of several accounts as parallel subtransactions.
std::unique_ptr<ProgramNode> BankAudit(Rng& rng, size_t accounts) {
  const size_t k = 2 + rng.NextBelow(std::min<size_t>(accounts, 4));
  NodeVec reads;
  for (size_t i = 0; i < k; ++i) {
    reads.push_back(MakeAccess(static_cast<ObjectId>(rng.NextBelow(accounts)),
                               OpCode::kBalance, 0));
  }
  return MakePar(std::move(reads));
}

// --- TPC-C-flavored new-order over counters -------------------------------

// Object layout: objects [0, districts) are district order-number counters,
// objects [districts, scale) are per-item stock counters.
constexpr size_t kDistrictShare = 4;  // 1/4 of scale are districts (>= 1)

std::unique_ptr<ProgramNode> TpccNewOrder(Rng& rng, size_t districts,
                                          size_t items) {
  NodeVec steps;
  steps.push_back(MakeAccess(static_cast<ObjectId>(rng.NextBelow(districts)),
                             OpCode::kIncrement, 1));
  const size_t lines = 2 + rng.NextBelow(3);  // 2..4 order lines
  NodeVec line_nodes;
  for (size_t i = 0; i < lines; ++i) {
    const ObjectId stock =
        static_cast<ObjectId>(districts + rng.NextBelow(items));
    const int64_t qty = rng.NextInRange(1, 5);
    NodeVec line;
    line.push_back(MakeAccess(stock, OpCode::kCounterRead, 0));
    line.push_back(MakeAccess(stock, OpCode::kDecrement, qty));
    line_nodes.push_back(MakeSeq(std::move(line)));
  }
  steps.push_back(MakePar(std::move(line_nodes)));
  return MakeSeq(std::move(steps));
}

std::unique_ptr<ProgramNode> TpccStockScan(Rng& rng, size_t districts,
                                           size_t items) {
  const size_t k = 2 + rng.NextBelow(std::min<size_t>(items, 4));
  NodeVec reads;
  for (size_t i = 0; i < k; ++i) {
    reads.push_back(
        MakeAccess(static_cast<ObjectId>(districts + rng.NextBelow(items)),
                   OpCode::kCounterRead, 0));
  }
  return MakePar(std::move(reads));
}

// --- Commutativity stress over counters and sets --------------------------

// Object layout: objects [0, counters) are counters, [counters, scale) sets.
std::unique_ptr<ProgramNode> CommuteTxn(Rng& rng, size_t counters,
                                        size_t sets) {
  const size_t k = 2 + rng.NextBelow(3);  // 2..4 parallel accesses
  NodeVec ops;
  for (size_t i = 0; i < k; ++i) {
    if (rng.NextBool(0.5)) {
      const ObjectId c = static_cast<ObjectId>(rng.NextBelow(counters));
      if (rng.NextBool(0.15)) {
        ops.push_back(MakeAccess(c, OpCode::kCounterRead, 0));
      } else {
        ops.push_back(MakeAccess(c,
                                 rng.NextBool(0.5) ? OpCode::kIncrement
                                                   : OpCode::kDecrement,
                                 rng.NextInRange(1, 10)));
      }
    } else {
      const ObjectId s = static_cast<ObjectId>(counters + rng.NextBelow(sets));
      const int64_t elem = rng.NextInRange(0, 7);  // small domain: real churn
      if (rng.NextBool(0.15)) {
        ops.push_back(MakeAccess(
            s, rng.NextBool(0.5) ? OpCode::kContains : OpCode::kSetSize,
            elem));
      } else {
        ops.push_back(MakeAccess(
            s, rng.NextBool(0.5) ? OpCode::kAdd : OpCode::kRemove, elem));
      }
    }
  }
  return MakePar(std::move(ops));
}

}  // namespace

const char* WorkloadName(Workload w) {
  switch (w) {
    case Workload::kBank:
      return "bank";
    case Workload::kTpcc:
      return "tpcc";
    case Workload::kCommute:
      return "commute";
  }
  return "?";
}

bool ParseWorkload(const std::string& s, Workload* out) {
  if (s == "bank") {
    *out = Workload::kBank;
  } else if (s == "tpcc") {
    *out = Workload::kTpcc;
  } else if (s == "commute") {
    *out = Workload::kCommute;
  } else {
    return false;
  }
  return true;
}

WorkloadInstance BuildWorkload(const WorkloadParams& params) {
  NTSG_CHECK(params.scale >= 2) << "workloads need at least two objects";
  NTSG_CHECK(params.toplevel > 0);

  WorkloadInstance out;
  out.type = std::make_unique<SystemType>();
  Rng rng(params.seed ^ 0xA5E10AD5EEDull);

  NodeVec tops;
  tops.reserve(params.toplevel);
  switch (params.workload) {
    case Workload::kBank: {
      for (size_t i = 0; i < params.scale; ++i) {
        out.type->AddObject(ObjectType::kBankAccount,
                            "acct" + std::to_string(i), kInitialBalance);
      }
      for (size_t i = 0; i < params.toplevel; ++i) {
        tops.push_back(rng.NextBool(0.8) ? BankTransfer(rng, params.scale)
                                         : BankAudit(rng, params.scale));
      }
      break;
    }
    case Workload::kTpcc: {
      const size_t districts = std::max<size_t>(1, params.scale / kDistrictShare);
      const size_t items = params.scale - districts;
      NTSG_CHECK(items >= 1) << "tpcc needs at least one item";
      for (size_t i = 0; i < districts; ++i) {
        out.type->AddObject(ObjectType::kCounter, "district" + std::to_string(i),
                            0);
      }
      for (size_t i = 0; i < items; ++i) {
        out.type->AddObject(ObjectType::kCounter, "stock" + std::to_string(i),
                            100);
      }
      for (size_t i = 0; i < params.toplevel; ++i) {
        tops.push_back(rng.NextBool(0.85)
                           ? TpccNewOrder(rng, districts, items)
                           : TpccStockScan(rng, districts, items));
      }
      break;
    }
    case Workload::kCommute: {
      const size_t counters = std::max<size_t>(1, params.scale / 2);
      const size_t sets = std::max<size_t>(1, params.scale - counters);
      for (size_t i = 0; i < counters; ++i) {
        out.type->AddObject(ObjectType::kCounter, "ctr" + std::to_string(i), 0);
      }
      for (size_t i = 0; i < sets; ++i) {
        out.type->AddObject(ObjectType::kSet, "set" + std::to_string(i), 0);
      }
      for (size_t i = 0; i < params.toplevel; ++i) {
        tops.push_back(CommuteTxn(rng, counters, sets));
      }
      break;
    }
  }

  Simulation sim(out.type.get(), MakePar(std::move(tops), params.retries));
  SimConfig config;
  config.seed = params.seed;
  config.backend = Backend::kUndo;  // the only backend serving any data type
  config.stall_policy = StallPolicy::kAbortInnermost;
  SimResult result = sim.Run(config);
  NTSG_CHECK(result.stats.completed) << "workload did not quiesce";
  out.trace = std::move(result.trace);
  out.stats = result.stats;
  out.mode = ConflictMode::kCommutativity;
  return out;
}

}  // namespace ntsg::load
