#include "load/load_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/families.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sg/certifier.h"
#include "sg/incremental_certifier.h"
#include "sim/concurrent_ingest.h"

namespace ntsg::load {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sleeps until `target_us` (steady-clock). Coarse sleep to within ~200us,
// then spin — OS oversleep would otherwise smear every paced sample by the
// scheduler quantum and bury the quantiles the harness exists to measure.
void SleepUntilUs(uint64_t target_us) {
  uint64_t now = NowUs();
  if (now + 200 < target_us) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(target_us - now - 200));
  }
  while (NowUs() < target_us) {
  }
}

/// Virtual arrival timestamps (us) for `n` actions: a pure function of the
/// options, shared by every certifier mode and every run.
std::vector<uint64_t> BuildSchedule(size_t n, const LoadOptions& opt) {
  std::vector<uint64_t> sched(n);
  Rng rng(opt.arrival_seed ^ 0x10ADC0DEull);
  const double mean_us = 1e6 / opt.rate;
  double t = 0;
  for (size_t i = 0; i < n; ++i) {
    if (opt.poisson) {
      // Exponential inter-arrival: -mean * ln(1 - U), U uniform in [0,1).
      t += -mean_us * std::log1p(-rng.NextDouble());
    } else {
      t += mean_us;
    }
    sched[i] = static_cast<uint64_t>(std::llround(t));
  }
  return sched;
}

/// Admission target: one certifier mode behind a uniform interface. The
/// epoch verdict is "ok"/"rejected" only where a mid-stream read is
/// deterministic (the incremental certifier on the ingesting thread);
/// batch certifies nothing until Finish and the pipeline's mid-stream
/// acyclicity flag races worker threads, so both report "pending" — the
/// price of the byte-identical-across-shard-counts timeline contract.
class Sink {
 public:
  struct Final {
    bool appropriate = false;
    bool acyclic = false;
    GcStats gc;
  };

  virtual ~Sink() = default;
  virtual void Admit(const Action& a) = 0;
  /// Called when a timeline epoch closes, before EpochVerdict/EpochGc are
  /// read: a batching sink flushes its buffer here so epoch records keep
  /// reflecting every admitted action, batch size notwithstanding.
  virtual void EpochBoundary() {}
  virtual const char* EpochVerdict() const = 0;
  virtual GcStats EpochGc() const = 0;
  virtual uint64_t QueueDepth() = 0;
  virtual Final Finish() = 0;
};

class BatchSink : public Sink {
 public:
  BatchSink(const SystemType& type, ConflictMode mode)
      : type_(type), mode_(mode) {}

  void Admit(const Action& a) override { collected_.push_back(a); }
  const char* EpochVerdict() const override { return "pending"; }
  GcStats EpochGc() const override { return GcStats{}; }
  uint64_t QueueDepth() override { return 0; }

  Final Finish() override {
    CertifierReport report = CertifySeriallyCorrect(type_, collected_, mode_);
    return Final{report.appropriate_return_values, report.graph_acyclic,
                 GcStats{}};
  }

 private:
  const SystemType& type_;
  const ConflictMode mode_;
  Trace collected_;
};

class IncrementalSink : public Sink {
 public:
  IncrementalSink(const SystemType& type, ConflictMode mode, size_t gc_interval,
                  size_t batch)
      : cert_(type, mode, GcOptions{gc_interval}), batch_(batch) {}

  void Admit(const Action& a) override {
    if (batch_ <= 1) {
      cert_.Ingest(a);
      return;
    }
    buffer_.push_back(a);
    if (buffer_.size() >= batch_) Flush();
  }
  void EpochBoundary() override { Flush(); }
  const char* EpochVerdict() const override {
    return cert_.verdict().ok() ? "ok" : "rejected";
  }
  GcStats EpochGc() const override { return cert_.gc_stats(); }
  uint64_t QueueDepth() override { return buffer_.size(); }

  Final Finish() override {
    Flush();
    IncrementalVerdict v = cert_.verdict();
    return Final{v.appropriate, v.acyclic, cert_.gc_stats()};
  }

 private:
  void Flush() {
    if (buffer_.empty()) return;
    cert_.IngestBatch(std::span<const Action>(buffer_));
    buffer_.clear();
  }

  IncrementalCertifier cert_;
  const size_t batch_;
  std::vector<Action> buffer_;
};

class ShardedSink : public Sink {
 public:
  ShardedSink(const SystemType& type, ConflictMode mode,
              const ConcurrentIngestConfig& config)
      : pipe_(type, mode, config) {}

  void Admit(const Action& a) override { pipe_.Ingest(a); }
  const char* EpochVerdict() const override { return "pending"; }
  GcStats EpochGc() const override { return pipe_.gc_stats(); }
  uint64_t QueueDepth() override { return pipe_.TotalQueueDepth(); }

  Final Finish() override {
    ConcurrentIngestReport report = pipe_.Finish();
    return Final{report.appropriate, report.acyclic, report.gc};
  }

 private:
  ConcurrentIngestPipeline pipe_;
};

std::unique_ptr<Sink> MakeSink(const WorkloadInstance& wl,
                               const LoadOptions& opt) {
  switch (opt.mode) {
    case CertMode::kBatch:
      return std::make_unique<BatchSink>(*wl.type, wl.mode);
    case CertMode::kIncremental:
      return std::make_unique<IncrementalSink>(*wl.type, wl.mode,
                                               opt.gc_interval, opt.batch);
    case CertMode::kSharded: {
      ConcurrentIngestConfig config;
      config.num_shards = opt.shards;
      config.gc_interval = opt.gc_interval;
      config.batch_max = opt.batch;
      return std::make_unique<ShardedSink>(*wl.type, wl.mode, config);
    }
  }
  return nullptr;
}

}  // namespace

const char* CertModeName(CertMode m) {
  switch (m) {
    case CertMode::kBatch:
      return "batch";
    case CertMode::kIncremental:
      return "incremental";
    case CertMode::kSharded:
      return "sharded";
  }
  return "?";
}

bool ParseCertMode(const std::string& s, CertMode* out) {
  if (s == "batch") {
    *out = CertMode::kBatch;
  } else if (s == "incremental") {
    *out = CertMode::kIncremental;
  } else if (s == "sharded") {
    *out = CertMode::kSharded;
  } else {
    return false;
  }
  return true;
}

Status RunLoad(const WorkloadInstance& wl, const LoadOptions& opt,
               LoadReport* out) {
  NTSG_CHECK(opt.rate > 0);
  NTSG_CHECK(opt.epochs > 0);
  NTSG_CHECK(opt.shards > 0);
  *out = LoadReport{};
  out->mode = opt.mode;
  out->offered_rate = opt.rate;

  const Trace& trace = wl.trace;
  const std::vector<uint64_t> sched = BuildSchedule(trace.size(), opt);
  const uint64_t span_us = sched.empty() ? 1 : sched.back() + 1;
  const uint64_t epoch_len_us =
      std::max<uint64_t>(1, (span_us + opt.epochs - 1) / opt.epochs);
  out->vtime_end_us = span_us;

  std::unique_ptr<Sink> sink = MakeSink(wl, opt);
  obs::Histogram lat(obs::LoadLatencyBucketsUs());
  const obs::LoadMetrics& lm = obs::GetLoadMetrics();

  std::unique_ptr<obs::TimelineEmitter> timeline;
  if (!opt.timeline_path.empty()) {
    timeline = std::make_unique<obs::TimelineEmitter>(opt.timeline_path,
                                                      opt.timeline_wallclock);
    Status open = timeline->Open();
    if (!open.ok()) return open;
  }

  const uint64_t wall_start = NowUs();
  size_t epoch_idx = 0;
  uint64_t epoch_offered = 0;
  uint64_t admitted = 0;
  uint64_t ops = 0;

  auto emit_epoch = [&]() {
    sink->EpochBoundary();
    if (timeline != nullptr) {
      obs::TimelineEpoch e;
      e.epoch = epoch_idx;
      e.mode = CertModeName(opt.mode);
      e.vtime_start_us = epoch_idx * epoch_len_us;
      e.vtime_end_us = (epoch_idx + 1) * epoch_len_us;
      e.offered = epoch_offered;
      e.admitted_total = admitted;
      e.ops_total = ops;
      e.verdict = sink->EpochVerdict();
      const GcStats gc = sink->EpochGc();
      e.gc_runs = gc.runs;
      e.gc_retired_families = gc.retired_families;
      e.gc_watermark = gc.last_watermark;
      if (opt.timeline_wallclock) {
        e.p50_us = lat.Quantile(0.50);
        e.p95_us = lat.Quantile(0.95);
        e.p99_us = lat.Quantile(0.99);
        e.p999_us = lat.Quantile(0.999);
        e.queue_depth = sink->QueueDepth();
        e.wall_elapsed_s =
            static_cast<double>(NowUs() - wall_start) / 1e6;
        e.metrics_json =
            obs::MetricsRegistry::Default().JsonText(/*compact=*/true);
      }
      timeline->Emit(e);
    }
    lm.epochs->Inc();
    ++epoch_idx;
    epoch_offered = 0;
  };

  for (size_t i = 0; i < trace.size(); ++i) {
    // Close every epoch whose window ends at or before this arrival; the
    // last epoch swallows any schedule tail.
    while (epoch_idx + 1 < opt.epochs &&
           sched[i] >= (epoch_idx + 1) * epoch_len_us) {
      emit_epoch();
    }
    const uint64_t sched_wall = wall_start + sched[i];
    if (opt.pace) {
      const uint64_t now = NowUs();
      if (now < sched_wall) {
        SleepUntilUs(sched_wall);
      } else if (now > sched_wall) {
        ++out->late_arrivals;
        lm.late_arrivals->Inc();
      }
    }
    lm.actions_offered->Inc();
    const uint64_t admit_start = NowUs();
    sink->Admit(trace[i]);
    const uint64_t admit_end = NowUs();
    const uint64_t latency_us =
        opt.pace ? admit_end - std::min(sched_wall, admit_end)
                 : admit_end - admit_start;
    lat.ObserveAlways(latency_us);
    lm.admission_us->Observe(latency_us);
    lm.actions_admitted->Inc();
    ++admitted;
    ++epoch_offered;
    const Action& a = trace[i];
    if (a.kind == ActionKind::kRequestCommit && wl.type->IsAccess(a.tx)) {
      ++ops;
    }
  }
  while (epoch_idx < opt.epochs) emit_epoch();

  Sink::Final final = sink->Finish();
  out->appropriate = final.appropriate;
  out->acyclic = final.acyclic;
  out->certified = final.appropriate && final.acyclic;
  out->gc = final.gc;
  out->actions = admitted;
  out->ops = ops;
  out->wall_seconds = static_cast<double>(NowUs() - wall_start) / 1e6;
  out->achieved_rate = out->wall_seconds > 0
                           ? static_cast<double>(admitted) / out->wall_seconds
                           : 0;
  out->p50_us = lat.Quantile(0.50);
  out->p95_us = lat.Quantile(0.95);
  out->p99_us = lat.Quantile(0.99);
  out->p999_us = lat.Quantile(0.999);
  if (timeline != nullptr) {
    out->timeline_status = timeline->Close();
    out->epochs_emitted = timeline->epochs_emitted();
  }
  return Status::Ok();
}

Status RunSaturationSweep(const WorkloadInstance& wl, const SweepOptions& opt,
                          SweepReport* out) {
  NTSG_CHECK(opt.max_steps > 0);
  NTSG_CHECK(opt.rate_multiplier > 1.0);
  *out = SweepReport{};
  out->certified = true;

  LoadOptions step_opt = opt.base;
  step_opt.timeline_path.clear();  // each step is a measurement, not a replay
  step_opt.pace = true;
  double rate = opt.base.rate;
  const obs::LoadMetrics& lm = obs::GetLoadMetrics();

  for (size_t s = 0; s < opt.max_steps; ++s) {
    step_opt.rate = rate;
    LoadReport report;
    Status status = RunLoad(wl, step_opt, &report);
    if (!status.ok()) return status;
    lm.sweep_steps->Inc();

    SweepStep step;
    step.offered_rate = rate;
    step.achieved_rate = report.achieved_rate;
    step.p50_us = report.p50_us;
    step.p99_us = report.p99_us;
    step.kneed = report.p99_us > opt.knee_p99_us ||
                 report.achieved_rate < opt.behind_fraction * rate;
    out->steps.push_back(step);
    out->certified = out->certified && report.certified;

    if (step.kneed) break;
    out->saturation_rate = report.achieved_rate;
    rate *= opt.rate_multiplier;
  }
  if (out->saturation_rate == 0 && !out->steps.empty()) {
    // Kneed on the very first step: the knee rate itself is the best
    // measured throughput figure available.
    out->saturation_rate = out->steps.front().achieved_rate;
  }
  return Status::Ok();
}

}  // namespace ntsg::load
