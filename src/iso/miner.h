#ifndef NTSG_ISO_MINER_H_
#define NTSG_ISO_MINER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iso/checker.h"
#include "tx/trace.h"

namespace ntsg {

struct MinerOptions {
  uint64_t seed = 1;
  /// Workload/seed points to explore. Even points replay salted anomaly
  /// templates; odd points run the differential-fuzz workload generator
  /// against a deliberately broken backend (rotating through all of them).
  size_t runs = 64;
  size_t num_threads = 1;
};

/// One mined counterexample: an execution rejected at the serializable
/// level, with its verdict vector, labeled anomaly, and (re-verified)
/// witness. `weaker_level_accepts` marks the isolation *gap* hits the miner
/// exists for: executions some weaker level accepts but SG(β) rejects.
struct MinedHit {
  size_t run_index = 0;
  std::string source;  // "template:<name>#<salt>" or "sim:<backend>:seed=<s>"
  AnomalyKind anomaly = AnomalyKind::kNone;
  IsoLevel first_failing = IsoLevel::kSerializable;
  bool weaker_level_accepts = false;
  bool witness_verified = false;
  IsoVerdictVector verdicts;
  std::string trace_text;   // SerializeSystemAndTrace, replayable by the CLI
  std::string render_text;  // golden-format verdict-vector rendering
};

struct MinerReport {
  size_t runs = 0;
  std::vector<MinedHit> hits;
  /// Distinct labeled anomaly classes seen, with counts (by anomaly name).
  std::map<std::string, size_t> anomaly_counts;

  size_t gap_hits() const {
    size_t n = 0;
    for (const MinedHit& h : hits) n += h.weaker_level_accepts;
    return n;
  }
};

/// Deterministic in `options`: the same seed and run budget produce the
/// same hits in the same order, byte for byte (the seeded-determinism test
/// pins this).
MinerReport MineAnomalies(const MinerOptions& options);

}  // namespace ntsg

#endif  // NTSG_ISO_MINER_H_
