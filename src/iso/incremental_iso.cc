#include "iso/incremental_iso.h"

#include <map>
#include <utility>

#include "common/logging.h"

namespace ntsg {

namespace {
/// Distinguishes scope activations from operation activations in tracker
/// tags (operation tags are trace positions, far below 2^63).
constexpr uint64_t kScopeTagBit = 1ull << 63;
}  // namespace

IncrementalIsoChecker::IncrementalIsoChecker(const SystemType& type,
                                             ConflictMode mode)
    : type_(&type), mode_(mode), tracker_(type) {}

ObjectConflictFrontier& IncrementalIsoChecker::Frontier(ObjectId x) {
  if (frontiers_.size() <= x) frontiers_.resize(type_->num_objects());
  NTSG_CHECK(x < frontiers_.size());
  if (!frontiers_[x]) {
    frontiers_[x] = std::make_unique<ObjectConflictFrontier>(*type_, mode_, x);
    frontiers_[x]->EnableLabels();
  }
  return *frontiers_[x];
}

void IncrementalIsoChecker::ActivateOp(uint64_t pos, TxName tx,
                                       const Value& v) {
  Frontier(type_->ObjectOf(tx)).AddOp(tx, v, pos, &scratch_);
  scratch_.clear();  // edges are read back from the frontiers at Verdict()
}

void IncrementalIsoChecker::EmitPrecedes(TxName parent, TxName from,
                                         TxName to) {
  if (from == to) return;
  precedes_edges_.Insert(SiblingEdge{parent, from, to});
}

void IncrementalIsoChecker::ScopeEvent(TxName parent, bool is_report,
                                       TxName child) {
  ParentScope& scope = scopes_[parent];
  if (!scope.registered) {
    scope.registered = true;
    if (tracker_.Watch(parent, kScopeTagBit | parent) ==
        VisibilityTracker::WatchResult::kVisible) {
      scope.visible = true;
    }
  }
  if (!scope.visible) {
    scope.buffer.emplace_back(is_report, child);
    return;
  }
  if (is_report) {
    scope.reported.push_back(child);
  } else {
    for (TxName earlier : scope.reported) EmitPrecedes(parent, earlier, child);
  }
}

void IncrementalIsoChecker::ActivateScope(TxName parent) {
  ParentScope& scope = scopes_[parent];
  scope.visible = true;
  std::vector<std::pair<bool, TxName>> buffer = std::move(scope.buffer);
  scope.buffer.clear();
  for (const auto& [is_report, child] : buffer) {
    if (is_report) {
      scope.reported.push_back(child);
    } else {
      for (TxName earlier : scope.reported) {
        EmitPrecedes(parent, earlier, child);
      }
    }
  }
}

void IncrementalIsoChecker::FireItem(const VisibilityTracker::Item& item) {
  if ((item.tag & kScopeTagBit) != 0) {
    ActivateScope(static_cast<TxName>(item.tag & ~kScopeTagBit));
    return;
  }
  auto it = pending_ops_.find(item.tag);
  if (it == pending_ops_.end()) return;
  PendingOp op = it->second;
  pending_ops_.erase(it);
  ActivateOp(item.tag, op.tx, op.value);
}

void IncrementalIsoChecker::DropItem(const VisibilityTracker::Item& item) {
  if ((item.tag & kScopeTagBit) == 0) pending_ops_.erase(item.tag);
}

void IncrementalIsoChecker::Ingest(const Action& a) {
  uint64_t pos = pos_++;
  if (a.kind == ActionKind::kInformCommit ||
      a.kind == ActionKind::kInformAbort) {
    return;  // Theorem 17/25 strips INFORMs; generic behaviors feed verbatim
  }
  serial_.push_back(a);
  switch (a.kind) {
    case ActionKind::kRequestCommit:
      if (type_->IsAccess(a.tx)) {
        switch (tracker_.Watch(a.tx, pos)) {
          case VisibilityTracker::WatchResult::kVisible:
            ActivateOp(pos, a.tx, a.value);
            break;
          case VisibilityTracker::WatchResult::kParked:
            pending_ops_.emplace(pos, PendingOp{a.tx, a.value});
            break;
          case VisibilityTracker::WatchResult::kDead:
            break;
        }
      }
      break;
    case ActionKind::kReportCommit:
    case ActionKind::kReportAbort:
      ScopeEvent(type_->parent(a.tx), /*is_report=*/true, a.tx);
      break;
    case ActionKind::kRequestCreate:
      ScopeEvent(type_->parent(a.tx), /*is_report=*/false, a.tx);
      break;
    case ActionKind::kCommit: {
      std::vector<VisibilityTracker::Item> fired, dropped;
      tracker_.OnCommit(a.tx, &fired, &dropped);
      for (const auto& item : fired) FireItem(item);
      for (const auto& item : dropped) DropItem(item);
      break;
    }
    case ActionKind::kAbort: {
      std::vector<VisibilityTracker::Item> dropped;
      tracker_.OnAbort(a.tx, &dropped);
      for (const auto& item : dropped) DropItem(item);
      break;
    }
    default:
      break;
  }
}

void IncrementalIsoChecker::IngestTrace(const Trace& beta) {
  for (const Action& a : beta) Ingest(a);
}

size_t IncrementalIsoChecker::conflict_edge_count() const {
  size_t n = 0;
  for (const auto& f : frontiers_) {
    if (f) n += f->edge_label_bits().size();
  }
  return n;  // upper bound only: distinct objects can share an edge
}

IsoVerdictVector IncrementalIsoChecker::Verdict(
    const IsoCheckOptions& options) const {
  std::map<SiblingEdge, EdgeLabel> merged;
  for (size_t x = 0; x < frontiers_.size(); ++x) {
    if (!frontiers_[x]) continue;
    for (const auto& [edge, kinds] : frontiers_[x]->edge_label_bits()) {
      EdgeLabel& label = merged[edge];
      label.kinds |= kinds;
      if (static_cast<ObjectId>(x) < label.object) {
        label.object = static_cast<ObjectId>(x);
      }
    }
  }
  std::vector<LabeledSiblingEdge> conflict;
  conflict.reserve(merged.size());
  for (const auto& [edge, label] : merged) {
    conflict.push_back(LabeledSiblingEdge{edge, label});
  }
  LabeledSg graph(conflict, precedes_edges_.SortedEdges());
  return CheckFromLabeledGraph(*type_, serial_, mode_, graph, options);
}

}  // namespace ntsg
