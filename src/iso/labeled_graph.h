#ifndef NTSG_ISO_LABELED_GRAPH_H_
#define NTSG_ISO_LABELED_GRAPH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sg/conflicts.h"
#include "tx/trace.h"

namespace ntsg {

/// One edge of the labeled SG(β) sibling graphs: the union of conflict(β)
/// (with its accumulated DepKind bitmask) and precedes(β). A precedes-only
/// edge carries no kinds; for cycle classification it counts as a
/// dependency (program order is never an anti-dependency).
struct IsoEdge {
  SiblingEdge edge;
  uint8_t kinds = 0;      // OR of DepKind bits; 0 for precedes-only edges
  bool conflict = false;  // member of conflict(β)
  bool precedes = false;  // member of precedes(β)
  ObjectId object = kInvalidObject;  // representative inducing object

  bool Has(DepKind k) const {
    return (kinds & static_cast<uint8_t>(k)) != 0;
  }
  /// A pure anti-dependency: in conflict(β) with every inducing pair
  /// observer->mutator, and not doubled by a precedes edge.
  bool anti_only() const {
    return conflict && !precedes &&
           kinds == static_cast<uint8_t>(DepKind::kReadWrite);
  }
};

/// The labeled union graph of all SG(β) sibling graphs, with the cycle
/// finders behind the isolation-level spectrum. Every sibling edge stays
/// inside one parent's component, so a single node/edge table searches all
/// sibling graphs at once — any cycle it finds lives in exactly one SG(β).
///
/// All traversals iterate nodes and adjacency in ascending-name order, so
/// every finder is deterministic: same edge sets, same witness, regardless
/// of how the edges were discovered (batch or incremental).
class LabeledSg {
 public:
  LabeledSg(const std::vector<LabeledSiblingEdge>& conflict,
            const std::vector<SiblingEdge>& precedes);

  /// Convenience: LabeledConflictRelation + PrecedesRelation over the
  /// serial actions of `beta`.
  static LabeledSg Build(const SystemType& type, const Trace& beta,
                         ConflictMode mode, size_t num_threads = 1);

  const std::vector<IsoEdge>& edges() const { return edges_; }
  size_t conflict_edge_count() const { return conflict_count_; }
  size_t precedes_edge_count() const { return precedes_count_; }
  size_t anti_edge_count() const { return anti_count_; }

  /// The unique edge from -> to, or null. (A node is a child of exactly one
  /// parent, so (from, to) determines the sibling edge.)
  const IsoEdge* FindEdge(TxName from, TxName to) const;

  /// A cycle using no pure anti-dependency edge (G1c), or nullopt.
  std::optional<std::vector<TxName>> FindDependencyCycle() const;

  /// A cycle using exactly one pure anti-dependency edge (the G-single
  /// pattern), or nullopt. Call FindDependencyCycle first: this finder
  /// assumes no dependency-only cycle exists and always routes through one
  /// anti edge.
  std::optional<std::vector<TxName>> FindSingleAntiCycle() const;

  /// A closed walk in which two pure anti-dependency edges are cyclically
  /// consecutive (the SG anti-pattern of snapshot isolation), or nullopt.
  /// The walk may repeat nodes; consecutive nodes are always graph edges
  /// and the first two edges of the returned sequence are the adjacent
  /// anti pair.
  std::optional<std::vector<TxName>> FindAdjacentAntiWalk() const;

  /// Any cycle at all (Theorem 8/19 acyclicity), or nullopt.
  std::optional<std::vector<TxName>> FindAnyCycle() const;

 private:
  std::optional<std::vector<TxName>> FindCycleWhere(bool include_anti) const;
  /// Shortest from -> to path over non-anti edges (BFS, deterministic), as
  /// the node sequence [from, ..., to]; empty when unreachable.
  std::vector<TxName> NonAntiPath(TxName from, TxName to) const;
  /// Shortest from -> to path over all edges; empty when unreachable.
  std::vector<TxName> AnyPath(TxName from, TxName to) const;

  std::vector<IsoEdge> edges_;                   // sorted by (parent,from,to)
  std::map<TxName, std::vector<uint32_t>> adj_;  // node -> out-edge indices
  std::map<std::pair<TxName, TxName>, uint32_t> by_endpoints_;
  size_t conflict_count_ = 0;
  size_t precedes_count_ = 0;
  size_t anti_count_ = 0;
};

/// Rotates a cycle (or closed walk) so the smallest name leads, preserving
/// cyclic order — the canonical form golden renderings pin.
std::vector<TxName> CanonicalCycleRotation(const std::vector<TxName>& nodes);

}  // namespace ntsg

#endif  // NTSG_ISO_LABELED_GRAPH_H_
