#ifndef NTSG_ISO_INCREMENTAL_ISO_H_
#define NTSG_ISO_INCREMENTAL_ISO_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "iso/checker.h"
#include "sg/conflict_frontier.h"
#include "sg/edge_set.h"
#include "sg/incremental_certifier.h"
#include "tx/trace.h"

namespace ntsg {

/// Online form of the spectrum checker: consumes a behavior action by
/// action, maintaining the *labeled* conflict and precedes relations of the
/// prefix ingested so far, and answers the verdict vector for that prefix
/// on demand.
///
/// Edge discovery mirrors IncrementalCertifier (the same VisibilityTracker
/// drives operation/scope activations; one label-enabled
/// ObjectConflictFrontier per object discovers conflicts at global trace
/// positions; per-parent report/request bookkeeping yields precedes edges
/// once the parent is visible), so the edge sets at every prefix equal the
/// batch relations of that prefix. Verdict() funnels the accumulated edges
/// through the same CheckFromLabeledGraph the batch checker uses — the two
/// modes agree on every per-level verdict by construction (the differential
/// test re-asserts it per prefix).
///
/// Unlike the certifier this keeps the serial prefix buffered: the
/// value-aware checks (dirty reads, appropriate return values) are judged
/// at Verdict() time, since their answers are not monotone over prefixes
/// (a writer's later commit launders an earlier read).
class IncrementalIsoChecker {
 public:
  IncrementalIsoChecker(const SystemType& type, ConflictMode mode);

  void Ingest(const Action& a);
  void IngestTrace(const Trace& beta);

  /// The verdict vector of the ingested prefix.
  IsoVerdictVector Verdict(const IsoCheckOptions& options = {}) const;

  size_t actions_ingested() const { return static_cast<size_t>(pos_); }
  size_t conflict_edge_count() const;
  size_t precedes_edge_count() const { return precedes_edges_.size(); }

 private:
  struct ParentScope {
    bool registered = false;
    bool visible = false;
    std::vector<TxName> reported;
    std::vector<std::pair<bool, TxName>> buffer;  // (is_report, child)
  };
  struct PendingOp {
    TxName tx;
    Value value;
  };

  void FireItem(const VisibilityTracker::Item& item);
  void DropItem(const VisibilityTracker::Item& item);
  void ActivateOp(uint64_t pos, TxName tx, const Value& v);
  void ScopeEvent(TxName parent, bool is_report, TxName child);
  void ActivateScope(TxName parent);
  void EmitPrecedes(TxName parent, TxName from, TxName to);
  ObjectConflictFrontier& Frontier(ObjectId x);

  const SystemType* type_;
  ConflictMode mode_;
  VisibilityTracker tracker_;
  std::vector<std::unique_ptr<ObjectConflictFrontier>> frontiers_;
  std::unordered_map<TxName, ParentScope> scopes_;
  std::unordered_map<uint64_t, PendingOp> pending_ops_;
  SiblingEdgeSet precedes_edges_;
  Trace serial_;  // serial prefix, for the value-aware checks at Verdict()
  uint64_t pos_ = 0;
  std::vector<SiblingEdge> scratch_;  // frontier emission sink, reused
};

}  // namespace ntsg

#endif  // NTSG_ISO_INCREMENTAL_ISO_H_
