#ifndef NTSG_ISO_ANOMALY_TRACES_H_
#define NTSG_ISO_ANOMALY_TRACES_H_

#include <cstdint>
#include <memory>

#include "tx/trace.h"

namespace ntsg {

/// Hand-built minimal executions, one per textbook anomaly (plus two clean
/// controls), over read/write registers. Each pins a known verdict vector:
/// the corpus goldens render them, the differential test checks them at
/// every prefix, and the miner interleaves them (salted) with simulator
/// runs as a guaranteed-yield source.
enum class AnomalyTemplate : uint8_t {
  kDirtyRead = 0,        // committed reader of an aborted writer's value
  kDirtyReadNested,      // writer committed into a parent that then aborts
  kNonRepeatableRead,    // same object read twice across a committed write
  kReadSkew,             // two reads straddling a committed writer pair
  kNestedReadSkew,       // read skew split across two subtransactions
  kLostUpdate,           // two read-modify-writes from the same stale read
  kWriteSkew,            // disjoint writes guarded by crossed reads
  kLongFork,             // two readers observing independent writers in
                         // incompatible orders
  kDependencyCycle,      // wr/wr cycle with no anti-dependency (G1c)
  kSerializableClean,    // nested, conflicting, perfectly serial — all PASS
  kAbortedReaderClean,   // aborted reader leaves no visible footprint
};

inline constexpr size_t kNumAnomalyTemplates = 11;

const char* AnomalyTemplateName(AnomalyTemplate t);

struct BuiltTrace {
  std::unique_ptr<SystemType> type;
  Trace trace;
};

/// Materializes one template. `salt` perturbs the instance (appends up to
/// two benign committed read-only top-levels on a spare object) without
/// changing the verdict vector; instances with different salts serialize
/// differently, which is what the miner's seed-space walk wants.
BuiltTrace BuildAnomalyTrace(AnomalyTemplate t, uint64_t salt = 0);

}  // namespace ntsg

#endif  // NTSG_ISO_ANOMALY_TRACES_H_
