#ifndef NTSG_ISO_CHECKER_H_
#define NTSG_ISO_CHECKER_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "iso/labeled_graph.h"
#include "iso/levels.h"
#include "sg/explain.h"
#include "tx/trace.h"

namespace ntsg {

/// One isolation violation: the named anomaly, a witness (cycle or closed
/// walk over one SG(β) sibling graph; empty for value-only violations such
/// as a dirty read with no cycle), and its explain-layer annotation.
struct IsoViolation {
  AnomalyKind anomaly = AnomalyKind::kNone;
  std::string detail;  // human-readable; value violations describe the read
  /// Witness nodes in cycle order (edges w[i] -> w[i+1], closing back() ->
  /// front()). For kSnapshotIsolation anti-pattern hits this is a closed
  /// walk that may repeat nodes, flagged by `witness_is_walk`; its first
  /// two edges are the adjacent anti-dependency pair.
  std::vector<TxName> witness;
  bool witness_is_walk = false;
  /// Per-edge relation labels + action provenance (sg/explain) for simple
  /// cycle witnesses; empty for walks and value-only violations.
  std::vector<ExplainedEdge> explained;
  /// Rendered one-per-edge witness lines (labels, objects, provenance),
  /// baked at check time so ToString needs no graph access.
  std::vector<std::string> edge_lines;
  /// Witness re-verified edge-by-edge against an independently rebuilt
  /// labeled graph (VerifyIsoWitness).
  bool witness_verified = false;
};

struct IsoLevelVerdict {
  IsoLevel level = IsoLevel::kReadCommitted;
  bool ok = true;
  IsoViolation violation;  // meaningful only when !ok
};

/// The verdict vector: one verdict per level of the spectrum, weakest
/// first, plus the labeled-graph shape it was judged on.
struct IsoVerdictVector {
  std::array<IsoLevelVerdict, kNumIsoLevels> levels;
  ConflictMode mode = ConflictMode::kReadWrite;
  size_t conflict_edges = 0;
  size_t precedes_edges = 0;
  size_t anti_edges = 0;

  const IsoLevelVerdict& at(IsoLevel level) const {
    return levels[static_cast<size_t>(level)];
  }
  bool AllOk() const;
  bool SerializableOk() const {
    return at(IsoLevel::kSerializable).ok;
  }
  /// True iff a rejection at any level implies rejection at every stronger
  /// level — the spectrum invariant (holds by construction; the
  /// differential test re-asserts it on every trace).
  bool Monotone() const;
  /// First failing level, or kNumIsoLevels when all pass.
  size_t FirstFailing() const;
  /// Deterministic rendering — the golden verdict-vector format.
  std::string ToString(const SystemType& type) const;
};

struct IsoCheckOptions {
  size_t num_threads = 1;
  /// Annotate + re-verify witnesses (ExplainCycle + VerifyIsoWitness) and
  /// publish metrics/trace events. Off for throughput benchmarking.
  bool explain = true;
};

/// Computes the verdict vector of `beta` (serial actions are extracted
/// internally, so generic behaviors can be fed verbatim).
IsoVerdictVector CheckIsolationLevels(const SystemType& type,
                                      const Trace& beta, ConflictMode mode,
                                      const IsoCheckOptions& options = {});

/// Shared assembly path: judges the spectrum from an already-built labeled
/// graph plus the serial actions (needed for the value-aware checks). Both
/// the batch entry point above and IncrementalIsoChecker::Verdict funnel
/// through this, which is what makes the two modes agree by construction.
IsoVerdictVector CheckFromLabeledGraph(const SystemType& type,
                                       const Trace& serial, ConflictMode mode,
                                       const LabeledSg& graph,
                                       const IsoCheckOptions& options);

/// Independently re-verifies a violation witness: rebuilds the labeled
/// relations from the trace and re-checks the witness edge-by-edge (edges
/// present, shape consistent with the level's proscribed pattern; value
/// violations are re-derived from the serial actions). Used by the miner
/// and the differential tests; CheckIsolationLevels already calls it when
/// `options.explain` is set.
bool VerifyIsoWitness(const SystemType& type, const Trace& beta,
                      ConflictMode mode, IsoLevel level,
                      const IsoViolation& violation);

/// The value-aware dirty-read scan (Adya G1a over the nested-transaction
/// visibility relation): a visible read observing a value that no
/// write visible to the reader (nor the initial value) produced, while
/// some earlier non-visible write did produce it. Returns a violation with
/// anomaly kDirtyRead, or kNone. Judged only in kReadWrite mode — counter
/// increments and other commuting mutators have no definite "value read".
IsoViolation FindDirtyRead(const SystemType& type, const Trace& serial);

}  // namespace ntsg

#endif  // NTSG_ISO_CHECKER_H_
