#include "iso/labeled_graph.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace ntsg {

std::vector<TxName> CanonicalCycleRotation(const std::vector<TxName>& nodes) {
  if (nodes.empty()) return nodes;
  size_t k = std::min_element(nodes.begin(), nodes.end()) - nodes.begin();
  std::vector<TxName> rot;
  rot.reserve(nodes.size());
  rot.insert(rot.end(), nodes.begin() + k, nodes.end());
  rot.insert(rot.end(), nodes.begin(), nodes.begin() + k);
  return rot;
}

LabeledSg::LabeledSg(const std::vector<LabeledSiblingEdge>& conflict,
                     const std::vector<SiblingEdge>& precedes) {
  // Merge the two sorted relations into one edge table keyed by the sibling
  // edge; both inputs carry the canonical (parent, from, to) order, so the
  // merged table (and every adjacency list) inherits it.
  std::map<SiblingEdge, IsoEdge> merged;
  for (const LabeledSiblingEdge& e : conflict) {
    IsoEdge& iso = merged[e.edge];
    iso.edge = e.edge;
    iso.conflict = true;
    iso.kinds = e.label.kinds;
    iso.object = e.label.object;
  }
  for (const SiblingEdge& e : precedes) {
    IsoEdge& iso = merged[e];
    iso.edge = e;
    iso.precedes = true;
  }

  edges_.reserve(merged.size());
  for (const auto& [edge, iso] : merged) {
    uint32_t idx = static_cast<uint32_t>(edges_.size());
    edges_.push_back(iso);
    adj_[edge.from].push_back(idx);
    adj_.try_emplace(edge.to);  // sinks still need a node entry
    by_endpoints_[{edge.from, edge.to}] = idx;
    if (iso.conflict) ++conflict_count_;
    if (iso.precedes) ++precedes_count_;
    if (iso.anti_only()) ++anti_count_;
  }
}

LabeledSg LabeledSg::Build(const SystemType& type, const Trace& beta,
                           ConflictMode mode, size_t num_threads) {
  Trace serial = SerialPart(beta);
  return LabeledSg(LabeledConflictRelation(type, serial, mode, num_threads),
                   PrecedesRelation(type, serial));
}

const IsoEdge* LabeledSg::FindEdge(TxName from, TxName to) const {
  auto it = by_endpoints_.find({from, to});
  return it == by_endpoints_.end() ? nullptr : &edges_[it->second];
}

std::optional<std::vector<TxName>> LabeledSg::FindCycleWhere(
    bool include_anti) const {
  // Iterative DFS, white/gray/black. A gray target closes a cycle; the gray
  // stack prefix from that target is the witness.
  std::map<TxName, int> color;
  for (const auto& [n, _] : adj_) color[n] = 0;

  struct Frame {
    TxName node;
    size_t next;
  };
  for (const auto& [root, _] : adj_) {
    if (color[root] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root, 0});
    color[root] = 1;
    while (!stack.empty()) {
      Frame f = stack.back();
      const std::vector<uint32_t>& out = adj_.at(f.node);
      if (f.next >= out.size()) {
        color[f.node] = 2;
        stack.pop_back();
        continue;
      }
      ++stack.back().next;
      const IsoEdge& e = edges_[out[f.next]];
      if (!include_anti && e.anti_only()) continue;
      TxName m = e.edge.to;
      if (color[m] == 1) {
        size_t k = stack.size();
        while (k > 0 && stack[k - 1].node != m) --k;
        NTSG_CHECK(k > 0);
        std::vector<TxName> cycle;
        for (size_t i = k - 1; i < stack.size(); ++i) {
          cycle.push_back(stack[i].node);
        }
        return CanonicalCycleRotation(cycle);
      }
      if (color[m] == 0) {
        color[m] = 1;
        stack.push_back(Frame{m, 0});
      }
    }
  }
  return std::nullopt;
}

std::vector<TxName> LabeledSg::NonAntiPath(TxName from, TxName to) const {
  if (from == to) return {from};
  std::map<TxName, TxName> parent;
  std::deque<TxName> queue;
  parent[from] = from;
  queue.push_back(from);
  while (!queue.empty()) {
    TxName n = queue.front();
    queue.pop_front();
    auto it = adj_.find(n);
    if (it == adj_.end()) continue;
    for (uint32_t idx : it->second) {
      const IsoEdge& e = edges_[idx];
      if (e.anti_only()) continue;
      TxName m = e.edge.to;
      if (parent.count(m) != 0) continue;
      parent[m] = n;
      if (m == to) {
        std::vector<TxName> path;
        for (TxName p = to; p != from; p = parent[p]) path.push_back(p);
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(m);
    }
  }
  return {};
}

std::vector<TxName> LabeledSg::AnyPath(TxName from, TxName to) const {
  if (from == to) return {from};
  std::map<TxName, TxName> parent;
  std::deque<TxName> queue;
  parent[from] = from;
  queue.push_back(from);
  while (!queue.empty()) {
    TxName n = queue.front();
    queue.pop_front();
    auto it = adj_.find(n);
    if (it == adj_.end()) continue;
    for (uint32_t idx : it->second) {
      TxName m = edges_[idx].edge.to;
      if (parent.count(m) != 0) continue;
      parent[m] = n;
      if (m == to) {
        std::vector<TxName> path;
        for (TxName p = to; p != from; p = parent[p]) path.push_back(p);
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(m);
    }
  }
  return {};
}

std::optional<std::vector<TxName>> LabeledSg::FindDependencyCycle() const {
  return FindCycleWhere(/*include_anti=*/false);
}

std::optional<std::vector<TxName>> LabeledSg::FindSingleAntiCycle() const {
  // With no dependency-only cycle (the caller checked), a cycle has exactly
  // one anti edge iff some anti edge (u, v) closes against a non-anti path
  // v ->* u. Scanning anti edges in canonical order keeps the witness
  // stable.
  for (const IsoEdge& e : edges_) {
    if (!e.anti_only()) continue;
    std::vector<TxName> path = NonAntiPath(e.edge.to, e.edge.from);
    if (path.empty()) continue;
    std::vector<TxName> cycle;
    cycle.push_back(e.edge.from);
    cycle.insert(cycle.end(), path.begin(), path.end() - 1);
    return CanonicalCycleRotation(cycle);
  }
  return std::nullopt;
}

std::optional<std::vector<TxName>> LabeledSg::FindAdjacentAntiWalk() const {
  // Two cyclically consecutive anti edges are u -> v -> w (both anti) plus
  // any return path w ->* u; u == w is the all-anti 2-cycle. The walk may
  // revisit nodes, so this cannot be phrased as a simple-cycle search.
  std::map<TxName, std::vector<TxName>> in_anti, out_anti;
  for (const IsoEdge& e : edges_) {
    if (!e.anti_only()) continue;
    out_anti[e.edge.from].push_back(e.edge.to);
    in_anti[e.edge.to].push_back(e.edge.from);
  }
  for (const auto& [v, sources] : in_anti) {
    auto out_it = out_anti.find(v);
    if (out_it == out_anti.end()) continue;
    for (TxName u : sources) {
      for (TxName w : out_it->second) {
        if (u == w) return std::vector<TxName>{u, v};
        std::vector<TxName> path = AnyPath(w, u);
        if (path.empty()) continue;
        std::vector<TxName> walk;
        walk.push_back(u);
        walk.push_back(v);
        walk.insert(walk.end(), path.begin(), path.end() - 1);
        return walk;  // no rotation: callers rely on the anti pair leading
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<TxName>> LabeledSg::FindAnyCycle() const {
  return FindCycleWhere(/*include_anti=*/true);
}

}  // namespace ntsg
