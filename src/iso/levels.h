#ifndef NTSG_ISO_LEVELS_H_
#define NTSG_ISO_LEVELS_H_

#include <cstddef>
#include <cstdint>

namespace ntsg {

/// The isolation-level spectrum the checkers decide, weakest to strongest.
/// Each level proscribes a superset of the patterns of the level before it,
/// so a verdict vector over the spectrum is monotone by construction: a
/// trace rejected at some level is rejected at every stronger level.
///
/// The characterizations are phrased over the labeled SG(β) sibling graphs
/// (conflict(β) ∪ precedes(β) with per-edge dependency kinds, see
/// sg/conflicts.h) plus one value-aware side condition:
///
///   kReadCommitted    proscribes dirty reads (a visible access observing a
///                     value only ever written by a transaction that is not
///                     visible to it — Adya's G1a, judged on values, not
///                     positions) and dependency-only cycles (no pure
///                     anti-dependency edge — G1c).
///   kReadAtomic       adds cycles with exactly one pure anti-dependency
///                     edge (Adya's G-single, the PL-2+ "read atomic /
///                     causal" tier): this is the weakest level that rejects
///                     lost updates and read skew.
///   kSnapshotIsolation adds the SG anti-pattern characterization of
///                     snapshot isolation (Fekete et al.): a closed walk in
///                     which two pure anti-dependency edges are cyclically
///                     consecutive. Write skew is the canonical hit.
///   kSerializable     is Theorem 8/19 in full: appropriate return values
///                     plus acyclicity of every SG(β) sibling graph.
enum class IsoLevel : uint8_t {
  kReadCommitted = 0,
  kReadAtomic = 1,
  kSnapshotIsolation = 2,
  kSerializable = 3,
};

inline constexpr size_t kNumIsoLevels = 4;

const char* IsoLevelName(IsoLevel level);

/// The named shape of one isolation violation. The first six are the
/// classic anomalies; the rest are structural fallbacks for witnesses that
/// match no textbook shape. Naming is best-effort (it reads the ww/wr split
/// of edge labels, which is lossy under frontier watermark suppression);
/// verdicts never depend on it.
enum class AnomalyKind : uint8_t {
  kNone = 0,
  kDirtyRead,           // read of a value only non-visible writers produced
  kNonRepeatableRead,   // rw/wr 2-cycle on one object
  kReadSkew,            // rw/wr 2-cycle across objects
  kLostUpdate,          // rw against a ww-dependency back-edge, same object
  kWriteSkew,           // all-anti 2-cycle across objects
  kLongFork,            // alternating wr/rw cycle of length >= 4
  kDependencyCycle,     // cycle with no pure anti-dependency edge (G1c)
  kSerializationCycle,  // any other SG(β) cycle
  kInappropriateValues, // return values fail the serial spec, no cycle
};

const char* AnomalyKindName(AnomalyKind kind);

}  // namespace ntsg

#endif  // NTSG_ISO_LEVELS_H_
