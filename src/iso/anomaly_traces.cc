#include "iso/anomaly_traces.h"

#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace ntsg {

namespace {

AccessSpec Rd(ObjectId x) { return AccessSpec{x, OpCode::kRead, 0}; }
AccessSpec Wr(ObjectId x, int64_t v) { return AccessSpec{x, OpCode::kWrite, v}; }

/// Serial-action emitter for hand-built executions. Every top-level is
/// created before any access runs, so no incidental precedes edges appear
/// at the T0 level — each template's SG(β) is exactly its conflict shape.
class TraceBuilder {
 public:
  explicit TraceBuilder(SystemType* type) : type_(type) {}

  TxName Top() { return Begin(kT0); }

  TxName Begin(TxName parent) {
    TxName t = type_->NewChild(parent);
    trace_.push_back(Action::RequestCreate(t));
    trace_.push_back(Action::Create(t));
    return t;
  }

  /// Declares, runs, and commits one access under `parent`, returning
  /// `ret` from its operation.
  TxName Run(TxName parent, const AccessSpec& spec, const Value& ret) {
    TxName a = type_->NewAccess(parent, spec);
    trace_.push_back(Action::RequestCreate(a));
    trace_.push_back(Action::Create(a));
    trace_.push_back(Action::RequestCommit(a, ret));
    trace_.push_back(Action::Commit(a));
    trace_.push_back(Action::ReportCommit(a, ret));
    return a;
  }

  void Commit(TxName t) {
    trace_.push_back(Action::RequestCommit(t, Value::Ok()));
    trace_.push_back(Action::Commit(t));
    trace_.push_back(Action::ReportCommit(t, Value::Ok()));
  }

  void Abort(TxName t) {
    trace_.push_back(Action::Abort(t));
    trace_.push_back(Action::ReportAbort(t));
  }

  Trace Take() { return std::move(trace_); }

 private:
  SystemType* type_;
  Trace trace_;
};

}  // namespace

const char* AnomalyTemplateName(AnomalyTemplate t) {
  switch (t) {
    case AnomalyTemplate::kDirtyRead:
      return "dirty_read";
    case AnomalyTemplate::kDirtyReadNested:
      return "dirty_read_nested";
    case AnomalyTemplate::kNonRepeatableRead:
      return "non_repeatable_read";
    case AnomalyTemplate::kReadSkew:
      return "read_skew";
    case AnomalyTemplate::kNestedReadSkew:
      return "nested_read_skew";
    case AnomalyTemplate::kLostUpdate:
      return "lost_update";
    case AnomalyTemplate::kWriteSkew:
      return "write_skew";
    case AnomalyTemplate::kLongFork:
      return "long_fork";
    case AnomalyTemplate::kDependencyCycle:
      return "dependency_cycle";
    case AnomalyTemplate::kSerializableClean:
      return "serializable_clean";
    case AnomalyTemplate::kAbortedReaderClean:
      return "aborted_reader_clean";
  }
  return "unknown";
}

BuiltTrace BuildAnomalyTrace(AnomalyTemplate t, uint64_t salt) {
  BuiltTrace out;
  out.type = std::make_unique<SystemType>();
  SystemType& type = *out.type;
  ObjectId x = type.AddObject(ObjectType::kReadWrite, "X", 0);
  ObjectId y = type.AddObject(ObjectType::kReadWrite, "Y", 0);
  ObjectId z = type.AddObject(ObjectType::kReadWrite, "Z", 0);
  TraceBuilder b(&type);

  switch (t) {
    case AnomalyTemplate::kDirtyRead: {
      TxName w = b.Top();
      TxName r = b.Top();
      b.Run(w, Wr(x, 1), Value::Ok());
      b.Run(r, Rd(x), Value::Int(1));  // observes the uncommitted write
      b.Commit(r);
      b.Abort(w);
      break;
    }
    case AnomalyTemplate::kDirtyReadNested: {
      TxName w = b.Top();
      TxName r = b.Top();
      TxName s = b.Begin(w);  // subtransaction commits, its parent aborts
      b.Run(s, Wr(x, 1), Value::Ok());
      b.Commit(s);
      b.Run(r, Rd(x), Value::Int(1));
      b.Commit(r);
      b.Abort(w);
      break;
    }
    case AnomalyTemplate::kNonRepeatableRead: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Rd(x), Value::Int(0));
      b.Run(t2, Wr(x, 1), Value::Ok());
      b.Commit(t2);
      b.Run(t1, Rd(x), Value::Int(1));  // same object, different answer
      b.Commit(t1);
      break;
    }
    case AnomalyTemplate::kReadSkew: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Rd(x), Value::Int(0));
      b.Run(t2, Wr(x, 1), Value::Ok());
      b.Run(t2, Wr(y, 1), Value::Ok());
      b.Commit(t2);
      b.Run(t1, Rd(y), Value::Int(1));  // half-old, half-new snapshot
      b.Commit(t1);
      break;
    }
    case AnomalyTemplate::kNestedReadSkew: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      TxName s1 = b.Begin(t1);
      b.Run(s1, Rd(x), Value::Int(0));
      b.Commit(s1);
      b.Run(t2, Wr(x, 1), Value::Ok());
      b.Run(t2, Wr(y, 1), Value::Ok());
      b.Commit(t2);
      TxName s2 = b.Begin(t1);  // sibling subtransaction sees the new half
      b.Run(s2, Rd(y), Value::Int(1));
      b.Commit(s2);
      b.Commit(t1);
      break;
    }
    case AnomalyTemplate::kLostUpdate: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Rd(x), Value::Int(0));
      b.Run(t2, Rd(x), Value::Int(0));
      b.Run(t2, Wr(x, 1), Value::Ok());
      b.Commit(t2);
      b.Run(t1, Wr(x, 2), Value::Ok());  // clobbers t2's update
      b.Commit(t1);
      break;
    }
    case AnomalyTemplate::kWriteSkew: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Rd(x), Value::Int(0));
      b.Run(t2, Rd(y), Value::Int(0));
      b.Run(t1, Wr(y, 1), Value::Ok());
      b.Run(t2, Wr(x, 1), Value::Ok());
      b.Commit(t1);
      b.Commit(t2);
      break;
    }
    case AnomalyTemplate::kLongFork: {
      TxName w1 = b.Top();
      TxName w2 = b.Top();
      TxName r1 = b.Top();
      TxName r2 = b.Top();
      b.Run(r2, Rd(x), Value::Int(0));
      b.Run(w1, Wr(x, 1), Value::Ok());
      b.Commit(w1);
      b.Run(r1, Rd(x), Value::Int(1));  // r1 sees w1 first
      b.Run(r1, Rd(y), Value::Int(0));
      b.Run(w2, Wr(y, 1), Value::Ok());
      b.Commit(w2);
      b.Run(r2, Rd(y), Value::Int(1));  // r2 sees w2 first
      b.Commit(r1);
      b.Commit(r2);
      break;
    }
    case AnomalyTemplate::kDependencyCycle: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Wr(x, 1), Value::Ok());
      b.Run(t2, Rd(x), Value::Int(1));
      b.Run(t2, Wr(y, 1), Value::Ok());
      b.Run(t1, Rd(y), Value::Int(1));  // mutual reads-from, no anti edge
      b.Commit(t1);
      b.Commit(t2);
      break;
    }
    case AnomalyTemplate::kSerializableClean: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      TxName s = b.Begin(t1);
      b.Run(s, Wr(x, 1), Value::Ok());
      b.Commit(s);
      b.Commit(t1);
      b.Run(t2, Rd(x), Value::Int(1));
      b.Run(t2, Wr(y, 1), Value::Ok());
      b.Commit(t2);
      break;
    }
    case AnomalyTemplate::kAbortedReaderClean: {
      TxName t1 = b.Top();
      TxName t2 = b.Top();
      b.Run(t1, Wr(x, 1), Value::Ok());
      b.Commit(t1);
      b.Run(t2, Rd(x), Value::Int(1));
      b.Abort(t2);  // observation dies with the reader
      break;
    }
  }

  // Salted padding: benign committed read-only top-levels on the spare
  // object. They conflict with nothing (reads commute) and are created
  // last, so added precedes edges only point into them — no new cycles,
  // no value anomalies, identical verdict vector.
  for (uint64_t i = 0; i < salt % 3; ++i) {
    TxName pad = b.Top();
    b.Run(pad, Rd(z), Value::Int(0));
    b.Commit(pad);
  }

  out.trace = b.Take();
  return out;
}

}  // namespace ntsg
