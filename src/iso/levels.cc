#include "iso/levels.h"

namespace ntsg {

const char* IsoLevelName(IsoLevel level) {
  switch (level) {
    case IsoLevel::kReadCommitted:
      return "read_committed";
    case IsoLevel::kReadAtomic:
      return "read_atomic";
    case IsoLevel::kSnapshotIsolation:
      return "snapshot_isolation";
    case IsoLevel::kSerializable:
      return "serializable";
  }
  return "unknown";
}

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kNone:
      return "none";
    case AnomalyKind::kDirtyRead:
      return "dirty_read";
    case AnomalyKind::kNonRepeatableRead:
      return "non_repeatable_read";
    case AnomalyKind::kReadSkew:
      return "read_skew";
    case AnomalyKind::kLostUpdate:
      return "lost_update";
    case AnomalyKind::kWriteSkew:
      return "write_skew";
    case AnomalyKind::kLongFork:
      return "long_fork";
    case AnomalyKind::kDependencyCycle:
      return "dependency_cycle";
    case AnomalyKind::kSerializationCycle:
      return "serialization_cycle";
    case AnomalyKind::kInappropriateValues:
      return "inappropriate_values";
  }
  return "unknown";
}

}  // namespace ntsg
