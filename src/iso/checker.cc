#include "iso/checker.h"

#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "obs/families.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sg/appropriate.h"

namespace ntsg {

namespace {

std::string KindString(const IsoEdge& e) {
  std::string out;
  if (e.conflict) {
    out += "conflict ";
    bool first = true;
    auto add = [&](DepKind k, const char* name) {
      if (!e.Has(k)) return;
      if (!first) out += "+";
      out += name;
      first = false;
    };
    add(DepKind::kWriteWrite, "ww");
    add(DepKind::kWriteRead, "wr");
    add(DepKind::kReadWrite, "rw");
    if (e.anti_only()) out += "(anti)";
  }
  if (e.precedes) {
    if (e.conflict) out += "+";
    out += "precedes";
  }
  return out;
}

std::string RenderWhy(const SystemType& type, const EdgeProvenance& why) {
  std::ostringstream out;
  out << ActionKindName(why.from_kind) << "(" << type.NameOf(why.from_actor)
      << ")@" << why.from_pos << " -> " << ActionKindName(why.to_kind) << "("
      << type.NameOf(why.to_actor) << ")@" << why.to_pos;
  return out.str();
}

/// Names the anomaly a witness exhibits from its edge labels and objects.
/// Pure labeling: verdicts were already decided by which finder produced
/// the witness, and the ww/wr split this reads is best-effort (see
/// sg/conflicts.h), so an unexpected shape degrades to a structural name.
AnomalyKind ClassifyWitness(const LabeledSg& g,
                            const std::vector<TxName>& nodes) {
  size_t n = nodes.size();
  if (n < 2) return AnomalyKind::kSerializationCycle;
  std::vector<const IsoEdge*> es(n);
  size_t antis = 0;
  for (size_t i = 0; i < n; ++i) {
    es[i] = g.FindEdge(nodes[i], nodes[(i + 1) % n]);
    if (es[i] == nullptr) return AnomalyKind::kSerializationCycle;
    if (es[i]->anti_only()) ++antis;
  }
  if (antis == 0) return AnomalyKind::kDependencyCycle;

  if (n == 2) {
    const IsoEdge* a = es[0];
    const IsoEdge* b = es[1];
    if (antis == 2) {
      // Two reads each before the other's write: on one object both
      // updates clobber the same stale read (lost update); across objects
      // it is the canonical write skew.
      return a->object == b->object && a->object != kInvalidObject
                 ? AnomalyKind::kLostUpdate
                 : AnomalyKind::kWriteSkew;
    }
    const IsoEdge* anti = a->anti_only() ? a : b;
    const IsoEdge* dep = a->anti_only() ? b : a;
    if (!dep->conflict) return AnomalyKind::kSerializationCycle;
    bool same_object =
        dep->object == anti->object && dep->object != kInvalidObject;
    if (dep->Has(DepKind::kWriteWrite) && same_object) {
      return AnomalyKind::kLostUpdate;
    }
    if (dep->Has(DepKind::kWriteRead)) {
      return same_object ? AnomalyKind::kNonRepeatableRead
                         : AnomalyKind::kReadSkew;
    }
    return same_object ? AnomalyKind::kLostUpdate : AnomalyKind::kWriteSkew;
  }

  // Long fork: two or more non-adjacent anti edges, every dependency edge a
  // read-from — independent writers observed in incompatible orders.
  if (antis >= 2 && n >= 4) {
    bool adjacent = false;
    bool wr_only = true;
    for (size_t i = 0; i < n; ++i) {
      bool a1 = es[i]->anti_only();
      bool a2 = es[(i + 1) % n]->anti_only();
      if (a1 && a2) adjacent = true;
      if (!a1 && !(es[i]->conflict && es[i]->Has(DepKind::kWriteRead))) {
        wr_only = false;
      }
    }
    if (!adjacent && wr_only) return AnomalyKind::kLongFork;
  }
  return AnomalyKind::kSerializationCycle;
}

/// Assembles a witness-backed violation: classification, per-edge rendered
/// lines, and (for simple cycles) explain-layer provenance.
IsoViolation MakeCycleViolation(const SystemType& type, const Trace& serial,
                                ConflictMode mode, const LabeledSg& graph,
                                std::vector<TxName> nodes, bool is_walk,
                                bool explain) {
  IsoViolation v;
  v.witness = std::move(nodes);
  v.witness_is_walk = is_walk;
  v.anomaly = ClassifyWitness(graph, v.witness);
  if (explain && !is_walk) {
    v.explained = ExplainCycle(type, serial, mode, v.witness);
  }
  size_t n = v.witness.size();
  for (size_t i = 0; i < n; ++i) {
    TxName from = v.witness[i];
    TxName to = v.witness[(i + 1) % n];
    const IsoEdge* e = graph.FindEdge(from, to);
    std::ostringstream line;
    line << type.NameOf(from) << " -> " << type.NameOf(to) << " [";
    if (e == nullptr) {
      line << "MISSING";
    } else {
      line << KindString(*e);
      if (e->object != kInvalidObject) {
        line << " on " << type.object_name(e->object);
      }
    }
    line << "]";
    if (i < v.explained.size() && v.explained[i].has_provenance) {
      line << " induced by " << RenderWhy(type, v.explained[i].why);
    }
    v.edge_lines.push_back(line.str());
  }
  return v;
}

}  // namespace

IsoViolation FindDirtyRead(const SystemType& type, const Trace& serial) {
  IsoViolation none;
  TraceIndex index(type, serial);
  struct Write {
    TxName tx;
    int64_t arg;
  };
  std::map<ObjectId, std::vector<Write>> writes;
  for (const Action& a : serial) {
    if (a.kind != ActionKind::kRequestCommit || !type.IsAccess(a.tx)) continue;
    ObjectId x = type.ObjectOf(a.tx);
    if (type.object_type(x) != ObjectType::kReadWrite) continue;
    const AccessSpec& spec = type.access(a.tx);
    if (spec.op == OpCode::kWrite) {
      // Every write counts, visible or not: non-visible writers are exactly
      // the dirty sources.
      writes[x].push_back(Write{a.tx, spec.arg});
      continue;
    }
    if (spec.op != OpCode::kRead) continue;
    // Only visible readers matter (an aborted reader's observation never
    // surfaces), and only their committed observation is judged.
    if (!index.IsVisible(a.tx, kT0)) continue;
    if (a.value.is_ok()) continue;
    int64_t v = a.value.AsInt();
    if (v == type.object_initial(x)) continue;
    const Write* culprit = nullptr;
    bool clean = false;
    for (const Write& w : writes[x]) {
      if (w.arg != v) continue;
      if (index.IsVisible(w.tx, a.tx)) {
        clean = true;
        break;
      }
      culprit = &w;
    }
    if (clean || culprit == nullptr) continue;
    IsoViolation out;
    out.anomaly = AnomalyKind::kDirtyRead;
    std::ostringstream detail;
    detail << type.NameOf(a.tx) << " read " << v << " from "
           << type.object_name(x) << ", a value written only by "
           << type.NameOf(culprit->tx) << ", which is not visible to the "
           << "reader";
    out.detail = detail.str();
    return out;
  }
  return none;
}

bool IsoVerdictVector::AllOk() const {
  for (const IsoLevelVerdict& lv : levels) {
    if (!lv.ok) return false;
  }
  return true;
}

bool IsoVerdictVector::Monotone() const {
  bool failed = false;
  for (const IsoLevelVerdict& lv : levels) {
    if (failed && lv.ok) return false;
    failed |= !lv.ok;
  }
  return true;
}

size_t IsoVerdictVector::FirstFailing() const {
  for (size_t i = 0; i < kNumIsoLevels; ++i) {
    if (!levels[i].ok) return i;
  }
  return kNumIsoLevels;
}

std::string IsoVerdictVector::ToString(const SystemType& type) const {
  std::ostringstream out;
  out << "isolation verdict vector (mode "
      << (mode == ConflictMode::kReadWrite ? "read_write" : "commutativity")
      << ", " << conflict_edges << " conflict edge(s), " << precedes_edges
      << " precedes edge(s), " << anti_edges << " anti-dependency edge(s))\n";
  for (const IsoLevelVerdict& lv : levels) {
    out << "  " << std::left << std::setw(18) << IsoLevelName(lv.level)
        << ": " << (lv.ok ? "PASS" : "FAIL");
    if (!lv.ok) out << "  [" << AnomalyKindName(lv.violation.anomaly) << "]";
    out << "\n";
  }
  out << "monotone: " << (Monotone() ? "yes" : "NO") << "\n";
  size_t first = FirstFailing();
  if (first < kNumIsoLevels) {
    const IsoLevelVerdict& lv = levels[first];
    const IsoViolation& v = lv.violation;
    out << "first violation at " << IsoLevelName(lv.level) << ": "
        << AnomalyKindName(v.anomaly) << "\n";
    if (!v.detail.empty()) out << "  detail: " << v.detail << "\n";
    if (!v.witness.empty()) {
      out << (v.witness_is_walk ? "  witness walk:" : "  witness cycle:");
      for (TxName t : v.witness) out << " " << type.NameOf(t);
      out << " -> " << type.NameOf(v.witness.front()) << "\n";
      for (const std::string& line : v.edge_lines) {
        out << "    " << line << "\n";
      }
      out << "  witness verified: " << (v.witness_verified ? "yes" : "NO")
          << "\n";
    }
  }
  return out.str();
}

IsoVerdictVector CheckFromLabeledGraph(const SystemType& type,
                                       const Trace& serial, ConflictMode mode,
                                       const LabeledSg& graph,
                                       const IsoCheckOptions& options) {
  const obs::IsoMetrics& metrics = obs::GetIsoMetrics();
  obs::SpanTimer span(metrics.check_us);

  IsoVerdictVector vv;
  vv.mode = mode;
  vv.conflict_edges = graph.conflict_edge_count();
  vv.precedes_edges = graph.precedes_edge_count();
  vv.anti_edges = graph.anti_edge_count();
  for (size_t i = 0; i < kNumIsoLevels; ++i) {
    vv.levels[i].level = static_cast<IsoLevel>(i);
  }

  auto fail = [&](IsoLevel level, IsoViolation violation) {
    IsoLevelVerdict& lv = vv.levels[static_cast<size_t>(level)];
    lv.ok = false;
    lv.violation = std::move(violation);
  };
  auto inherit = [&](IsoLevel weaker, IsoLevel stronger) {
    const IsoLevelVerdict& w = vv.at(weaker);
    if (!w.ok) fail(stronger, w.violation);
    return !w.ok;
  };

  // kReadCommitted: value-judged dirty reads, then dependency-only cycles.
  IsoViolation dirty = mode == ConflictMode::kReadWrite
                           ? FindDirtyRead(type, serial)
                           : IsoViolation{};
  if (dirty.anomaly == AnomalyKind::kDirtyRead) {
    metrics.dirty_reads->Inc();
    fail(IsoLevel::kReadCommitted, dirty);
  } else if (auto cycle = graph.FindDependencyCycle()) {
    fail(IsoLevel::kReadCommitted,
         MakeCycleViolation(type, serial, mode, graph, *cycle,
                            /*is_walk=*/false, options.explain));
  }

  // kReadAtomic: adds single-anti cycles (G-single).
  if (!inherit(IsoLevel::kReadCommitted, IsoLevel::kReadAtomic)) {
    if (auto cycle = graph.FindSingleAntiCycle()) {
      fail(IsoLevel::kReadAtomic,
           MakeCycleViolation(type, serial, mode, graph, *cycle,
                              /*is_walk=*/false, options.explain));
    }
  }

  // kSnapshotIsolation: adds the adjacent-anti anti-pattern.
  if (!inherit(IsoLevel::kReadAtomic, IsoLevel::kSnapshotIsolation)) {
    if (auto walk = graph.FindAdjacentAntiWalk()) {
      // A length-2 walk is a simple cycle; keep the stronger shape claim.
      bool is_walk = true;
      std::set<TxName> distinct(walk->begin(), walk->end());
      if (distinct.size() == walk->size()) is_walk = false;
      std::vector<TxName> nodes =
          is_walk ? *walk : CanonicalCycleRotation(*walk);
      fail(IsoLevel::kSnapshotIsolation,
           MakeCycleViolation(type, serial, mode, graph, nodes, is_walk,
                              options.explain));
    }
  }

  // kSerializable: Theorem 8/19 — appropriate return values + acyclicity.
  if (!inherit(IsoLevel::kSnapshotIsolation, IsoLevel::kSerializable)) {
    if (auto cycle = graph.FindAnyCycle()) {
      fail(IsoLevel::kSerializable,
           MakeCycleViolation(type, serial, mode, graph, *cycle,
                              /*is_walk=*/false, options.explain));
    } else {
      Status values = mode == ConflictMode::kReadWrite
                          ? CheckAppropriateReturnValuesRw(type, serial)
                          : CheckAppropriateReturnValuesGeneral(type, serial);
      if (!values.ok()) {
        IsoViolation v;
        v.anomaly = AnomalyKind::kInappropriateValues;
        v.detail = values.message();
        fail(IsoLevel::kSerializable, v);
      }
    }
  }

  metrics.checks->Inc();
  obs::Counter* rejections[kNumIsoLevels] = {metrics.rejections_rc,
                                             metrics.rejections_ra,
                                             metrics.rejections_si,
                                             metrics.rejections_ser};
  for (size_t i = 0; i < kNumIsoLevels; ++i) {
    IsoLevelVerdict& lv = vv.levels[i];
    if (lv.ok) continue;
    rejections[i]->Inc();
    obs::TraceEmit(obs::TraceEventKind::kIsoLevelRejected, 0,
                   static_cast<uint32_t>(i),
                   static_cast<uint32_t>(lv.violation.anomaly));
    if (options.explain) {
      lv.violation.witness_verified = VerifyIsoWitness(
          type, serial, mode, lv.level, lv.violation);
      if (lv.violation.witness_verified) metrics.witnesses_verified->Inc();
    }
  }
  return vv;
}

IsoVerdictVector CheckIsolationLevels(const SystemType& type,
                                      const Trace& beta, ConflictMode mode,
                                      const IsoCheckOptions& options) {
  Trace serial = SerialPart(beta);
  LabeledSg graph(LabeledConflictRelation(type, serial, mode,
                                          options.num_threads),
                  PrecedesRelation(type, serial));
  return CheckFromLabeledGraph(type, serial, mode, graph, options);
}

bool VerifyIsoWitness(const SystemType& type, const Trace& beta,
                      ConflictMode mode, IsoLevel level,
                      const IsoViolation& violation) {
  Trace serial = SerialPart(beta);
  if (violation.anomaly == AnomalyKind::kDirtyRead) {
    return mode == ConflictMode::kReadWrite &&
           FindDirtyRead(type, serial).anomaly == AnomalyKind::kDirtyRead;
  }
  if (violation.anomaly == AnomalyKind::kInappropriateValues) {
    Status values = mode == ConflictMode::kReadWrite
                        ? CheckAppropriateReturnValuesRw(type, serial)
                        : CheckAppropriateReturnValuesGeneral(type, serial);
    return !values.ok();
  }

  const std::vector<TxName>& w = violation.witness;
  size_t n = w.size();
  if (n < 2) return false;
  // Independent rebuild: the labeled relations are recomputed from the
  // trace, not taken from the checker that produced the witness.
  LabeledSg graph = LabeledSg::Build(type, serial, mode);
  TxName parent = type.parent(w[0]);
  std::vector<bool> anti(n);
  size_t antis = 0;
  for (size_t i = 0; i < n; ++i) {
    if (type.parent(w[i]) != parent) return false;
    const IsoEdge* e = graph.FindEdge(w[i], w[(i + 1) % n]);
    if (e == nullptr) return false;
    anti[i] = e->anti_only();
    if (anti[i]) ++antis;
  }
  bool adjacent = false;
  for (size_t i = 0; i < n; ++i) {
    if (anti[i] && anti[(i + 1) % n]) adjacent = true;
  }
  if (!violation.witness_is_walk) {
    std::set<TxName> distinct(w.begin(), w.end());
    if (distinct.size() != n) return false;
  }
  switch (level) {
    case IsoLevel::kReadCommitted:
      return antis == 0 && !violation.witness_is_walk;
    case IsoLevel::kReadAtomic:
      return antis <= 1 && !violation.witness_is_walk;
    case IsoLevel::kSnapshotIsolation:
      // Inherited witnesses keep the weaker shape; fresh anti-pattern hits
      // must exhibit the adjacent pair.
      return violation.witness_is_walk ? adjacent : antis <= 1 || adjacent;
    case IsoLevel::kSerializable:
      return true;  // any closed edge sequence refutes acyclicity
  }
  return false;
}

}  // namespace ntsg
