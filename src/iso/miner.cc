#include "iso/miner.h"

#include <sstream>

#include "iso/anomaly_traces.h"
#include "obs/families.h"
#include "obs/trace.h"
#include "sim/driver.h"
#include "tx/trace_io.h"

namespace ntsg {

namespace {

/// The deliberately broken backends the simulator half of the search
/// rotates through (plus the conflict mode each one is judged under —
/// kNoCommuteUndo only misbehaves for commuting data types, so it runs on
/// counters in commutativity mode, like the differential fuzz layer).
struct SimSource {
  Backend backend;
  ObjectType object_type;
  ConflictMode mode;
};

constexpr SimSource kSimSources[] = {
    {Backend::kDirtyReadMoss, ObjectType::kReadWrite,
     ConflictMode::kReadWrite},
    {Backend::kNoReadLockMoss, ObjectType::kReadWrite,
     ConflictMode::kReadWrite},
    {Backend::kIgnoreReadersMoss, ObjectType::kReadWrite,
     ConflictMode::kReadWrite},
    {Backend::kNoCommuteUndo, ObjectType::kCounter,
     ConflictMode::kCommutativity},
};
constexpr size_t kNumSimSources = sizeof(kSimSources) / sizeof(kSimSources[0]);

}  // namespace

MinerReport MineAnomalies(const MinerOptions& options) {
  const obs::IsoMetrics& metrics = obs::GetIsoMetrics();
  MinerReport report;
  IsoCheckOptions check;
  check.num_threads = options.num_threads;

  for (size_t i = 0; i < options.runs; ++i) {
    metrics.miner_runs->Inc();
    ++report.runs;

    std::unique_ptr<SystemType> owned_type;
    Trace trace;
    ConflictMode mode = ConflictMode::kReadWrite;
    std::string source;
    if (i % 2 == 0) {
      // Template half: every anomaly template, salted so repeated visits
      // are distinct instances.
      size_t k = i / 2;
      AnomalyTemplate t =
          static_cast<AnomalyTemplate>(k % kNumAnomalyTemplates);
      uint64_t salt = options.seed + k / kNumAnomalyTemplates;
      BuiltTrace built = BuildAnomalyTrace(t, salt);
      owned_type = std::move(built.type);
      trace = std::move(built.trace);
      std::ostringstream s;
      s << "template:" << AnomalyTemplateName(t) << "#" << salt;
      source = s.str();
    } else {
      // Simulator half: the differential-fuzz workload shape (two objects,
      // depth-2 programs, three top-levels) against a broken backend.
      const SimSource& src = kSimSources[(i / 2) % kNumSimSources];
      QuickRunParams params;
      params.num_objects = 2;
      params.object_type = src.object_type;
      params.initial_value = 0;
      params.num_toplevel = 3;
      params.toplevel_retries = 1;
      params.gen.depth = 2;
      params.gen.fanout = 2;
      params.gen.read_prob = 0.5;
      params.gen.child_retries = 1;
      params.config.backend = src.backend;
      params.config.seed = options.seed * 1000003ull + i;
      QuickRunResult run = QuickRun(params);
      owned_type = std::move(run.type);
      trace = std::move(run.sim.trace);
      mode = src.mode;
      std::ostringstream s;
      s << "sim:" << BackendName(src.backend)
        << ":seed=" << params.config.seed;
      source = s.str();
    }

    IsoVerdictVector vv =
        CheckIsolationLevels(*owned_type, trace, mode, check);
    if (vv.SerializableOk()) continue;

    metrics.miner_hits->Inc();
    MinedHit hit;
    hit.run_index = i;
    hit.source = std::move(source);
    size_t first = vv.FirstFailing();
    hit.first_failing = static_cast<IsoLevel>(first);
    hit.weaker_level_accepts = first > 0;
    const IsoLevelVerdict& lv = vv.levels[first];
    hit.anomaly = lv.violation.anomaly;
    // Independent re-check: rebuild the relations from the trace and walk
    // the witness edge-by-edge (or re-derive the value violation).
    hit.witness_verified = VerifyIsoWitness(*owned_type, SerialPart(trace),
                                            vv.mode, lv.level, lv.violation);
    hit.trace_text = SerializeSystemAndTrace(*owned_type, trace);
    hit.render_text = vv.ToString(*owned_type);
    hit.verdicts = std::move(vv);
    obs::TraceEmit(obs::TraceEventKind::kIsoMinerHit, 0,
                   static_cast<uint32_t>(i),
                   static_cast<uint32_t>(hit.anomaly));
    ++report.anomaly_counts[AnomalyKindName(hit.anomaly)];
    report.hits.push_back(std::move(hit));
  }
  return report;
}

}  // namespace ntsg
