#include "obs/timeline.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace ntsg::obs {

TimelineEmitter::TimelineEmitter(std::string path, bool include_wallclock)
    : path_(std::move(path)), include_wallclock_(include_wallclock) {}

Status TimelineEmitter::Open() {
  out_.open(path_, std::ios::trunc);
  if (!out_) {
    return Status::Internal("cannot open " + path_ + " for writing");
  }
  return Status::Ok();
}

namespace {

std::string Fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string TimelineEmitter::RenderLine(const TimelineEpoch& e,
                                        bool include_wallclock) {
  std::ostringstream out;
  out << "{\"epoch\":" << e.epoch << ",\"mode\":\"" << JsonEscape(e.mode)
      << "\",\"vtime_start_us\":" << e.vtime_start_us
      << ",\"vtime_end_us\":" << e.vtime_end_us << ",\"offered\":" << e.offered
      << ",\"admitted_total\":" << e.admitted_total
      << ",\"ops_total\":" << e.ops_total << ",\"verdict\":\""
      << JsonEscape(e.verdict) << "\",\"gc_runs\":" << e.gc_runs
      << ",\"gc_retired_families\":" << e.gc_retired_families
      << ",\"gc_watermark\":" << e.gc_watermark;
  if (include_wallclock) {
    out << ",\"p50_us\":" << Fixed3(e.p50_us) << ",\"p95_us\":"
        << Fixed3(e.p95_us) << ",\"p99_us\":" << Fixed3(e.p99_us)
        << ",\"p999_us\":" << Fixed3(e.p999_us)
        << ",\"queue_depth\":" << e.queue_depth
        << ",\"wall_elapsed_s\":" << Fixed3(e.wall_elapsed_s);
    if (!e.metrics_json.empty()) out << ",\"metrics\":" << e.metrics_json;
  }
  out << "}";
  return out.str();
}

void TimelineEmitter::Emit(const TimelineEpoch& e) {
  if (!out_.is_open()) return;
  out_ << RenderLine(e, include_wallclock_) << "\n";
  ++epochs_emitted_;
}

Status TimelineEmitter::Close() {
  if (!out_.is_open()) return Status::Ok();
  out_.flush();
  const bool good = out_.good();
  out_.close();
  if (!good) return Status::Internal("short write to " + path_);
  return Status::Ok();
}

}  // namespace ntsg::obs
