#ifndef NTSG_OBS_METRICS_H_
#define NTSG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ntsg::obs {

/// Global on/off switch for every instrument. Disabled (the default unless
/// the NTSG_METRICS environment variable is set to a nonempty value other
/// than "0") every recording call reduces to one relaxed load and a branch —
/// the discipline bench_obs_overhead holds to a <2% end-to-end budget, the
/// same contract the fault hooks follow.
///
/// Instrumentation is strictly write-only from the instrumented code's point
/// of view: no certifier, pipeline, or scheduler decision ever reads a
/// metric, so enabling metrics cannot move a verdict or a graph fingerprint
/// (the chaos determinism suite runs both ways to enforce this).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing counter. Relaxed atomics: scrapes may observe a
/// slightly stale value, never a torn one.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depths, live node counts).
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (MetricsEnabled()) value_.fetch_add(d, std::memory_order_relaxed);
  }
  void Sub(int64_t d) { Add(-d); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Counter sharded over cache-line-padded slots so concurrent writers (e.g.
/// pipeline workers) never contend on one line; the scrape aggregates the
/// slots. Callers pass a slot hint (their shard index); any hint is valid.
class ShardedCounter {
 public:
  static constexpr size_t kSlots = 16;

  void Inc(size_t slot_hint, uint64_t n = 1) {
    if (MetricsEnabled()) {
      slots_[slot_hint % kSlots].v.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kSlots> slots_;
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at registration
/// and never reallocate, so Observe is lock-free (binary search over the
/// bounds + one relaxed add). Values are plain integers; latency callers use
/// microseconds by convention (see DefaultLatencyBucketsUs).
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t v);
  /// Records regardless of the global enable switch. For instruments a
  /// caller owns outright (the load harness's admission histogram): the
  /// measurement is the caller's product, not background telemetry, so it
  /// must not vanish when the process-wide switch is off.
  void ObserveAlways(uint64_t v);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the rank. Bucket i spans (lower, bounds()[i]] with
  /// lower = bounds()[i-1] (0 for the first); a rank landing in the +Inf
  /// bucket reports the highest finite bound (the histogram cannot resolve
  /// beyond it). Returns 0 on an empty histogram. Ranks are computed from
  /// one pass over the bucket counters (never count_), so a concurrent
  /// Observe can skew the estimate by at most its own sample.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<uint64_t> bounds_;  // strictly increasing upper bounds (le)
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// 1us .. ~1s in roughly 4x steps — wide enough for a single edge insert and
/// a full shard replay on the same scale.
std::vector<uint64_t> DefaultLatencyBucketsUs();

/// Strictly increasing integer bounds from `lo` to at least `hi` in equal
/// log steps (`per_decade` buckets per factor of 10, duplicates from integer
/// rounding dropped). The resolution the quantile estimator inherits: with
/// 8 buckets per decade the interpolation error is bounded by ~15% of the
/// reported value at any scale.
std::vector<uint64_t> LogBuckets(uint64_t lo, uint64_t hi, int per_decade);

/// Log-bucketed admission-latency bounds for the load harness: 1us .. 10s at
/// 8 buckets per decade (~56 buckets), fine enough to separate p99 from p999
/// around a saturation knee.
std::vector<uint64_t> LoadLatencyBucketsUs();

/// Escapes a string for embedding inside a JSON string literal: double
/// quotes, backslashes, and all control characters (\b \f \n \r \t, \uXXXX
/// for the rest). Shared by the metrics and trace exporters.
std::string JsonEscape(const std::string& s);

/// Builds one Prometheus-style label pair `key="value"` with the exposition
/// format's value escaping (backslash, double quote, newline). The canonical
/// way to construct the `labels` strings passed to the registry Get* calls —
/// hostile values (quotes, newlines) round-trip instead of corrupting the
/// scrape.
std::string LabelPair(const std::string& key, const std::string& value);

/// Owner of every instrument: families are keyed by Prometheus-style name
/// (one kind per name) and instances within a family by a label string like
/// `shard="3"` (empty for unlabeled). Handles returned by the Get* calls are
/// stable for the registry's lifetime, so components resolve them once and
/// record lock-free afterwards; the registry mutex is touched only at
/// registration and scrape time.
class MetricsRegistry {
 public:
  /// Process-wide registry all production components record into.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  ShardedCounter* GetShardedCounter(const std::string& name,
                                    const std::string& help,
                                    const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<uint64_t> bounds,
                          const std::string& labels = "");

  /// Prometheus text exposition (families in name order, instances in label
  /// order — deterministic given identical values). Histogram series derive
  /// the `+Inf` bucket and `_count` from one pass over the bucket counters,
  /// so every scrape is internally consistent (cumulative buckets monotone,
  /// `_count` equal to the `+Inf` bucket) even against concurrent writers.
  std::string PrometheusText() const;
  /// The same snapshot as a single JSON object. Histogram instances carry
  /// "p50"/"p95"/"p99" estimates next to the raw buckets. `compact` drops
  /// all formatting whitespace so the document fits on one NDJSON line.
  std::string JsonText(bool compact = false) const;
  /// One line per histogram family: name plus p50/p95/p99 (microsecond
  /// convention). What `ntsg stats` prints above the raw exposition.
  std::string QuantileText() const;
  /// Writes JSON when `path` ends in ".json", Prometheus text otherwise.
  Status WriteSnapshot(const std::string& path) const;

  /// Zeroes every instrument (families stay registered). For tests and for
  /// bench iterations that want per-phase snapshots.
  void ResetAll();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kShardedCounter, kHistogram };

  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ShardedCounter> sharded;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind;
    std::string help;
    std::map<std::string, Instrument> instances;  // by label string
  };

  Family& FamilyFor(const std::string& name, Kind kind,
                    const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace ntsg::obs

#endif  // NTSG_OBS_METRICS_H_
