#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace ntsg::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// NTSG_METRICS=1 (any nonempty value but "0") force-enables metrics at
/// process start — the CI hook that runs the full tier-1 gate instrumented
/// without touching any call site.
bool InitEnabledFromEnv() {
  const char* env = std::getenv("NTSG_METRICS");
  bool on = env != nullptr && env[0] != '\0' && std::string(env) != "0";
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

const bool g_env_init = InitEnabledFromEnv();

}  // namespace

bool MetricsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  (void)g_env_init;
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  NTSG_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  NTSG_CHECK(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
             bounds_.end())
      << "histogram bounds must be strictly increasing";
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(uint64_t v) {
  if (!MetricsEnabled()) return;
  ObserveAlways(v);
}

void Histogram::ObserveAlways(uint64_t v) {
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  // One consistent pass over the bucket counters; count_ may lag or lead
  // these by in-flight observations, so the rank is taken against the same
  // snapshot the walk uses.
  std::vector<uint64_t> snap(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    if (snap[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += snap[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds_.size()) return static_cast<double>(bounds_.back());
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
    const double upper = static_cast<double>(bounds_[i]);
    const double frac = (rank - below) / static_cast<double>(snap[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
  }
  return static_cast<double>(bounds_.empty() ? 0 : bounds_.back());
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> DefaultLatencyBucketsUs() {
  return {1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576};
}

std::vector<uint64_t> LogBuckets(uint64_t lo, uint64_t hi, int per_decade) {
  NTSG_CHECK(lo > 0 && hi >= lo && per_decade > 0);
  std::vector<uint64_t> bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  double b = static_cast<double>(lo);
  while (true) {
    uint64_t v = static_cast<uint64_t>(std::llround(b));
    if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
    if (v >= hi) break;
    b *= step;
  }
  return bounds;
}

std::vector<uint64_t> LoadLatencyBucketsUs() {
  return LogBuckets(1, 10'000'000, 8);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string LabelPair(const std::string& key, const std::string& value) {
  std::string out = key + "=\"";
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    Kind kind,
                                                    const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    NTSG_CHECK(it->second.kind == kind)
        << "metric family " << name << " re-registered with another kind";
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      FamilyFor(name, Kind::kCounter, help).instances[labels];
  if (inst.counter == nullptr) inst.counter = std::make_unique<Counter>();
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = FamilyFor(name, Kind::kGauge, help).instances[labels];
  if (inst.gauge == nullptr) inst.gauge = std::make_unique<Gauge>();
  return inst.gauge.get();
}

ShardedCounter* MetricsRegistry::GetShardedCounter(const std::string& name,
                                                   const std::string& help,
                                                   const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      FamilyFor(name, Kind::kShardedCounter, help).instances[labels];
  if (inst.sharded == nullptr) inst.sharded = std::make_unique<ShardedCounter>();
  return inst.sharded.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<uint64_t> bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      FamilyFor(name, Kind::kHistogram, help).instances[labels];
  if (inst.histogram == nullptr) {
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return inst.histogram.get();
}

namespace {

/// Prometheus metric names admit only [a-zA-Z0-9_:] (and no leading digit);
/// anything else — quotes, spaces, control characters from a hostile
/// registration — is mapped to '_' so the exposition stays parseable.
std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Defense in depth for label strings that bypassed LabelPair: raw newlines
/// and carriage returns would break the line-oriented exposition, other
/// control characters are unrepresentable in it — replace them. Properly
/// escaped strings pass through untouched.
std::string SanitizeLabelBlock(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  for (unsigned char c : labels) {
    if (c == '\n') {
      out += "\\n";
    } else if (c < 0x20) {
      out.push_back('_');
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

/// `name` or `name{labels}`; `extra` appends to the label list (histogram le).
std::string Series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  std::string inner = SanitizeLabelBlock(labels);
  if (!extra.empty()) inner += (inner.empty() ? "" : ",") + extra;
  if (inner.empty()) return name;
  return name + "{" + inner + "}";
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [raw_name, family] : families_) {
    const std::string name = SanitizeMetricName(raw_name);
    out << "# HELP " << name << " " << EscapeHelp(family.help) << "\n";
    const char* type = nullptr;
    switch (family.kind) {
      case Kind::kCounter:
      case Kind::kShardedCounter:
        type = "counter";
        break;
      case Kind::kGauge:
        type = "gauge";
        break;
      case Kind::kHistogram:
        type = "histogram";
        break;
    }
    out << "# TYPE " << name << " " << type << "\n";
    for (const auto& [labels, inst] : family.instances) {
      switch (family.kind) {
        case Kind::kCounter:
          out << Series(name, labels) << " " << inst.counter->value() << "\n";
          break;
        case Kind::kShardedCounter:
          out << Series(name, labels) << " " << inst.sharded->value() << "\n";
          break;
        case Kind::kGauge:
          out << Series(name, labels) << " " << inst.gauge->value() << "\n";
          break;
        case Kind::kHistogram: {
          // Exposition-format conformance: the cumulative `+Inf` bucket and
          // `_count` must be equal and no smaller than any finite bucket
          // within one scrape. Both are therefore derived from a single
          // pass over the bucket counters — the separate count_ cell can
          // lag an in-flight Observe (bucket incremented, count not yet)
          // and would render a non-monotone bucket series.
          const Histogram& h = *inst.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket(i);
            out << Series(name + "_bucket", labels,
                          "le=\"" + std::to_string(h.bounds()[i]) + "\"")
                << " " << cumulative << "\n";
          }
          cumulative += h.bucket(h.bounds().size());
          out << Series(name + "_bucket", labels, "le=\"+Inf\"") << " "
              << cumulative << "\n";
          out << Series(name + "_sum", labels) << " " << h.sum() << "\n";
          out << Series(name + "_count", labels) << " " << cumulative
              << "\n";
          break;
        }
      }
    }
  }
  return out.str();
}

namespace {

/// Fixed-precision decimal rendering for quantile estimates: three decimals,
/// never scientific notation, so exporters are byte-deterministic for equal
/// values regardless of locale or magnitude.
std::string FormatQuantile(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::JsonText(bool compact) const {
  const char* nl = compact ? "" : "\n";
  const char* indent = compact ? "" : "  ";
  const char* sp = compact ? "" : " ";
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{" << nl;
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out << "," << nl;
    first_family = false;
    out << indent << "\"" << JsonEscape(name) << "\":" << sp << "{";
    bool first_inst = true;
    for (const auto& [labels, inst] : family.instances) {
      if (!first_inst) out << "," << sp;
      first_inst = false;
      out << "\"" << (labels.empty() ? "_" : JsonEscape(labels)) << "\":"
          << sp;
      switch (family.kind) {
        case Kind::kCounter:
          out << inst.counter->value();
          break;
        case Kind::kShardedCounter:
          out << inst.sharded->value();
          break;
        case Kind::kGauge:
          out << inst.gauge->value();
          break;
        case Kind::kHistogram: {
          // Same single-pass consistency rule as the Prometheus exposition:
          // "count" is the bucket total, so it always equals the sum of
          // "buckets" within one snapshot.
          const Histogram& h = *inst.histogram;
          uint64_t total = 0;
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            total += h.bucket(i);
          }
          out << "{\"count\":" << sp << total << "," << sp
              << "\"sum\":" << sp << h.sum() << "," << sp << "\"p50\":" << sp
              << FormatQuantile(h.Quantile(0.50)) << "," << sp
              << "\"p95\":" << sp << FormatQuantile(h.Quantile(0.95)) << ","
              << sp << "\"p99\":" << sp << FormatQuantile(h.Quantile(0.99))
              << "," << sp << "\"buckets\":" << sp << "[";
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            if (i > 0) out << "," << sp;
            out << h.bucket(i);
          }
          out << "]}";
          break;
        }
      }
    }
    out << "}";
  }
  out << nl << "}" << nl;
  return out.str();
}

std::string MetricsRegistry::QuantileText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    if (family.kind != Kind::kHistogram) continue;
    for (const auto& [labels, inst] : family.instances) {
      const Histogram& h = *inst.histogram;
      uint64_t total = 0;
      for (size_t i = 0; i <= h.bounds().size(); ++i) total += h.bucket(i);
      if (total == 0) continue;
      out << name << (labels.empty() ? "" : "{" + labels + "}") << ": p50="
          << FormatQuantile(h.Quantile(0.50))
          << " p95=" << FormatQuantile(h.Quantile(0.95))
          << " p99=" << FormatQuantile(h.Quantile(0.99)) << " (" << total
          << " samples)\n";
    }
  }
  return out.str();
}

Status MetricsRegistry::WriteSnapshot(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open " + path + " for writing");
  bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  file << (json ? JsonText() : PrometheusText());
  if (!file.good()) return Status::Internal("short write to " + path);
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, inst] : family.instances) {
      switch (family.kind) {
        case Kind::kCounter:
          inst.counter->Reset();
          break;
        case Kind::kShardedCounter:
          inst.sharded->Reset();
          break;
        case Kind::kGauge:
          inst.gauge->Reset();
          break;
        case Kind::kHistogram:
          inst.histogram->Reset();
          break;
      }
    }
  }
}

}  // namespace ntsg::obs
