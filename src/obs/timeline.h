#ifndef NTSG_OBS_TIMELINE_H_
#define NTSG_OBS_TIMELINE_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"

namespace ntsg::obs {

/// One epoch of a load-harness run, rendered as a single NDJSON object (one
/// line per epoch, fixed key order — the format tt-npe-style timeline
/// viewers and plain jq both consume, and a sibling of the NDJSON causal
/// trace export).
///
/// Fields split into a deterministic core and wall-clock extras. The core —
/// virtual-time window, offered/admitted counts, verdict, GC progress — is
/// a pure function of (workload seed, rate seed, certifier mode), so two
/// runs at any thread count render byte-identical lines. The extras —
/// latency quantiles, queue depths, the full metric-registry snapshot —
/// measure the machine and are only emitted when the emitter was opened
/// with include_wallclock (ntsg load --timeline-wallclock).
struct TimelineEpoch {
  uint64_t epoch = 0;        // 0-based epoch index
  std::string mode;          // batch | incremental | sharded
  uint64_t vtime_start_us = 0;  // virtual-time window [start, end)
  uint64_t vtime_end_us = 0;
  uint64_t offered = 0;           // arrivals scheduled inside the window
  uint64_t admitted_total = 0;    // cumulative actions admitted
  uint64_t ops_total = 0;         // cumulative visible operations admitted
  std::string verdict;            // ok | rejected | pending
  // Commit-watermark GC progress as of the epoch boundary (zeros with GC
  // off). The watermark and retirement schedule are deterministic for a
  // fault-free run, so these belong to the core.
  uint64_t gc_runs = 0;
  uint64_t gc_retired_families = 0;
  uint64_t gc_watermark = 0;

  // Wall-clock extras (include_wallclock only).
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t queue_depth = 0;   // ingest shard queues, sampled at the boundary
  double wall_elapsed_s = 0;  // since the run started
  /// Compact JSON snapshot of every metric family
  /// (MetricsRegistry::JsonText(compact)); empty = omit the field.
  std::string metrics_json;
};

/// Streams TimelineEpoch records to an NDJSON file. Open fails fast (the
/// CLI turns it into a usage error before any load runs); Emit renders with
/// fixed key order and fixed-precision decimals so deterministic runs are
/// byte-comparable with cmp(1).
class TimelineEmitter {
 public:
  TimelineEmitter(std::string path, bool include_wallclock);

  Status Open();
  void Emit(const TimelineEpoch& e);
  /// Flushes and reports any deferred write error (ENOSPC surfaces here,
  /// not as a silently truncated timeline).
  Status Close();

  bool include_wallclock() const { return include_wallclock_; }
  uint64_t epochs_emitted() const { return epochs_emitted_; }

  /// Renders one epoch without an emitter — the deterministic single source
  /// of truth Emit writes and tests pin.
  static std::string RenderLine(const TimelineEpoch& e,
                                bool include_wallclock);

 private:
  std::string path_;
  bool include_wallclock_;
  std::ofstream out_;
  uint64_t epochs_emitted_ = 0;
};

}  // namespace ntsg::obs

#endif  // NTSG_OBS_TIMELINE_H_
