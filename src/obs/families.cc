#include "obs/families.h"

#include <string>

namespace ntsg::obs {

namespace {

MetricsRegistry& Reg() { return MetricsRegistry::Default(); }

Histogram* LatencyHistogram(const std::string& name, const std::string& help) {
  return Reg().GetHistogram(name, help, DefaultLatencyBucketsUs());
}

}  // namespace

const CertifierMetrics& GetCertifierMetrics() {
  static const CertifierMetrics m = {
      Reg().GetCounter("ntsg_certifier_actions_total",
                       "Actions ingested by incremental certifiers"),
      Reg().GetCounter("ntsg_certifier_ops_activated_total",
                       "Operations that became visible and were applied"),
      Reg().GetCounter("ntsg_certifier_ops_parked_total",
                       "Operations parked on an uncommitted ancestor"),
      Reg().GetCounter("ntsg_certifier_ops_dropped_total",
                       "Parked operations dropped because an ancestor aborted"),
      Reg().GetCounter("ntsg_certifier_visibility_fired_total",
                       "Visibility-tracker items fired by a commit"),
      Reg().GetCounter("ntsg_certifier_conflict_edges_total",
                       "Distinct conflict edges inserted"),
      Reg().GetCounter("ntsg_certifier_precedes_edges_total",
                       "Distinct precedes edges inserted"),
      Reg().GetCounter("ntsg_certifier_cycle_rejections_total",
                       "Edge insertions rejected for closing a cycle"),
      LatencyHistogram("ntsg_certifier_edge_insert_us",
                       "Pearce-Kelly edge insertion latency"),
  };
  return m;
}

const SgtMetrics& GetSgtMetrics() {
  static const SgtMetrics m = {
      Reg().GetCounter("ntsg_sgt_admission_checks_total",
                       "Admission trials run by the SGT coordinator"),
      Reg().GetCounter("ntsg_sgt_admission_rejects_total",
                       "Admission trials that found a cycle"),
      Reg().GetCounter("ntsg_sgt_edges_added_total",
                       "Sibling edges admitted into the coordinator graph"),
      Reg().GetCounter("ntsg_sgt_edges_removed_total",
                       "Sibling edges expunged by aborts"),
      LatencyHistogram("ntsg_sgt_admission_check_us",
                       "Trial-insert admission check latency"),
  };
  return m;
}

const IngestMetrics& GetIngestMetrics() {
  static const IngestMetrics m = {
      Reg().GetCounter("ntsg_ingest_actions_total",
                       "Actions routed through ingest pipelines"),
      Reg().GetCounter("ntsg_ingest_ops_routed_total",
                       "Visible operations dispatched to shard queues"),
      Reg().GetShardedCounter("ntsg_ingest_ops_processed_total",
                              "Operations applied by shard workers"),
      Reg().GetCounter("ntsg_ingest_backpressure_waits_total",
                       "Pushes that blocked on a full shard queue"),
      Reg().GetCounter("ntsg_ingest_worker_restarts_total",
                       "Shard workers restarted after a crash"),
      LatencyHistogram("ntsg_ingest_delivery_lag_us",
                       "Queue residency from push to worker apply"),
      LatencyHistogram("ntsg_ingest_snapshot_us",
                       "Shard snapshot (checkpoint) duration"),
      LatencyHistogram("ntsg_ingest_replay_us",
                       "Crash-recovery snapshot-restore-plus-log-replay "
                       "duration"),
      LatencyHistogram("ntsg_ingest_stripe_lock_wait_us",
                       "Wait to acquire a graph stripe mutex"),
  };
  return m;
}

Gauge* IngestQueueDepthGauge(size_t shard) {
  return Reg().GetGauge("ntsg_ingest_queue_depth",
                        "Operations queued per shard",
                        "shard=\"" + std::to_string(shard) + "\"");
}

const DriverMetrics& GetDriverMetrics() {
  static const DriverMetrics m = {
      Reg().GetCounter("ntsg_driver_steps_total",
                       "Simulation steps executed"),
      Reg().GetCounter("ntsg_driver_stall_events_total",
                       "Quiescent states with blocked accesses (deadlock "
                       "resolution rounds)"),
      Reg().GetCounter("ntsg_driver_aborts_total",
                       "Driver-initiated aborts by cause", "cause=\"stall\""),
      Reg().GetCounter("ntsg_driver_aborts_total",
                       "Driver-initiated aborts by cause", "cause=\"random\""),
      Reg().GetCounter("ntsg_driver_aborts_total",
                       "Driver-initiated aborts by cause", "cause=\"plan\""),
      Reg().GetCounter("ntsg_driver_aborts_total",
                       "Driver-initiated aborts by cause",
                       "cause=\"spurious\""),
  };
  return m;
}

const SgBuildMetrics& GetSgBuildMetrics() {
  static const SgBuildMetrics m = {
      Reg().GetCounter("ntsg_sg_conflict_edges_emitted_total",
                       "Distinct conflict edges emitted by frontier probes"),
      Reg().GetCounter("ntsg_sg_precedes_edges_emitted_total",
                       "Distinct precedes edges emitted by batch builds"),
      Reg().GetCounter("ntsg_sg_frontier_hits_total",
                       "Frontier stat entries that induced a conflict edge"),
      Reg().GetCounter("ntsg_sg_frontier_misses_total",
                       "Frontier class lists probed without finding a "
                       "conflicting entry"),
      Reg().GetCounter("ntsg_sg_class_pair_evals_total",
                       "Operation-class conflict verdicts computed (each "
                       "distinct pair once; skipped pairs never appear)"),
      Reg().GetCounter("ntsg_sg_parallel_merges_total",
                       "Per-shard edge sets merged by parallel batch builds"),
      LatencyHistogram("ntsg_lca_level_build_us",
                       "Backfill of one new binary-lifting ancestor level"),
      LatencyHistogram("ntsg_sg_batch_build_us",
                       "Full batch conflict-relation construction"),
  };
  return m;
}

const GcMetrics& GetGcMetrics() {
  static const GcMetrics m = {
      Reg().GetCounter("ntsg_gc_runs_total",
                       "Watermark GC retirement passes executed"),
      Reg().GetCounter("ntsg_gc_families_retired_total",
                       "Top-level transaction families retired"),
      Reg().GetCounter("ntsg_gc_nodes_retired_total",
                       "Serialization-graph nodes reclaimed"),
      Reg().GetCounter("ntsg_gc_ops_pruned_total",
                       "Visible operations folded into replay checkpoints"),
      Reg().GetCounter("ntsg_gc_late_events_total",
                       "Actions ignored for naming an already-retired family"),
      Reg().GetGauge("ntsg_gc_live_nodes",
                     "Live serialization-graph nodes after the last GC pass"),
      Reg().GetGauge("ntsg_gc_live_families",
                     "Unretired top-level families after the last GC pass"),
      LatencyHistogram("ntsg_gc_run_us",
                       "Duration of one retirement pass"),
  };
  return m;
}

const FaultMetrics& GetFaultMetrics() {
  static const FaultMetrics m = {
      Reg().GetCounter("ntsg_fault_crashes_total",
                       "Worker crashes delivered"),
      Reg().GetCounter("ntsg_fault_restart_attempts_total",
                       "Worker restart attempts"),
      Reg().GetCounter("ntsg_fault_restart_failures_total",
                       "Worker restart attempts that failed"),
      Reg().GetCounter("ntsg_fault_restarts_total",
                       "Workers successfully restarted"),
      Reg().GetCounter("ntsg_fault_delays_total",
                       "Delivery delays injected"),
      Reg().GetCounter("ntsg_fault_duplicates_total",
                       "Deliveries duplicated"),
      Reg().GetCounter("ntsg_fault_reorders_total",
                       "Deliveries reordered"),
      Reg().GetCounter("ntsg_fault_snapshots_total",
                       "Snapshot faults delivered"),
      Reg().GetCounter("ntsg_fault_items_replayed_total",
                       "Logged items replayed during recovery"),
      Reg().GetCounter("ntsg_fault_injected_aborts_total",
                       "Controller aborts injected by a fault plan"),
      Reg().GetCounter("ntsg_fault_spurious_rejects_total",
                       "SGT admission checks failed on purpose"),
  };
  return m;
}

const IsoMetrics& GetIsoMetrics() {
  static const IsoMetrics m = {
      Reg().GetCounter("ntsg_iso_checks_total",
                       "Isolation verdict vectors computed"),
      Reg().GetCounter("ntsg_iso_level_rejections_total",
                       "Traces rejected per isolation level",
                       "level=\"read_committed\""),
      Reg().GetCounter("ntsg_iso_level_rejections_total",
                       "Traces rejected per isolation level",
                       "level=\"read_atomic\""),
      Reg().GetCounter("ntsg_iso_level_rejections_total",
                       "Traces rejected per isolation level",
                       "level=\"snapshot_isolation\""),
      Reg().GetCounter("ntsg_iso_level_rejections_total",
                       "Traces rejected per isolation level",
                       "level=\"serializable\""),
      Reg().GetCounter("ntsg_iso_dirty_reads_total",
                       "Value-judged dirty reads detected"),
      Reg().GetCounter("ntsg_iso_witnesses_verified_total",
                       "Violation witnesses that re-verified edge-by-edge"),
      Reg().GetCounter("ntsg_iso_miner_runs_total",
                       "Workload/seed points explored by the anomaly miner"),
      Reg().GetCounter("ntsg_iso_miner_hits_total",
                       "Miner runs rejected at the serializable level"),
      LatencyHistogram("ntsg_iso_check_us",
                       "Full verdict-vector computation for one trace"),
  };
  return m;
}

const LoadMetrics& GetLoadMetrics() {
  static const LoadMetrics m = {
      Reg().GetCounter("ntsg_load_actions_offered_total",
                       "Actions scheduled by the open-loop arrival process"),
      Reg().GetCounter("ntsg_load_actions_admitted_total",
                       "Actions admitted into a certifier by the harness"),
      Reg().GetCounter("ntsg_load_epochs_total",
                       "Timeline epochs completed by load runs"),
      Reg().GetCounter("ntsg_load_sweep_steps_total",
                       "Offered-rate steps executed by saturation sweeps"),
      Reg().GetCounter("ntsg_load_late_arrivals_total",
                       "Arrivals admitted after their scheduled virtual time"),
      Reg().GetHistogram("ntsg_load_admission_us",
                         "Scheduled-arrival-to-admission-complete latency",
                         LoadLatencyBucketsUs()),
  };
  return m;
}

const BatchMetrics& GetBatchMetrics() {
  // Realized batch sizes span "flag left at 1" through whole-trace epochs;
  // power-of-two bounds keep the histogram cheap while still separating the
  // regimes the perf gate cares about.
  static const BatchMetrics m = {
      Reg().GetCounter("ntsg_batch_commits_total",
                       "Edge batches committed by one batched reorder pass"),
      Reg().GetCounter("ntsg_batch_bisects_total",
                       "Edge batches rejected and replayed per-edge"),
      Reg().GetCounter("ntsg_batch_edges_staged_total",
                       "Graph edges staged by batched ingestion"),
      Reg().GetCounter("ntsg_batch_edges_committed_total",
                       "Fresh edges committed by batch passes"),
      Reg().GetCounter("ntsg_batch_actions_total",
                       "Actions ingested through the batched admission path"),
      Reg().GetHistogram("ntsg_batch_size_actions",
                         "Actions per flushed admission batch",
                         {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                          4096, 8192, 16384, 32768, 65536}),
      LatencyHistogram("ntsg_batch_commit_us",
                       "Batched edge-commit (or replay) duration"),
  };
  return m;
}

void RegisterAllMetricFamilies() {
  (void)GetCertifierMetrics();
  (void)GetSgtMetrics();
  (void)GetIngestMetrics();
  (void)IngestQueueDepthGauge(0);
  (void)GetDriverMetrics();
  (void)GetSgBuildMetrics();
  (void)GetGcMetrics();
  (void)GetFaultMetrics();
  (void)GetIsoMetrics();
  (void)GetLoadMetrics();
  (void)GetBatchMetrics();
}

}  // namespace ntsg::obs
