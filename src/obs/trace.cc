#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"

namespace ntsg::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// NTSG_TRACE=1 (any nonempty value but "0") force-enables tracing at
/// process start — how CI runs the full tier-1 gate recording without
/// touching any call site.
bool InitEnabledFromEnv() {
  const char* env = std::getenv("NTSG_TRACE");
  bool on = env != nullptr && env[0] != '\0' && std::string(env) != "0";
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

const bool g_env_init = InitEnabledFromEnv();

constexpr size_t kDefaultRingCapacity = 4096;

std::string FlagsToString(uint8_t flags) {
  static constexpr struct {
    uint8_t bit;
    const char* name;
  } kBits[] = {
      {kTraceFlagConflict, "conflict"},   {kTraceFlagPrecedes, "precedes"},
      {kTraceFlagAbort, "abort"},         {kTraceFlagReject, "reject"},
      {kTraceFlagSpurious, "spurious"},   {kTraceFlagInappropriate, "inappropriate"},
      {kTraceFlagCycle, "cycle"},
  };
  std::string out;
  for (const auto& b : kBits) {
    if ((flags & b.bit) == 0) continue;
    if (!out.empty()) out += "|";
    out += b.name;
  }
  return out;
}

}  // namespace

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetTraceEnabled(bool enabled) {
  (void)g_env_init;
  g_enabled.store(enabled, std::memory_order_relaxed);
}

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kActionIngested: return "action_ingested";
    case TraceEventKind::kActionExecuted: return "action_executed";
    case TraceEventKind::kSpanBegin: return "span_begin";
    case TraceEventKind::kSpanEnd: return "span_end";
    case TraceEventKind::kOpActivated: return "op_activated";
    case TraceEventKind::kOpParked: return "op_parked";
    case TraceEventKind::kOpFired: return "op_fired";
    case TraceEventKind::kOpDropped: return "op_dropped";
    case TraceEventKind::kOpRouted: return "op_routed";
    case TraceEventKind::kOpApplied: return "op_applied";
    case TraceEventKind::kEdgeInserted: return "edge_inserted";
    case TraceEventKind::kEdgeRejected: return "edge_rejected";
    case TraceEventKind::kEdgeRemoved: return "edge_removed";
    case TraceEventKind::kTopoReorder: return "topo_reorder";
    case TraceEventKind::kAdmissionCheck: return "admission_check";
    case TraceEventKind::kVerdictRejected: return "verdict_rejected";
    case TraceEventKind::kFaultFired: return "fault_fired";
    case TraceEventKind::kWorkerCrash: return "worker_crash";
    case TraceEventKind::kWorkerRestart: return "worker_restart";
    case TraceEventKind::kSnapshot: return "snapshot";
    case TraceEventKind::kReplay: return "replay";
    case TraceEventKind::kStallAbort: return "stall_abort";
    case TraceEventKind::kInjectedAbort: return "injected_abort";
    case TraceEventKind::kGcRun: return "gc_run";
    case TraceEventKind::kGcRetire: return "gc_retire";
    case TraceEventKind::kGcLateEvent: return "gc_late_event";
    case TraceEventKind::kIsoLevelRejected: return "iso_level_rejected";
    case TraceEventKind::kIsoMinerHit: return "iso_miner_hit";
    case TraceEventKind::kBatchCommit: return "batch_commit";
    case TraceEventKind::kBatchBisect: return "batch_bisect";
  }
  return "unknown";
}

TraceEventFieldInfo TraceEventFields(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
    case TraceEventKind::kSpanEnd:
    case TraceEventKind::kEdgeInserted:
    case TraceEventKind::kEdgeRejected:
    case TraceEventKind::kEdgeRemoved:
    case TraceEventKind::kTopoReorder:
      return {true, true};
    case TraceEventKind::kActionIngested:
    case TraceEventKind::kActionExecuted:
    case TraceEventKind::kOpActivated:
    case TraceEventKind::kOpParked:
    case TraceEventKind::kOpFired:
    case TraceEventKind::kOpDropped:
    case TraceEventKind::kOpRouted:
    case TraceEventKind::kOpApplied:
    case TraceEventKind::kAdmissionCheck:
    case TraceEventKind::kStallAbort:
    case TraceEventKind::kInjectedAbort:
    case TraceEventKind::kGcRetire:
    case TraceEventKind::kGcLateEvent:
      return {true, false};
    case TraceEventKind::kVerdictRejected:
    case TraceEventKind::kFaultFired:
    case TraceEventKind::kWorkerCrash:
    case TraceEventKind::kWorkerRestart:
    case TraceEventKind::kSnapshot:
    case TraceEventKind::kReplay:
    case TraceEventKind::kGcRun:
    case TraceEventKind::kIsoLevelRejected:
    case TraceEventKind::kIsoMinerHit:
    case TraceEventKind::kBatchCommit:
    case TraceEventKind::kBatchBisect:
      return {false, false};
  }
  return {false, false};
}

// --- TraceRing --------------------------------------------------------------

std::vector<TraceEvent> TraceRing::Snapshot(size_t last_n) const {
  uint64_t n = std::min<uint64_t>(count_, buf_.size());
  if (last_n < n) n = last_n;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = count_ - n; i < count_; ++i) {
    out.push_back(buf_[i % buf_.size()]);
  }
  return out;
}

// --- TraceRecorder ----------------------------------------------------------

struct TraceRecorder::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<TraceRing>> rings;  // by tid
  std::vector<TraceRing*> free_rings;             // LIFO: successor inherits
  size_t capacity = kDefaultRingCapacity;
  // Bumped by Clear(): stale thread-bound ring pointers are detected by
  // epoch mismatch and never dereferenced.
  std::atomic<uint64_t> epoch{1};
  std::atomic<uint64_t> seq{0};
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
};

/// Thread-lifetime binding of one ring: created on a thread's first emit,
/// returns the ring to the recorder's free list when the thread exits so a
/// successor (e.g. a restarted shard worker) inherits the history.
class TraceRingLease {
 public:
  ~TraceRingLease() {
    if (ring != nullptr) {
      TraceRecorder::Default().ReleaseRing(ring, epoch);
    }
  }
  TraceRing* ring = nullptr;
  uint64_t epoch = 0;
};

namespace {
thread_local TraceRingLease t_lease;
}  // namespace

TraceRecorder::TraceRecorder() : impl_(new Impl()) {}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRing* TraceRecorder::RingForThisThread() {
  uint64_t epoch = impl_->epoch.load(std::memory_order_relaxed);
  if (t_lease.ring != nullptr && t_lease.epoch == epoch) return t_lease.ring;
  std::lock_guard<std::mutex> lock(impl_->mu);
  TraceRing* ring = nullptr;
  if (!impl_->free_rings.empty()) {
    ring = impl_->free_rings.back();
    impl_->free_rings.pop_back();
  } else {
    uint32_t tid = static_cast<uint32_t>(impl_->rings.size());
    impl_->rings.push_back(std::make_unique<TraceRing>(tid, impl_->capacity));
    ring = impl_->rings.back().get();
  }
  t_lease.ring = ring;
  t_lease.epoch = impl_->epoch.load(std::memory_order_relaxed);
  return ring;
}

void TraceRecorder::ReleaseRing(TraceRing* ring, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (epoch != impl_->epoch.load(std::memory_order_relaxed)) return;
  impl_->free_rings.push_back(ring);
}

void TraceRecorder::Emit(TraceEventKind kind, uint32_t span, uint32_t a,
                         uint32_t b, uint8_t flags, uint64_t arg) {
  TraceRing* ring = RingForThisThread();
  TraceEvent e;
  e.seq = impl_->seq.fetch_add(1, std::memory_order_relaxed);
  e.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - impl_->t0)
          .count());
  e.arg = arg;
  e.span = span;
  e.a = a;
  e.b = b;
  e.kind = kind;
  e.flags = flags;
  ring->Append(e);
}

void TraceRecorder::SetRingCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

size_t TraceRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->rings.clear();
  impl_->free_rings.clear();
  impl_->epoch.fetch_add(1, std::memory_order_relaxed);
  impl_->seq.store(0, std::memory_order_relaxed);
  impl_->t0 = std::chrono::steady_clock::now();
}

size_t TraceRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->rings.size();
}

uint64_t TraceRecorder::total_events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& r : impl_->rings) total += r->count();
  return total;
}

std::vector<TraceEvent> TraceRecorder::MergedEvents() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& r : impl_->rings) {
      std::vector<TraceEvent> part = r->Snapshot();
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return all;
}

namespace {

/// Renders a subject field: resolved through `name_of` when the kind says it
/// holds a transaction name, numeric otherwise.
std::string Subject(uint32_t v, bool is_tx, const TraceNameFn& name_of) {
  if (is_tx && name_of != nullptr) return name_of(v);
  return std::to_string(v);
}

}  // namespace

std::string TraceRecorder::NdjsonText(const TraceNameFn& name_of) const {
  std::ostringstream out;
  // tid lookup: re-associate each event with its ring for the tid column.
  std::vector<std::pair<uint32_t, TraceEvent>> all;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& r : impl_->rings) {
      for (const TraceEvent& e : r->Snapshot()) all.emplace_back(r->tid(), e);
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    return x.second.seq < y.second.seq;
  });
  for (const auto& [tid, e] : all) {
    TraceEventFieldInfo info = TraceEventFields(e.kind);
    out << "{\"seq\":" << e.seq << ",\"ts_us\":" << e.ts_us << ",\"tid\":"
        << tid << ",\"kind\":\"" << TraceEventKindName(e.kind)
        << "\",\"span\":\""
        << JsonEscape(Subject(e.span, /*is_tx=*/true, name_of)) << "\",\"a\":\""
        << JsonEscape(Subject(e.a, info.a_is_tx, name_of)) << "\",\"b\":\""
        << JsonEscape(Subject(e.b, info.b_is_tx, name_of)) << "\",\"arg\":"
        << e.arg;
    if (e.flags != 0) {
      out << ",\"flags\":\"" << FlagsToString(e.flags) << "\"";
    }
    out << "}\n";
  }
  return out.str();
}

std::string TraceRecorder::ChromeTraceJson(const TraceNameFn& name_of) const {
  std::vector<std::pair<uint32_t, TraceEvent>> all;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& r : impl_->rings) {
      for (const TraceEvent& e : r->Snapshot()) all.emplace_back(r->tid(), e);
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    return x.second.seq < y.second.seq;
  });
  std::ostringstream out;
  out << "{\"traceEvents\":[\n"
      << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"ntsg\"}}";
  for (const auto& [tid, e] : all) {
    TraceEventFieldInfo info = TraceEventFields(e.kind);
    out << ",\n";
    if (e.kind == TraceEventKind::kSpanBegin ||
        e.kind == TraceEventKind::kSpanEnd) {
      // Transaction intervals as async begin/end pairs keyed by the
      // transaction name: REQUEST_CREATE opens, REPORT_* closes, and the
      // parent relation mirrors the transaction tree.
      bool begin = e.kind == TraceEventKind::kSpanBegin;
      out << "{\"name\":\"" << JsonEscape(Subject(e.a, true, name_of))
          << "\",\"cat\":\"tx\",\"ph\":\"" << (begin ? "b" : "e")
          << "\",\"id\":" << e.a << ",\"pid\":1,\"tid\":" << tid
          << ",\"ts\":" << e.ts_us;
      if (begin) {
        out << ",\"args\":{\"parent\":\""
            << JsonEscape(Subject(e.b, true, name_of)) << "\",\"pos\":"
            << e.arg << "}";
      } else if (e.flags & kTraceFlagAbort) {
        out << ",\"args\":{\"outcome\":\"abort\"}";
      }
      out << "}";
    } else {
      out << "{\"name\":\"" << TraceEventKindName(e.kind)
          << "\",\"cat\":\"ntsg\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
             "\"tid\":"
          << tid << ",\"ts\":" << e.ts_us << ",\"args\":{\"span\":\""
          << JsonEscape(Subject(e.span, true, name_of)) << "\",\"a\":\""
          << JsonEscape(Subject(e.a, info.a_is_tx, name_of)) << "\",\"b\":\""
          << JsonEscape(Subject(e.b, info.b_is_tx, name_of)) << "\",\"arg\":"
          << e.arg << ",\"flags\":\"" << FlagsToString(e.flags) << "\"}}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

std::string TraceRecorder::FlightRecorderText(size_t last_n,
                                              const TraceNameFn& name_of)
    const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& r : impl_->rings) total += r->count();
  out << "flight recorder: " << impl_->rings.size() << " ring(s), capacity "
      << impl_->capacity << ", " << total << " event(s) recorded\n";
  for (const auto& r : impl_->rings) {
    std::vector<TraceEvent> events = r->Snapshot(last_n);
    out << "-- ring " << r->tid() << ": showing " << events.size() << " of "
        << r->count() << " event(s), " << r->dropped() << " overwritten --\n";
    for (const TraceEvent& e : events) {
      TraceEventFieldInfo info = TraceEventFields(e.kind);
      out << "  [seq " << e.seq << " ts " << e.ts_us << "us] "
          << TraceEventKindName(e.kind) << " span="
          << Subject(e.span, true, name_of) << " a="
          << Subject(e.a, info.a_is_tx, name_of) << " b="
          << Subject(e.b, info.b_is_tx, name_of) << " arg=" << e.arg;
      if (e.flags != 0) out << " flags=" << FlagsToString(e.flags);
      out << "\n";
    }
  }
  return out.str();
}

Status TraceRecorder::WriteTrace(const std::string& path,
                                 const TraceNameFn& name_of) const {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open " + path + " for writing");
  bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  file << (json ? ChromeTraceJson(name_of) : NdjsonText(name_of));
  if (!file.good()) return Status::Internal("short write to " + path);
  return Status::Ok();
}

namespace internal {

void EmitSlow(TraceEventKind kind, uint32_t span, uint32_t a, uint32_t b,
              uint8_t flags, uint64_t arg) {
  TraceRecorder::Default().Emit(kind, span, a, b, flags, arg);
}

}  // namespace internal

}  // namespace ntsg::obs
