#ifndef NTSG_OBS_TRACE_H_
#define NTSG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace ntsg::obs {

/// Global on/off switch for the event-trace layer, separate from the metrics
/// switch: traces are heavier (one ring-buffer store plus a clock read per
/// event) and are usually enabled only for a recording run or a flight
/// recorder. Disabled (the default unless the NTSG_TRACE environment
/// variable is set to a nonempty value other than "0") every emit site
/// reduces to one relaxed load and a branch — the budget bench_trace_overhead
/// pins at <1ns per site.
///
/// Like metrics, tracing is strictly write-only: no certifier, pipeline, or
/// scheduler decision ever reads an event, so enabling traces cannot move a
/// verdict or a graph fingerprint (obs_trace_test runs both ways).
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// The fixed event vocabulary. One entry per instrumented decision point;
/// the a/b/arg field meanings per kind are documented in DESIGN.md §8 and
/// encoded for the exporters by TraceEventFieldInfo below.
enum class TraceEventKind : uint8_t {
  kActionIngested,   // certifier/router consumed an action (a=tx, b=ActionKind, arg=pos)
  kActionExecuted,   // driver executed an action           (a=tx, b=ActionKind, arg=step)
  kSpanBegin,        // REQUEST_CREATE(a): a's interval opens under parent b (arg=pos)
  kSpanEnd,          // REPORT_COMMIT/ABORT(a): a's interval closes (arg=pos)
  kOpActivated,      // operation became visible to T0      (a=tx, arg=pos)
  kOpParked,         // operation parked on an ancestor     (a=tx, arg=pos)
  kOpFired,          // parked item released by a COMMIT    (a=tx, arg=tag)
  kOpDropped,        // parked item killed by an ABORT      (a=tx, arg=tag)
  kOpRouted,         // pipeline router -> shard            (a=tx, b=shard, arg=pos)
  kOpApplied,        // pipeline worker applied an op       (a=tx, b=shard, arg=pos)
  kEdgeInserted,     // SG edge from=a to=b under span      (flags: conflict/precedes)
  kEdgeRejected,     // cycle-closing edge refused          (a=from, b=to)
  kEdgeRemoved,      // abort expunged edge                 (a=from, b=to)
  kTopoReorder,      // Pearce-Kelly region reorder         (a=from, b=to, arg=region size)
  kAdmissionCheck,   // SGT trial insert                    (a=tx, arg=#edges, flags: reject)
  kVerdictRejected,  // certifier verdict flipped not-OK    (arg=pos, flags: cause)
  kFaultFired,       // injector released a fault           (a=target, b=FaultKind, arg=param)
  kWorkerCrash,      // injected shard-worker crash         (a=shard)
  kWorkerRestart,    // shard worker restarted              (a=shard, arg=attempts)
  kSnapshot,         // shard snapshot taken                (a=shard, arg=log length)
  kReplay,           // shard recovered by log replay       (a=shard, arg=items replayed)
  kStallAbort,       // driver aborted a stalled tx         (a=victim, arg=step)
  kInjectedAbort,    // plan/spontaneous abort              (a=victim, arg=step)
  kGcRun,            // watermark GC pass                   (a=#families retired, arg=watermark)
  kGcRetire,         // one family retired                  (a=root, arg=#graph nodes removed)
  kGcLateEvent,      // action named a retired family       (a=tx, b=ActionKind, arg=pos)
  kIsoLevelRejected, // isolation level rejected a trace    (a=IsoLevel, b=AnomalyKind)
  kIsoMinerHit,      // miner found a counterexample        (a=run index, b=AnomalyKind)
  kBatchCommit,      // batched admission committed         (a=#staged, b=#fresh, arg=region size)
  kBatchBisect,      // batch rejected; per-edge replay     (a=#staged, arg=#staged)
};

const char* TraceEventKindName(TraceEventKind kind);

/// Which of a/b hold transaction names (exporters resolve those through the
/// caller's name function; everything else stays numeric).
struct TraceEventFieldInfo {
  bool a_is_tx;
  bool b_is_tx;
};
TraceEventFieldInfo TraceEventFields(TraceEventKind kind);

/// Event flags (orthogonal bits; meanings by kind).
inline constexpr uint8_t kTraceFlagConflict = 1;       // edge is conflict(β)
inline constexpr uint8_t kTraceFlagPrecedes = 2;       // edge is precedes(β)
inline constexpr uint8_t kTraceFlagAbort = 4;          // span ended by abort
inline constexpr uint8_t kTraceFlagReject = 8;         // admission refused
inline constexpr uint8_t kTraceFlagSpurious = 16;      // fault-forced outcome
inline constexpr uint8_t kTraceFlagInappropriate = 32; // verdict: return values
inline constexpr uint8_t kTraceFlagCycle = 64;         // verdict: graph cycle

/// One recorded event. `span` is the causal context: the transaction whose
/// scope encloses the event, so span ids mirror the paper's transaction tree
/// — parent(span) in the SystemType is the parent span. Fixed 40 bytes, no
/// heap traffic per event.
struct TraceEvent {
  uint64_t seq;    // global order across all threads (atomic counter)
  uint64_t ts_us;  // steady-clock microseconds since the process trace epoch
  uint64_t arg;    // kind-specific payload (trace position, counts, ...)
  uint32_t span;   // enclosing transaction (kInvalidTx-free: 0 = T0/process)
  uint32_t a;      // primary subject (see kind table)
  uint32_t b;      // secondary subject
  TraceEventKind kind;
  uint8_t flags;
};

/// Bounded per-thread event buffer — the flight recorder. Only the owning
/// thread appends; readers snapshot from a quiescent state (workers joined),
/// which is the only dump discipline the pipeline and CLI use.
class TraceRing {
 public:
  TraceRing(uint32_t tid, size_t capacity)
      : tid_(tid), buf_(capacity == 0 ? 1 : capacity) {}

  void Append(const TraceEvent& e) {
    buf_[count_ % buf_.size()] = e;
    ++count_;
  }

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return buf_.size(); }
  /// Total events ever appended (wrapped events count).
  uint64_t count() const { return count_; }
  uint64_t dropped() const {
    return count_ > buf_.size() ? count_ - buf_.size() : 0;
  }

  /// The retained events, oldest first, at most `last_n` newest of them.
  std::vector<TraceEvent> Snapshot(size_t last_n = SIZE_MAX) const;

 private:
  uint32_t tid_;
  std::vector<TraceEvent> buf_;
  uint64_t count_ = 0;
};

/// Resolves a transaction name to its dotted-path display form ("T0.2.1").
/// The obs layer deliberately does not depend on SystemType; callers pass
/// `[&type](uint32_t t) { return type.NameOf(t); }` (nullptr → numeric).
using TraceNameFn = std::function<std::string(uint32_t)>;

/// Owner of every ring. Threads get a ring lazily on first emit (mutex only
/// then); afterwards the hot path is a thread_local pointer store. Rings
/// outlive their threads — a thread's exit returns its ring to a free list
/// and a successor thread (e.g. a restarted shard worker) inherits it with
/// its history intact, so a crashed worker's last events survive into the
/// flight-recorder dump. Export/dump calls must run from a quiescent state
/// (no concurrent emitters), which every in-tree caller guarantees by
/// joining workers first.
class TraceRecorder {
 public:
  /// Process-wide recorder all instrumentation emits into.
  static TraceRecorder& Default();

  /// Records one event on the calling thread's ring. Call through the
  /// TraceEmit wrapper so the disabled path stays a single branch.
  void Emit(TraceEventKind kind, uint32_t span, uint32_t a, uint32_t b,
            uint8_t flags, uint64_t arg);

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Used by --flight-recorder=N; call before the workload.
  void SetRingCapacity(size_t capacity);
  size_t ring_capacity() const;

  /// Drops every ring and restarts seq/epoch. Unbinds no live threads'
  /// thread_local pointers — callers (tests, CLI setup) must be quiescent.
  void Clear();

  size_t ring_count() const;
  /// Total events ever emitted across all rings (including wrapped ones).
  uint64_t total_events() const;

  /// All retained events merged across rings, in seq order.
  std::vector<TraceEvent> MergedEvents() const;

  /// Compact NDJSON: one JSON object per line, seq order.
  std::string NdjsonText(const TraceNameFn& name_of = nullptr) const;

  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto):
  /// kSpanBegin/kSpanEnd become async "b"/"e" intervals keyed by the
  /// transaction, everything else thread-scoped instants.
  std::string ChromeTraceJson(const TraceNameFn& name_of = nullptr) const;

  /// Human-readable dump of the newest `last_n` events of every ring — what
  /// --flight-recorder prints on failure or injected crash.
  std::string FlightRecorderText(size_t last_n,
                                 const TraceNameFn& name_of = nullptr) const;

  /// Chrome JSON when `path` ends in ".json", NDJSON otherwise.
  Status WriteTrace(const std::string& path,
                    const TraceNameFn& name_of = nullptr) const;

 private:
  friend class TraceRingLease;
  TraceRing* RingForThisThread();
  void ReleaseRing(TraceRing* ring, uint64_t epoch);

  struct Impl;
  Impl* impl_;
  TraceRecorder();
};

namespace internal {
void EmitSlow(TraceEventKind kind, uint32_t span, uint32_t a, uint32_t b,
              uint8_t flags, uint64_t arg);
}  // namespace internal

/// The one emit entry point: exactly one relaxed load and one predictable
/// branch when tracing is off. Instrumented code that needs to *compute* an
/// argument (e.g. walk the tree for the enclosing span) should guard the
/// computation with `if (obs::TraceEnabled())` — still a single branch.
inline void TraceEmit(TraceEventKind kind, uint32_t span, uint32_t a,
                      uint32_t b = 0, uint8_t flags = 0, uint64_t arg = 0) {
  if (TraceEnabled()) internal::EmitSlow(kind, span, a, b, flags, arg);
}

}  // namespace ntsg::obs

#endif  // NTSG_OBS_TRACE_H_
