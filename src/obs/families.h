#ifndef NTSG_OBS_FAMILIES_H_
#define NTSG_OBS_FAMILIES_H_

#include <cstddef>

#include "obs/metrics.h"

namespace ntsg::obs {

/// The fixed metric schema of the system, one handle bundle per instrumented
/// layer. Each accessor resolves its handles from MetricsRegistry::Default()
/// exactly once (function-local static), so hot paths record through plain
/// pointers; the bundles double as the canonical list of family names for
/// DESIGN.md and the scrape tests.
///
/// Counters are process-wide totals: every certifier / pipeline / scheduler
/// instance in the process records into the same families (a scrape answers
/// "what has this process done", not "what has this object done").

/// IncrementalCertifier: admission work and visibility-tracker traffic.
struct CertifierMetrics {
  Counter* actions_ingested;    // ntsg_certifier_actions_total
  Counter* ops_activated;       // ntsg_certifier_ops_activated_total
  Counter* ops_parked;          // ntsg_certifier_ops_parked_total
  Counter* ops_dropped;         // ntsg_certifier_ops_dropped_total
  Counter* visibility_fired;    // ntsg_certifier_visibility_fired_total
  Counter* conflict_edges;      // ntsg_certifier_conflict_edges_total
  Counter* precedes_edges;      // ntsg_certifier_precedes_edges_total
  Counter* cycle_rejections;    // ntsg_certifier_cycle_rejections_total
  Histogram* edge_insert_us;    // ntsg_certifier_edge_insert_us
};
const CertifierMetrics& GetCertifierMetrics();

/// SGT coordinator: admission trials and support-counted edge churn.
struct SgtMetrics {
  Counter* admission_checks;    // ntsg_sgt_admission_checks_total
  Counter* admission_rejects;   // ntsg_sgt_admission_rejects_total
  Counter* edges_added;         // ntsg_sgt_edges_added_total
  Counter* edges_removed;       // ntsg_sgt_edges_removed_total
  Histogram* admission_us;      // ntsg_sgt_admission_check_us
};
const SgtMetrics& GetSgtMetrics();

/// ConcurrentIngestPipeline: routing, shard queues, recovery machinery.
struct IngestMetrics {
  Counter* actions_ingested;        // ntsg_ingest_actions_total
  Counter* ops_routed;              // ntsg_ingest_ops_routed_total
  ShardedCounter* ops_processed;    // ntsg_ingest_ops_processed_total
  Counter* backpressure_waits;      // ntsg_ingest_backpressure_waits_total
  Counter* worker_restarts;         // ntsg_ingest_worker_restarts_total
  Histogram* delivery_lag_us;       // ntsg_ingest_delivery_lag_us
  Histogram* snapshot_us;           // ntsg_ingest_snapshot_us
  Histogram* replay_us;             // ntsg_ingest_replay_us
  Histogram* stripe_lock_wait_us;   // ntsg_ingest_stripe_lock_wait_us
};
const IngestMetrics& GetIngestMetrics();

/// Per-shard queue depth gauge (ntsg_ingest_queue_depth{shard="i"}); the
/// pipeline resolves one per shard at construction.
Gauge* IngestQueueDepthGauge(size_t shard);

/// Simulation driver: scheduler progress and aborts by cause.
struct DriverMetrics {
  Counter* steps;               // ntsg_driver_steps_total
  Counter* stall_events;        // ntsg_driver_stall_events_total
  Counter* aborts_stall;        // ntsg_driver_aborts_total{cause="stall"}
  Counter* aborts_random;       // ntsg_driver_aborts_total{cause="random"}
  Counter* aborts_plan;         // ntsg_driver_aborts_total{cause="plan"}
  Counter* aborts_spurious;     // ntsg_driver_aborts_total{cause="spurious"}
};
const DriverMetrics& GetDriverMetrics();

/// SG(β) batch construction fast path: ancestor-index maintenance, conflict
/// frontier probe effectiveness, memoized class-pair work, and the parallel
/// object-sharded build.
struct SgBuildMetrics {
  Counter* conflict_edges_emitted;  // ntsg_sg_conflict_edges_emitted_total
  Counter* precedes_edges_emitted;  // ntsg_sg_precedes_edges_emitted_total
  Counter* frontier_hits;           // ntsg_sg_frontier_hits_total
  Counter* frontier_misses;         // ntsg_sg_frontier_misses_total
  Counter* class_pair_evals;        // ntsg_sg_class_pair_evals_total
  Counter* parallel_merges;         // ntsg_sg_parallel_merges_total
  Histogram* lca_level_build_us;    // ntsg_lca_level_build_us
  Histogram* batch_build_us;        // ntsg_sg_batch_build_us
};
const SgBuildMetrics& GetSgBuildMetrics();

/// Commit-watermark garbage collector (ntsg_gc_*): retirement pass activity
/// and the live-state gauges the bounded-memory soak asserts on.
struct GcMetrics {
  Counter* runs;                // ntsg_gc_runs_total
  Counter* families_retired;    // ntsg_gc_families_retired_total
  Counter* nodes_retired;       // ntsg_gc_nodes_retired_total
  Counter* ops_pruned;          // ntsg_gc_ops_pruned_total
  Counter* late_events;         // ntsg_gc_late_events_total
  Gauge* live_nodes;            // ntsg_gc_live_nodes
  Gauge* live_families;         // ntsg_gc_live_families
  Histogram* run_us;            // ntsg_gc_run_us
};
const GcMetrics& GetGcMetrics();

/// Fault-recovery families (ntsg_fault_*), fed from FaultStats so chaos
/// counters surface on the same scrape as everything else (see
/// PublishFaultStats in fault/fault_injector.h).
struct FaultMetrics {
  Counter* crashes;             // ntsg_fault_crashes_total
  Counter* restart_attempts;    // ntsg_fault_restart_attempts_total
  Counter* restart_failures;    // ntsg_fault_restart_failures_total
  Counter* restarts;            // ntsg_fault_restarts_total
  Counter* delays;              // ntsg_fault_delays_total
  Counter* duplicates;          // ntsg_fault_duplicates_total
  Counter* reorders;            // ntsg_fault_reorders_total
  Counter* snapshots;           // ntsg_fault_snapshots_total
  Counter* items_replayed;      // ntsg_fault_items_replayed_total
  Counter* injected_aborts;     // ntsg_fault_injected_aborts_total
  Counter* spurious_rejects;    // ntsg_fault_spurious_rejects_total
};
const FaultMetrics& GetFaultMetrics();

/// Isolation-level spectrum checkers and the anomaly miner (ntsg_iso_*).
/// Level-rejection counters are labeled by level name; the per-level fields
/// below follow the IsoLevel order (weakest first).
struct IsoMetrics {
  Counter* checks;                // ntsg_iso_checks_total
  Counter* rejections_rc;         // ntsg_iso_level_rejections_total{level=...}
  Counter* rejections_ra;
  Counter* rejections_si;
  Counter* rejections_ser;
  Counter* dirty_reads;           // ntsg_iso_dirty_reads_total
  Counter* witnesses_verified;    // ntsg_iso_witnesses_verified_total
  Counter* miner_runs;            // ntsg_iso_miner_runs_total
  Counter* miner_hits;            // ntsg_iso_miner_hits_total
  Histogram* check_us;            // ntsg_iso_check_us
};
const IsoMetrics& GetIsoMetrics();

/// Open-loop load harness (ntsg_load_*): offered/admitted traffic and the
/// admission-latency histogram the saturation sweep knees on. The histogram
/// uses LoadLatencyBucketsUs (log-spaced 1us..10s) rather than the default
/// latency bounds — quantile resolution around the knee matters more than
/// bucket count here.
struct LoadMetrics {
  Counter* actions_offered;     // ntsg_load_actions_offered_total
  Counter* actions_admitted;    // ntsg_load_actions_admitted_total
  Counter* epochs;              // ntsg_load_epochs_total
  Counter* sweep_steps;         // ntsg_load_sweep_steps_total
  Counter* late_arrivals;       // ntsg_load_late_arrivals_total
  Histogram* admission_us;      // ntsg_load_admission_us
};
const LoadMetrics& GetLoadMetrics();

/// Epoch-batched admission fast path (ntsg_batch_*): batch commit/replay
/// outcomes, staged-edge volume, and the realized batch-size distribution
/// (GC barriers and trace tails split requested batches, so the histogram —
/// not the flag value — is the ground truth for what the fast path saw).
struct BatchMetrics {
  Counter* batches_committed;   // ntsg_batch_commits_total
  Counter* batches_bisected;    // ntsg_batch_bisects_total
  Counter* edges_staged;        // ntsg_batch_edges_staged_total
  Counter* edges_committed;     // ntsg_batch_edges_committed_total
  Counter* actions_batched;     // ntsg_batch_actions_total
  Histogram* batch_size;        // ntsg_batch_size_actions
  Histogram* commit_us;         // ntsg_batch_commit_us
};
const BatchMetrics& GetBatchMetrics();

/// Forces registration of every family above (plus queue-depth shard 0), so
/// a snapshot taken before any workload still exposes the full schema with
/// zero values — what `ntsg certify --metrics-out` relies on.
void RegisterAllMetricFamilies();

}  // namespace ntsg::obs

#endif  // NTSG_OBS_FAMILIES_H_
