#ifndef NTSG_OBS_SPAN_H_
#define NTSG_OBS_SPAN_H_

#include <chrono>

#include "obs/metrics.h"

namespace ntsg::obs {

/// RAII span: records the enclosed scope's wall time, in microseconds, into
/// a latency histogram. The clock is read only when metrics are enabled *at
/// construction* — the disabled path is one branch, no syscall — and the
/// measured value feeds nothing but the histogram, so spans are safe inside
/// deterministic code (timing varies; verdicts and fingerprints cannot).
class SpanTimer {
 public:
  explicit SpanTimer(Histogram* histogram) {
    if (histogram != nullptr && MetricsEnabled()) {
      histogram_ = histogram;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~SpanTimer() {
    if (histogram_ != nullptr) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
              .count()));
    }
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ntsg::obs

#endif  // NTSG_OBS_SPAN_H_
