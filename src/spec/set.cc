#include "spec/set.h"

#include "common/logging.h"

namespace ntsg {

Value SetSpec::Apply(OpCode op, int64_t arg) {
  switch (op) {
    case OpCode::kAdd:
      elements_.insert(arg);
      return Value::Ok();
    case OpCode::kRemove:
      elements_.erase(arg);
      return Value::Ok();
    case OpCode::kContains:
      return Value::Int(elements_.count(arg) ? 1 : 0);
    case OpCode::kSetSize:
      return Value::Int(static_cast<int64_t>(elements_.size()));
    default:
      NTSG_CHECK(false) << "op invalid for set object: " << OpCodeName(op);
      return Value::Ok();
  }
}

bool SetSpec::StateEquals(const SerialSpec& other) const {
  NTSG_CHECK(other.type() == ObjectType::kSet);
  return elements_ == static_cast<const SetSpec&>(other).elements_;
}

void SetSpec::RandomizeState(Rng& rng) {
  elements_.clear();
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; ++i) {
    elements_.insert(rng.NextInRange(-4, 4));
  }
}

std::string SetSpec::StateToString() const {
  std::string out = "{";
  bool first = true;
  for (int64_t e : elements_) {
    if (!first) out += ", ";
    out += std::to_string(e);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace ntsg
