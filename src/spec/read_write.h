#ifndef NTSG_SPEC_READ_WRITE_H_
#define NTSG_SPEC_READ_WRITE_H_

#include "spec/serial_spec.h"

namespace ntsg {

/// The read/write serial object of Section 3.1: a register holding one
/// domain value. A write stores data(T) and returns OK; a read returns the
/// most recently written value (or the initial value d).
class ReadWriteSpec final : public SerialSpec {
 public:
  explicit ReadWriteSpec(int64_t initial) : data_(initial) {}

  std::unique_ptr<SerialSpec> Clone() const override {
    return std::make_unique<ReadWriteSpec>(*this);
  }

  Value Apply(OpCode op, int64_t arg) override;

  bool StateEquals(const SerialSpec& other) const override;

  void RandomizeState(Rng& rng) override;

  std::string StateToString() const override;

  ObjectType type() const override { return ObjectType::kReadWrite; }

  int64_t data() const { return data_; }

 private:
  int64_t data_;
};

}  // namespace ntsg

#endif  // NTSG_SPEC_READ_WRITE_H_
