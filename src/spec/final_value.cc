#include "spec/final_value.h"

namespace ntsg {

std::vector<Operation> WriteSequence(const SystemType& type,
                                     const Trace& trace, ObjectId x) {
  std::vector<Operation> out;
  for (const Action& a : trace) {
    if (a.kind != ActionKind::kRequestCommit) continue;
    if (!type.IsAccess(a.tx)) continue;
    const AccessSpec& spec = type.access(a.tx);
    if (spec.object == x && spec.op == OpCode::kWrite) {
      out.push_back(Operation{a.tx, a.value});
    }
  }
  return out;
}

std::optional<TxName> LastWrite(const SystemType& type, const Trace& trace,
                                ObjectId x) {
  std::optional<TxName> last;
  for (const Action& a : trace) {
    if (a.kind != ActionKind::kRequestCommit) continue;
    if (!type.IsAccess(a.tx)) continue;
    const AccessSpec& spec = type.access(a.tx);
    if (spec.object == x && spec.op == OpCode::kWrite) last = a.tx;
  }
  return last;
}

int64_t FinalValue(const SystemType& type, const Trace& trace, ObjectId x) {
  std::optional<TxName> last = LastWrite(type, trace, x);
  if (!last.has_value()) return type.object_initial(x);
  return type.access(*last).arg;  // data(T): the value written.
}

std::optional<TxName> CleanLastWrite(const SystemType& type,
                                     const Trace& trace, ObjectId x) {
  return LastWrite(type, Clean(type, trace), x);
}

int64_t CleanFinalValue(const SystemType& type, const Trace& trace,
                        ObjectId x) {
  return FinalValue(type, Clean(type, trace), x);
}

}  // namespace ntsg
