#ifndef NTSG_SPEC_COUNTER_H_
#define NTSG_SPEC_COUNTER_H_

#include "spec/serial_spec.h"

namespace ntsg {

/// A counter object: increment/decrement by an amount (returning OK) and
/// read the current total. Increments and decrements commute backward with
/// each other, so undo logging (Section 6.2) admits far more concurrency on
/// counters than read/write locking does on an equivalent register.
class CounterSpec final : public SerialSpec {
 public:
  explicit CounterSpec(int64_t initial) : total_(initial) {}

  std::unique_ptr<SerialSpec> Clone() const override {
    return std::make_unique<CounterSpec>(*this);
  }

  Value Apply(OpCode op, int64_t arg) override;

  bool StateEquals(const SerialSpec& other) const override;

  void RandomizeState(Rng& rng) override;

  std::string StateToString() const override;

  ObjectType type() const override { return ObjectType::kCounter; }

  int64_t total() const { return total_; }

 private:
  int64_t total_;
};

}  // namespace ntsg

#endif  // NTSG_SPEC_COUNTER_H_
