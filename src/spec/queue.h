#ifndef NTSG_SPEC_QUEUE_H_
#define NTSG_SPEC_QUEUE_H_

#include <deque>

#include "spec/serial_spec.h"

namespace ntsg {

/// A FIFO queue of integers: enqueue (returns OK), dequeue (returns the
/// front element, or kQueueEmpty when empty — dequeue is total, it never
/// blocks), and size. Queues are nearly order-sensitive everywhere, so they
/// are the low-concurrency extreme for the commutativity-based algorithms.
class QueueSpec final : public SerialSpec {
 public:
  QueueSpec() = default;

  std::unique_ptr<SerialSpec> Clone() const override {
    return std::make_unique<QueueSpec>(*this);
  }

  Value Apply(OpCode op, int64_t arg) override;

  bool StateEquals(const SerialSpec& other) const override;

  void RandomizeState(Rng& rng) override;

  std::string StateToString() const override;

  ObjectType type() const override { return ObjectType::kQueue; }

  const std::deque<int64_t>& items() const { return items_; }

 private:
  std::deque<int64_t> items_;
};

}  // namespace ntsg

#endif  // NTSG_SPEC_QUEUE_H_
