#ifndef NTSG_SPEC_SERIAL_SPEC_H_
#define NTSG_SPEC_SERIAL_SPEC_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "tx/access.h"
#include "tx/value.h"

namespace ntsg {

/// Deterministic, total serial specification of a data object — the
/// executable form of the paper's serial object automaton S_X (Section 2.2.2,
/// generalized in Section 6).
///
/// A spec is a state machine over operations: `Apply(op, arg)` advances the
/// state and yields *the* serial return value (our bundled types are
/// deterministic and total, so there is exactly one). Consequently
///   perform(ξ) ∈ finbehs(S_X)  ⇔  replaying ξ reproduces every recorded
///                                  return value,
/// and equieffectiveness of two behaviors reduces to equality of the states
/// they lead to (states are canonical).
class SerialSpec {
 public:
  virtual ~SerialSpec() = default;

  /// Deep copy, preserving state.
  virtual std::unique_ptr<SerialSpec> Clone() const = 0;

  /// Applies an operation, mutating the state, and returns the serial
  /// return value. `op` must be valid for the concrete type.
  virtual Value Apply(OpCode op, int64_t arg) = 0;

  /// Canonical-state equality; `other` must have the same dynamic type.
  virtual bool StateEquals(const SerialSpec& other) const = 0;

  /// Replaces the state with one drawn from `rng`; used by property tests to
  /// explore the definitional form of commutativity.
  virtual void RandomizeState(Rng& rng) = 0;

  virtual std::string StateToString() const = 0;

  virtual ObjectType type() const = 0;
};

/// Creates a fresh spec of the given type in its initial state. `initial`
/// is the initial value d for value-carrying types (read/write register,
/// counter, bank-account balance); set and queue start empty.
std::unique_ptr<SerialSpec> MakeSpec(ObjectType type, int64_t initial);

}  // namespace ntsg

#endif  // NTSG_SPEC_SERIAL_SPEC_H_
