#include "spec/commutativity.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace ntsg {

namespace {

bool IsCounterUpdate(OpCode op) {
  return op == OpCode::kIncrement || op == OpCode::kDecrement;
}

int64_t CounterDelta(const OpRecord& r) {
  return r.op == OpCode::kIncrement ? r.arg : -r.arg;
}

/// Symmetric backward commutativity on read/write registers. Derivations
/// (over a domain with at least two values):
///   * read/read: neither changes state; returns depend only on ξ. Commute.
///   * write(a)/write(b): final states differ unless a == b.
///   * read→v / write(a): dir(write, read) fails — after ξ with final value
///     u != a, ξ·write(a)·read→a is a behavior but read→a is illegal first.
///     (dir(read, write) holds when v == a, but the conjunction fails.)
bool CommuteReadWrite(const OpRecord& a, const OpRecord& b) {
  if (a.op == OpCode::kRead && b.op == OpCode::kRead) return true;
  if (a.op == OpCode::kWrite && b.op == OpCode::kWrite) {
    return a.arg == b.arg;
  }
  return false;  // read vs write.
}

/// Counter: updates commute with updates (addition is commutative, both
/// return OK); a read commutes with an update only when the update's delta
/// is zero.
bool CommuteCounter(const OpRecord& a, const OpRecord& b) {
  bool ua = IsCounterUpdate(a.op), ub = IsCounterUpdate(b.op);
  if (ua && ub) return true;
  if (!ua && !ub) return true;  // read/read.
  const OpRecord& upd = ua ? a : b;
  return CounterDelta(upd) == 0;
}

/// Set: see the per-pair derivations in the design notes. add/add and
/// remove/remove always commute (idempotent union/difference, OK returns);
/// add(x)/remove(y) commute iff x != y; observers commute with updates iff
/// they cannot detect them.
bool CommuteSet(const OpRecord& a, const OpRecord& b) {
  auto is_update = [](OpCode op) {
    return op == OpCode::kAdd || op == OpCode::kRemove;
  };
  if (is_update(a.op) && is_update(b.op)) {
    if (a.op == b.op) return true;       // add/add, remove/remove.
    return a.arg != b.arg;               // add(x)/remove(y).
  }
  if (!is_update(a.op) && !is_update(b.op)) return true;  // observers.
  const OpRecord& obs = is_update(a.op) ? b : a;
  const OpRecord& upd = is_update(a.op) ? a : b;
  if (obs.op == OpCode::kSetSize) return false;  // size sees every update.
  // contains(x) vs add/remove(y): detectable only when x == y.
  return obs.arg != upd.arg;
}

/// Queue: FIFO order makes almost everything order-sensitive.
bool CommuteQueue(const OpRecord& a, const OpRecord& b) {
  auto deq_ret = [](const OpRecord& r) { return r.ret.AsInt(); };
  if (a.op == OpCode::kEnqueue && b.op == OpCode::kEnqueue) {
    return a.arg == b.arg;
  }
  if (a.op == OpCode::kDequeue && b.op == OpCode::kDequeue) {
    return deq_ret(a) == deq_ret(b);
  }
  if ((a.op == OpCode::kEnqueue && b.op == OpCode::kDequeue) ||
      (a.op == OpCode::kDequeue && b.op == OpCode::kEnqueue)) {
    const OpRecord& enq = a.op == OpCode::kEnqueue ? a : b;
    const OpRecord& deq = a.op == OpCode::kEnqueue ? b : a;
    // deq→empty orders against any enqueue; deq of the just-enqueued value
    // fails on the empty-queue prefix.
    return deq_ret(deq) != kQueueEmpty && deq_ret(deq) != enq.arg;
  }
  if (a.op == OpCode::kQueueSize && b.op == OpCode::kQueueSize) return true;
  // size vs enq: always detectable. size vs deq→v: detectable unless the
  // dequeue hit an empty queue (then both are no-ops, or never co-legal).
  const OpRecord& other = a.op == OpCode::kQueueSize ? b : a;
  if (other.op == OpCode::kEnqueue) return false;
  if (other.op == OpCode::kDequeue) return deq_ret(other) == kQueueEmpty;
  return true;
}

/// Bank account: Weihl's example. Successful withdrawals commute with each
/// other (if the balance covered both in one order it covers both in the
/// other); failed withdrawals are no-ops that commute with each other and
/// with balance reads. Deposits conflict with (non-trivial) withdrawals and
/// balance reads because they can flip an outcome.
bool CommuteBank(const OpRecord& a, const OpRecord& b) {
  auto kind = [](const OpRecord& r) -> int {
    if (r.op == OpCode::kDeposit) return 0;
    if (r.op == OpCode::kWithdraw) return r.ret.AsInt() == 1 ? 1 : 2;  // W1/W0.
    return 3;  // balance.
  };
  int ka = kind(a), kb = kind(b);
  if (ka > kb) {
    std::swap(ka, kb);
    return CommuteBank(b, a);
  }
  // ka <= kb.
  if (ka == 0 && kb == 0) return true;                       // dep/dep.
  if (ka == 0 && kb == 1) return a.arg == 0 || b.arg == 0;   // dep/W1.
  if (ka == 0 && kb == 2) return a.arg == 0 || b.arg == 0;   // dep/W0.
  if (ka == 0 && kb == 3) return a.arg == 0;                 // dep/bal.
  if (ka == 1 && kb == 1) return true;                       // W1/W1.
  if (ka == 1 && kb == 2) return a.arg == 0 || b.arg == 0;   // W1/W0.
  if (ka == 1 && kb == 3) return a.arg == 0;                 // W1/bal.
  if (ka == 2 && kb == 2) return true;                       // W0/W0.
  if (ka == 2 && kb == 3) return true;                       // W0/bal.
  return true;                                               // bal/bal.
}

}  // namespace

std::string OpRecordToString(const OpRecord& rec) {
  std::string out = OpCodeName(rec.op);
  out += "(";
  out += std::to_string(rec.arg);
  out += ")->";
  out += rec.ret.ToString();
  return out;
}

bool CommutesBackward(ObjectType type, const OpRecord& a, const OpRecord& b) {
  NTSG_CHECK(OpValidForType(type, a.op));
  NTSG_CHECK(OpValidForType(type, b.op));
  switch (type) {
    case ObjectType::kReadWrite:
      return CommuteReadWrite(a, b);
    case ObjectType::kCounter:
      return CommuteCounter(a, b);
    case ObjectType::kSet:
      return CommuteSet(a, b);
    case ObjectType::kQueue:
      return CommuteQueue(a, b);
    case ObjectType::kBankAccount:
      return CommuteBank(a, b);
  }
  return false;
}

bool RwAccessesConflict(OpCode a, OpCode b) {
  NTSG_CHECK(a == OpCode::kRead || a == OpCode::kWrite);
  NTSG_CHECK(b == OpCode::kRead || b == OpCode::kWrite);
  return a == OpCode::kWrite || b == OpCode::kWrite;
}

std::vector<std::unique_ptr<SerialSpec>> EnumerateProbeStates(
    ObjectType type, const std::vector<int64_t>& candidates) {
  std::vector<int64_t> cands(candidates);
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());

  std::vector<std::unique_ptr<SerialSpec>> states;
  switch (type) {
    case ObjectType::kReadWrite:
      for (int64_t c : cands) {
        auto s = MakeSpec(type, 0);
        s->Apply(OpCode::kWrite, c);
        states.push_back(std::move(s));
      }
      states.push_back(MakeSpec(type, 0));
      break;
    case ObjectType::kCounter:
      for (int64_t c : cands) {
        auto s = MakeSpec(type, 0);
        s->Apply(OpCode::kIncrement, c);
        states.push_back(std::move(s));
      }
      states.push_back(MakeSpec(type, 0));
      break;
    case ObjectType::kBankAccount:
      for (int64_t c : cands) {
        if (c < 0) continue;
        auto s = MakeSpec(type, 0);
        s->Apply(OpCode::kDeposit, c);
        states.push_back(std::move(s));
      }
      states.push_back(MakeSpec(type, 0));
      break;
    case ObjectType::kSet: {
      // All subsets of up to 5 distinct candidate elements.
      std::vector<int64_t> elems(cands);
      if (elems.size() > 5) elems.resize(5);
      size_t n = elems.size();
      for (size_t mask = 0; mask < (1u << n); ++mask) {
        auto s = MakeSpec(type, 0);
        for (size_t i = 0; i < n; ++i) {
          if (mask & (1u << i)) s->Apply(OpCode::kAdd, elems[i]);
        }
        states.push_back(std::move(s));
      }
      break;
    }
    case ObjectType::kQueue: {
      // All queues of length <= 2 over the candidates (plus empty), which
      // suffices to expose order-sensitivity of two probed operations.
      // Queue elements are non-negative (see QueueSpec).
      std::vector<int64_t> elems;
      for (int64_t c : cands) {
        if (c >= 0) elems.push_back(c);
      }
      if (elems.size() > 6) elems.resize(6);
      states.push_back(MakeSpec(type, 0));
      for (int64_t x : elems) {
        auto s1 = MakeSpec(type, 0);
        s1->Apply(OpCode::kEnqueue, x);
        states.push_back(std::move(s1));
        for (int64_t y : elems) {
          auto s2 = MakeSpec(type, 0);
          s2->Apply(OpCode::kEnqueue, x);
          s2->Apply(OpCode::kEnqueue, y);
          states.push_back(std::move(s2));
        }
      }
      break;
    }
  }
  return states;
}

namespace {

/// Checks dir(a, b) on one start state. Returns a violation message or
/// nullopt. `s` is not modified.
std::optional<std::string> DirViolationAt(const OpRecord& a, const OpRecord& b,
                                          const SerialSpec& s) {
  std::unique_ptr<SerialSpec> ab = s.Clone();
  if (ab->Apply(a.op, a.arg) != a.ret) return std::nullopt;  // ξ·a illegal.
  if (ab->Apply(b.op, b.arg) != b.ret) return std::nullopt;  // ξ·a·b illegal.
  // ξ·a·b is a behavior; the swapped order must be a behavior leading to an
  // equal state (equieffectiveness for deterministic total specs).
  std::unique_ptr<SerialSpec> ba = s.Clone();
  if (ba->Apply(b.op, b.arg) != b.ret) {
    return "state " + s.StateToString() + ": " + OpRecordToString(b) +
           " illegal when reordered first";
  }
  if (ba->Apply(a.op, a.arg) != a.ret) {
    return "state " + s.StateToString() + ": " + OpRecordToString(a) +
           " illegal when reordered second";
  }
  if (!ab->StateEquals(*ba)) {
    return "state " + s.StateToString() + ": reordering changes final state (" +
           ab->StateToString() + " vs " + ba->StateToString() + ")";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> FindDirViolation(
    const OpRecord& a, const OpRecord& b,
    const std::vector<std::unique_ptr<SerialSpec>>& states) {
  for (const auto& s : states) {
    std::optional<std::string> v = DirViolationAt(a, b, *s);
    if (v.has_value()) return v;
  }
  return std::nullopt;
}

std::optional<std::string> ProbeCommutativity(
    ObjectType type, const OpRecord& a, const OpRecord& b,
    const std::vector<int64_t>& extra_candidates) {
  // Base values: both arguments and any integer returns. Boundary states
  // (e.g. "balance exactly m-1" or "counter at v-k") are sums/differences of
  // these, so close the base under pairwise +/- and offset by one.
  std::vector<int64_t> base = {0, a.arg, b.arg};
  if (!a.ret.is_ok()) base.push_back(a.ret.AsInt());
  if (!b.ret.is_ok()) base.push_back(b.ret.AsInt());

  std::vector<int64_t> cands = {0, 1, -1};
  for (int64_t u : base) {
    cands.push_back(u);
    cands.push_back(u - 1);
    cands.push_back(u + 1);
    for (int64_t v : base) {
      cands.push_back(u + v);
      cands.push_back(u - v);
      cands.push_back(u + v - 1);
    }
  }
  for (int64_t c : extra_candidates) cands.push_back(c);

  std::vector<std::unique_ptr<SerialSpec>> states =
      EnumerateProbeStates(type, cands);
  std::optional<std::string> v = FindDirViolation(a, b, states);
  if (v.has_value()) return v;
  return FindDirViolation(b, a, states);
}

}  // namespace ntsg
