#ifndef NTSG_SPEC_FINAL_VALUE_H_
#define NTSG_SPEC_FINAL_VALUE_H_

#include <optional>

#include "tx/trace.h"

namespace ntsg {

/// Section 3 machinery for read/write objects, defined over arbitrary
/// sequences of serial actions (so it applies to serial behaviors, simple
/// behaviors, and projections alike).

/// write-sequence(β, X): the subsequence of REQUEST_COMMIT events for write
/// accesses to X, returned as operations.
std::vector<Operation> WriteSequence(const SystemType& type, const Trace& trace,
                                     ObjectId x);

/// last-write(β, X): the transaction of the last event of write-sequence;
/// nullopt if there were no writes.
std::optional<TxName> LastWrite(const SystemType& type, const Trace& trace,
                                ObjectId x);

/// final-value(β, X): data(last-write) or the initial value d of X.
int64_t FinalValue(const SystemType& type, const Trace& trace, ObjectId x);

/// clean-last-write(β, X) = last-write(clean(β), X).
std::optional<TxName> CleanLastWrite(const SystemType& type, const Trace& trace,
                                     ObjectId x);

/// clean-final-value(β, X) = final-value(clean(β), X).
int64_t CleanFinalValue(const SystemType& type, const Trace& trace, ObjectId x);

}  // namespace ntsg

#endif  // NTSG_SPEC_FINAL_VALUE_H_
