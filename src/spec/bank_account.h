#ifndef NTSG_SPEC_BANK_ACCOUNT_H_
#define NTSG_SPEC_BANK_ACCOUNT_H_

#include "spec/serial_spec.h"

namespace ntsg {

/// A bank account with a non-negative balance: deposit (returns OK),
/// withdraw (returns 1 and debits if the balance suffices, else returns 0
/// and leaves the balance unchanged), and balance read.
///
/// This is Weihl's classic example of type-specific concurrency: two
/// *successful* withdrawals commute backward, as do two failed ones, and a
/// balance read commutes with a failed withdrawal — structure invisible to
/// read/write conflict analysis.
class BankAccountSpec final : public SerialSpec {
 public:
  explicit BankAccountSpec(int64_t initial)
      : balance_(initial < 0 ? 0 : initial) {}

  std::unique_ptr<SerialSpec> Clone() const override {
    return std::make_unique<BankAccountSpec>(*this);
  }

  Value Apply(OpCode op, int64_t arg) override;

  bool StateEquals(const SerialSpec& other) const override;

  void RandomizeState(Rng& rng) override;

  std::string StateToString() const override;

  ObjectType type() const override { return ObjectType::kBankAccount; }

  int64_t balance() const { return balance_; }

 private:
  int64_t balance_;
};

}  // namespace ntsg

#endif  // NTSG_SPEC_BANK_ACCOUNT_H_
