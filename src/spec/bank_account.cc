#include "spec/bank_account.h"

#include "common/logging.h"

namespace ntsg {

Value BankAccountSpec::Apply(OpCode op, int64_t arg) {
  switch (op) {
    case OpCode::kDeposit:
      NTSG_CHECK_GE(arg, 0) << "deposits are non-negative";
      balance_ += arg;
      return Value::Ok();
    case OpCode::kWithdraw:
      NTSG_CHECK_GE(arg, 0) << "withdrawals are non-negative";
      if (balance_ >= arg) {
        balance_ -= arg;
        return Value::Int(1);
      }
      return Value::Int(0);
    case OpCode::kBalance:
      return Value::Int(balance_);
    default:
      NTSG_CHECK(false) << "op invalid for bank account: " << OpCodeName(op);
      return Value::Ok();
  }
}

bool BankAccountSpec::StateEquals(const SerialSpec& other) const {
  NTSG_CHECK(other.type() == ObjectType::kBankAccount);
  return balance_ == static_cast<const BankAccountSpec&>(other).balance_;
}

void BankAccountSpec::RandomizeState(Rng& rng) {
  balance_ = rng.NextInRange(0, 12);
}

std::string BankAccountSpec::StateToString() const {
  return "balance=" + std::to_string(balance_);
}

}  // namespace ntsg
