#ifndef NTSG_SPEC_REPLAY_H_
#define NTSG_SPEC_REPLAY_H_

#include <vector>

#include "common/status.h"
#include "spec/serial_spec.h"
#include "tx/trace.h"

namespace ntsg {

/// Decides whether perform(ξ) is a finite behavior of S_X by replaying ξ
/// through a fresh spec of X's type: for deterministic, total specs this is
/// exact — perform(ξ) ∈ finbehs(S_X) iff every recorded return value equals
/// the replayed one.
///
/// Returns OK on success; VerificationFailed identifies the first
/// divergent operation.
Status ReplayOperations(const SystemType& type, ObjectId x,
                        const std::vector<Operation>& ops);

/// As above, but starting from a caller-provided state. `spec` is mutated.
Status ReplayOperationsFrom(const SystemType& type, SerialSpec& spec,
                            const std::vector<Operation>& ops);

/// Replays ξ and returns the spec state it leads to (ignoring recorded
/// return values); useful to compute "the state after a log prefix".
std::unique_ptr<SerialSpec> StateAfter(const SystemType& type, ObjectId x,
                                       const std::vector<Operation>& ops);

}  // namespace ntsg

#endif  // NTSG_SPEC_REPLAY_H_
