#ifndef NTSG_SPEC_SET_H_
#define NTSG_SPEC_SET_H_

#include <set>

#include "spec/serial_spec.h"

namespace ntsg {

/// An integer-set object: add/remove an element (returning OK), membership
/// test, and size. Adds commute with adds (set union is idempotent and
/// commutative), so undo logging admits concurrent inserts of distinct — and
/// even equal — elements.
class SetSpec final : public SerialSpec {
 public:
  SetSpec() = default;

  std::unique_ptr<SerialSpec> Clone() const override {
    return std::make_unique<SetSpec>(*this);
  }

  Value Apply(OpCode op, int64_t arg) override;

  bool StateEquals(const SerialSpec& other) const override;

  void RandomizeState(Rng& rng) override;

  std::string StateToString() const override;

  ObjectType type() const override { return ObjectType::kSet; }

  const std::set<int64_t>& elements() const { return elements_; }

 private:
  std::set<int64_t> elements_;
};

}  // namespace ntsg

#endif  // NTSG_SPEC_SET_H_
