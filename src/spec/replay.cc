#include "spec/replay.h"

#include "common/logging.h"

namespace ntsg {

Status ReplayOperationsFrom(const SystemType& type, SerialSpec& spec,
                            const std::vector<Operation>& ops) {
  for (const Operation& op : ops) {
    NTSG_CHECK(type.IsAccess(op.tx));
    const AccessSpec& acc = type.access(op.tx);
    Value expected = spec.Apply(acc.op, acc.arg);
    if (!(expected == op.value)) {
      return Status::VerificationFailed(
          "operation " + AccessSpecToString(acc) + " by " +
          type.NameOf(op.tx) + " recorded value " + op.value.ToString() +
          " but serial spec yields " + expected.ToString());
    }
  }
  return Status::Ok();
}

Status ReplayOperations(const SystemType& type, ObjectId x,
                        const std::vector<Operation>& ops) {
  std::unique_ptr<SerialSpec> spec =
      MakeSpec(type.object_type(x), type.object_initial(x));
  return ReplayOperationsFrom(type, *spec, ops);
}

std::unique_ptr<SerialSpec> StateAfter(const SystemType& type, ObjectId x,
                                       const std::vector<Operation>& ops) {
  std::unique_ptr<SerialSpec> spec =
      MakeSpec(type.object_type(x), type.object_initial(x));
  for (const Operation& op : ops) {
    const AccessSpec& acc = type.access(op.tx);
    spec->Apply(acc.op, acc.arg);
  }
  return spec;
}

}  // namespace ntsg
