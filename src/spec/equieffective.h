#ifndef NTSG_SPEC_EQUIEFFECTIVE_H_
#define NTSG_SPEC_EQUIEFFECTIVE_H_

#include <vector>

#include "tx/trace.h"

namespace ntsg {

/// Equieffectiveness (Section 6.1): two finite sequences of external actions
/// of S_X are equieffective iff every serial-object-well-formed continuation
/// extends both to behaviors or neither — the states they reach are
/// indistinguishable by any environment.
///
/// For the bundled specs — deterministic and total — this is decidable:
///   * both perform(ξ1), perform(ξ2) behaviors: equieffective iff they lead
///     to equal canonical states (a continuation that observes the state
///     distinguishes unequal ones; determinism makes equal ones agree on
///     everything);
///   * exactly one a behavior: never equieffective (the empty continuation
///     distinguishes them);
///   * neither a behavior: vacuously equieffective (behaviors are
///     prefix-closed, so no extension of either is a behavior).
bool AreEquieffective(const SystemType& type, ObjectId x,
                      const std::vector<Operation>& xi1,
                      const std::vector<Operation>& xi2);

}  // namespace ntsg

#endif  // NTSG_SPEC_EQUIEFFECTIVE_H_
