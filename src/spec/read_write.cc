#include "spec/read_write.h"

#include "common/logging.h"

namespace ntsg {

Value ReadWriteSpec::Apply(OpCode op, int64_t arg) {
  switch (op) {
    case OpCode::kWrite:
      data_ = arg;
      return Value::Ok();
    case OpCode::kRead:
      return Value::Int(data_);
    default:
      NTSG_CHECK(false) << "op invalid for read/write object: "
                        << OpCodeName(op);
      return Value::Ok();
  }
}

bool ReadWriteSpec::StateEquals(const SerialSpec& other) const {
  NTSG_CHECK(other.type() == ObjectType::kReadWrite);
  return data_ == static_cast<const ReadWriteSpec&>(other).data_;
}

void ReadWriteSpec::RandomizeState(Rng& rng) {
  data_ = rng.NextInRange(-8, 8);
}

std::string ReadWriteSpec::StateToString() const {
  return "data=" + std::to_string(data_);
}

}  // namespace ntsg
