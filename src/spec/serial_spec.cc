#include "spec/serial_spec.h"

#include "common/logging.h"
#include "spec/bank_account.h"
#include "spec/counter.h"
#include "spec/queue.h"
#include "spec/read_write.h"
#include "spec/set.h"

namespace ntsg {

std::unique_ptr<SerialSpec> MakeSpec(ObjectType type, int64_t initial) {
  switch (type) {
    case ObjectType::kReadWrite:
      return std::make_unique<ReadWriteSpec>(initial);
    case ObjectType::kCounter:
      return std::make_unique<CounterSpec>(initial);
    case ObjectType::kSet:
      return std::make_unique<SetSpec>();
    case ObjectType::kQueue:
      return std::make_unique<QueueSpec>();
    case ObjectType::kBankAccount:
      return std::make_unique<BankAccountSpec>(initial);
  }
  NTSG_CHECK(false) << "unknown object type";
  return nullptr;
}

}  // namespace ntsg
