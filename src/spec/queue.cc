#include "spec/queue.h"

#include "common/logging.h"

namespace ntsg {

Value QueueSpec::Apply(OpCode op, int64_t arg) {
  switch (op) {
    case OpCode::kEnqueue:
      // Elements are non-negative so the kQueueEmpty sentinel returned by
      // dequeue-on-empty can never be confused with a real element.
      NTSG_CHECK_GE(arg, 0) << "queue elements are non-negative";
      items_.push_back(arg);
      return Value::Ok();
    case OpCode::kDequeue: {
      if (items_.empty()) return Value::Int(kQueueEmpty);
      int64_t front = items_.front();
      items_.pop_front();
      return Value::Int(front);
    }
    case OpCode::kQueueSize:
      return Value::Int(static_cast<int64_t>(items_.size()));
    default:
      NTSG_CHECK(false) << "op invalid for queue object: " << OpCodeName(op);
      return Value::Ok();
  }
}

bool QueueSpec::StateEquals(const SerialSpec& other) const {
  NTSG_CHECK(other.type() == ObjectType::kQueue);
  return items_ == static_cast<const QueueSpec&>(other).items_;
}

void QueueSpec::RandomizeState(Rng& rng) {
  items_.clear();
  size_t n = rng.NextBelow(5);
  for (size_t i = 0; i < n; ++i) {
    items_.push_back(rng.NextInRange(0, 4));
  }
}

std::string QueueSpec::StateToString() const {
  std::string out = "[";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "]";
  return out;
}

}  // namespace ntsg
