#include "spec/counter.h"

#include "common/logging.h"

namespace ntsg {

Value CounterSpec::Apply(OpCode op, int64_t arg) {
  switch (op) {
    case OpCode::kIncrement:
      total_ += arg;
      return Value::Ok();
    case OpCode::kDecrement:
      total_ -= arg;
      return Value::Ok();
    case OpCode::kCounterRead:
      return Value::Int(total_);
    default:
      NTSG_CHECK(false) << "op invalid for counter object: " << OpCodeName(op);
      return Value::Ok();
  }
}

bool CounterSpec::StateEquals(const SerialSpec& other) const {
  NTSG_CHECK(other.type() == ObjectType::kCounter);
  return total_ == static_cast<const CounterSpec&>(other).total_;
}

void CounterSpec::RandomizeState(Rng& rng) { total_ = rng.NextInRange(-8, 8); }

std::string CounterSpec::StateToString() const {
  return "total=" + std::to_string(total_);
}

}  // namespace ntsg
