#include "spec/equieffective.h"

#include "spec/replay.h"

namespace ntsg {

bool AreEquieffective(const SystemType& type, ObjectId x,
                      const std::vector<Operation>& xi1,
                      const std::vector<Operation>& xi2) {
  bool legal1 = ReplayOperations(type, x, xi1).ok();
  bool legal2 = ReplayOperations(type, x, xi2).ok();
  if (legal1 != legal2) return false;
  if (!legal1) return true;  // Neither is a behavior: vacuous.
  auto s1 = StateAfter(type, x, xi1);
  auto s2 = StateAfter(type, x, xi2);
  return s1->StateEquals(*s2);
}

}  // namespace ntsg
