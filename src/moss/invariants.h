#ifndef NTSG_MOSS_INVARIANTS_H_
#define NTSG_MOSS_INVARIANTS_H_

#include "common/status.h"
#include "tx/trace.h"

namespace ntsg {

/// Executable forms of the paper's Section 5.3 lemmas about M1_X, audited
/// over a generic-object projection (the actions at one object, as produced
/// by ProjectGenericObject). The audit replays the projection through a
/// reference M1_X state machine and checks, event by event:
///
///   * Lemma 9  — write-lock holders and read-lock holders form an ancestor
///     chain with every write-lock holder (conflicting locks only along one
///     path);
///   * Lemma 11 — when an access responds, every earlier conflicting
///     response's transaction is a local orphan or lock-visible to it
///     (INFORM_COMMITs for the whole chain up to the lca, in leaf-to-root
///     order);
///   * Lemma 12/13 — a read's returned value equals final-value(δ, X) where
///     δ is the subsequence of prior write responses lock-visible to the
///     reader.
///
/// A projection from the real M1_X must pass all three; the deliberately
/// broken variants each violate a specific lemma, which the audit names.
struct MossAuditReport {
  Status status;          // OK, or the first violated lemma with context.
  size_t events = 0;      // Events audited.
  size_t responses = 0;   // Access responses audited.
};

MossAuditReport AuditMossProjection(const SystemType& type, ObjectId x,
                                    const Trace& projection);

/// Convenience: audits every object's projection of a full behavior.
MossAuditReport AuditMossBehavior(const SystemType& type, const Trace& beta);

}  // namespace ntsg

#endif  // NTSG_MOSS_INVARIANTS_H_
