#include "moss/invariants.h"

#include <map>
#include <optional>
#include <set>

#include "common/logging.h"

namespace ntsg {

namespace {

/// Reference state machine mirroring M1_X, plus the bookkeeping the lemma
/// statements quantify over (inform orders, prior responses).
class MossAuditor {
 public:
  MossAuditor(const SystemType& type, ObjectId x) : type_(type), x_(x) {
    write_lockholders_.insert(kT0);
    value_[kT0] = type.object_initial(x);
  }

  Status Step(size_t index, const Action& a) {
    switch (a.kind) {
      case ActionKind::kCreate:
        break;
      case ActionKind::kInformCommit:
        inform_commit_index_[a.tx] = index;
        ApplyInformCommit(a.tx);
        break;
      case ActionKind::kInformAbort:
        inform_abort_.insert(a.tx);
        ApplyInformAbort(a.tx);
        break;
      case ActionKind::kRequestCommit: {
        NTSG_RETURN_IF_ERROR(CheckLemma11(a));
        if (type_.access(a.tx).op == OpCode::kRead) {
          NTSG_RETURN_IF_ERROR(CheckLemma12(a));
        }
        ApplyResponse(a);
        responses_.push_back(a);
        break;
      }
      default:
        return Status::Corruption("unexpected action in object projection: " +
                                  a.ToString(type_));
    }
    return CheckLemma9();
  }

 private:
  bool IsLocalOrphan(TxName t) const {
    for (TxName u = t;; u = type_.parent(u)) {
      if (inform_abort_.count(u)) return true;
      if (u == kT0) return false;
    }
  }

  /// Lock visibility of T to T': INFORM_COMMITs for every ancestor of T up
  /// to (excluding) lca(T, T'), present and in ascending leaf-to-root order.
  bool IsLockVisible(TxName t, TxName t_prime) const {
    TxName lca = type_.Lca(t, t_prime);
    size_t prev = 0;
    bool first = true;
    for (TxName u = t; u != lca; u = type_.parent(u)) {
      auto it = inform_commit_index_.find(u);
      if (it == inform_commit_index_.end()) return false;
      if (!first && it->second < prev) return false;  // Out of order.
      prev = it->second;
      first = false;
    }
    return true;
  }

  void ApplyInformCommit(TxName t) {
    if (t == kT0) return;
    TxName p = type_.parent(t);
    if (write_lockholders_.erase(t) > 0) {
      write_lockholders_.insert(p);
      value_[p] = value_.at(t);
      value_.erase(t);
    }
    if (read_lockholders_.erase(t) > 0) read_lockholders_.insert(p);
  }

  void ApplyInformAbort(TxName t) {
    for (auto it = write_lockholders_.begin();
         it != write_lockholders_.end();) {
      if (type_.IsAncestor(t, *it)) {
        value_.erase(*it);
        it = write_lockholders_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = read_lockholders_.begin(); it != read_lockholders_.end();) {
      if (type_.IsAncestor(t, *it)) {
        it = read_lockholders_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void ApplyResponse(const Action& a) {
    const AccessSpec& acc = type_.access(a.tx);
    if (acc.op == OpCode::kWrite) {
      write_lockholders_.insert(a.tx);
      value_[a.tx] = acc.arg;
    } else {
      read_lockholders_.insert(a.tx);
    }
  }

  Status CheckLemma9() const {
    for (TxName w : write_lockholders_) {
      for (TxName h : write_lockholders_) {
        if (!type_.IsAncestor(w, h) && !type_.IsAncestor(h, w)) {
          return Status::VerificationFailed(
              "Lemma 9 violated: write-lock holders " + type_.NameOf(w) +
              " and " + type_.NameOf(h) + " are unrelated");
        }
      }
      for (TxName r : read_lockholders_) {
        if (!type_.IsAncestor(w, r) && !type_.IsAncestor(r, w)) {
          return Status::VerificationFailed(
              "Lemma 9 violated: write-lock holder " + type_.NameOf(w) +
              " and read-lock holder " + type_.NameOf(r) + " are unrelated");
        }
      }
    }
    return Status::Ok();
  }

  Status CheckLemma11(const Action& response) const {
    const AccessSpec& mine = type_.access(response.tx);
    for (const Action& prior : responses_) {
      const AccessSpec& theirs = type_.access(prior.tx);
      bool conflict = mine.op == OpCode::kWrite || theirs.op == OpCode::kWrite;
      if (!conflict) continue;
      if (IsLocalOrphan(prior.tx)) continue;
      if (IsLockVisible(prior.tx, response.tx)) continue;
      return Status::VerificationFailed(
          "Lemma 11 violated: prior conflicting access " +
          type_.NameOf(prior.tx) + " is neither a local orphan nor "
          "lock-visible to " + type_.NameOf(response.tx));
    }
    return Status::Ok();
  }

  Status CheckLemma12(const Action& response) const {
    // Lemmas 12/13 hypothesize a non-orphan reader: an orphan's ancestors
    // may have had inherited locks (and stacked values) discarded, so its
    // reads are unconstrained (and invisible to everyone).
    if (IsLocalOrphan(response.tx)) return Status::Ok();
    // Expected value: data of the last prior write lock-visible to the
    // reader, else the initial value (Lemmas 12/13).
    std::optional<TxName> last;
    for (const Action& prior : responses_) {
      const AccessSpec& theirs = type_.access(prior.tx);
      if (theirs.op != OpCode::kWrite) continue;
      if (!IsLockVisible(prior.tx, response.tx)) continue;
      last = prior.tx;
    }
    int64_t expect = last.has_value() ? type_.access(*last).arg
                                      : type_.object_initial(x_);
    if (response.value.is_ok() || response.value.AsInt() != expect) {
      return Status::VerificationFailed(
          "Lemma 12/13 violated: read " + type_.NameOf(response.tx) +
          " returned " + response.value.ToString() + " but the lock-visible "
          "final value is " + std::to_string(expect));
    }
    return Status::Ok();
  }

  const SystemType& type_;
  ObjectId x_;

  std::set<TxName> write_lockholders_;
  std::set<TxName> read_lockholders_;
  std::map<TxName, int64_t> value_;
  std::map<TxName, size_t> inform_commit_index_;
  std::set<TxName> inform_abort_;
  std::vector<Action> responses_;
};

}  // namespace

MossAuditReport AuditMossProjection(const SystemType& type, ObjectId x,
                                    const Trace& projection) {
  NTSG_CHECK(type.object_type(x) == ObjectType::kReadWrite);
  MossAuditor auditor(type, x);
  MossAuditReport report;
  for (size_t i = 0; i < projection.size(); ++i) {
    Status s = auditor.Step(i, projection[i]);
    ++report.events;
    if (projection[i].kind == ActionKind::kRequestCommit) ++report.responses;
    if (!s.ok()) {
      report.status = s;
      return report;
    }
  }
  report.status = Status::Ok();
  return report;
}

MossAuditReport AuditMossBehavior(const SystemType& type, const Trace& beta) {
  MossAuditReport total;
  for (ObjectId x = 0; x < type.num_objects(); ++x) {
    MossAuditReport r =
        AuditMossProjection(type, x, ProjectGenericObject(type, beta, x));
    total.events += r.events;
    total.responses += r.responses;
    if (!r.status.ok()) {
      total.status = r.status;
      return total;
    }
  }
  total.status = Status::Ok();
  return total;
}

}  // namespace ntsg
