#ifndef NTSG_MOSS_BROKEN_H_
#define NTSG_MOSS_BROKEN_H_

#include "moss/moss_object.h"

namespace ntsg {

/// Deliberately faulty locking objects, used to validate that the paper's
/// checkers actually detect incorrect algorithms (detector-efficacy tests
/// and bench T4). Each drops exactly one ingredient of M1_X.

/// Reads skip the write-lock check: a read may observe the stacked value of
/// a non-ancestor (uncommitted) writer — a dirty read. Detected by the
/// appropriate-return-values / safe-read checkers.
class DirtyReadMossObject final : public MossObject {
 public:
  using MossObject::MossObject;

  std::string name() const override {
    return "M1_dirty_" + type_.object_name(x_);
  }

 protected:
  bool ReadEnabled(TxName) const override { return true; }
};

/// Reads check locks but do not *acquire* a read lock, so a sibling writer
/// can overwrite data a live reader already observed. Return values stay
/// locally plausible; the violation shows up as a serialization-graph cycle.
class NoReadLockMossObject final : public MossObject {
 public:
  using MossObject::MossObject;

  std::string name() const override {
    return "M1_noreadlock_" + type_.object_name(x_);
  }

 protected:
  bool AcquireReadLock() const override { return false; }
};

/// Writes skip the read-lock check (they still respect other writers):
/// write locks degenerate to exclusive-writer locking, readers are not
/// protected. Produces cycles and/or stale reads under contention.
class IgnoreReadersMossObject final : public MossObject {
 public:
  using MossObject::MossObject;

  std::string name() const override {
    return "M1_ignorereaders_" + type_.object_name(x_);
  }

 protected:
  bool WriteEnabled(TxName access) const override {
    for (TxName h : write_lockholders_) {
      if (!type_.IsAncestor(h, access)) return false;
    }
    return true;
  }
};

}  // namespace ntsg

#endif  // NTSG_MOSS_BROKEN_H_
