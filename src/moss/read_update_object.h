#ifndef NTSG_MOSS_READ_UPDATE_OBJECT_H_
#define NTSG_MOSS_READ_UPDATE_OBJECT_H_

#include <map>
#include <memory>
#include <set>

#include "generic/generic_object.h"
#include "spec/serial_spec.h"

namespace ntsg {

/// The general read/update locking object M_X of Fekete-Lynch-Merritt-Weihl
/// — the algorithm the paper's M1_X specializes to read/write registers
/// (Section 5.2, footnote 8). Works for objects of arbitrary serial type:
///
///   * operations are classified *read* (pure observers: read, counter-read,
///     contains, sizes, balance) or *update* (anything that may modify:
///     write, inc/dec, add/remove, enq/deq, deposit, withdraw — see
///     IsModifyingOp);
///   * an update access requires every lock holder (of either kind) to be an
///     ancestor; it takes an update lock and stacks a whole-object *version*
///     obtained by applying its operation to the least update-lock holder's
///     version;
///   * a read access requires every update-lock holder to be an ancestor; it
///     returns its operation's value evaluated against the least holder's
///     version (without modifying it) and takes a read lock;
///   * INFORM_COMMIT moves locks and stacked versions to the parent;
///     INFORM_ABORT discards everything held by the aborted subtree.
///
/// On read/write objects this coincides with M1_X (the version is just the
/// register value). On richer types it is strictly more pessimistic than
/// undo logging: updates exclude each other even when they commute — the
/// contrast bench_general_locking measures.
class ReadUpdateObject : public GenericObject {
 public:
  ReadUpdateObject(const SystemType& type, ObjectId x);

  std::string name() const override {
    return "M_" + type_.object_name(x_);
  }

  std::vector<Action> EnabledOutputs() const override;

  const std::set<TxName>& update_lockholders() const {
    return update_lockholders_;
  }
  const std::set<TxName>& read_lockholders() const { return read_lockholders_; }

  /// Version stacked by update-lock holder `t`.
  const SerialSpec& version_of(TxName t) const { return *versions_.at(t); }

  /// Deepest update-lock holder — the top of the version stack.
  TxName LeastUpdateLockholder() const;

 protected:
  void OnCreate(TxName) override {}
  void OnInformCommit(TxName t) override;
  void OnInformAbort(TxName t) override;
  void OnRequestCommit(TxName access, const Value& v) override;

  bool ReadEnabled(TxName access) const;
  bool UpdateEnabled(TxName access) const;

 private:
  std::set<TxName> update_lockholders_;
  std::set<TxName> read_lockholders_;
  std::map<TxName, std::unique_ptr<SerialSpec>> versions_;
};

}  // namespace ntsg

#endif  // NTSG_MOSS_READ_UPDATE_OBJECT_H_
