#include "moss/read_update_object.h"

#include "common/logging.h"

namespace ntsg {

ReadUpdateObject::ReadUpdateObject(const SystemType& type, ObjectId x)
    : GenericObject(type, x) {
  update_lockholders_.insert(kT0);
  versions_[kT0] = MakeSpec(type.object_type(x), type.object_initial(x));
}

void ReadUpdateObject::OnInformCommit(TxName t) {
  NTSG_CHECK_NE(t, kT0);
  TxName p = type_.parent(t);
  if (update_lockholders_.erase(t) > 0) {
    update_lockholders_.insert(p);
    versions_[p] = std::move(versions_.at(t));
    versions_.erase(t);
  }
  if (read_lockholders_.erase(t) > 0) {
    read_lockholders_.insert(p);
  }
}

void ReadUpdateObject::OnInformAbort(TxName t) {
  NTSG_CHECK_NE(t, kT0);
  for (auto it = update_lockholders_.begin();
       it != update_lockholders_.end();) {
    if (type_.IsAncestor(t, *it)) {
      versions_.erase(*it);
      it = update_lockholders_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = read_lockholders_.begin(); it != read_lockholders_.end();) {
    if (type_.IsAncestor(t, *it)) {
      it = read_lockholders_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ReadUpdateObject::ReadEnabled(TxName access) const {
  for (TxName h : update_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  return true;
}

bool ReadUpdateObject::UpdateEnabled(TxName access) const {
  for (TxName h : update_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  for (TxName h : read_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  return true;
}

TxName ReadUpdateObject::LeastUpdateLockholder() const {
  NTSG_CHECK(!update_lockholders_.empty());
  TxName least = *update_lockholders_.begin();
  for (TxName h : update_lockholders_) {
    if (type_.depth(h) > type_.depth(least)) least = h;
  }
  return least;
}

std::vector<Action> ReadUpdateObject::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : pending()) {
    const AccessSpec& acc = type_.access(t);
    const bool is_update = IsModifyingOp(acc.op);
    if (is_update ? !UpdateEnabled(t) : !ReadEnabled(t)) continue;
    // Evaluate the operation against the least holder's version (peeking —
    // state changes are applied at response time).
    std::unique_ptr<SerialSpec> probe =
        versions_.at(LeastUpdateLockholder())->Clone();
    out.push_back(Action::RequestCommit(t, probe->Apply(acc.op, acc.arg)));
  }
  return out;
}

void ReadUpdateObject::OnRequestCommit(TxName access, const Value& v) {
  const AccessSpec& acc = type_.access(access);
  if (IsModifyingOp(acc.op)) {
    std::unique_ptr<SerialSpec> version =
        versions_.at(LeastUpdateLockholder())->Clone();
    Value expect = version->Apply(acc.op, acc.arg);
    NTSG_CHECK(expect == v) << name() << ": response diverges from version";
    update_lockholders_.insert(access);
    versions_[access] = std::move(version);
  } else {
    read_lockholders_.insert(access);
  }
}

}  // namespace ntsg
