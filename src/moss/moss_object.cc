#include "moss/moss_object.h"

#include "common/logging.h"

namespace ntsg {

MossObject::MossObject(const SystemType& type, ObjectId x)
    : GenericObject(type, x) {
  NTSG_CHECK(type.object_type(x) == ObjectType::kReadWrite)
      << "Moss locking object requires a read/write object";
  write_lockholders_.insert(kT0);
  value_[kT0] = type.object_initial(x);
}

void MossObject::OnInformCommit(TxName t) {
  NTSG_CHECK_NE(t, kT0);
  TxName p = type_.parent(t);
  if (write_lockholders_.erase(t) > 0) {
    write_lockholders_.insert(p);
    value_[p] = value_.at(t);
    value_.erase(t);
  }
  if (read_lockholders_.erase(t) > 0) {
    read_lockholders_.insert(p);
  }
}

void MossObject::OnInformAbort(TxName t) {
  NTSG_CHECK_NE(t, kT0);
  for (auto it = write_lockholders_.begin(); it != write_lockholders_.end();) {
    if (type_.IsAncestor(t, *it)) {
      value_.erase(*it);
      it = write_lockholders_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = read_lockholders_.begin(); it != read_lockholders_.end();) {
    if (type_.IsAncestor(t, *it)) {
      it = read_lockholders_.erase(it);
    } else {
      ++it;
    }
  }
}

bool MossObject::ReadEnabled(TxName access) const {
  for (TxName h : write_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  return true;
}

bool MossObject::WriteEnabled(TxName access) const {
  for (TxName h : write_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  for (TxName h : read_lockholders_) {
    if (!type_.IsAncestor(h, access)) return false;
  }
  return true;
}

TxName MossObject::LeastWriteLockholder() const {
  NTSG_CHECK(!write_lockholders_.empty());
  TxName least = *write_lockholders_.begin();
  for (TxName h : write_lockholders_) {
    if (type_.depth(h) > type_.depth(least)) least = h;
  }
  return least;
}

std::vector<Action> MossObject::EnabledOutputs() const {
  std::vector<Action> out;
  for (TxName t : pending()) {
    const AccessSpec& acc = type_.access(t);
    if (acc.op == OpCode::kRead) {
      if (ReadEnabled(t)) {
        out.push_back(Action::RequestCommit(
            t, Value::Int(value_.at(LeastWriteLockholder()))));
      }
    } else {
      if (WriteEnabled(t)) {
        out.push_back(Action::RequestCommit(t, Value::Ok()));
      }
    }
  }
  return out;
}

void MossObject::OnRequestCommit(TxName access, const Value& /*v*/) {
  const AccessSpec& acc = type_.access(access);
  if (acc.op == OpCode::kRead) {
    // Reads leave the value stack unchanged.
    if (AcquireReadLock()) read_lockholders_.insert(access);
  } else {
    write_lockholders_.insert(access);
    value_[access] = acc.arg;  // data(T).
  }
}

}  // namespace ntsg
