#ifndef NTSG_MOSS_MOSS_OBJECT_H_
#define NTSG_MOSS_MOSS_OBJECT_H_

#include <map>
#include <set>

#include "generic/generic_object.h"

namespace ntsg {

/// Moss' read/write locking object M1_X (Section 5.2) — the default
/// concurrency control and recovery algorithm of Argus and Camelot.
///
/// State: a set of write-lock holders forming a chain along one root-to-leaf
/// path, each with a stacked value; a set of read-lock holders; and the
/// created/commit-requested bookkeeping of the base class. Initially T0
/// holds a write lock on the initial value d.
///
/// * A read access responds when every write-lock holder is an ancestor,
///   returning the value of the least (deepest) write-lock holder, and takes
///   a read lock.
/// * A write access responds when every lock holder of either kind is an
///   ancestor, stores its value on the stack, and takes a write lock.
/// * INFORM_COMMIT(T) moves T's locks (and stacked value) to parent(T).
/// * INFORM_ABORT(T) discards all locks and values held by descendants of T.
class MossObject : public GenericObject {
 public:
  MossObject(const SystemType& type, ObjectId x);

  std::string name() const override { return "M1_" + type_.object_name(x_); }

  std::vector<Action> EnabledOutputs() const override;

  const std::set<TxName>& write_lockholders() const {
    return write_lockholders_;
  }
  const std::set<TxName>& read_lockholders() const { return read_lockholders_; }

  /// Value stacked by write-lock holder `t`; t must hold a write lock.
  int64_t value_of(TxName t) const { return value_.at(t); }

  /// The least (deepest) element of write_lockholders — the chain's unique
  /// common descendant.
  TxName LeastWriteLockholder() const;

 protected:
  void OnCreate(TxName) override {}
  void OnInformCommit(TxName t) override;
  void OnInformAbort(TxName t) override;
  void OnRequestCommit(TxName access, const Value& v) override;

  /// Precondition of REQUEST_COMMIT for `access`; broken subclasses override
  /// these to drop parts of the check.
  virtual bool ReadEnabled(TxName access) const;
  virtual bool WriteEnabled(TxName access) const;
  /// Whether a responding read access acquires a read lock.
  virtual bool AcquireReadLock() const { return true; }

  std::set<TxName> write_lockholders_;
  std::set<TxName> read_lockholders_;
  std::map<TxName, int64_t> value_;
};

}  // namespace ntsg

#endif  // NTSG_MOSS_MOSS_OBJECT_H_
