#include "ioa/composition.h"

#include "common/logging.h"

namespace ntsg {

Status Composition::Execute(const Action& a) {
  int owner = -1;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i]->IsOutput(a)) {
      if (owner >= 0) {
        return Status::Internal("action is an output of two components: " +
                                components_[owner]->name() + " and " +
                                components_[i]->name());
      }
      owner = static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    Automaton& c = *components_[i];
    if (c.IsOutput(a) || c.IsInput(a)) {
      c.Apply(a);
      dirty_[i] = true;
      enabled_valid_ = false;
    }
  }
  behavior_.push_back(a);
  return Status::Ok();
}

Status Composition::ExecuteRouted(const Action& a,
                                  const std::vector<size_t>& participants) {
  for (size_t i : participants) {
    NTSG_CHECK_LT(i, components_.size());
    Automaton& c = *components_[i];
    NTSG_CHECK(c.IsOutput(a) || c.IsInput(a))
        << "routed action " << static_cast<int>(a.kind)
        << " not in signature of " << c.name();
    c.Apply(a);
    dirty_[i] = true;
    enabled_valid_ = false;
  }
  behavior_.push_back(a);
  return Status::Ok();
}

void Composition::RefreshCache() {
  for (size_t i = 0; i < components_.size(); ++i) {
    if (dirty_[i]) {
      cache_[i] = components_[i]->EnabledOutputs();
      dirty_[i] = false;
    }
  }
  enabled_.clear();
  for (const auto& c : cache_) {
    enabled_.insert(enabled_.end(), c.begin(), c.end());
  }
  enabled_valid_ = true;
}

void Composition::InvalidateAll() {
  for (size_t i = 0; i < dirty_.size(); ++i) dirty_[i] = true;
  enabled_valid_ = false;
}

void Composition::Invalidate(size_t index) {
  NTSG_CHECK_LT(index, dirty_.size());
  dirty_[index] = true;
  enabled_valid_ = false;
}

const std::vector<Action>& Composition::EnabledOutputs() {
  if (!enabled_valid_) RefreshCache();
  return enabled_;
}

bool Composition::SampleEnabled(Rng& rng, Action* out) {
  size_t total = 0;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (dirty_[i]) {
      cache_[i] = components_[i]->EnabledOutputs();
      dirty_[i] = false;
      enabled_valid_ = false;
    }
    total += cache_[i].size();
  }
  if (total == 0) return false;
  size_t k = rng.NextBelow(total);
  for (const auto& c : cache_) {
    if (k < c.size()) {
      *out = c[k];
      return true;
    }
    k -= c.size();
  }
  return false;  // Unreachable.
}

bool Composition::Quiescent() {
  for (size_t i = 0; i < components_.size(); ++i) {
    if (dirty_[i]) {
      cache_[i] = components_[i]->EnabledOutputs();
      dirty_[i] = false;
      enabled_valid_ = false;
    }
    if (!cache_[i].empty()) return false;
  }
  return true;
}

bool Composition::Step(Rng& rng) {
  const std::vector<Action>& enabled = EnabledOutputs();
  if (enabled.empty()) return false;
  const Action a = enabled[rng.NextBelow(enabled.size())];
  Status s = Execute(a);
  NTSG_CHECK(s.ok()) << s.ToString();
  return true;
}

size_t Composition::Run(Rng& rng, size_t max_steps) {
  size_t steps = 0;
  while (steps < max_steps && Step(rng)) ++steps;
  return steps;
}

}  // namespace ntsg
