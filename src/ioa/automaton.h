#ifndef NTSG_IOA_AUTOMATON_H_
#define NTSG_IOA_AUTOMATON_H_

#include <string>
#include <vector>

#include "tx/action.h"

namespace ntsg {

/// Executable form of an I/O automaton (Section 2.1) over the action
/// vocabulary of nested-transaction systems.
///
/// Simplifications relative to the fully general model, each preserving the
/// property we need (that every behavior of our composition is a behavior of
/// the paper's):
///   * no internal actions — all our components are external-action machines;
///   * `EnabledOutputs()` may return a *subset* of the formally enabled
///     outputs (e.g. our controller emits each INFORM_COMMIT once rather
///     than arbitrarily often). Implementing a nondeterministic automaton
///     means producing some subset of its behaviors, which is exactly what
///     implementation ("finbehs(A) ⊆ finbehs(B)") licenses;
///   * input actions must be accepted in every state (input-enabledness),
///     which `Apply` honors by never rejecting.
class Automaton {
 public:
  virtual ~Automaton() = default;

  virtual std::string name() const = 0;

  /// True iff `a` is an input action of this automaton's signature.
  virtual bool IsInput(const Action& a) const = 0;

  /// True iff `a` is an output action of this automaton's signature.
  virtual bool IsOutput(const Action& a) const = 0;

  /// Applies an action this automaton participates in (either an input, or
  /// one of its own enabled outputs chosen by the scheduler).
  virtual void Apply(const Action& a) = 0;

  /// The locally controlled actions currently enabled. May be a subset of
  /// the formal automaton's enabled set but must only contain actions whose
  /// preconditions hold.
  virtual std::vector<Action> EnabledOutputs() const = 0;
};

}  // namespace ntsg

#endif  // NTSG_IOA_AUTOMATON_H_
