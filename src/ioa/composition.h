#ifndef NTSG_IOA_COMPOSITION_H_
#define NTSG_IOA_COMPOSITION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ioa/automaton.h"
#include "tx/trace.h"

namespace ntsg {

/// Composition of strongly compatible I/O automata (Section 2.1). Executing
/// an action delivers it to every component whose signature contains it and
/// appends it to the behavior trace.
///
/// Enabled-output sets are cached per component and invalidated only when
/// the component participates in an action — sound because a component's
/// state changes only through `Apply`.
class Composition {
 public:
  Composition() = default;

  Composition(const Composition&) = delete;
  Composition& operator=(const Composition&) = delete;

  /// Adds a component; returns a non-owning pointer for typed access.
  template <typename T>
  T* Add(std::unique_ptr<T> component) {
    T* raw = component.get();
    components_.push_back(std::move(component));
    dirty_.push_back(true);
    cache_.emplace_back();
    return raw;
  }

  size_t size() const { return components_.size(); }
  Automaton& component(size_t i) { return *components_[i]; }

  /// Executes `a`: checks strong compatibility (at most one component claims
  /// it as output), delivers it to all participants, appends it to the
  /// behavior. O(#components) per call.
  Status Execute(const Action& a);

  /// Executes `a` delivering only to `participants` (component indices the
  /// caller knows contain `a` in their signatures — verified here). Callers
  /// that can compute participants from the action structure (the drivers
  /// can) avoid the O(#components) signature scan of Execute. Each listed
  /// component must actually claim the action.
  Status ExecuteRouted(const Action& a,
                       const std::vector<size_t>& participants);

  /// All currently enabled outputs across components (cached).
  const std::vector<Action>& EnabledOutputs();

  /// Drops every cached enabled set. Call after mutating a component
  /// through a side channel (e.g. GenericController::RequestAbort).
  void InvalidateAll();

  /// Drops one component's cached enabled set (when the side channel is
  /// known to affect only that component).
  void Invalidate(size_t index);

  /// Picks a uniformly random enabled output, executes it, and returns true;
  /// returns false when no output is enabled (quiescence).
  bool Step(Rng& rng);

  /// Samples a uniformly random enabled output without flattening the
  /// per-component caches (the cost that dominates large compositions);
  /// returns false at quiescence. Refreshes dirty components first.
  bool SampleEnabled(Rng& rng, Action* out);

  /// True iff no output is enabled (refreshing dirty components).
  bool Quiescent();

  /// Runs random steps until quiescence or `max_steps`. Returns the number
  /// of steps taken.
  size_t Run(Rng& rng, size_t max_steps);

  const Trace& behavior() const { return behavior_; }
  Trace&& TakeBehavior() { return std::move(behavior_); }

 private:
  void RefreshCache();

  std::vector<std::unique_ptr<Automaton>> components_;
  std::vector<bool> dirty_;
  std::vector<std::vector<Action>> cache_;
  std::vector<Action> enabled_;  // Flattened cache.
  bool enabled_valid_ = false;
  Trace behavior_;
};

}  // namespace ntsg

#endif  // NTSG_IOA_COMPOSITION_H_
