# Empty dependencies file for bench_log_compaction.
# This may be replaced when dependencies are built.
