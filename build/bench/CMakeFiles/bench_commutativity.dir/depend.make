# Empty dependencies file for bench_commutativity.
# This may be replaced when dependencies are built.
