file(REMOVE_RECURSE
  "CMakeFiles/bench_nesting_shape.dir/bench_nesting_shape.cc.o"
  "CMakeFiles/bench_nesting_shape.dir/bench_nesting_shape.cc.o.d"
  "bench_nesting_shape"
  "bench_nesting_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nesting_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
