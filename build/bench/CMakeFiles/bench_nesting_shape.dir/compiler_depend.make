# Empty compiler generated dependencies file for bench_nesting_shape.
# This may be replaced when dependencies are built.
