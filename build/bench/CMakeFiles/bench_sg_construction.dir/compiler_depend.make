# Empty compiler generated dependencies file for bench_sg_construction.
# This may be replaced when dependencies are built.
