file(REMOVE_RECURSE
  "CMakeFiles/bench_sg_construction.dir/bench_sg_construction.cc.o"
  "CMakeFiles/bench_sg_construction.dir/bench_sg_construction.cc.o.d"
  "bench_sg_construction"
  "bench_sg_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sg_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
