file(REMOVE_RECURSE
  "CMakeFiles/bench_serial_baseline.dir/bench_serial_baseline.cc.o"
  "CMakeFiles/bench_serial_baseline.dir/bench_serial_baseline.cc.o.d"
  "bench_serial_baseline"
  "bench_serial_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serial_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
