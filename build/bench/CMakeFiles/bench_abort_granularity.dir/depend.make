# Empty dependencies file for bench_abort_granularity.
# This may be replaced when dependencies are built.
