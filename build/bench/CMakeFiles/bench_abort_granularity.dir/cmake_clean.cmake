file(REMOVE_RECURSE
  "CMakeFiles/bench_abort_granularity.dir/bench_abort_granularity.cc.o"
  "CMakeFiles/bench_abort_granularity.dir/bench_abort_granularity.cc.o.d"
  "bench_abort_granularity"
  "bench_abort_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abort_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
