file(REMOVE_RECURSE
  "CMakeFiles/bench_certifier.dir/bench_certifier.cc.o"
  "CMakeFiles/bench_certifier.dir/bench_certifier.cc.o.d"
  "bench_certifier"
  "bench_certifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_certifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
