# Empty compiler generated dependencies file for bench_certifier.
# This may be replaced when dependencies are built.
