# Empty dependencies file for bench_zipf_skew.
# This may be replaced when dependencies are built.
