# Empty dependencies file for bench_locking_vs_undo.
# This may be replaced when dependencies are built.
