file(REMOVE_RECURSE
  "CMakeFiles/bench_locking_vs_undo.dir/bench_locking_vs_undo.cc.o"
  "CMakeFiles/bench_locking_vs_undo.dir/bench_locking_vs_undo.cc.o.d"
  "bench_locking_vs_undo"
  "bench_locking_vs_undo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_locking_vs_undo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
