file(REMOVE_RECURSE
  "CMakeFiles/bench_sufficiency_gap.dir/bench_sufficiency_gap.cc.o"
  "CMakeFiles/bench_sufficiency_gap.dir/bench_sufficiency_gap.cc.o.d"
  "bench_sufficiency_gap"
  "bench_sufficiency_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sufficiency_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
