# Empty compiler generated dependencies file for bench_sufficiency_gap.
# This may be replaced when dependencies are built.
