file(REMOVE_RECURSE
  "CMakeFiles/bench_sgt_scheduler.dir/bench_sgt_scheduler.cc.o"
  "CMakeFiles/bench_sgt_scheduler.dir/bench_sgt_scheduler.cc.o.d"
  "bench_sgt_scheduler"
  "bench_sgt_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgt_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
