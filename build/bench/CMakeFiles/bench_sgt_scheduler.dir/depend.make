# Empty dependencies file for bench_sgt_scheduler.
# This may be replaced when dependencies are built.
