file(REMOVE_RECURSE
  "CMakeFiles/bench_moss_contention.dir/bench_moss_contention.cc.o"
  "CMakeFiles/bench_moss_contention.dir/bench_moss_contention.cc.o.d"
  "bench_moss_contention"
  "bench_moss_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moss_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
