file(REMOVE_RECURSE
  "CMakeFiles/ntsg.dir/ntsg_cli.cpp.o"
  "CMakeFiles/ntsg.dir/ntsg_cli.cpp.o.d"
  "ntsg"
  "ntsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
