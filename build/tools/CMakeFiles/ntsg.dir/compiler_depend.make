# Empty compiler generated dependencies file for ntsg.
# This may be replaced when dependencies are built.
