file(REMOVE_RECURSE
  "CMakeFiles/serial_driver_test.dir/serial_driver_test.cc.o"
  "CMakeFiles/serial_driver_test.dir/serial_driver_test.cc.o.d"
  "serial_driver_test"
  "serial_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
