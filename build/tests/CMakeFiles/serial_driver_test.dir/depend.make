# Empty dependencies file for serial_driver_test.
# This may be replaced when dependencies are built.
