# Empty dependencies file for system_type_test.
# This may be replaced when dependencies are built.
