file(REMOVE_RECURSE
  "CMakeFiles/moss_invariants_test.dir/moss_invariants_test.cc.o"
  "CMakeFiles/moss_invariants_test.dir/moss_invariants_test.cc.o.d"
  "moss_invariants_test"
  "moss_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
