# Empty dependencies file for moss_invariants_test.
# This may be replaced when dependencies are built.
