file(REMOVE_RECURSE
  "CMakeFiles/moss_test.dir/moss_test.cc.o"
  "CMakeFiles/moss_test.dir/moss_test.cc.o.d"
  "moss_test"
  "moss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
