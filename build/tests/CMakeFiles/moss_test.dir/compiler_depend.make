# Empty compiler generated dependencies file for moss_test.
# This may be replaced when dependencies are built.
