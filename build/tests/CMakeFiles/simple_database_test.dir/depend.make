# Empty dependencies file for simple_database_test.
# This may be replaced when dependencies are built.
