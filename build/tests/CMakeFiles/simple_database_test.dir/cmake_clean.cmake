file(REMOVE_RECURSE
  "CMakeFiles/simple_database_test.dir/simple_database_test.cc.o"
  "CMakeFiles/simple_database_test.dir/simple_database_test.cc.o.d"
  "simple_database_test"
  "simple_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
