# Empty dependencies file for mixed_integration_test.
# This may be replaced when dependencies are built.
