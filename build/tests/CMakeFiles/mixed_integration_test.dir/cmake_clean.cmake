file(REMOVE_RECURSE
  "CMakeFiles/mixed_integration_test.dir/mixed_integration_test.cc.o"
  "CMakeFiles/mixed_integration_test.dir/mixed_integration_test.cc.o.d"
  "mixed_integration_test"
  "mixed_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
