# Empty dependencies file for undo_invariants_test.
# This may be replaced when dependencies are built.
