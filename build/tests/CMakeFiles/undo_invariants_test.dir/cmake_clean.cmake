file(REMOVE_RECURSE
  "CMakeFiles/undo_invariants_test.dir/undo_invariants_test.cc.o"
  "CMakeFiles/undo_invariants_test.dir/undo_invariants_test.cc.o.d"
  "undo_invariants_test"
  "undo_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/undo_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
