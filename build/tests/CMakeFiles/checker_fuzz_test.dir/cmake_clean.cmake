file(REMOVE_RECURSE
  "CMakeFiles/checker_fuzz_test.dir/checker_fuzz_test.cc.o"
  "CMakeFiles/checker_fuzz_test.dir/checker_fuzz_test.cc.o.d"
  "checker_fuzz_test"
  "checker_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
