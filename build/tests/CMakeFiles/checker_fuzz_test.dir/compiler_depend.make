# Empty compiler generated dependencies file for checker_fuzz_test.
# This may be replaced when dependencies are built.
