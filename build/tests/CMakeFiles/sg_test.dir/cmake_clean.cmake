file(REMOVE_RECURSE
  "CMakeFiles/sg_test.dir/sg_test.cc.o"
  "CMakeFiles/sg_test.dir/sg_test.cc.o.d"
  "sg_test"
  "sg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
