# Empty compiler generated dependencies file for read_update_test.
# This may be replaced when dependencies are built.
