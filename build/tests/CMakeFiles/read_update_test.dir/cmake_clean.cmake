file(REMOVE_RECURSE
  "CMakeFiles/read_update_test.dir/read_update_test.cc.o"
  "CMakeFiles/read_update_test.dir/read_update_test.cc.o.d"
  "read_update_test"
  "read_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
