file(REMOVE_RECURSE
  "CMakeFiles/undo_test.dir/undo_test.cc.o"
  "CMakeFiles/undo_test.dir/undo_test.cc.o.d"
  "undo_test"
  "undo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/undo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
