
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fast_graph_test.cc" "tests/CMakeFiles/fast_graph_test.dir/fast_graph_test.cc.o" "gcc" "tests/CMakeFiles/fast_graph_test.dir/fast_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/checker/CMakeFiles/ntsg_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ntsg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sgt/CMakeFiles/ntsg_sgt.dir/DependInfo.cmake"
  "/root/repo/build/src/moss/CMakeFiles/ntsg_moss.dir/DependInfo.cmake"
  "/root/repo/build/src/undo/CMakeFiles/ntsg_undo.dir/DependInfo.cmake"
  "/root/repo/build/src/generic/CMakeFiles/ntsg_generic.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/ntsg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/ntsg_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/ntsg_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/ntsg_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mvto/CMakeFiles/ntsg_mvto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
