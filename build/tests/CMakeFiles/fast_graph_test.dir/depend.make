# Empty dependencies file for fast_graph_test.
# This may be replaced when dependencies are built.
