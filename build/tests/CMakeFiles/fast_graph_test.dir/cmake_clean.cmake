file(REMOVE_RECURSE
  "CMakeFiles/fast_graph_test.dir/fast_graph_test.cc.o"
  "CMakeFiles/fast_graph_test.dir/fast_graph_test.cc.o.d"
  "fast_graph_test"
  "fast_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
