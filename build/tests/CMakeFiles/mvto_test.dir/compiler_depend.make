# Empty compiler generated dependencies file for mvto_test.
# This may be replaced when dependencies are built.
