file(REMOVE_RECURSE
  "CMakeFiles/multiversion.dir/multiversion.cpp.o"
  "CMakeFiles/multiversion.dir/multiversion.cpp.o.d"
  "multiversion"
  "multiversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
