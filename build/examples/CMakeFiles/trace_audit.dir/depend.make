# Empty dependencies file for trace_audit.
# This may be replaced when dependencies are built.
