file(REMOVE_RECURSE
  "CMakeFiles/trace_audit.dir/trace_audit.cpp.o"
  "CMakeFiles/trace_audit.dir/trace_audit.cpp.o.d"
  "trace_audit"
  "trace_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
