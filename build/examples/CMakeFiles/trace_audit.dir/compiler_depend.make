# Empty compiler generated dependencies file for trace_audit.
# This may be replaced when dependencies are built.
