
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/undo/invariants.cc" "src/undo/CMakeFiles/ntsg_undo.dir/invariants.cc.o" "gcc" "src/undo/CMakeFiles/ntsg_undo.dir/invariants.cc.o.d"
  "/root/repo/src/undo/undo_object.cc" "src/undo/CMakeFiles/ntsg_undo.dir/undo_object.cc.o" "gcc" "src/undo/CMakeFiles/ntsg_undo.dir/undo_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/generic/CMakeFiles/ntsg_generic.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/ntsg_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/ntsg_ioa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
