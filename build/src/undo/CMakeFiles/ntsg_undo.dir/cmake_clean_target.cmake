file(REMOVE_RECURSE
  "libntsg_undo.a"
)
