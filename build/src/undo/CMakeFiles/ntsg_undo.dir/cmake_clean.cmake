file(REMOVE_RECURSE
  "CMakeFiles/ntsg_undo.dir/invariants.cc.o"
  "CMakeFiles/ntsg_undo.dir/invariants.cc.o.d"
  "CMakeFiles/ntsg_undo.dir/undo_object.cc.o"
  "CMakeFiles/ntsg_undo.dir/undo_object.cc.o.d"
  "libntsg_undo.a"
  "libntsg_undo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_undo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
