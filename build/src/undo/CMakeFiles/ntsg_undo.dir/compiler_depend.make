# Empty compiler generated dependencies file for ntsg_undo.
# This may be replaced when dependencies are built.
