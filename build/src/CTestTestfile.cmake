# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tx")
subdirs("spec")
subdirs("ioa")
subdirs("serial")
subdirs("sg")
subdirs("generic")
subdirs("moss")
subdirs("undo")
subdirs("sgt")
subdirs("mvto")
subdirs("checker")
subdirs("sim")
