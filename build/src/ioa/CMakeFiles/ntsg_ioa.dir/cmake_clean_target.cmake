file(REMOVE_RECURSE
  "libntsg_ioa.a"
)
