# Empty dependencies file for ntsg_ioa.
# This may be replaced when dependencies are built.
