file(REMOVE_RECURSE
  "CMakeFiles/ntsg_ioa.dir/composition.cc.o"
  "CMakeFiles/ntsg_ioa.dir/composition.cc.o.d"
  "libntsg_ioa.a"
  "libntsg_ioa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_ioa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
