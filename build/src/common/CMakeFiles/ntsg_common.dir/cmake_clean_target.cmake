file(REMOVE_RECURSE
  "libntsg_common.a"
)
