file(REMOVE_RECURSE
  "CMakeFiles/ntsg_common.dir/logging.cc.o"
  "CMakeFiles/ntsg_common.dir/logging.cc.o.d"
  "CMakeFiles/ntsg_common.dir/rng.cc.o"
  "CMakeFiles/ntsg_common.dir/rng.cc.o.d"
  "CMakeFiles/ntsg_common.dir/status.cc.o"
  "CMakeFiles/ntsg_common.dir/status.cc.o.d"
  "libntsg_common.a"
  "libntsg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
