# Empty dependencies file for ntsg_common.
# This may be replaced when dependencies are built.
