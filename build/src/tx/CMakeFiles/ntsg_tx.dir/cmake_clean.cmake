file(REMOVE_RECURSE
  "CMakeFiles/ntsg_tx.dir/access.cc.o"
  "CMakeFiles/ntsg_tx.dir/access.cc.o.d"
  "CMakeFiles/ntsg_tx.dir/action.cc.o"
  "CMakeFiles/ntsg_tx.dir/action.cc.o.d"
  "CMakeFiles/ntsg_tx.dir/system_type.cc.o"
  "CMakeFiles/ntsg_tx.dir/system_type.cc.o.d"
  "CMakeFiles/ntsg_tx.dir/trace.cc.o"
  "CMakeFiles/ntsg_tx.dir/trace.cc.o.d"
  "CMakeFiles/ntsg_tx.dir/trace_checks.cc.o"
  "CMakeFiles/ntsg_tx.dir/trace_checks.cc.o.d"
  "CMakeFiles/ntsg_tx.dir/trace_io.cc.o"
  "CMakeFiles/ntsg_tx.dir/trace_io.cc.o.d"
  "libntsg_tx.a"
  "libntsg_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
