# Empty dependencies file for ntsg_tx.
# This may be replaced when dependencies are built.
