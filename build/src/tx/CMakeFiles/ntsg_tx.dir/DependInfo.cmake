
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tx/access.cc" "src/tx/CMakeFiles/ntsg_tx.dir/access.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/access.cc.o.d"
  "/root/repo/src/tx/action.cc" "src/tx/CMakeFiles/ntsg_tx.dir/action.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/action.cc.o.d"
  "/root/repo/src/tx/system_type.cc" "src/tx/CMakeFiles/ntsg_tx.dir/system_type.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/system_type.cc.o.d"
  "/root/repo/src/tx/trace.cc" "src/tx/CMakeFiles/ntsg_tx.dir/trace.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/trace.cc.o.d"
  "/root/repo/src/tx/trace_checks.cc" "src/tx/CMakeFiles/ntsg_tx.dir/trace_checks.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/trace_checks.cc.o.d"
  "/root/repo/src/tx/trace_io.cc" "src/tx/CMakeFiles/ntsg_tx.dir/trace_io.cc.o" "gcc" "src/tx/CMakeFiles/ntsg_tx.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
