file(REMOVE_RECURSE
  "libntsg_tx.a"
)
