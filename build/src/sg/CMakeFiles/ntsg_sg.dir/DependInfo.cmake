
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sg/affects.cc" "src/sg/CMakeFiles/ntsg_sg.dir/affects.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/affects.cc.o.d"
  "/root/repo/src/sg/appropriate.cc" "src/sg/CMakeFiles/ntsg_sg.dir/appropriate.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/appropriate.cc.o.d"
  "/root/repo/src/sg/certifier.cc" "src/sg/CMakeFiles/ntsg_sg.dir/certifier.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/certifier.cc.o.d"
  "/root/repo/src/sg/conflicts.cc" "src/sg/CMakeFiles/ntsg_sg.dir/conflicts.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/conflicts.cc.o.d"
  "/root/repo/src/sg/fast_graph.cc" "src/sg/CMakeFiles/ntsg_sg.dir/fast_graph.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/fast_graph.cc.o.d"
  "/root/repo/src/sg/graph.cc" "src/sg/CMakeFiles/ntsg_sg.dir/graph.cc.o" "gcc" "src/sg/CMakeFiles/ntsg_sg.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/ntsg_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
