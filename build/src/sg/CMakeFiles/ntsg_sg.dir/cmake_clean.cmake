file(REMOVE_RECURSE
  "CMakeFiles/ntsg_sg.dir/affects.cc.o"
  "CMakeFiles/ntsg_sg.dir/affects.cc.o.d"
  "CMakeFiles/ntsg_sg.dir/appropriate.cc.o"
  "CMakeFiles/ntsg_sg.dir/appropriate.cc.o.d"
  "CMakeFiles/ntsg_sg.dir/certifier.cc.o"
  "CMakeFiles/ntsg_sg.dir/certifier.cc.o.d"
  "CMakeFiles/ntsg_sg.dir/conflicts.cc.o"
  "CMakeFiles/ntsg_sg.dir/conflicts.cc.o.d"
  "CMakeFiles/ntsg_sg.dir/fast_graph.cc.o"
  "CMakeFiles/ntsg_sg.dir/fast_graph.cc.o.d"
  "CMakeFiles/ntsg_sg.dir/graph.cc.o"
  "CMakeFiles/ntsg_sg.dir/graph.cc.o.d"
  "libntsg_sg.a"
  "libntsg_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
