# Empty compiler generated dependencies file for ntsg_sg.
# This may be replaced when dependencies are built.
