file(REMOVE_RECURSE
  "libntsg_sg.a"
)
