# Empty dependencies file for ntsg_generic.
# This may be replaced when dependencies are built.
