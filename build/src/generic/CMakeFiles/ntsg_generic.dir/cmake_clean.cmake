file(REMOVE_RECURSE
  "CMakeFiles/ntsg_generic.dir/controller.cc.o"
  "CMakeFiles/ntsg_generic.dir/controller.cc.o.d"
  "CMakeFiles/ntsg_generic.dir/generic_object.cc.o"
  "CMakeFiles/ntsg_generic.dir/generic_object.cc.o.d"
  "CMakeFiles/ntsg_generic.dir/simple_database.cc.o"
  "CMakeFiles/ntsg_generic.dir/simple_database.cc.o.d"
  "libntsg_generic.a"
  "libntsg_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
