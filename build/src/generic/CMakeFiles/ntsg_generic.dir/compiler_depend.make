# Empty compiler generated dependencies file for ntsg_generic.
# This may be replaced when dependencies are built.
