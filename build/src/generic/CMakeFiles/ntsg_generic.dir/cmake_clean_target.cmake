file(REMOVE_RECURSE
  "libntsg_generic.a"
)
