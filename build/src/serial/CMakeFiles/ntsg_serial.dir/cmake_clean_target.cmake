file(REMOVE_RECURSE
  "libntsg_serial.a"
)
