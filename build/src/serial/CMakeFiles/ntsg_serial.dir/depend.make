# Empty dependencies file for ntsg_serial.
# This may be replaced when dependencies are built.
