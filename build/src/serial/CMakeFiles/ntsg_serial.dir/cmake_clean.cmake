file(REMOVE_RECURSE
  "CMakeFiles/ntsg_serial.dir/serial_object.cc.o"
  "CMakeFiles/ntsg_serial.dir/serial_object.cc.o.d"
  "CMakeFiles/ntsg_serial.dir/serial_scheduler.cc.o"
  "CMakeFiles/ntsg_serial.dir/serial_scheduler.cc.o.d"
  "CMakeFiles/ntsg_serial.dir/validator.cc.o"
  "CMakeFiles/ntsg_serial.dir/validator.cc.o.d"
  "libntsg_serial.a"
  "libntsg_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
