
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/serial_object.cc" "src/serial/CMakeFiles/ntsg_serial.dir/serial_object.cc.o" "gcc" "src/serial/CMakeFiles/ntsg_serial.dir/serial_object.cc.o.d"
  "/root/repo/src/serial/serial_scheduler.cc" "src/serial/CMakeFiles/ntsg_serial.dir/serial_scheduler.cc.o" "gcc" "src/serial/CMakeFiles/ntsg_serial.dir/serial_scheduler.cc.o.d"
  "/root/repo/src/serial/validator.cc" "src/serial/CMakeFiles/ntsg_serial.dir/validator.cc.o" "gcc" "src/serial/CMakeFiles/ntsg_serial.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ioa/CMakeFiles/ntsg_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/ntsg_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
