# Empty compiler generated dependencies file for ntsg_mvto.
# This may be replaced when dependencies are built.
