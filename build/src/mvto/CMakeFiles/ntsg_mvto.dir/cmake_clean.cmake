file(REMOVE_RECURSE
  "CMakeFiles/ntsg_mvto.dir/mvto_object.cc.o"
  "CMakeFiles/ntsg_mvto.dir/mvto_object.cc.o.d"
  "CMakeFiles/ntsg_mvto.dir/timestamp_authority.cc.o"
  "CMakeFiles/ntsg_mvto.dir/timestamp_authority.cc.o.d"
  "libntsg_mvto.a"
  "libntsg_mvto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_mvto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
