file(REMOVE_RECURSE
  "libntsg_mvto.a"
)
