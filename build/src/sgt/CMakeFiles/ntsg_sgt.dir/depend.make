# Empty dependencies file for ntsg_sgt.
# This may be replaced when dependencies are built.
