file(REMOVE_RECURSE
  "CMakeFiles/ntsg_sgt.dir/coordinator.cc.o"
  "CMakeFiles/ntsg_sgt.dir/coordinator.cc.o.d"
  "CMakeFiles/ntsg_sgt.dir/sgt_object.cc.o"
  "CMakeFiles/ntsg_sgt.dir/sgt_object.cc.o.d"
  "libntsg_sgt.a"
  "libntsg_sgt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_sgt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
