file(REMOVE_RECURSE
  "libntsg_sgt.a"
)
