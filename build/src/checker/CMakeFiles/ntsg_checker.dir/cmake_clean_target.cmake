file(REMOVE_RECURSE
  "libntsg_checker.a"
)
