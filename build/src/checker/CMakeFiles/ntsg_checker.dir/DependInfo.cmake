
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/brute_force.cc" "src/checker/CMakeFiles/ntsg_checker.dir/brute_force.cc.o" "gcc" "src/checker/CMakeFiles/ntsg_checker.dir/brute_force.cc.o.d"
  "/root/repo/src/checker/oracle.cc" "src/checker/CMakeFiles/ntsg_checker.dir/oracle.cc.o" "gcc" "src/checker/CMakeFiles/ntsg_checker.dir/oracle.cc.o.d"
  "/root/repo/src/checker/witness.cc" "src/checker/CMakeFiles/ntsg_checker.dir/witness.cc.o" "gcc" "src/checker/CMakeFiles/ntsg_checker.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serial/CMakeFiles/ntsg_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/ntsg_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ioa/CMakeFiles/ntsg_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/ntsg_spec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
