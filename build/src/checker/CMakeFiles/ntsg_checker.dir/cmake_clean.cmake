file(REMOVE_RECURSE
  "CMakeFiles/ntsg_checker.dir/brute_force.cc.o"
  "CMakeFiles/ntsg_checker.dir/brute_force.cc.o.d"
  "CMakeFiles/ntsg_checker.dir/oracle.cc.o"
  "CMakeFiles/ntsg_checker.dir/oracle.cc.o.d"
  "CMakeFiles/ntsg_checker.dir/witness.cc.o"
  "CMakeFiles/ntsg_checker.dir/witness.cc.o.d"
  "libntsg_checker.a"
  "libntsg_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
