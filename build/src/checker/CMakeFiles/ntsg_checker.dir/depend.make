# Empty dependencies file for ntsg_checker.
# This may be replaced when dependencies are built.
