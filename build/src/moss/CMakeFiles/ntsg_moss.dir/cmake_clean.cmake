file(REMOVE_RECURSE
  "CMakeFiles/ntsg_moss.dir/invariants.cc.o"
  "CMakeFiles/ntsg_moss.dir/invariants.cc.o.d"
  "CMakeFiles/ntsg_moss.dir/moss_object.cc.o"
  "CMakeFiles/ntsg_moss.dir/moss_object.cc.o.d"
  "CMakeFiles/ntsg_moss.dir/read_update_object.cc.o"
  "CMakeFiles/ntsg_moss.dir/read_update_object.cc.o.d"
  "libntsg_moss.a"
  "libntsg_moss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_moss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
