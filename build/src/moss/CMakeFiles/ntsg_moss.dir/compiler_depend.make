# Empty compiler generated dependencies file for ntsg_moss.
# This may be replaced when dependencies are built.
