file(REMOVE_RECURSE
  "libntsg_moss.a"
)
