# Empty dependencies file for ntsg_spec.
# This may be replaced when dependencies are built.
