file(REMOVE_RECURSE
  "CMakeFiles/ntsg_spec.dir/bank_account.cc.o"
  "CMakeFiles/ntsg_spec.dir/bank_account.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/commutativity.cc.o"
  "CMakeFiles/ntsg_spec.dir/commutativity.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/counter.cc.o"
  "CMakeFiles/ntsg_spec.dir/counter.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/equieffective.cc.o"
  "CMakeFiles/ntsg_spec.dir/equieffective.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/final_value.cc.o"
  "CMakeFiles/ntsg_spec.dir/final_value.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/queue.cc.o"
  "CMakeFiles/ntsg_spec.dir/queue.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/read_write.cc.o"
  "CMakeFiles/ntsg_spec.dir/read_write.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/replay.cc.o"
  "CMakeFiles/ntsg_spec.dir/replay.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/serial_spec.cc.o"
  "CMakeFiles/ntsg_spec.dir/serial_spec.cc.o.d"
  "CMakeFiles/ntsg_spec.dir/set.cc.o"
  "CMakeFiles/ntsg_spec.dir/set.cc.o.d"
  "libntsg_spec.a"
  "libntsg_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
