file(REMOVE_RECURSE
  "libntsg_spec.a"
)
