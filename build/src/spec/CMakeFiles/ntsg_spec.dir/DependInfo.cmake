
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/bank_account.cc" "src/spec/CMakeFiles/ntsg_spec.dir/bank_account.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/bank_account.cc.o.d"
  "/root/repo/src/spec/commutativity.cc" "src/spec/CMakeFiles/ntsg_spec.dir/commutativity.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/commutativity.cc.o.d"
  "/root/repo/src/spec/counter.cc" "src/spec/CMakeFiles/ntsg_spec.dir/counter.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/counter.cc.o.d"
  "/root/repo/src/spec/equieffective.cc" "src/spec/CMakeFiles/ntsg_spec.dir/equieffective.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/equieffective.cc.o.d"
  "/root/repo/src/spec/final_value.cc" "src/spec/CMakeFiles/ntsg_spec.dir/final_value.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/final_value.cc.o.d"
  "/root/repo/src/spec/queue.cc" "src/spec/CMakeFiles/ntsg_spec.dir/queue.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/queue.cc.o.d"
  "/root/repo/src/spec/read_write.cc" "src/spec/CMakeFiles/ntsg_spec.dir/read_write.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/read_write.cc.o.d"
  "/root/repo/src/spec/replay.cc" "src/spec/CMakeFiles/ntsg_spec.dir/replay.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/replay.cc.o.d"
  "/root/repo/src/spec/serial_spec.cc" "src/spec/CMakeFiles/ntsg_spec.dir/serial_spec.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/serial_spec.cc.o.d"
  "/root/repo/src/spec/set.cc" "src/spec/CMakeFiles/ntsg_spec.dir/set.cc.o" "gcc" "src/spec/CMakeFiles/ntsg_spec.dir/set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tx/CMakeFiles/ntsg_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntsg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
