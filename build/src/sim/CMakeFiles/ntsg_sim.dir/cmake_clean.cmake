file(REMOVE_RECURSE
  "CMakeFiles/ntsg_sim.dir/driver.cc.o"
  "CMakeFiles/ntsg_sim.dir/driver.cc.o.d"
  "CMakeFiles/ntsg_sim.dir/program.cc.o"
  "CMakeFiles/ntsg_sim.dir/program.cc.o.d"
  "CMakeFiles/ntsg_sim.dir/scripted.cc.o"
  "CMakeFiles/ntsg_sim.dir/scripted.cc.o.d"
  "CMakeFiles/ntsg_sim.dir/serial_driver.cc.o"
  "CMakeFiles/ntsg_sim.dir/serial_driver.cc.o.d"
  "CMakeFiles/ntsg_sim.dir/trace_stats.cc.o"
  "CMakeFiles/ntsg_sim.dir/trace_stats.cc.o.d"
  "libntsg_sim.a"
  "libntsg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntsg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
