# Empty compiler generated dependencies file for ntsg_sim.
# This may be replaced when dependencies are built.
