file(REMOVE_RECURSE
  "libntsg_sim.a"
)
