// Tests for the serial system (Section 2.2): the serial scheduler automaton,
// serial object automata, executable serial runs, and the serial-behavior
// validator.

#include <gtest/gtest.h>

#include "ioa/composition.h"
#include "serial/serial_object.h"
#include "serial/serial_scheduler.h"
#include "serial/validator.h"
#include "tx/trace_checks.h"

namespace ntsg {
namespace {

class SerialTest : public ::testing::Test {
 protected:
  SerialTest() {
    x_ = type_.AddObject(ObjectType::kReadWrite, "X", 0);
    t1_ = type_.NewChild(kT0);
    t2_ = type_.NewChild(kT0);
    w1_ = type_.NewAccess(t1_, AccessSpec{x_, OpCode::kWrite, 5});
    r2_ = type_.NewAccess(t2_, AccessSpec{x_, OpCode::kRead, 0});
  }

  SystemType type_;
  ObjectId x_;
  TxName t1_, t2_, w1_, r2_;
};

TEST_F(SerialTest, SchedulerRefusesConcurrentSiblings) {
  SerialScheduler sched(type_, /*allow_aborts=*/false);
  sched.Apply(Action::RequestCreate(t1_));
  sched.Apply(Action::RequestCreate(t2_));
  auto enabled = sched.EnabledOutputs();
  // Both CREATEs enabled while neither is live.
  EXPECT_EQ(enabled.size(), 2u);

  sched.Apply(Action::Create(t1_));
  enabled = sched.EnabledOutputs();
  // t1 is live: no sibling may be created.
  EXPECT_TRUE(enabled.empty());

  sched.Apply(Action::RequestCommit(t1_, Value::Int(0)));
  sched.Apply(Action::Commit(t1_));
  enabled = sched.EnabledOutputs();
  // Now CREATE(t2) and REPORT_COMMIT(t1) are both enabled.
  bool create2 = false, report1 = false;
  for (const Action& a : enabled) {
    if (a.kind == ActionKind::kCreate && a.tx == t2_) create2 = true;
    if (a.kind == ActionKind::kReportCommit && a.tx == t1_) report1 = true;
  }
  EXPECT_TRUE(create2);
  EXPECT_TRUE(report1);
}

TEST_F(SerialTest, SchedulerAbortsOnlyUncreated) {
  SerialScheduler sched(type_, /*allow_aborts=*/true);
  sched.Apply(Action::RequestCreate(t1_));
  auto enabled = sched.EnabledOutputs();
  bool abort1 = false;
  for (const Action& a : enabled) {
    if (a.kind == ActionKind::kAbort && a.tx == t1_) abort1 = true;
  }
  EXPECT_TRUE(abort1);

  sched.Apply(Action::Create(t1_));
  for (const Action& a : sched.EnabledOutputs()) {
    EXPECT_FALSE(a.kind == ActionKind::kAbort) << a.ToString(type_);
  }
}

TEST_F(SerialTest, SerialObjectRespondsDeterministically) {
  SerialObjectAutomaton obj(type_, x_);
  EXPECT_TRUE(obj.EnabledOutputs().empty());
  obj.Apply(Action::Create(w1_));
  auto enabled = obj.EnabledOutputs();
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0], Action::RequestCommit(w1_, Value::Ok()));
  obj.Apply(enabled[0]);

  obj.Apply(Action::Create(r2_));
  enabled = obj.EnabledOutputs();
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0], Action::RequestCommit(r2_, Value::Int(5)));
}

/// Executable serial run: scheduler + object driven by a hand scripted
/// environment; the produced behavior must satisfy the validator and the
/// simple-behavior checks.
TEST_F(SerialTest, ComposedSerialRunIsValid) {
  Composition comp;
  comp.Add(std::make_unique<SerialScheduler>(type_, /*allow_aborts=*/false));
  comp.Add(std::make_unique<SerialObjectAutomaton>(type_, x_));

  // Environment: request both accesses as top-level transactions directly.
  // (Accesses as children of T0 keep the example minimal.)
  SystemType& type = type_;
  TxName a1 = type.NewAccess(kT0, AccessSpec{x_, OpCode::kWrite, 9});
  TxName a2 = type.NewAccess(kT0, AccessSpec{x_, OpCode::kRead, 0});
  Status s1 = comp.Execute(Action::RequestCreate(a1));
  Status s2 = comp.Execute(Action::RequestCreate(a2));
  ASSERT_TRUE(s1.ok() && s2.ok());

  Rng rng(42);
  comp.Run(rng, 1000);
  Trace beta = comp.behavior();

  Status valid = ValidateSerialBehavior(type_, beta);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n"
                          << TraceToString(type_, beta);
  EXPECT_TRUE(CheckSimpleBehavior(type_, beta).ok());
}

TEST_F(SerialTest, ValidatorAcceptsHandWrittenSerialBehavior) {
  Trace gamma = {
      Action::RequestCreate(w1_),
      Action::Create(w1_),
      Action::RequestCommit(w1_, Value::Ok()),
      Action::Commit(w1_),
      Action::ReportCommit(w1_, Value::Ok()),
      Action::RequestCreate(r2_),
      Action::Create(r2_),
      Action::RequestCommit(r2_, Value::Int(5)),
      Action::Commit(r2_),
      Action::ReportCommit(r2_, Value::Int(5)),
  };
  // w1/r2 are nested under t1/t2 here, so this behavior is ill-formed: the
  // parents were never created. Use direct accesses instead.
  SystemType type;
  ObjectId x = type.AddObject(ObjectType::kReadWrite, "X", 0);
  TxName a1 = type.NewAccess(kT0, AccessSpec{x, OpCode::kWrite, 5});
  TxName a2 = type.NewAccess(kT0, AccessSpec{x, OpCode::kRead, 0});
  Trace good = {
      Action::RequestCreate(a1),
      Action::Create(a1),
      Action::RequestCommit(a1, Value::Ok()),
      Action::Commit(a1),
      Action::ReportCommit(a1, Value::Ok()),
      Action::RequestCreate(a2),
      Action::Create(a2),
      Action::RequestCommit(a2, Value::Int(5)),
      Action::Commit(a2),
  };
  EXPECT_TRUE(ValidateSerialBehavior(type, good).ok());

  // And the original one must be rejected (parents absent).
  EXPECT_FALSE(ValidateSerialBehavior(type_, gamma).ok());
}

TEST_F(SerialTest, ValidatorRejectsWrongReadValue) {
  SystemType type;
  ObjectId x = type.AddObject(ObjectType::kReadWrite, "X", 3);
  TxName a = type.NewAccess(kT0, AccessSpec{x, OpCode::kRead, 0});
  Trace bad = {
      Action::RequestCreate(a),
      Action::Create(a),
      Action::RequestCommit(a, Value::Int(99)),  // Initial value is 3.
  };
  Status s = ValidateSerialBehavior(type, bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("spec yields"), std::string::npos);
}

TEST_F(SerialTest, ValidatorRejectsSiblingOverlap) {
  SystemType type;
  TxName u1 = type.NewChild(kT0);
  TxName u2 = type.NewChild(kT0);
  Trace bad = {
      Action::RequestCreate(u1),
      Action::RequestCreate(u2),
      Action::Create(u1),
      Action::Create(u2),  // u1 still live.
  };
  Status s = ValidateSerialBehavior(type, bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sibling"), std::string::npos);
}

TEST_F(SerialTest, ValidatorRejectsAbortOfCreated) {
  SystemType type;
  TxName u1 = type.NewChild(kT0);
  Trace bad = {
      Action::RequestCreate(u1),
      Action::Create(u1),
      Action::Abort(u1),
  };
  Status s = ValidateSerialBehavior(type, bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("non-created"), std::string::npos);
}

TEST_F(SerialTest, ValidatorEnforcesOracle) {
  SystemType type;
  TxName u1 = type.NewChild(kT0);
  Trace gamma = {Action::RequestCreate(u1), Action::Create(u1),
                 Action::RequestCommit(u1, Value::Int(0)),
                 Action::Commit(u1)};
  class RejectAll final : public TransactionOracle {
   public:
    Status ValidateProjection(const SystemType&, TxName,
                              const Trace&) const override {
      return Status::VerificationFailed("nope");
    }
  } oracle;
  EXPECT_TRUE(ValidateSerialBehavior(type, gamma).ok());
  EXPECT_FALSE(ValidateSerialBehavior(type, gamma, &oracle).ok());
}

}  // namespace
}  // namespace ntsg
