// Tests for the serialization graph construction (Section 4): the conflict
// and precedes relations, cycle detection, topological orders, and the
// Theorem 8 certifier on hand-built behaviors.

#include <gtest/gtest.h>

#include "sg/appropriate.h"
#include "sg/certifier.h"
#include "sg/graph.h"

namespace ntsg {
namespace {

/// Two flat top-level transactions t1, t2 each with accesses to X and Y —
/// the classic setting for serializability anomalies.
class SgTest : public ::testing::Test {
 protected:
  SgTest() {
    x_ = type_.AddObject(ObjectType::kReadWrite, "X", 0);
    y_ = type_.AddObject(ObjectType::kReadWrite, "Y", 0);
    t1_ = type_.NewChild(kT0);
    t2_ = type_.NewChild(kT0);
    r1x_ = type_.NewAccess(t1_, AccessSpec{x_, OpCode::kRead, 0});
    r1y_ = type_.NewAccess(t1_, AccessSpec{y_, OpCode::kRead, 0});
    w2x_ = type_.NewAccess(t2_, AccessSpec{x_, OpCode::kWrite, 1});
    w2y_ = type_.NewAccess(t2_, AccessSpec{y_, OpCode::kWrite, 1});
  }

  /// Full committed lifecycle for an access.
  void Run(Trace& beta, TxName access, Value v) {
    beta.push_back(Action::RequestCreate(access));
    beta.push_back(Action::Create(access));
    beta.push_back(Action::RequestCommit(access, v));
    beta.push_back(Action::Commit(access));
    beta.push_back(Action::ReportCommit(access, v));
  }

  void Open(Trace& beta, TxName t) {
    beta.push_back(Action::RequestCreate(t));
    beta.push_back(Action::Create(t));
  }

  void Close(Trace& beta, TxName t, int64_t v) {
    beta.push_back(Action::RequestCommit(t, Value::Int(v)));
    beta.push_back(Action::Commit(t));
    beta.push_back(Action::ReportCommit(t, Value::Int(v)));
  }

  SystemType type_;
  ObjectId x_, y_;
  TxName t1_, t2_, r1x_, r1y_, w2x_, w2y_;
};

TEST_F(SgTest, NonSerializableInterleavingHasCycle) {
  // r1(X) w2(X) w2(Y) r1(Y): T1 reads X before T2's write but Y after.
  Trace beta;
  Open(beta, t1_);
  Open(beta, t2_);
  Run(beta, r1x_, Value::Int(0));
  Run(beta, w2x_, Value::Ok());
  Run(beta, w2y_, Value::Ok());
  Close(beta, t2_, 2);
  Run(beta, r1y_, Value::Int(1));
  Close(beta, t1_, 2);

  auto conflicts = ConflictRelation(type_, beta, ConflictMode::kReadWrite);
  // Edges: t1 -> t2 via X (read before write), t2 -> t1 via Y.
  bool t1t2 = false, t2t1 = false;
  for (const SiblingEdge& e : conflicts) {
    EXPECT_EQ(e.parent, kT0);
    if (e.from == t1_ && e.to == t2_) t1t2 = true;
    if (e.from == t2_ && e.to == t1_) t2t1 = true;
  }
  EXPECT_TRUE(t1t2);
  EXPECT_TRUE(t2t1);

  SerializationGraph sg =
      SerializationGraph::Build(type_, beta, ConflictMode::kReadWrite);
  auto cycle = sg.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);

  CertifierReport report =
      CertifySeriallyCorrect(type_, beta, ConflictMode::kReadWrite);
  EXPECT_FALSE(report.status.ok());
  EXPECT_TRUE(report.appropriate_return_values);  // Values are fine...
  EXPECT_FALSE(report.graph_acyclic);             // ...the order is not.
}

TEST_F(SgTest, SerialInterleavingIsCertified) {
  // T1 runs entirely before T2.
  Trace beta;
  Open(beta, t1_);
  Run(beta, r1x_, Value::Int(0));
  Run(beta, r1y_, Value::Int(0));
  Close(beta, t1_, 2);
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Run(beta, w2y_, Value::Ok());
  Close(beta, t2_, 2);

  CertifierReport report =
      CertifySeriallyCorrect(type_, beta, ConflictMode::kReadWrite);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_GT(report.conflict_edge_count, 0u);

  SerializationGraph sg =
      SerializationGraph::Build(type_, beta, ConflictMode::kReadWrite);
  auto orders = sg.TopologicalOrders();
  ASSERT_TRUE(orders.count(kT0));
  ASSERT_EQ(orders[kT0].size(), 2u);
  EXPECT_EQ(orders[kT0][0], t1_);
  EXPECT_EQ(orders[kT0][1], t2_);
}

TEST_F(SgTest, ConflictsIgnoreNonVisibleOperations) {
  // t2's accesses respond but t2 never commits: no visible conflict.
  Trace beta;
  Open(beta, t1_);
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Run(beta, r1x_, Value::Int(0));  // Not current, but t2 is invisible.
  Close(beta, t1_, 1);

  auto conflicts = ConflictRelation(type_, beta, ConflictMode::kReadWrite);
  EXPECT_TRUE(conflicts.empty());
}

TEST_F(SgTest, StaleReadIsNotAppropriate) {
  // t2 commits a write of X, then t1 reads the stale initial value.
  Trace beta;
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Close(beta, t2_, 1);
  Open(beta, t1_);
  Run(beta, r1x_, Value::Int(0));  // Should have read 1.
  Close(beta, t1_, 1);

  EXPECT_FALSE(CheckAppropriateReturnValuesRw(type_, beta).ok());
  EXPECT_FALSE(CheckAppropriateReturnValuesGeneral(type_, beta).ok());
  CertifierReport report =
      CertifySeriallyCorrect(type_, beta, ConflictMode::kReadWrite);
  EXPECT_FALSE(report.status.ok());
  EXPECT_FALSE(report.appropriate_return_values);
}

TEST_F(SgTest, RwAndGeneralAppropriatenessAgree) {
  // Lemma 5: on read/write systems the two formulations coincide.
  Trace beta;
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Close(beta, t2_, 1);
  Open(beta, t1_);
  Run(beta, r1x_, Value::Int(1));
  Run(beta, r1y_, Value::Int(0));
  Close(beta, t1_, 2);

  EXPECT_TRUE(CheckAppropriateReturnValuesRw(type_, beta).ok());
  EXPECT_TRUE(CheckAppropriateReturnValuesGeneral(type_, beta).ok());
}

TEST_F(SgTest, PrecedesFromReportBeforeRequestCreate) {
  Trace beta;
  Open(beta, t1_);
  Run(beta, r1x_, Value::Int(0));
  Close(beta, t1_, 1);
  // T0 saw t1's report before requesting t2.
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Close(beta, t2_, 1);

  auto precedes = PrecedesRelation(type_, beta);
  ASSERT_EQ(precedes.size(), 1u);
  EXPECT_EQ(precedes[0].from, t1_);
  EXPECT_EQ(precedes[0].to, t2_);
  EXPECT_EQ(precedes[0].parent, kT0);
}

TEST_F(SgTest, PrecedesAfterAbortReport) {
  Trace beta;
  beta.push_back(Action::RequestCreate(t1_));
  beta.push_back(Action::Abort(t1_));
  beta.push_back(Action::ReportAbort(t1_));
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Close(beta, t2_, 1);

  auto precedes = PrecedesRelation(type_, beta);
  ASSERT_EQ(precedes.size(), 1u);
  EXPECT_EQ(precedes[0].from, t1_);
  EXPECT_EQ(precedes[0].to, t2_);
}

TEST_F(SgTest, CurrentAndSafeChecks) {
  // A dirty read: t1 reads t2's uncommitted write.
  Trace beta;
  Open(beta, t1_);
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  // t1 reads value 1 written by live (non-ancestor) t2: current, NOT safe.
  size_t read_pos = beta.size() + 2;  // request_create, create, then RC.
  Run(beta, r1x_, Value::Int(1));
  EXPECT_TRUE(IsCurrentReadEvent(type_, beta, read_pos));
  EXPECT_FALSE(IsSafeReadEvent(type_, beta, read_pos));

  // Stale read of 0 instead: safe (no visible writer needed)... but not
  // current.
  Trace beta2;
  Open(beta2, t1_);
  Open(beta2, t2_);
  Run(beta2, w2x_, Value::Ok());
  size_t read_pos2 = beta2.size() + 2;
  Run(beta2, r1x_, Value::Int(0));
  EXPECT_FALSE(IsCurrentReadEvent(type_, beta2, read_pos2));
}

TEST_F(SgTest, CurrentAfterAbortRevertsValue) {
  // t2 writes, then aborts; a subsequent read of the initial value is
  // current (clean-final-value ignores orphans).
  Trace beta;
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  beta.push_back(Action::Abort(t2_));
  Open(beta, t1_);
  size_t read_pos = beta.size() + 2;
  Run(beta, r1x_, Value::Int(0));
  EXPECT_TRUE(IsCurrentReadEvent(type_, beta, read_pos));
  EXPECT_TRUE(IsSafeReadEvent(type_, beta, read_pos));
}

TEST_F(SgTest, GraphDotRendering) {
  Trace beta;
  Open(beta, t1_);
  Run(beta, r1x_, Value::Int(0));
  Close(beta, t1_, 1);
  Open(beta, t2_);
  Run(beta, w2x_, Value::Ok());
  Close(beta, t2_, 1);
  SerializationGraph sg =
      SerializationGraph::Build(type_, beta, ConflictMode::kReadWrite);
  std::string dot = sg.ToDot(type_);
  EXPECT_NE(dot.find("digraph SG"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(SgTest, EmptyTraceIsTriviallyCertified) {
  Trace beta;
  CertifierReport report =
      CertifySeriallyCorrect(type_, beta, ConflictMode::kCommutativity);
  EXPECT_TRUE(report.status.ok());
  EXPECT_EQ(report.conflict_edge_count, 0u);
  EXPECT_EQ(report.precedes_edge_count, 0u);
}

TEST_F(SgTest, CommutativityModeDropsSameValueWriteEdges) {
  // Two committed writes of the same value: Section 4 sees a conflict edge,
  // Section 6 does not.
  TxName w1x = type_.NewAccess(t1_, AccessSpec{x_, OpCode::kWrite, 1});
  Trace beta;
  Open(beta, t1_);
  Open(beta, t2_);
  Run(beta, w1x, Value::Ok());
  Run(beta, w2x_, Value::Ok());
  Close(beta, t1_, 1);
  Close(beta, t2_, 1);

  EXPECT_EQ(ConflictRelation(type_, beta, ConflictMode::kReadWrite).size(),
            1u);
  EXPECT_TRUE(
      ConflictRelation(type_, beta, ConflictMode::kCommutativity).empty());
}

/// Nested case: conflicts between cousins must surface at the lca's level.
TEST(SgNestedTest, EdgeAtLcaLevel) {
  SystemType type;
  ObjectId x = type.AddObject(ObjectType::kReadWrite, "X", 0);
  TxName p = type.NewChild(kT0);
  TxName c1 = type.NewChild(p);
  TxName c2 = type.NewChild(p);
  TxName w1 = type.NewAccess(c1, AccessSpec{x, OpCode::kWrite, 1});
  TxName w2 = type.NewAccess(c2, AccessSpec{x, OpCode::kWrite, 2});

  Trace beta;
  for (TxName t : {p, c1}) {
    beta.push_back(Action::RequestCreate(t));
    beta.push_back(Action::Create(t));
  }
  beta.push_back(Action::RequestCreate(c2));
  beta.push_back(Action::Create(c2));
  for (TxName w : {w1, w2}) {
    beta.push_back(Action::RequestCreate(w));
    beta.push_back(Action::Create(w));
    beta.push_back(Action::RequestCommit(w, Value::Ok()));
    beta.push_back(Action::Commit(w));
    beta.push_back(Action::ReportCommit(w, Value::Ok()));
  }
  for (TxName t : {c1, c2}) {
    beta.push_back(Action::RequestCommit(t, Value::Int(1)));
    beta.push_back(Action::Commit(t));
    beta.push_back(Action::ReportCommit(t, Value::Int(1)));
  }
  beta.push_back(Action::RequestCommit(p, Value::Int(2)));
  beta.push_back(Action::Commit(p));

  auto conflicts = ConflictRelation(type, beta, ConflictMode::kReadWrite);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].parent, p);
  EXPECT_EQ(conflicts[0].from, c1);
  EXPECT_EQ(conflicts[0].to, c2);
}

}  // namespace
}  // namespace ntsg
