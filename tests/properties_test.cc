// Lemma/proposition-level property tests:
//   * Proposition 7/18: reordering non-conflicting (backward-commuting)
//     operations in a legal serial behavior yields a legal behavior with an
//     equal final state — checked by random adjacent transpositions;
//   * directly-affects (Section 2.3.2) structural rules;
//   * I/O automaton composition semantics (strong compatibility, caching).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ioa/composition.h"
#include "sg/affects.h"
#include "spec/commutativity.h"
#include "spec/replay.h"

namespace ntsg {
namespace {

/// Generates a random legal operation sequence of `n` operations against a
/// fresh spec of `otype`, recording true serial return values.
struct GeneratedOps {
  std::unique_ptr<SystemType> type;
  ObjectId x;
  std::vector<Operation> ops;
};

GeneratedOps GenerateLegalOps(ObjectType otype, size_t n, Rng& rng) {
  GeneratedOps out;
  out.type = std::make_unique<SystemType>();
  out.x = out.type->AddObject(otype, "X", 5);
  auto spec = MakeSpec(otype, 5);
  for (size_t i = 0; i < n; ++i) {
    // Pick a random valid op for the type.
    std::vector<OpCode> codes;
    for (OpCode op :
         {OpCode::kRead, OpCode::kWrite, OpCode::kIncrement,
          OpCode::kDecrement, OpCode::kCounterRead, OpCode::kAdd,
          OpCode::kRemove, OpCode::kContains, OpCode::kSetSize,
          OpCode::kEnqueue, OpCode::kDequeue, OpCode::kQueueSize,
          OpCode::kDeposit, OpCode::kWithdraw, OpCode::kBalance}) {
      if (OpValidForType(otype, op)) codes.push_back(op);
    }
    OpCode op = codes[rng.NextBelow(codes.size())];
    int64_t arg = rng.NextInRange(0, 6);
    TxName t = out.type->NewAccess(kT0, AccessSpec{out.x, op, arg});
    Value v = spec->Apply(op, arg);
    out.ops.push_back(Operation{t, v});
  }
  return out;
}

class ReorderingProperty : public ::testing::TestWithParam<ObjectType> {};

TEST_P(ReorderingProperty, AdjacentCommutingSwapsPreserveBehavior) {
  ObjectType otype = GetParam();
  Rng rng(0xAB5EED ^ static_cast<uint64_t>(otype));
  size_t swaps_tested = 0;
  for (int round = 0; round < 40; ++round) {
    GeneratedOps gen = GenerateLegalOps(otype, 12, rng);
    ASSERT_TRUE(ReplayOperations(*gen.type, gen.x, gen.ops).ok());

    // Try every adjacent pair; when the records commute backward, the
    // swapped sequence must replay legally and reach the same final state.
    for (size_t i = 0; i + 1 < gen.ops.size(); ++i) {
      const AccessSpec& a = gen.type->access(gen.ops[i].tx);
      const AccessSpec& b = gen.type->access(gen.ops[i + 1].tx);
      OpRecord ra{a.op, a.arg, gen.ops[i].value};
      OpRecord rb{b.op, b.arg, gen.ops[i + 1].value};
      if (!CommutesBackward(otype, ra, rb)) continue;
      ++swaps_tested;

      std::vector<Operation> swapped = gen.ops;
      std::swap(swapped[i], swapped[i + 1]);
      Status s = ReplayOperations(*gen.type, gen.x, swapped);
      EXPECT_TRUE(s.ok()) << ObjectTypeName(otype) << " swap at " << i << ": "
                          << s.ToString();
      // Equieffectiveness: identical final states.
      auto s1 = StateAfter(*gen.type, gen.x, gen.ops);
      auto s2 = StateAfter(*gen.type, gen.x, swapped);
      EXPECT_TRUE(s1->StateEquals(*s2));
    }
  }
  EXPECT_GT(swaps_tested, 0u) << "no commuting adjacent pairs generated";
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ReorderingProperty,
                         ::testing::Values(ObjectType::kReadWrite,
                                           ObjectType::kCounter,
                                           ObjectType::kSet, ObjectType::kQueue,
                                           ObjectType::kBankAccount));

class AffectsTest : public ::testing::Test {
 protected:
  AffectsTest() {
    x_ = type_.AddObject(ObjectType::kReadWrite, "X", 0);
    t1_ = type_.NewChild(kT0);
    w1_ = type_.NewAccess(t1_, AccessSpec{x_, OpCode::kWrite, 1});
  }

  SystemType type_;
  ObjectId x_;
  TxName t1_, w1_;
};

TEST_F(AffectsTest, RequestCreateAffectsCreate) {
  Trace beta = {Action::RequestCreate(t1_), Action::Create(t1_)};
  auto pairs = DirectlyAffects(type_, beta);
  // REQUEST_CREATE -> CREATE plus nothing else.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<size_t, size_t>{0, 1}));
}

TEST_F(AffectsTest, SameTransactionEventsChain) {
  Trace beta = {Action::Create(t1_), Action::RequestCreate(w1_)};
  auto pairs = DirectlyAffects(type_, beta);
  // transaction(CREATE(t1)) == transaction(REQUEST_CREATE(w1)) == t1.
  ASSERT_EQ(pairs.size(), 1u);
}

TEST_F(AffectsTest, FullLifecycleChain) {
  Trace beta = {
      Action::RequestCreate(t1_),              // 0 (by T0)
      Action::Create(t1_),                     // 1 (t1)
      Action::RequestCommit(t1_, Value::Int(0)),  // 2 (t1)
      Action::Commit(t1_),                     // 3
      Action::ReportCommit(t1_, Value::Int(0)),   // 4 (T0)
  };
  auto pairs = DirectlyAffects(type_, beta);
  auto has = [&pairs](size_t i, size_t j) {
    return std::find(pairs.begin(), pairs.end(),
                     std::pair<size_t, size_t>{i, j}) != pairs.end();
  };
  EXPECT_TRUE(has(0, 1));  // REQUEST_CREATE -> CREATE.
  EXPECT_TRUE(has(1, 2));  // Same transaction t1.
  EXPECT_TRUE(has(2, 3));  // REQUEST_COMMIT -> COMMIT.
  EXPECT_TRUE(has(3, 4));  // COMMIT -> REPORT_COMMIT.
  EXPECT_FALSE(has(1, 3));
  EXPECT_FALSE(has(0, 3));  // ABORT rule does not apply to COMMIT.
}

TEST_F(AffectsTest, AbortRule) {
  Trace beta = {Action::RequestCreate(t1_), Action::Abort(t1_),
                Action::ReportAbort(t1_)};
  auto pairs = DirectlyAffects(type_, beta);
  auto has = [&pairs](size_t i, size_t j) {
    return std::find(pairs.begin(), pairs.end(),
                     std::pair<size_t, size_t>{i, j}) != pairs.end();
  };
  EXPECT_TRUE(has(0, 1));  // REQUEST_CREATE -> ABORT.
  EXPECT_TRUE(has(1, 2));  // ABORT -> REPORT_ABORT.
}

/// Minimal automaton: emits a fixed action once, accepts an input kind.
class OneShot final : public Automaton {
 public:
  OneShot(std::string name, Action out, ActionKind input_kind)
      : name_(std::move(name)), out_(out), input_kind_(input_kind) {}

  std::string name() const override { return name_; }
  bool IsInput(const Action& a) const override {
    return a.kind == input_kind_;
  }
  bool IsOutput(const Action& a) const override { return a == out_; }
  void Apply(const Action& a) override {
    if (a == out_) fired_ = true;
    if (IsInput(a)) ++inputs_seen_;
  }
  std::vector<Action> EnabledOutputs() const override {
    if (fired_) return {};
    return {out_};
  }

  int inputs_seen() const { return inputs_seen_; }

 private:
  std::string name_;
  Action out_;
  ActionKind input_kind_;
  bool fired_ = false;
  int inputs_seen_ = 0;
};

TEST(CompositionTest, DeliversToAllParticipants) {
  SystemType type;
  TxName t1 = type.NewChild(kT0);
  Composition comp;
  auto* a = comp.Add(std::make_unique<OneShot>(
      "a", Action::RequestCreate(t1), ActionKind::kCommit));
  auto* b = comp.Add(std::make_unique<OneShot>(
      "b", Action::Commit(t1), ActionKind::kRequestCreate));

  Rng rng(1);
  size_t steps = comp.Run(rng, 100);
  EXPECT_EQ(steps, 2u);  // Both one-shots fire.
  EXPECT_EQ(a->inputs_seen(), 1);  // a saw b's COMMIT.
  EXPECT_EQ(b->inputs_seen(), 1);  // b saw a's REQUEST_CREATE.
  EXPECT_EQ(comp.behavior().size(), 2u);
}

TEST(CompositionTest, RejectsSharedOutput) {
  SystemType type;
  TxName t1 = type.NewChild(kT0);
  Composition comp;
  comp.Add(std::make_unique<OneShot>("a", Action::Commit(t1),
                                     ActionKind::kAbort));
  comp.Add(std::make_unique<OneShot>("b", Action::Commit(t1),
                                     ActionKind::kAbort));
  Status s = comp.Execute(Action::Commit(t1));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

TEST(CompositionTest, QuiescesWhenNothingEnabled) {
  Composition comp;
  Rng rng(2);
  EXPECT_EQ(comp.Run(rng, 10), 0u);
  EXPECT_TRUE(comp.EnabledOutputs().empty());
}

TEST(CompositionTest, InvalidateAllRefreshesCaches) {
  SystemType type;
  TxName t1 = type.NewChild(kT0);
  Composition comp;
  comp.Add(std::make_unique<OneShot>("a", Action::RequestCreate(t1),
                                     ActionKind::kCommit));
  EXPECT_EQ(comp.EnabledOutputs().size(), 1u);
  comp.InvalidateAll();
  EXPECT_EQ(comp.EnabledOutputs().size(), 1u);
}

}  // namespace
}  // namespace ntsg
